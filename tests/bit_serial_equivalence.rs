//! Cross-crate validation: the word-level fast path of the functional
//! engine (`mve-core`) computes exactly what the bit-level SRAM-array model
//! (`mve-insram`) computes with word-line activations and peripheral
//! latches — the executable version of the paper's Figure 1 story.

use mve_core::dtype::{BinOp, DType};
use mve_core::engine::Engine;
use mve_insram::array::SramArray;
use mve_insram::bitserial::BitSerialAlu;
use proptest::prelude::*;

fn engine_1d(len: usize) -> Engine {
    let mut e = Engine::default_mobile();
    e.vsetdimc(1);
    e.vsetdiml(0, len);
    e
}

/// Runs `op` on both the engine (8192-lane word model) and the bit-serial
/// array (256 bit-lines) and compares the overlapping lanes.
fn compare_backends(a_vals: &[u64], b_vals: &[u64], op: BinOp, bits: usize) {
    let n = a_vals.len().min(256);
    let dtype = match bits {
        8 => DType::U8,
        16 => DType::U16,
        _ => DType::U32,
    };
    // Engine path.
    let mut e = engine_1d(n);
    e.vsetwidth(32);
    let ra = e.alloc(dtype);
    let rb = e.alloc(dtype);
    for (lane, (&av, &bv)) in a_vals.iter().zip(b_vals).enumerate().take(n) {
        e.set_lane_raw(ra, lane, av);
        e.set_lane_raw(rb, lane, bv);
    }
    let opcode = match op {
        BinOp::Add => mve_core::isa::Opcode::Add,
        BinOp::Sub => mve_core::isa::Opcode::Sub,
        BinOp::Mul => mve_core::isa::Opcode::Mul,
        _ => mve_core::isa::Opcode::Xor,
    };
    let rc = e.binop(opcode, op, ra, rb);

    // Bit-serial array path.
    let mut array = SramArray::new();
    let mut alu = BitSerialAlu::new(&mut array);
    alu.write_vertical(0, bits, &a_vals[..n]);
    alu.write_vertical(bits, bits, &b_vals[..n]);
    match op {
        BinOp::Add => {
            alu.add(0, bits, 2 * bits, bits);
        }
        BinOp::Sub => {
            alu.sub(0, bits, 2 * bits, bits);
        }
        BinOp::Mul => {
            alu.mul(0, bits, 2 * bits, bits);
        }
        _ => {
            alu.xor(0, bits, 2 * bits, bits);
        }
    }
    let hw = alu.read_vertical(2 * bits, bits, n);
    for lane in 0..n {
        assert_eq!(
            e.lane_value(rc, lane),
            hw[lane],
            "lane {lane} diverged for {op:?} at {bits} bits"
        );
    }
}

#[test]
fn add_matches_bit_serial_hardware() {
    let a: Vec<u64> = (0..256)
        .map(|i| (i * 2654435761u64) & 0xFFFF_FFFF)
        .collect();
    let b: Vec<u64> = (0..256).map(|i| (i * 40503 + 17) & 0xFFFF_FFFF).collect();
    compare_backends(&a, &b, BinOp::Add, 32);
}

#[test]
fn sub_matches_bit_serial_hardware() {
    let a: Vec<u64> = (0..256).map(|i| (i * 977) & 0xFFFF).collect();
    let b: Vec<u64> = (0..256).map(|i| (i * 3163 + 5) & 0xFFFF).collect();
    compare_backends(&a, &b, BinOp::Sub, 16);
}

#[test]
fn mul_matches_bit_serial_hardware() {
    let a: Vec<u64> = (0..256).map(|i| i & 0xFF).collect();
    let b: Vec<u64> = (0..256).map(|i| (255 - i) & 0xFF).collect();
    compare_backends(&a, &b, BinOp::Mul, 8);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn prop_engine_equals_array_add16(
        a in proptest::collection::vec(0u64..=0xFFFF, 64),
        b in proptest::collection::vec(0u64..=0xFFFF, 64),
    ) {
        compare_backends(&a, &b, BinOp::Add, 16);
    }

    #[test]
    fn prop_engine_equals_array_mul8(
        a in proptest::collection::vec(0u64..=0xFF, 32),
        b in proptest::collection::vec(0u64..=0xFF, 32),
    ) {
        compare_backends(&a, &b, BinOp::Mul, 8);
    }
}
