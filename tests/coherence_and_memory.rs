//! Integration across `mve-core` and `mve-memsim`: the vector path and the
//! scalar path share one functional memory, and the presence-bit coherence
//! protocol of Section V-C fires when both touch the same lines.

use mve_core::engine::Engine;
use mve_core::isa::StrideMode;
use mve_core::sim::{simulate, SimConfig};
use mve_memsim::Hierarchy;

#[test]
fn scalar_writes_are_visible_to_vector_loads() {
    let mut e = Engine::default_mobile();
    e.vsetdimc(1);
    e.vsetdiml(0, 64);
    let a = e.mem_alloc_typed::<i32>(64);
    // "Scalar" writes through the functional memory.
    for i in 0..64 {
        e.mem_mut().write::<i32>(a, i, i as i32 * 3);
    }
    let v = e.vsld_dw(a, &[StrideMode::One]);
    assert_eq!(e.lane_value(v, 10), 30);
    // Vector store, then scalar read-back.
    let out = e.mem_alloc_typed::<i32>(64);
    e.vsst_dw(v, out, &[StrideMode::One]);
    assert_eq!(e.mem_read::<i32>(out, 63), 63 * 3);
}

#[test]
fn presence_bits_trigger_coherence_evictions_in_timing() {
    let mut h = Hierarchy::default();
    // The core pulls lines into L1 (presence bits set in L2)...
    for i in 0..32u64 {
        h.core_access(0x8000 + i * 64, true, i);
    }
    // ...then the vector engine touches the same region.
    let lines: Vec<u64> = (0..32).map(|i| (0x8000 + i * 64) / 64).collect();
    h.vector_access(&lines, false, 1_000);
    assert_eq!(h.stats().coherence_evictions, 32);
}

#[test]
fn timing_sim_consumes_memory_traffic() {
    let mut e = Engine::default_mobile();
    e.vsetdimc(1);
    e.vsetdiml(0, 8192);
    let a = e.mem_alloc_typed::<i32>(8192);
    let v = e.vsld_dw(a, &[StrideMode::One]);
    e.vsst_dw(v, a, &[StrideMode::One]);
    let report = simulate(&e.take_trace(), &SimConfig::default());
    // 8192 i32 = 512 lines each way.
    assert_eq!(report.mem.vector_lines_read, 512);
    assert_eq!(report.mem.vector_lines_written, 512);
    assert!(report.data_cycles > 0);
}

#[test]
fn cold_caches_cost_more_than_warm() {
    let build = || {
        let mut e = Engine::default_mobile();
        e.vsetdimc(1);
        e.vsetdiml(0, 8192);
        let a = e.mem_alloc_typed::<i32>(8192);
        for _ in 0..4 {
            let v = e.vsld_dw(a, &[StrideMode::One]);
            e.free(v);
        }
        e.take_trace()
    };
    let trace = build();
    let warm = simulate(&trace, &SimConfig::default());
    let cold = simulate(&trace, &SimConfig::default().without_cache_warming());
    assert!(
        cold.total_cycles > warm.total_cycles,
        "cold {} must exceed warm {}",
        cold.total_cycles,
        warm.total_cycles
    );
}
