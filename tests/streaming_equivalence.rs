//! Integration guarantee for the ISSUE-3 streaming pipeline: over the real
//! artefact workloads (every kernel of the 44-kernel suite, under every
//! simulator configuration the 16 reproduce artefacts use), the streaming
//! [`TimingSim`] and the [`Fanout`] sweep report **bit-identically** to the
//! batch [`simulate`] wrapper. Together with CI's `reproduce --smoke
//! --jobs` diff against the serial run, this pins the smoke artefacts to
//! the streaming rewrite.

use mve_core::sim::{simulate, simulate_sweep, SimConfig, TimingSim};
use mve_core::trace::Trace;
use mve_insram::Scheme;
use mve_kernels::registry::{all_kernels, selected_kernels};
use mve_kernels::Scale;

/// Streams `trace` through a fresh `TimingSim` (two-phase when warming)
/// exactly as a sink-driven consumer would.
fn stream(trace: &Trace, cfg: &SimConfig) -> mve_core::sim::SimReport {
    let mut sim = TimingSim::new(cfg.clone());
    if sim.is_warming() {
        trace.replay_into(&mut sim);
        sim.start_timing();
    }
    trace.replay_into(&mut sim);
    sim.finish()
}

/// Every simulator configuration the artefact harness exercises: the
/// Table IV default (fig 7/8/9/10/11/12a/12c), the four-scheme sweep
/// (fig 13), the array sweep (fig 12b), PUMICE dispatch (ext_pumice), and
/// the quiet ablation config.
fn artefact_configs() -> Vec<SimConfig> {
    let mut cfgs = vec![SimConfig::default()];
    cfgs.extend(
        Scheme::ALL
            .iter()
            .map(|&s| SimConfig::default().with_scheme(s)),
    );
    cfgs.extend(
        [8usize, 16, 64]
            .iter()
            .map(|&a| SimConfig::default().with_arrays(a)),
    );
    cfgs.push(SimConfig::default().with_ooo_dispatch());
    cfgs.push(SimConfig::default().without_mode_switch());
    cfgs
}

#[test]
fn every_kernel_streams_bit_identically_to_batch() {
    for k in all_kernels() {
        let run = k.run_mve(Scale::Test);
        assert!(run.checked.ok(), "{}: functional mismatch", k.info().name);
        let cfg = SimConfig::default();
        let batch = simulate(&run.trace, &cfg);
        assert_eq!(
            stream(&run.trace, &cfg),
            batch,
            "{}: streaming diverged from batch",
            k.info().name
        );
    }
}

#[test]
fn artefact_config_sweep_matches_per_config_simulation() {
    let cfgs = artefact_configs();
    for k in selected_kernels() {
        let run = k.run_mve(Scale::Test);
        assert!(run.checked.ok(), "{}", k.info().name);
        let swept = simulate_sweep(&run.trace, &cfgs);
        for (cfg, got) in cfgs.iter().zip(&swept) {
            let batch = simulate(&run.trace, cfg);
            assert_eq!(
                *got,
                batch,
                "{}: fanout diverged from batch (scheme {:?}, arrays {}, ooo {})",
                k.info().name,
                cfg.scheme,
                cfg.geometry.arrays,
                cfg.ooo_dispatch
            );
        }
    }
}

#[test]
fn rvv_traces_stream_bit_identically_too() {
    for k in selected_kernels() {
        let run = k.run_rvv(Scale::Test).expect("selected kernels have RVV");
        assert!(run.checked.ok(), "{}", k.info().name);
        for cfg in [
            SimConfig::default(),
            SimConfig::default().with_scheme(Scheme::BitHybrid),
        ] {
            assert_eq!(
                stream(&run.trace, &cfg),
                simulate(&run.trace, &cfg),
                "{}: RVV streaming diverged",
                k.info().name
            );
        }
    }
}
