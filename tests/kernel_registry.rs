//! Registry-integrity tests: `all_kernels()` is the complete, internally
//! consistent Table III suite, and every registered kernel's MVE path
//! reproduces its scalar reference on a tiny (test-scale) input.

use mve_kernels::registry::{all_kernels, selected_kernels, Library};
use mve_kernels::Scale;
use std::collections::HashSet;

#[test]
fn registry_covers_the_table3_suite() {
    let kernels = all_kernels();
    assert_eq!(kernels.len(), 44, "Table III lists 44 kernels");

    let mut names = HashSet::new();
    let mut libraries = HashSet::new();
    for k in &kernels {
        let info = k.info();
        assert!(
            names.insert((info.library, info.name)),
            "duplicate kernel registration: {}",
            info.name
        );
        libraries.insert(info.library);
        assert!(
            (1..=4).contains(&info.dims),
            "{}: implausible dimension count {}",
            info.name,
            info.dims
        );
        assert!(
            matches!(info.dtype_bits, 8 | 16 | 32 | 64),
            "{}: implausible element width {}",
            info.name,
            info.dtype_bits
        );
    }
    for lib in Library::ALL {
        assert!(
            libraries.contains(&lib),
            "library {} has no registered kernels",
            lib.name()
        );
    }
}

#[test]
fn every_registered_kernel_matches_its_scalar_reference() {
    for k in all_kernels() {
        let info = k.info();
        let run = k.run_mve(Scale::Test);
        assert!(
            run.checked.compared > 0,
            "{}: functional check compared nothing",
            info.name
        );
        assert!(
            run.checked.ok(),
            "{}: MVE output diverges from the scalar reference ({:?})",
            info.name,
            run.checked
        );
        assert!(
            !run.trace.is_empty(),
            "{}: MVE run recorded no instructions",
            info.name
        );
    }
}

#[test]
fn selected_kernels_provide_the_comparison_backends() {
    let selected = selected_kernels();
    assert_eq!(
        selected.len(),
        11,
        "Figures 8-13 evaluate the 11-kernel selected set"
    );
    for k in selected {
        let info = k.info();
        let rvv = k
            .run_rvv(Scale::Test)
            .unwrap_or_else(|| panic!("{}: selected kernel lacks an RVV variant", info.name));
        assert!(
            rvv.checked.ok(),
            "{}: RVV output diverges from its reference ({:?})",
            info.name,
            rvv.checked
        );
    }
}
