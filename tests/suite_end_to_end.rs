//! End-to-end integration: every kernel of the 44-kernel suite computes the
//! right answer, produces a replayable trace, and simulates to a consistent
//! cycle breakdown; the selected kernels' RVV variants match too.

use mve_core::sim::{simulate, SimConfig};
use mve_kernels::registry::all_kernels;
use mve_kernels::Scale;

#[test]
fn every_kernel_is_functionally_correct_and_simulates() {
    for k in all_kernels() {
        let info = k.info();
        let run = k.run_mve(Scale::Test);
        assert!(
            run.checked.ok(),
            "{}: functional mismatch {:?}",
            info.name,
            run.checked
        );
        assert!(!run.trace.is_empty(), "{}: empty trace", info.name);
        let report = simulate(&run.trace, &SimConfig::default());
        assert!(report.total_cycles > 0, "{}: zero cycles", info.name);
        assert_eq!(
            report.idle_cycles + report.compute_cycles + report.data_cycles,
            report.total_cycles,
            "{}: breakdown must partition the makespan",
            info.name
        );
        assert!(
            report.utilization() <= 1.0 + 1e-9,
            "{}: utilization {} out of range",
            info.name,
            report.utilization()
        );
    }
}

#[test]
fn selected_rvv_variants_match_their_references() {
    for k in all_kernels().iter().filter(|k| k.info().selected) {
        let run = k.run_rvv(Scale::Test).expect("selected kernels have RVV");
        assert!(
            run.checked.ok(),
            "{}: RVV mismatch {:?}",
            k.info().name,
            run.checked
        );
    }
}

#[test]
fn multi_dimensional_kernels_issue_fewer_instructions_than_rvv() {
    // The Figure 11 claim, checked end-to-end for every selected kernel
    // with 2 or more dimensions.
    for k in all_kernels()
        .iter()
        .filter(|k| k.info().selected && k.info().dims >= 2)
    {
        let mve = k.run_mve(Scale::Test).trace.instr_mix();
        let rvv = k.run_rvv(Scale::Test).expect("rvv").trace.instr_mix();
        assert!(
            rvv.vector_total() > mve.vector_total(),
            "{}: RVV {} should exceed MVE {}",
            k.info().name,
            rvv.vector_total(),
            mve.vector_total()
        );
    }
}

#[test]
fn neon_profiles_are_plausible() {
    for k in all_kernels() {
        let p = k.neon_profile(Scale::Test);
        assert!(
            p.vector_instrs() > 0,
            "{}: Neon profile has no work",
            k.info().name
        );
        assert!(
            p.touched_bytes > 0,
            "{}: Neon profile touches no memory",
            k.info().name
        );
    }
}
