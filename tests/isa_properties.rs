//! Property-based integration tests of the ISA semantics: strided
//! load/store round trips, mask semantics and predication, for arbitrary
//! shapes.

use mve_core::dtype::DType;
use mve_core::engine::Engine;
use mve_core::isa::StrideMode;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A strided 2-D load followed by a strided 2-D store with the same
    /// geometry is the identity on the accessed elements.
    #[test]
    fn prop_load_store_roundtrip_2d(
        cols in 1usize..48,
        rows in 1usize..24,
        pitch_extra in 0usize..8,
        vals in proptest::collection::vec(any::<i32>(), 1200),
    ) {
        let pitch = cols + pitch_extra;
        let needed = rows * pitch;
        prop_assume!(needed <= vals.len());
        prop_assume!(cols * rows <= 8192);

        let mut e = Engine::default_mobile();
        let a = e.mem_alloc_typed::<i32>(needed);
        let out = e.mem_alloc_typed::<i32>(needed);
        e.mem_fill(a, &vals[..needed]);

        e.vsetdimc(2);
        e.vsetdiml(0, cols);
        e.vsetdiml(1, rows);
        e.vsetldstr(1, pitch as i64);
        e.vsetststr(1, pitch as i64);
        let v = e.vsld_dw(a, &[StrideMode::One, StrideMode::Cr]);
        e.vsst_dw(v, out, &[StrideMode::One, StrideMode::Cr]);

        for r in 0..rows {
            for c in 0..cols {
                prop_assert_eq!(
                    e.mem_read::<i32>(out, r * pitch + c),
                    vals[r * pitch + c],
                    "({}, {})", r, c
                );
            }
        }
    }

    /// Replication via stride 0 is equivalent to broadcasting each source
    /// element across the replicated dimension.
    #[test]
    fn prop_stride0_replicates(
        unique in 1usize..64,
        rep in 1usize..16,
        vals in proptest::collection::vec(any::<i32>(), 64),
    ) {
        prop_assume!(unique * rep <= 8192);
        let mut e = Engine::default_mobile();
        let a = e.mem_alloc_typed::<i32>(unique);
        e.mem_fill(a, &vals[..unique]);
        e.vsetdimc(2);
        e.vsetdiml(0, rep);
        e.vsetdiml(1, unique);
        let v = e.vsld_dw(a, &[StrideMode::Zero, StrideMode::One]);
        for u in 0..unique {
            for r in 0..rep {
                prop_assert_eq!(
                    DType::I32.to_i64(e.lane_value(v, u * rep + r)) as i32,
                    vals[u]
                );
            }
        }
    }

    /// Masking element `w` of the highest dimension keeps exactly that
    /// element's lanes from being written.
    #[test]
    fn prop_dimension_mask_gates_exactly(
        inner in 1usize..32,
        outer in 2usize..16,
        masked in 0usize..16,
    ) {
        prop_assume!(masked < outer);
        let mut e = Engine::default_mobile();
        e.vsetdimc(2);
        e.vsetdiml(0, inner);
        e.vsetdiml(1, outer);
        let base = e.vsetdup_dw(7);
        e.vunsetmask(masked);
        let overlay = e.vsetdup_dw(9);
        let _ = overlay;
        e.vresetmask();
        for lane in 0..inner * outer {
            let w = lane / inner;
            let got = DType::I32.to_i64(e.lane_value(overlay, lane));
            if w == masked {
                prop_assert_eq!(got, 0, "masked lane {} written", lane);
            } else {
                prop_assert_eq!(got, 9, "active lane {} skipped", lane);
            }
        }
        let _ = base;
    }

    /// Tag predication composes with arithmetic: `max(a, b)` equals a
    /// compare-then-predicated-copy sequence.
    #[test]
    fn prop_predicated_select_is_max(
        vals_a in proptest::collection::vec(any::<i16>(), 64),
        vals_b in proptest::collection::vec(any::<i16>(), 64),
    ) {
        let n = vals_a.len().min(vals_b.len());
        let mut e = Engine::default_mobile();
        e.vsetdimc(1);
        e.vsetdiml(0, n);
        let a = e.mem_alloc_typed::<i16>(n);
        let b = e.mem_alloc_typed::<i16>(n);
        e.mem_fill(a, &vals_a[..n]);
        e.mem_fill(b, &vals_b[..n]);
        let va = e.vsld_w(a, &[StrideMode::One]);
        let vb = e.vsld_w(b, &[StrideMode::One]);
        let vmax = e.vmax_w(va, vb);
        // Select path: start from a, overwrite with b where b > a.
        let sel = e.vcpy_w(va);
        e.vgt_w(vb, va);
        e.set_predication(true);
        e.copy_into(sel, vb);
        e.set_predication(false);
        for lane in 0..n {
            prop_assert_eq!(e.lane_value(sel, lane), e.lane_value(vmax, lane));
        }
    }
}
