//! Umbrella crate for the MVE reproduction workspace: re-exports the main
//! crates so examples and integration tests can use one dependency.
//!
//! See `README.md` for the tour and `DESIGN.md` for the architecture.

pub use mve_baselines as baselines;
pub use mve_bench as bench;
pub use mve_core as core;
pub use mve_coresim as coresim;
pub use mve_energy as energy;
pub use mve_insram as insram;
pub use mve_kernels as kernels;
pub use mve_lang as lang;
pub use mve_memsim as memsim;
pub use mve_serve as serve;
