//! CNN-layer GEMM: sweeps MobileNet-class matrix sizes and reports where
//! the tightly-coupled in-cache engine beats a mobile GPU once kernel-launch
//! and data-copy overheads are charged — the Figure 9 story.
//!
//! Run with: `cargo run --release --example gemm_cnn`

use mve_baselines::gpu::GpuConfig;
use mve_core::sim::{simulate, SimConfig};
use mve_kernels::xnnpack::{Gemm, GemmSize};

fn main() {
    let gpu = GpuConfig::default();
    println!("GEMM on CNN layer shapes: MVE (in-cache) vs Adreno-class GPU\n");
    println!(
        "{:<22} {:>10} {:>12} {:>12} {:>8}",
        "layer (NxKxM)", "MFLOPs", "MVE us", "GPU us", "winner"
    );
    let layers = [
        (
            "pointwise 1x1 s",
            GemmSize {
                n: 16,
                k: 48,
                m: 64,
            },
        ),
        (
            "pointwise 1x1 m",
            GemmSize {
                n: 32,
                k: 96,
                m: 128,
            },
        ),
        (
            "bottleneck",
            GemmSize {
                n: 64,
                k: 128,
                m: 192,
            },
        ),
        (
            "expansion",
            GemmSize {
                n: 64,
                k: 256,
                m: 384,
            },
        ),
        (
            "classifier",
            GemmSize {
                n: 128,
                k: 384,
                m: 512,
            },
        ),
    ];
    for (name, s) in layers {
        let run = Gemm::run_mve_sized(s);
        assert!(run.checked.ok(), "{name}: functional mismatch");
        let report = simulate(&run.trace, &SimConfig::default());
        let mve_us = report.total_cycles as f64 / 2800.0;
        let g = gpu.execute(&Gemm::gpu_cost_sized(s));
        let flops = 2.0 * (s.n * s.k * s.m) as f64;
        println!(
            "{:<22} {:>10.2} {:>12.1} {:>12.1} {:>8}",
            format!("{name} {}x{}x{}", s.n, s.k, s.m),
            flops / 1e6,
            mve_us,
            g.total_us(),
            if mve_us < g.total_us() { "MVE" } else { "GPU" }
        );
    }
    println!(
        "\nsmall fine-grained layers favour MVE: no kernel launch, no host-device copies\n\
         (paper Figure 9: GPU only wins beyond ~6M FLOPs)"
    );
}
