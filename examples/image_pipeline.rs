//! Image pipeline: chroma upsampling (the Figure 4 random-row-pointer
//! pattern) followed by YCbCr→RGB conversion, timed against the Arm Neon
//! baseline model — a miniature of the paper's Figure 7 methodology.
//!
//! Run with: `cargo run --release --example image_pipeline`

use mve_core::sim::{simulate, SimConfig};
use mve_coresim::neon::NeonModel;
use mve_energy::{mve_energy, neon_energy, EnergyParams};
use mve_kernels::libjpeg::{H2v2Upsample, YcbcrToRgb};
use mve_kernels::registry::Kernel;
use mve_kernels::Scale;
use mve_memsim::Hierarchy;

fn main() {
    let params = EnergyParams::default();
    let model = NeonModel::default();
    println!("image pipeline (640x360 chroma plane -> RGB)\n");
    println!(
        "{:<16} {:>12} {:>12} {:>9} {:>10}",
        "stage", "MVE cycles", "Neon cycles", "speedup", "energy x"
    );

    let stages: Vec<(&str, Box<dyn Kernel>)> = vec![
        ("h2v2_upsample", Box::new(H2v2Upsample)),
        ("ycbcr_to_rgb", Box::new(YcbcrToRgb)),
    ];
    let mut mve_total = 0u64;
    let mut neon_total = 0u64;
    for (name, kernel) in &stages {
        let run = kernel.run_mve(Scale::Paper);
        assert!(run.checked.ok(), "{name} functional mismatch");
        let report = simulate(&run.trace, &SimConfig::default());

        let profile = kernel.neon_profile(Scale::Paper);
        let mut hier = Hierarchy::default();
        let neon = model.execute(&profile, &mut hier, 0);

        let me = mve_energy(&report, &params);
        let ne = neon_energy(&profile, &neon, &params);
        println!(
            "{:<16} {:>12} {:>12} {:>8.2}x {:>9.2}x",
            name,
            report.total_cycles,
            neon.cycles,
            neon.cycles as f64 / report.total_cycles as f64,
            ne.total_pj() / me.total_pj()
        );
        mve_total += report.total_cycles;
        neon_total += neon.cycles;
    }
    println!(
        "\npipeline: {:.2}x faster than the Neon baseline ({} vs {} cycles)",
        neon_total as f64 / mve_total as f64,
        mve_total,
        neon_total
    );
    println!("all outputs checked against scalar references.");
}
