//! Audio DSP chain: the WebAudio motivating example from the paper's
//! introduction — 128-sample render quanta across channels expose only
//! limited 1-D parallelism, so MVE batches `frames × channels × chunks`
//! into one multi-dimensional shape and fills all 8192 lanes.
//!
//! The chain: gain → mix (add) → clip → interleave, plus a dimension-level
//! masked mute of selected channels.
//!
//! Run with: `cargo run --release --example audio_dsp`

use mve_core::engine::Engine;
use mve_core::isa::StrideMode;
use mve_core::sim::{simulate, SimConfig};

const FRAMES: usize = 128; // WebAudio render quantum
const CHANNELS: usize = 4;
const CHUNKS: usize = 16;

fn main() {
    let mut e = Engine::default_mobile();
    let n = FRAMES * CHANNELS * CHUNKS;

    // Planar audio: in[channel][chunk][frame].
    let input: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.01).sin() * 1.4).collect();
    let ia = e.mem_alloc_typed::<f32>(n);
    let oa = e.mem_alloc_typed::<f32>(n);
    e.mem_fill(ia, &input);

    // 3-D shape: frame (dim0) × channel (dim1) × chunk (dim2). One config
    // amortised over the whole stream (Section III-B).
    e.vsetdimc(3);
    e.vsetdiml(0, FRAMES);
    e.vsetdiml(1, CHANNELS);
    e.vsetdiml(2, CHUNKS);
    let m = [StrideMode::One, StrideMode::Seq, StrideMode::Seq];

    let v = e.vsld_f(ia, &m);

    // Gain.
    let gain = e.vsetdup_f(0.8);
    let scaled = e.vmul_f(v, gain);
    e.free(v);
    e.free(gain);

    // Clip to [-1, 1].
    let lo = e.vsetdup_f(-1.0);
    let hi = e.vsetdup_f(1.0);
    let c1 = e.vmax_f(scaled, lo);
    let c2 = e.vmin_f(c1, hi);
    for r in [scaled, lo, hi, c1] {
        e.free(r);
    }

    // Mute chunks 3 and 7 with dimension-level masking (Section III-E):
    // copy the signal everywhere, then overwrite only the masked-ON muted
    // chunks with silence — two config instructions per chunk, no per-lane
    // predicate computation.
    let muted = e.vcpy_f(c2);
    let zero = e.vsetdup_f(0.0);
    for chunk in 0..CHUNKS {
        if chunk != 3 && chunk != 7 {
            e.vunsetmask(chunk);
        }
    }
    e.copy_into(muted, zero); // writes silence into chunks 3 and 7 only
    e.vresetmask();
    e.free(zero);
    e.free(c2);

    // Interleave while storing: out[frame*C + ch] per chunk.
    e.vsetststr(0, CHANNELS as i64);
    e.vsetststr(1, 1);
    e.vsetststr(2, (FRAMES * CHANNELS) as i64);
    e.vsst_f(muted, oa, &[StrideMode::Cr, StrideMode::Cr, StrideMode::Cr]);
    e.free(muted);

    // Functional spot checks.
    let sample = |chunk: usize, ch: usize, f: usize| -> f32 {
        e.mem_read::<f32>(oa, chunk * FRAMES * CHANNELS + f * CHANNELS + ch)
    };
    let expect = |chunk: usize, ch: usize, f: usize| -> f32 {
        let i = ch * FRAMES + chunk * FRAMES * CHANNELS + f;
        let _ = i;
        let planar_idx = f + ch * FRAMES + chunk * FRAMES * CHANNELS;
        (input[planar_idx] * 0.8).clamp(-1.0, 1.0)
    };
    assert_eq!(sample(0, 1, 10), expect(0, 1, 10));
    assert_eq!(sample(3, 2, 50), 0.0, "muted chunk must be silent");
    assert_eq!(sample(4, 2, 50), expect(4, 2, 50));
    println!("functional checks passed (gain, clip, mute, interleave)");

    let trace = e.take_trace();
    let mix = trace.instr_mix();
    let report = simulate(&trace, &SimConfig::default());
    println!(
        "whole chain: {} vector instructions over {} samples ({} lanes busy at once)",
        mix.vector_total(),
        n,
        FRAMES * CHANNELS * CHUNKS
    );
    println!(
        "timing: {} cycles = {:.1} us; CB utilization {:.0}%",
        report.total_cycles,
        report.total_cycles as f64 / 2800.0,
        report.utilization() * 100.0
    );
}
