//! Quickstart: program the in-cache vector engine with MVE intrinsics,
//! then replay the recorded trace through the timing model.
//!
//! Run with: `cargo run --release --example quickstart`

use mve_core::engine::Engine;
use mve_core::isa::StrideMode;
use mve_core::sim::{simulate, SimConfig};

fn main() {
    // 1. An engine with the paper's mobile geometry: half of a 512 KB L2
    //    repurposed into 32 compute arrays = 8192 bit-serial SIMD lanes.
    let mut e = Engine::default_mobile();
    println!(
        "engine: {} lanes, {} control blocks",
        e.lanes(),
        e.geometry().control_blocks()
    );

    // 2. Build a 2-D problem in the functional memory: a 64x128 i32 matrix.
    let (rows, cols) = (64usize, 128usize);
    let a = e.mem_alloc_typed::<i32>(rows * cols);
    let vals: Vec<i32> = (0..rows * cols).map(|i| i as i32 % 1000 - 500).collect();
    e.mem_fill(a, &vals);

    // 3. Configure the multi-dimensional logical registers (Section III-B):
    //    dimension 0 = columns, dimension 1 = rows.
    e.vsetdimc(2);
    e.vsetdiml(0, cols);
    e.vsetdiml(1, rows);

    // 4. One strided load covers the whole tile (Algorithm 1); `Seq` derives
    //    the row stride from the column dimension automatically.
    let v = e.vsld_dw(a, &[StrideMode::One, StrideMode::Seq]);

    // 5. Compute: clamp to [-255, 255], then square.
    let lo = e.vsetdup_dw(-255);
    let hi = e.vsetdup_dw(255);
    let c1 = e.vmax_dw(v, lo);
    let c2 = e.vmin_dw(c1, hi);
    let sq = e.vmul_dw(c2, c2);

    // 6. Store and check one element functionally.
    let out = e.mem_alloc_typed::<i32>(rows * cols);
    e.vsst_dw(sq, out, &[StrideMode::One, StrideMode::Seq]);
    let x = e.mem_read::<i32>(out, 5);
    let expect = vals[5].clamp(-255, 255).pow(2);
    assert_eq!(x, expect);
    println!("functional check: out[5] = {x} (expected {expect})");

    // 7. The same run produced a dynamic trace; replay it through the
    //    cycle-level model of the core + MVE controller + cache hierarchy.
    let trace = e.take_trace();
    let mix = trace.instr_mix();
    println!(
        "trace: {} vector instrs ({} config, {} mem, {} arith), {} scalar",
        mix.vector_total(),
        mix.config,
        mix.mem_access,
        mix.arithmetic,
        mix.scalar
    );
    let report = simulate(&trace, &SimConfig::default());
    let (idle, compute, data) = report.breakdown();
    println!(
        "timing: {} cycles = {:.2} us @2.8GHz | idle {:.0}% compute {:.0}% data {:.0}% | CB util {:.0}%",
        report.total_cycles,
        report.total_cycles as f64 / 2800.0,
        idle * 100.0,
        compute * 100.0,
        data * 100.0,
        report.utilization() * 100.0
    );
}
