//! Value-generation strategies: a deterministic, non-shrinking subset of
//! proptest's `Strategy` model.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type from the deterministic RNG.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    // Uniform in [-1e6, 1e6]: full-range bit patterns would be dominated by
    // astronomically large magnitudes and NaNs, which is rarely what a
    // numeric property test wants.
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.unit_f64() * 2e6 - 1e6) as f32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64() * 2e12 - 1e12
    }
}

/// Marker strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`: uniform over the type's natural domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy range is empty");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let v = self.start + (rng.unit_f64() as $t) * (self.end - self.start);
                // The unit draw can round up far enough that `v == end`;
                // keep the range half-open.
                if v >= self.end {
                    self.start
                } else {
                    v
                }
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

/// Element-count specification for [`vec`]: an exact count or a range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "vec size range is empty");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "vec size range is empty");
        SizeRange {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec<T>` with element strategy `S` and a size range.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `proptest::collection::vec`: a vector whose length is drawn from `size`
/// and whose elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_exclusive - self.size.lo) as u64;
        let len = self.size.lo + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
