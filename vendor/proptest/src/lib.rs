//! Vendored minimal stand-in for the `proptest` crate.
//!
//! This build environment has no crates.io access, so the workspace vendors
//! the subset of proptest it actually uses:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//!   parameters written either `name in strategy` or `name: Type`;
//! * strategies: integer/float [`std::ops::Range`] /
//!   [`std::ops::RangeInclusive`], [`any`], and [`collection::vec`];
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`];
//! * [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! Differences from real proptest, by design (CI determinism — see the
//! repo's DESIGN.md):
//!
//! * **No shrinking.** A failing case reports its inputs but is not
//!   minimised.
//! * **Fully deterministic.** The RNG seed is derived from the test's
//!   module path and name, so a given test binary explores the same cases
//!   on every run and on every machine. `PROPTEST_CASES` in the environment
//!   overrides the case count (bounded to 10_000).

pub mod strategy;
pub mod test_runner;

pub mod collection {
    pub use crate::strategy::{vec, SizeRange, VecStrategy};
}

pub use strategy::{any, Any, Arbitrary, Strategy};

pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines deterministic property tests. See the crate docs for the
/// supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let __cases = __cfg.effective_cases();
            let __seed =
                $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut __passed: u32 = 0;
            let mut __attempt: u32 = 0;
            // Rejections (prop_assume!) retry with a fresh case, up to a
            // bounded number of attempts so a too-strict assumption cannot
            // loop forever.
            while __passed < __cases && __attempt < __cases.saturating_mul(20) {
                __attempt += 1;
                let mut __rng = $crate::test_runner::TestRng::for_case(__seed, __attempt as u64);
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    $crate::__proptest_sample! { __rng; $($params)*; $body };
                match __outcome {
                    ::std::result::Result::Ok(()) => __passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest {} failed at case {} (attempt {}): {}",
                            stringify!($name),
                            __passed,
                            __attempt,
                            __msg
                        );
                    }
                }
            }
            assert!(
                __passed >= __cases,
                "proptest {}: too many prop_assume! rejects ({} of {} cases passed in {} attempts)",
                stringify!($name),
                __passed,
                __cases,
                __attempt
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_sample {
    ($rng:ident; ; $body:block) => {
        (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
            $body
            ::std::result::Result::Ok(())
        })()
    };
    ($rng:ident; $n:ident in $s:expr ; $body:block) => {{
        let $n = $crate::strategy::Strategy::sample(&($s), &mut $rng);
        $crate::__proptest_sample! { $rng; ; $body }
    }};
    ($rng:ident; $n:ident in $s:expr, $($rest:tt)*) => {{
        let $n = $crate::strategy::Strategy::sample(&($s), &mut $rng);
        $crate::__proptest_sample! { $rng; $($rest)* }
    }};
    ($rng:ident; $n:ident : $t:ty ; $body:block) => {{
        let $n: $t = $crate::strategy::Strategy::sample(&$crate::any::<$t>(), &mut $rng);
        $crate::__proptest_sample! { $rng; ; $body }
    }};
    ($rng:ident; $n:ident : $t:ty, $($rest:tt)*) => {{
        let $n: $t = $crate::strategy::Strategy::sample(&$crate::any::<$t>(), &mut $rng);
        $crate::__proptest_sample! { $rng; $($rest)* }
    }};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?} == {:?}` ({} == {})",
                __l,
                __r,
                stringify!($a),
                stringify!($b),
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?} == {:?}`: {}",
                __l,
                __r,
                format!($($fmt)+),
            )));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?} != {:?}`",
                __l, __r,
            )));
        }
    }};
}

/// Discards the current case (and retries with a fresh one) unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}
