//! Deterministic case runner: configuration, RNG, and the case-level error
//! type the `prop_assert*` macros return.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Mirror of `proptest::test_runner::Config` — only the fields this
/// workspace uses.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count after applying the `PROPTEST_CASES` environment
    /// variable as a *cap*: CI sets it so no future config change can make
    /// the suite unbounded, and it can only lower the configured count.
    pub fn effective_cases(&self) -> u32 {
        let cap = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .map_or(10_000, |v| v.clamp(1, 10_000));
        self.cases.clamp(1, cap)
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — retry with a fresh case.
    Reject(String),
    /// `prop_assert*` failed — the property is violated.
    Fail(String),
}

/// FNV-1a hash of the fully qualified test name: the per-test base seed.
/// Name-derived (not time-derived) so every run explores the same cases.
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The RNG handed to strategies: one independent stream per (test, case).
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    pub fn for_case(base_seed: u64, case: u64) -> Self {
        TestRng {
            inner: SmallRng::seed_from_u64(base_seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
