//! Vendored minimal stand-in for the `rand` crate.
//!
//! This build environment has no crates.io access, so the workspace vendors
//! the *exact* API surface it uses from `rand` 0.8: `rngs::SmallRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` methods `gen`, `gen_range`
//! and `gen_bool`. The generator is a deterministic splitmix64/xoshiro256++
//! combination — statistically fine for test-input synthesis, NOT
//! cryptographic.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from their full value range
/// (the `Standard` distribution of real `rand`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) / (1u64 << 53) as f64
    }
}

/// Ranges that `Rng::gen_range` accepts (the `SampleRange` of real `rand`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let unit: $t = Standard::sample_standard(rng);
                let v = self.start + unit * (self.end - self.start);
                // `unit` can round up far enough that `v == end`; keep the
                // range half-open.
                if v >= self.end {
                    self.start
                } else {
                    v
                }
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// The user-facing convenience trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        let unit: f64 = Standard::sample_standard(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic small PRNG (xoshiro256++ seeded via splitmix64).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(-512i16..512);
            assert!((-512..512).contains(&v));
            let f = r.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = r.gen_range(3usize..=9);
            assert!((3..=9).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut r = SmallRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
