//! Vendored minimal stand-in for the `criterion` crate.
//!
//! This build environment has no crates.io access, so the workspace vendors
//! the subset of the criterion API its benches use: `Criterion`,
//! `benchmark_group` (with `sample_size`, `warm_up_time`,
//! `measurement_time`, `throughput`), `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Methodology is intentionally simple: each benchmark runs a short warm-up
//! then `sample_size` timed samples, and reports the median per-iteration
//! wall time (plus derived throughput). There is no statistical regression
//! analysis, plotting, or saved baselines. `MVE_BENCH_FAST=1` shrinks every
//! budget for smoke runs.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for bench code.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Units for reporting throughput alongside time.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Clone, Debug)]
struct Budget {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Budget {
    fn effective(&self) -> Budget {
        if std::env::var_os("MVE_BENCH_FAST").is_some() {
            Budget {
                sample_size: 3,
                warm_up: Duration::from_millis(5),
                measurement: Duration::from_millis(50),
            }
        } else {
            self.clone()
        }
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            sample_size: 20,
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_secs(2),
        }
    }
}

/// Top-level driver, one per bench binary.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            budget: Budget::default(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, Budget::default(), None, f);
        self
    }
}

/// A named set of related benchmarks sharing budgets and throughput.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    budget: Budget,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.budget.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.budget.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.budget.measurement = d;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.budget.clone(), self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` times the workload.
pub struct Bencher {
    budget: Budget,
    median_ns: Option<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget elapses (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(f());
            if warm_start.elapsed() >= self.budget.warm_up {
                break;
            }
        }
        // Decide iterations-per-sample so all samples fit the budget.
        let probe = Instant::now();
        black_box(f());
        let one = probe.elapsed().max(Duration::from_nanos(1));
        let per_sample = self.budget.measurement / self.budget.sample_size as u32;
        let iters = (per_sample.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(self.budget.sample_size);
        for _ in 0..self.budget.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = Some(samples[samples.len() / 2]);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    budget: Budget,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        budget: budget.effective(),
        median_ns: None,
    };
    f(&mut b);
    match b.median_ns {
        None => println!("  {id:40} (no measurement)"),
        Some(ns) => {
            let rate = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!("  {:>12.1} Melem/s", n as f64 / ns * 1e3)
                }
                Some(Throughput::Bytes(n)) => {
                    format!("  {:>12.1} MiB/s", n as f64 / ns * 1e9 / (1 << 20) as f64)
                }
                None => String::new(),
            };
            println!("  {id:40} {:>14.1} ns/iter{rate}", ns);
        }
    }
}

/// Declares a bench target: `criterion_group!(name, fn_a, fn_b, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main` that runs each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
