//! Scalar-core issue model (Section V-A).
//!
//! MVE instructions are fetched/decoded by the core, pushed to the ROB and
//! LSQ, and issued to the L2 **in program order at the head of the ROB** —
//! there is no speculative or out-of-order issue of MVE instructions. Scalar
//! instructions between them retire at the core's sustained IPC. MVE stores
//! park in a write buffer until the MVE controller acknowledges them; a
//! younger scalar load whose address falls inside a parked store's range
//! (computed by the LSQ Address Decoder per Equation 2) must stall.

/// Cortex-A76-class core parameters (Table IV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreConfig {
    /// Clock frequency in GHz; all simulator times are cycles of this clock.
    pub freq_ghz: f64,
    /// Decode/issue width.
    pub issue_width: u32,
    /// Reorder-buffer capacity.
    pub rob_entries: u32,
    /// Write-buffer entries for in-flight MVE stores.
    pub write_buffer_entries: usize,
    /// Sustained scalar IPC on the data-parallel kernels' glue code.
    ///
    /// CALIBRATED: 3.0 of the 4-wide machine; loop-control and address
    /// arithmetic on an A76-class core sustains close to its width.
    pub scalar_ipc: f64,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self {
            freq_ghz: 2.8,
            issue_width: 4,
            rob_entries: 128,
            write_buffer_entries: 8,
            scalar_ipc: 3.0,
        }
    }
}

impl CoreConfig {
    /// Cycles for a block of `instrs` scalar instructions to retire.
    pub fn scalar_block_cycles(&self, instrs: u64) -> u64 {
        (instrs as f64 / self.scalar_ipc).ceil() as u64
    }

    /// Converts cycles of this core's clock to nanoseconds.
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 / self.freq_ghz
    }

    /// Converts nanoseconds to cycles of this core's clock.
    pub fn ns_to_cycles(&self, ns: f64) -> u64 {
        (ns * self.freq_ghz).ceil() as u64
    }
}

/// A byte-address range `[start, end)` covered by a vector memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddrRange {
    /// Inclusive start byte.
    pub start: u64,
    /// Exclusive end byte.
    pub end: u64,
}

impl AddrRange {
    /// Whether `addr` falls inside the range.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.start && addr < self.end
    }

    /// Whether two ranges overlap.
    pub fn overlaps(&self, other: &AddrRange) -> bool {
        self.start < other.end && other.start < self.end
    }
}

/// The LSQ Address Decoder of Section V-A: mirrors the MVE dimension CRs and
/// computes the conservative address range of a vector store (Equation 2):
///
/// `Range = Base + Σᵢ Dimᵢ.Length × Dimᵢ.Stride`
#[derive(Debug, Clone, Default)]
pub struct AddressDecoder {
    dim_lengths: [u64; 4],
    dim_strides: [i64; 4],
    dim_count: usize,
}

impl AddressDecoder {
    /// Creates a decoder with no dimensions configured.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mirrors a `vsetdimc` config instruction.
    ///
    /// # Panics
    ///
    /// Panics if `count` is 0 or exceeds 4 (the ISA supports up to 4D).
    pub fn set_dim_count(&mut self, count: usize) {
        assert!((1..=4).contains(&count), "dimension count must be 1..=4");
        self.dim_count = count;
    }

    /// Mirrors a `vsetdiml` config instruction.
    pub fn set_dim(&mut self, dim: usize, length: u64, stride_bytes: i64) {
        assert!(dim < 4, "dimension index must be < 4");
        self.dim_lengths[dim] = length;
        self.dim_strides[dim] = stride_bytes;
    }

    /// Equation 2: the conservative byte range a store with `base` covers.
    /// Negative strides extend the range below `base`.
    pub fn store_range(&self, base: u64, elem_bytes: u64) -> AddrRange {
        let mut lo: i64 = 0;
        let mut hi: i64 = 0;
        for d in 0..self.dim_count {
            let extent = (self.dim_lengths[d].saturating_sub(1)) as i64 * self.dim_strides[d];
            lo += extent.min(0);
            hi += extent.max(0);
        }
        AddrRange {
            start: (base as i64 + lo).max(0) as u64,
            end: (base as i64 + hi) as u64 + elem_bytes,
        }
    }
}

/// An in-flight MVE store parked in the write buffer.
#[derive(Debug, Clone, Copy)]
struct PendingStore {
    range: AddrRange,
    completes_at: u64,
}

/// The write buffer of Section V-A. MVE stores enter on commit and leave when
/// the MVE controller acknowledges completion; scalar loads check it for
/// memory dependences.
#[derive(Debug, Clone)]
pub struct WriteBuffer {
    capacity: usize,
    entries: Vec<PendingStore>,
}

impl WriteBuffer {
    /// Creates an empty buffer of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "write buffer needs capacity");
        Self {
            capacity,
            entries: Vec::new(),
        }
    }

    /// Drops entries acknowledged by `now`.
    pub fn drain_completed(&mut self, now: u64) {
        self.entries.retain(|e| e.completes_at > now);
    }

    /// Parks a store covering `range` that the controller will acknowledge at
    /// `completes_at`. Returns the cycle at which the entry was actually
    /// accepted (if the buffer is full, commit stalls until a slot frees).
    pub fn push(&mut self, range: AddrRange, completes_at: u64, now: u64) -> u64 {
        self.drain_completed(now);
        let mut accept_at = now;
        if self.entries.len() >= self.capacity {
            let earliest = self
                .entries
                .iter()
                .map(|e| e.completes_at)
                .min()
                .expect("nonempty");
            accept_at = accept_at.max(earliest);
            self.drain_completed(accept_at);
        }
        self.entries.push(PendingStore {
            range,
            completes_at,
        });
        accept_at
    }

    /// If a scalar load of `addr` at `now` conflicts with a parked store,
    /// returns the cycle at which the youngest conflicting store completes.
    pub fn load_stall_until(&self, addr: u64, now: u64) -> Option<u64> {
        self.entries
            .iter()
            .filter(|e| e.completes_at > now && e.range.contains(addr))
            .map(|e| e.completes_at)
            .max()
    }

    /// Number of parked stores at `now`.
    pub fn occupancy(&mut self, now: u64) -> usize {
        self.drain_completed(now);
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_block_retires_at_ipc() {
        let cfg = CoreConfig::default();
        assert_eq!(cfg.scalar_block_cycles(30), 10);
        assert_eq!(cfg.scalar_block_cycles(1), 1);
        assert_eq!(cfg.scalar_block_cycles(0), 0);
    }

    #[test]
    fn cycles_ns_roundtrip() {
        let cfg = CoreConfig::default();
        assert!((cfg.cycles_to_ns(2800) - 1000.0).abs() < 1e-9);
        assert_eq!(cfg.ns_to_cycles(1000.0), 2800);
    }

    #[test]
    fn equation2_range_2d() {
        let mut ad = AddressDecoder::new();
        ad.set_dim_count(2);
        // 8 columns of 4-byte elements, stride 4; 16 rows, stride 1024.
        ad.set_dim(0, 8, 4);
        ad.set_dim(1, 16, 1024);
        let r = ad.store_range(0x1000, 4);
        assert_eq!(r.start, 0x1000);
        assert_eq!(r.end, 0x1000 + 7 * 4 + 15 * 1024 + 4);
        assert!(r.contains(0x1000));
        assert!(r.contains(r.end - 1));
        assert!(!r.contains(r.end));
    }

    #[test]
    fn equation2_range_negative_stride() {
        let mut ad = AddressDecoder::new();
        ad.set_dim_count(1);
        ad.set_dim(0, 10, -8);
        let r = ad.store_range(0x1000, 8);
        assert_eq!(r.start, 0x1000 - 9 * 8); // lowest touched element
        assert_eq!(r.end, 0x1008);
    }

    #[test]
    fn write_buffer_stalls_conflicting_loads_only() {
        let mut wb = WriteBuffer::new(4);
        let range = AddrRange {
            start: 0x100,
            end: 0x200,
        };
        wb.push(range, 500, 10);
        assert_eq!(wb.load_stall_until(0x180, 20), Some(500));
        assert_eq!(wb.load_stall_until(0x80, 20), None);
        assert_eq!(wb.load_stall_until(0x200, 20), None);
        // After completion, no stall.
        assert_eq!(wb.load_stall_until(0x180, 600), None);
    }

    #[test]
    fn write_buffer_backpressure() {
        let mut wb = WriteBuffer::new(2);
        let r = |s: u64| AddrRange {
            start: s,
            end: s + 64,
        };
        assert_eq!(wb.push(r(0), 100, 0), 0);
        assert_eq!(wb.push(r(64), 200, 1), 1);
        // Full: third push waits for the earliest (100).
        assert_eq!(wb.push(r(128), 300, 2), 100);
        assert_eq!(wb.occupancy(150), 2);
        assert_eq!(wb.occupancy(1000), 0);
    }
}
