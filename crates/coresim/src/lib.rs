//! Mobile-core substrate: the scalar-core issue model that feeds MVE
//! instructions to the cache controller, and the Arm-Neon-class packed-SIMD
//! baseline used throughout the paper's evaluation.
//!
//! * [`core`] — Cortex-A76-class parameters (Table IV: 2.8 GHz, 4-wide
//!   out-of-order, 128-entry ROB), scalar-block retirement model, and the
//!   Section V-A machinery that orders scalar loads against in-flight MVE
//!   stores: the LSQ [`core::AddressDecoder`] (Equation 2) and the
//!   [`core::WriteBuffer`].
//! * [`neon`] — a 2×128-bit ASIMD pipe cost model: kernels describe their
//!   dynamic operation mix as a [`neon::NeonProfile`]; the model converts it
//!   to cycles against the shared memory hierarchy.

pub mod core;
pub mod neon;

pub use crate::core::{AddressDecoder, CoreConfig, WriteBuffer};
pub use crate::neon::{NeonModel, NeonOpClass, NeonProfile, NeonResult};
