//! Arm-Neon-class packed-SIMD baseline model.
//!
//! Table IV: the baseline core has **2 × 128-bit Advanced SIMD units** (plus
//! crypto and FP16 extensions). Kernels describe their dynamic instruction
//! mix as a [`NeonProfile`]; [`NeonModel::execute`] converts the profile into
//! cycles against the shared [`mve_memsim::Hierarchy`].
//!
//! The timing model is a standard throughput/latency bound for a well-fed
//! out-of-order machine:
//!
//! * **issue bound** — total 128-bit µops over 2 pipes;
//! * **dependency bound** — the profile's longest dependence chain times the
//!   per-class result latency (A76-class: 2 cycles simple, 4 cycles
//!   multiply/MAC, 2/3/4 for FP add/mul/MAC);
//! * **scalar bound** — interleaved scalar instructions at the core's IPC;
//! * **memory** — 2 load/store ports of 16 B each; line misses walk the
//!   hierarchy, with overlap capped by the L1 MSHRs.
//!
//! The final cycle count is `max(bounds) + exposed-miss stalls`, a model
//! shape that matches how the paper's Neon baselines were measured (real
//! silicon, fully pipelined).

use mve_memsim::Hierarchy;

use crate::core::CoreConfig;

/// Classes of 128-bit Neon operations, each with its own result latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NeonOpClass {
    /// Integer add/sub/logic/compare/min/max.
    IntSimple,
    /// Integer multiply / multiply-accumulate.
    IntMul,
    /// Shifts and immediate shifts.
    Shift,
    /// Floating-point add/sub.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Fused multiply-accumulate.
    FpMac,
    /// Permutes, zips, table lookups, widen/narrow.
    Permute,
    /// Cross-lane reductions (ADDV-class); also serialising.
    Reduce,
}

impl NeonOpClass {
    /// Result latency in cycles (Cortex-A76 software-optimisation-guide
    /// class values).
    pub fn latency(&self) -> u64 {
        match self {
            NeonOpClass::IntSimple => 2,
            NeonOpClass::IntMul => 4,
            NeonOpClass::Shift => 2,
            NeonOpClass::FpAdd => 2,
            NeonOpClass::FpMul => 3,
            NeonOpClass::FpMac => 4,
            NeonOpClass::Permute => 2,
            NeonOpClass::Reduce => 3,
        }
    }
}

/// Dynamic profile of one kernel invocation on the Neon baseline.
#[derive(Debug, Clone, Default)]
pub struct NeonProfile {
    /// `(class, dynamic 128-bit instruction count)` pairs.
    pub ops: Vec<(NeonOpClass, u64)>,
    /// Dynamic ops on the kernel's critical dependence chain (e.g. the
    /// accumulator chain of a reduction): these serialise at class latency.
    pub chain_ops: Vec<(NeonOpClass, u64)>,
    /// 128-bit vector loads.
    pub loads: u64,
    /// 128-bit vector stores.
    pub stores: u64,
    /// Interleaved scalar instructions (loop control, addressing).
    pub scalar_instrs: u64,
    /// Distinct bytes the kernel streams through (for cache behaviour, the
    /// model touches `touched_bytes / 64` sequential lines).
    pub touched_bytes: u64,
    /// First byte address of the streamed region.
    pub base_addr: u64,
}

impl NeonProfile {
    /// Total dynamic vector instructions (compute + memory).
    pub fn vector_instrs(&self) -> u64 {
        self.ops.iter().map(|(_, c)| c).sum::<u64>() + self.loads + self.stores
    }
}

/// Result of running a profile through the model.
#[derive(Debug, Clone, Copy, Default)]
pub struct NeonResult {
    /// Total kernel cycles.
    pub cycles: u64,
    /// Cycles attributed to SIMD compute (the binding compute bound).
    pub compute_cycles: u64,
    /// Cycles attributed to memory (port occupancy + exposed stalls).
    pub memory_cycles: u64,
    /// Dynamic vector instruction count.
    pub vector_instrs: u64,
    /// Dynamic scalar instruction count.
    pub scalar_instrs: u64,
}

/// The Neon execution model.
#[derive(Debug, Clone)]
pub struct NeonModel {
    core: CoreConfig,
    /// Number of 128-bit ASIMD pipes (Table IV: 2).
    pipes: u64,
    /// Load/store ports (A76: 2 × 16 B).
    mem_ports: u64,
    /// Sustained fraction of peak issue throughput.
    ///
    /// CALIBRATED: 0.45 — measured mobile SIMD kernels sustain roughly half
    /// of the 2-pipe peak once load-use stalls, accumulator dependences and
    /// issue-slot competition with address arithmetic are paid (the paper's
    /// Neon baselines are silicon measurements, not peak-throughput
    /// estimates).
    sustain: f64,
}

impl Default for NeonModel {
    fn default() -> Self {
        Self::new(CoreConfig::default())
    }
}

impl NeonModel {
    /// Builds the Table IV Neon configuration.
    pub fn new(core: CoreConfig) -> Self {
        Self {
            core,
            pipes: 2,
            mem_ports: 2,
            sustain: 0.45,
        }
    }

    /// Core configuration used by the model.
    pub fn core(&self) -> &CoreConfig {
        &self.core
    }

    /// Executes a profile against `hier`, starting at cycle `now`.
    pub fn execute(&self, profile: &NeonProfile, hier: &mut Hierarchy, now: u64) -> NeonResult {
        // Throughput bound over the SIMD pipes.
        let total_ops: u64 = profile.ops.iter().map(|(_, c)| c).sum();
        let issue_bound = (total_ops as f64 / (self.pipes as f64 * self.sustain)).ceil() as u64;
        // Dependence-chain bound.
        let dep_bound: u64 = profile
            .chain_ops
            .iter()
            .map(|(class, c)| class.latency() * c)
            .sum();
        let compute = issue_bound.max(dep_bound);

        // Scalar glue retires in parallel on the scalar pipes.
        let scalar = self.core.scalar_block_cycles(profile.scalar_instrs);

        // Memory: port occupancy vs stream-completion time. The OoO window
        // and prefetcher overlap miss latencies, but outstanding L1 misses
        // are bounded by the 20 L1 MSHRs (Table IV) — this is precisely why
        // the in-L2 engine, sitting next to the data with 46 MSHRs, wins on
        // cache-resident working sets (Section VII-A).
        let port_cycles = (profile.loads + profile.stores).div_ceil(self.mem_ports);
        let lines = profile.touched_bytes / mve_memsim::LINE_BYTES;
        let l1_mshrs = hier.config().l1d.mshrs;
        let mut outstanding: std::collections::VecDeque<u64> =
            std::collections::VecDeque::with_capacity(l1_mshrs);
        let mut t_issue = now;
        let mut last_done = now;
        for i in 0..lines {
            let addr = profile.base_addr + i * mve_memsim::LINE_BYTES;
            if outstanding.len() >= l1_mshrs {
                if let Some(f) = outstanding.pop_front() {
                    t_issue = t_issue.max(f);
                }
            }
            let lat = hier.core_access(addr, false, t_issue);
            let done = t_issue + lat;
            if lat > hier.config().l1d.latency {
                outstanding.push_back(done);
            }
            last_done = last_done.max(done);
            t_issue += 1;
        }
        let stream_cycles = last_done - now;
        // Streamed stores drain through the same DRAM channel as the read
        // stream (write-allocate + eventual writeback).
        let store_lines = profile.stores * 16 / mve_memsim::LINE_BYTES;
        let writeback_cycles = store_lines * hier.config().dram.burst_cycles;
        let memory = port_cycles.max(stream_cycles + writeback_cycles);

        let cycles = compute.max(scalar).max(memory).max(1);
        NeonResult {
            cycles,
            compute_cycles: compute,
            memory_cycles: memory,
            vector_instrs: profile.vector_instrs(),
            scalar_instrs: profile.scalar_instrs,
        }
    }
}

/// Elements per 128-bit vector for a given element width.
pub fn lanes_per_vector(bits: u32) -> u64 {
    (128 / bits) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(ops: u64, loads: u64, bytes: u64) -> NeonProfile {
        NeonProfile {
            ops: vec![(NeonOpClass::IntSimple, ops)],
            chain_ops: vec![],
            loads,
            stores: 0,
            scalar_instrs: ops / 2,
            touched_bytes: bytes,
            base_addr: 0x10_0000,
        }
    }

    #[test]
    fn lanes_scale_with_precision() {
        assert_eq!(lanes_per_vector(8), 16);
        assert_eq!(lanes_per_vector(16), 8);
        assert_eq!(lanes_per_vector(32), 4);
    }

    #[test]
    fn two_pipes_with_sustain_factor() {
        let model = NeonModel::default();
        let mut h = Hierarchy::default();
        let r = model.execute(&profile(1000, 0, 0), &mut h, 0);
        // 1000 ops over 2 pipes at 0.45 sustained throughput.
        assert_eq!(r.compute_cycles, (1000.0f64 / 0.9).ceil() as u64);
    }

    #[test]
    fn dependence_chain_binds_reductions() {
        let model = NeonModel::default();
        let mut h = Hierarchy::default();
        let mut p = profile(100, 0, 0);
        p.chain_ops = vec![(NeonOpClass::FpAdd, 100)]; // fully serial chain
        let r = model.execute(&p, &mut h, 0);
        assert_eq!(r.compute_cycles, 200, "chain of 100 FpAdds at latency 2");
    }

    #[test]
    fn memory_bound_kernel_charges_misses() {
        let model = NeonModel::default();
        let mut h = Hierarchy::default();
        // Cold streaming over 1 MB with trivial compute.
        let r = model.execute(&profile(10, 10, 1 << 20), &mut h, 0);
        assert!(
            r.memory_cycles > r.compute_cycles,
            "streaming kernel must be memory-bound: {r:?}"
        );
        assert_eq!(r.cycles, r.memory_cycles);
    }

    #[test]
    fn warm_rerun_is_faster() {
        let model = NeonModel::default();
        let mut h = Hierarchy::default();
        let cold = model.execute(&profile(10, 10, 1 << 16), &mut h, 0).cycles;
        let warm = model
            .execute(&profile(10, 10, 1 << 16), &mut h, 1_000_000)
            .cycles;
        assert!(warm <= cold, "warm {warm} vs cold {cold}");
    }
}
