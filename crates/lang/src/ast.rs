//! The `.mvel` abstract syntax tree and its canonical pretty-printer.
//!
//! Equality is structural (spans are ignored via [`Spanned`]), and
//! [`pretty`] emits canonical source that re-parses to an equal tree — the
//! round-trip property the `dsl_properties` suite pins.

use std::fmt::Write as _;

use crate::diag::Spanned;
use mve_core::dtype::DType;

/// A compile-time integer expression (shape dimensions, offsets, loop
/// bounds, stride values, shift amounts). Loop variables are the only
/// names; everything folds to a constant during lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IExprKind {
    /// Integer literal.
    Lit(i64),
    /// A loop variable.
    Var(String),
    /// `lhs op rhs`.
    Bin {
        /// `+`, `-` or `*`.
        op: IOp,
        /// Left operand.
        lhs: Box<IExpr>,
        /// Right operand.
        rhs: Box<IExpr>,
    },
    /// Unary negation.
    Neg(Box<IExpr>),
}

/// Integer-expression operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
}

/// A spanned [`IExprKind`].
pub type IExpr = Spanned<IExprKind>;

/// A per-dimension stride mode expression: `seq` (continue the lower
/// dimension) or a constant integer — `0` replicates, `1` is sequential,
/// anything else becomes a stride CR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModeExpr {
    /// `seq` — Section III-C mode 2.
    Seq,
    /// A constant stride value.
    Stride(IExpr),
}

/// Element-wise expression operators (the Table II binary ALU set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VOp {
    /// `+`.
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `&`.
    And,
    /// `|`.
    Or,
    /// `^`.
    Xor,
    /// `min(a, b)`.
    Min,
    /// `max(a, b)`.
    Max,
}

/// Reduction operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Sum.
    Add,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

/// A literal value.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    /// Integer literal (adopts the integer dtype of its context).
    Int(i64),
    /// Float literal (adopts the float dtype of its context).
    Float(f64),
}

// Floats in the AST come from literals only; NaN never appears (the lexer
// cannot produce one), so bitwise equality is sound.
impl Eq for Lit {}

/// An element-wise (vector) expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprKind {
    /// A `let` binding or scalar parameter.
    Ident(String),
    /// A literal, broadcast across the active lanes.
    Lit(Lit),
    /// `load buf [@ off] [modes]` — a multi-dimensional strided load.
    Load {
        /// Source buffer parameter.
        buf: String,
        /// Element offset into the buffer.
        offset: Option<IExpr>,
        /// Per-dimension stride modes, innermost first.
        modes: Vec<ModeExpr>,
    },
    /// `lhs op rhs` or `min`/`max` call.
    Bin {
        /// The operator.
        op: VOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `value << amount` / `value >> amount` (constant amount).
    Shift {
        /// Left (`<<`) or right (`>>`).
        left: bool,
        /// Shifted value.
        value: Box<Expr>,
        /// Constant shift amount.
        amount: IExpr,
    },
    /// `reduce add|min|max (expr)` — the Section IV vertical tree
    /// reduction; yields the reduced value broadcast across all lanes.
    Reduce {
        /// The combining operator.
        op: ReduceOp,
        /// The reduced operand.
        value: Box<Expr>,
    },
}

/// A spanned [`ExprKind`].
pub type Expr = Spanned<ExprKind>;

/// One statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmtKind {
    /// `shape [d0, d1, ...];` — configure the logical shape (innermost
    /// dimension first) for subsequent operations.
    Shape(Vec<IExpr>),
    /// `let name = expr;`.
    Let {
        /// Bound name.
        name: String,
        /// Bound value.
        value: Expr,
    },
    /// `store expr -> buf [@ off] [modes];`.
    Store {
        /// Stored value.
        value: Expr,
        /// Destination buffer parameter.
        buf: String,
        /// Element offset into the buffer.
        offset: Option<IExpr>,
        /// Per-dimension stride modes, innermost first.
        modes: Vec<ModeExpr>,
    },
    /// `for v in lo..hi { ... }` — a dim block, fully unrolled during
    /// lowering (the multi-dimensional strip-mining of Section IV).
    For {
        /// Loop variable.
        var: String,
        /// Inclusive lower bound.
        lo: IExpr,
        /// Exclusive upper bound.
        hi: IExpr,
        /// Loop body.
        body: Vec<Stmt>,
    },
}

/// A spanned [`StmtKind`].
pub type Stmt = Spanned<StmtKind>;

/// A parameter's declared type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamTy {
    /// A scalar of the given element type.
    Scalar(DType),
    /// `buf<dtype>[len]` (read-only) or `mut buf<dtype>[len]` (write-only).
    Buf {
        /// Element type.
        dtype: DType,
        /// Element count.
        len: usize,
        /// Output (writable) buffer.
        out: bool,
    },
}

/// One kernel parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Name.
    pub name: String,
    /// Declared type.
    pub ty: ParamTy,
    /// Optional scalar default (`a: i32 = 3`).
    pub default: Option<Lit>,
}

/// A parsed kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelAst {
    /// Kernel name.
    pub name: String,
    /// Parameters, in declaration order.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// The DSL spelling of an element type.
pub fn dtype_name(d: DType) -> &'static str {
    match d {
        DType::U8 => "u8",
        DType::I8 => "i8",
        DType::U16 => "u16",
        DType::I16 => "i16",
        DType::U32 => "u32",
        DType::I32 => "i32",
        DType::U64 => "u64",
        DType::I64 => "i64",
        DType::F16 => "f16",
        DType::F32 => "f32",
    }
}

/// Parses a DSL type name.
pub fn dtype_from_name(name: &str) -> Option<DType> {
    Some(match name {
        "u8" => DType::U8,
        "i8" => DType::I8,
        "u16" => DType::U16,
        "i16" => DType::I16,
        "u32" => DType::U32,
        "i32" => DType::I32,
        "u64" => DType::U64,
        "i64" => DType::I64,
        "f16" => DType::F16,
        "f32" => DType::F32,
        _ => return None,
    })
}

fn iexpr_prec(e: &IExprKind) -> u8 {
    match e {
        IExprKind::Lit(_) | IExprKind::Var(_) | IExprKind::Neg(_) => 3,
        IExprKind::Bin { op: IOp::Mul, .. } => 2,
        IExprKind::Bin { .. } => 1,
    }
}

fn fmt_iexpr(s: &mut String, e: &IExpr, min_prec: u8) {
    let prec = iexpr_prec(&e.node);
    let paren = prec < min_prec;
    if paren {
        s.push('(');
    }
    match &e.node {
        IExprKind::Lit(v) => {
            let _ = write!(s, "{v}");
        }
        IExprKind::Var(name) => s.push_str(name),
        IExprKind::Neg(inner) => {
            s.push('-');
            fmt_iexpr(s, inner, 3);
        }
        IExprKind::Bin { op, lhs, rhs } => {
            // Left-associative: a right child at the same precedence needs
            // parens or `a + (b + c)` would re-parse as `(a + b) + c`.
            let (sym, lp, rp) = match op {
                IOp::Add => ("+", 1, 2),
                IOp::Sub => ("-", 1, 2),
                IOp::Mul => ("*", 2, 3),
            };
            fmt_iexpr(s, lhs, lp);
            let _ = write!(s, " {sym} ");
            fmt_iexpr(s, rhs, rp);
        }
    }
    if paren {
        s.push(')');
    }
}

fn fmt_modes(s: &mut String, modes: &[ModeExpr]) {
    s.push('[');
    for (i, m) in modes.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        match m {
            ModeExpr::Seq => s.push_str("seq"),
            ModeExpr::Stride(e) => fmt_iexpr(s, e, 0),
        }
    }
    s.push(']');
}

/// Operator precedence for the canonical printer (must agree with the
/// parser: bitwise < additive < multiplicative < shift < atom).
fn expr_prec(e: &ExprKind) -> u8 {
    match e {
        ExprKind::Bin { op, .. } => match op {
            VOp::And | VOp::Or | VOp::Xor => 1,
            VOp::Add | VOp::Sub => 2,
            VOp::Mul => 3,
            VOp::Min | VOp::Max => 5,
        },
        ExprKind::Shift { .. } => 4,
        _ => 5,
    }
}

fn fmt_lit(s: &mut String, lit: &Lit) {
    match lit {
        Lit::Int(v) => {
            let _ = write!(s, "{v}");
        }
        // `{:?}` round-trips f64 exactly and always prints a `.` or
        // exponent, so it re-lexes as a float.
        Lit::Float(v) => {
            let _ = write!(s, "{v:?}");
        }
    }
}

fn fmt_expr(s: &mut String, e: &Expr, min_prec: u8) {
    let prec = expr_prec(&e.node);
    let paren = prec < min_prec;
    if paren {
        s.push('(');
    }
    match &e.node {
        ExprKind::Ident(name) => s.push_str(name),
        ExprKind::Lit(lit) => fmt_lit(s, lit),
        ExprKind::Load { buf, offset, modes } => {
            let _ = write!(s, "load {buf}");
            if let Some(off) = offset {
                s.push_str(" @ ");
                fmt_iexpr(s, off, 0);
            }
            s.push(' ');
            fmt_modes(s, modes);
        }
        ExprKind::Bin { op, lhs, rhs } => match op {
            VOp::Min | VOp::Max => {
                s.push_str(if *op == VOp::Min { "min(" } else { "max(" });
                fmt_expr(s, lhs, 0);
                s.push_str(", ");
                fmt_expr(s, rhs, 0);
                s.push(')');
            }
            _ => {
                // Left-associative (see the IExpr note above).
                let (sym, lp, rp) = match op {
                    VOp::Add => ("+", 2, 3),
                    VOp::Sub => ("-", 2, 3),
                    VOp::Mul => ("*", 3, 4),
                    VOp::And => ("&", 1, 2),
                    VOp::Or => ("|", 1, 2),
                    VOp::Xor => ("^", 1, 2),
                    VOp::Min | VOp::Max => unreachable!(),
                };
                fmt_expr(s, lhs, lp);
                let _ = write!(s, " {sym} ");
                fmt_expr(s, rhs, rp);
            }
        },
        ExprKind::Shift {
            left,
            value,
            amount,
        } => {
            fmt_expr(s, value, 4);
            s.push_str(if *left { " << " } else { " >> " });
            fmt_iexpr(s, amount, 3);
        }
        ExprKind::Reduce { op, value } => {
            let name = match op {
                ReduceOp::Add => "add",
                ReduceOp::Min => "min",
                ReduceOp::Max => "max",
            };
            let _ = write!(s, "reduce {name} (");
            fmt_expr(s, value, 0);
            s.push(')');
        }
    }
    if paren {
        s.push(')');
    }
}

fn fmt_stmt(s: &mut String, stmt: &Stmt, indent: usize) {
    for _ in 0..indent {
        s.push_str("    ");
    }
    match &stmt.node {
        StmtKind::Shape(dims) => {
            s.push_str("shape [");
            for (i, d) in dims.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                fmt_iexpr(s, d, 0);
            }
            s.push_str("];\n");
        }
        StmtKind::Let { name, value } => {
            let _ = write!(s, "let {name} = ");
            fmt_expr(s, value, 0);
            s.push_str(";\n");
        }
        StmtKind::Store {
            value,
            buf,
            offset,
            modes,
        } => {
            s.push_str("store ");
            fmt_expr(s, value, 0);
            let _ = write!(s, " -> {buf}");
            if let Some(off) = offset {
                s.push_str(" @ ");
                fmt_iexpr(s, off, 0);
            }
            s.push(' ');
            fmt_modes(s, modes);
            s.push_str(";\n");
        }
        StmtKind::For { var, lo, hi, body } => {
            let _ = write!(s, "for {var} in ");
            fmt_iexpr(s, lo, 3);
            s.push_str("..");
            fmt_iexpr(s, hi, 3);
            s.push_str(" {\n");
            for st in body {
                fmt_stmt(s, st, indent + 1);
            }
            for _ in 0..indent {
                s.push_str("    ");
            }
            s.push_str("}\n");
        }
    }
}

/// Renders a kernel as canonical `.mvel` source. `parse(pretty(k)) == k`
/// for every well-formed tree (the round-trip property suite).
pub fn pretty(k: &KernelAst) -> String {
    let mut s = String::new();
    let _ = write!(s, "kernel {}(", k.name);
    for (i, p) in k.params.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{}: ", p.name);
        match &p.ty {
            ParamTy::Scalar(d) => s.push_str(dtype_name(*d)),
            ParamTy::Buf { dtype, len, out } => {
                if *out {
                    s.push_str("mut ");
                }
                let _ = write!(s, "buf<{}>[{len}]", dtype_name(*dtype));
            }
        }
        if let Some(d) = &p.default {
            s.push_str(" = ");
            fmt_lit(&mut s, d);
        }
    }
    s.push_str(") {\n");
    for st in &k.body {
        fmt_stmt(&mut s, st, 1);
    }
    s.push_str("}\n");
    s
}
