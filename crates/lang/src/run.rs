//! The compiled-kernel pipeline and runner.
//!
//! [`compile`] takes `.mvel` source through parse → typed lowering →
//! list scheduling → spill-aware linear-scan allocation
//! (`mve_core::compiler`), producing a [`CompiledKernel`] whose allocated
//! code an [`Executor`] drives through the functional [`Engine`] — the
//! bridge that turns the Section III-G compiler from dead weight into a
//! live front-end.
//!
//! **Spills are real memory traffic.** Allocator-inserted
//! `spill.store`/`spill.reload` ops execute as full-width engine stores
//! and loads to per-register spill slots (the whole 8192-lane register,
//! as the paper's §VII-C spill-cost comparison assumes), so a
//! register-pressured kernel's trace shows the extra `MemAccess`
//! instructions and the timing simulation charges them.
//!
//! **Register budget.** The engine's physical file holds
//! `wordlines / kernel_width` registers. The allocator is given that
//! capacity minus a small reserve: 1 register for the in-flight
//! destination of the executing op (the engine allocates an op's result
//! while its dying operands are still live), plus 3 while any reduction
//! is live (the vertical tree holds the source, the reloaded upper half
//! and the partial sum simultaneously).

use std::collections::HashMap;
use std::time::{Duration, Instant};

use crate::ast::{dtype_name, KernelAst};
use crate::diag::Diag;
use crate::eval::interpret;
use crate::lex::lex;
use crate::lower::lower;
use crate::parse::parse_tokens;
use mve_core::compiler::{
    allocate, liveness, register_budget, schedule, Action, IrOp, ParamKind, Program, Sem,
    SplatSource, VReg, SPILL_RELOAD, SPILL_STORE,
};
use mve_core::config::MAX_DIMS;
use mve_core::dtype::{BinOp, DType};
use mve_core::engine::{Engine, Reg};
use mve_core::isa::{Opcode, StrideMode};
use mve_core::sim::{fnv1a_64, simulate, SimConfig};

/// Raw output elements per parameter index (`None` for non-outputs) —
/// the shape both [`Executor::outputs`] and the interpreter return.
pub type RawOutputs = Vec<Option<Vec<u64>>>;

/// Functional-memory budget for everything one executor allocates:
/// declared buffers plus spill slots and per-reduction scratch (the
/// engine's memory is 64 MiB; the margin absorbs allocator slack). Both
/// [`compile`] (default geometry) and [`Executor::with_geometry`] (actual
/// geometry) enforce it, so a validated kernel can never exhaust
/// functional memory at execution time.
pub const MEMORY_BUDGET_BYTES: u128 = 56 << 20;

/// Bytes of executor scratch `code` needs on a `lanes`-lane engine: one
/// full-register slot per distinct spilled vreg, one per reduce op.
fn scratch_bytes(code: &[IrOp], lanes: usize) -> u128 {
    let mut spilled: std::collections::HashSet<VReg> = std::collections::HashSet::new();
    let mut bytes: u128 = 0;
    for op in code {
        if op.name == SPILL_RELOAD {
            if let Some(def) = op.def {
                if spilled.insert(def) {
                    // A spill op's width is the *triggering* op's, not
                    // necessarily the victim's — budget the worst case
                    // (8-byte lanes) so the estimate never undershoots.
                    bytes += lanes as u128 * 8;
                }
            }
        } else if matches!(
            op.sem,
            Some(Sem {
                action: Action::Reduce { .. },
                ..
            })
        ) {
            bytes += lanes as u128 * u128::from(op.width) / 8;
        }
    }
    bytes
}

/// Declared buffer bytes of a program's parameter list.
fn buffer_bytes(program: &Program) -> u128 {
    program
        .params
        .iter()
        .map(|p| match p.kind {
            ParamKind::BufIn { len } | ParamKind::BufOut { len } => {
                len as u128 * u128::from(p.dtype.bytes())
            }
            ParamKind::Scalar { .. } => 0,
        })
        .sum()
}

/// A fully compiled kernel: lowered, scheduled and register-allocated.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// The parsed tree (the interpreter's input and the pretty-printer's).
    pub ast: KernelAst,
    /// The lowered program (pre-scheduling), with entry metadata.
    pub program: Program,
    /// Scheduled + allocated code, including spill/reload ops.
    pub code: Vec<IrOp>,
    /// Selected kernel width in bits (widest live type).
    pub kernel_width: u32,
    /// Physical registers the file holds at that width.
    pub capacity: usize,
    /// Registers reserved for the runner (in-flight def + reduction temps).
    pub reserved: usize,
    /// Registers handed to the allocator.
    pub budget: usize,
    /// Spill stores the allocator inserted.
    pub spill_stores: usize,
    /// Reloads the allocator inserted.
    pub reloads: usize,
    /// FNV-1a digest of the exact source text (the service cache key).
    pub source_digest: u64,
}

/// Wall-clock spent in each compile phase, as measured by
/// [`compile_timed`]. Liveness analysis and the register-budget check
/// count toward `schedule` (they are scheduling prep); the post-allocation
/// scratch-budget check counts toward `allocate`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompilePhases {
    pub lex: Duration,
    pub parse: Duration,
    pub lower: Duration,
    pub schedule: Duration,
    pub allocate: Duration,
}

impl CompilePhases {
    /// `(phase name, duration)` pairs in pipeline order.
    pub fn phases(&self) -> [(&'static str, Duration); 5] {
        [
            ("lex", self.lex),
            ("parse", self.parse),
            ("lower", self.lower),
            ("schedule", self.schedule),
            ("allocate", self.allocate),
        ]
    }
}

/// Compiles `.mvel` source end-to-end.
pub fn compile(source: &str) -> Result<CompiledKernel, Diag> {
    compile_timed(source).map(|(ck, _)| ck)
}

/// [`compile`], plus per-phase wall-clock timings — the serve `compile`
/// reply surfaces these for cache-miss compiles.
pub fn compile_timed(source: &str) -> Result<(CompiledKernel, CompilePhases), Diag> {
    let mut phases = CompilePhases::default();
    let mut mark = Instant::now();
    let mut stamp = |slot: &mut Duration| {
        let now = Instant::now();
        *slot = now.duration_since(mark);
        mark = now;
    };
    let toks = lex(source)?;
    stamp(&mut phases.lex);
    let ast = parse_tokens(toks)?;
    stamp(&mut phases.parse);
    let program = lower(&ast)?;
    stamp(&mut phases.lower);
    let lv = liveness(&program.ops);
    let kernel_width = lv.kernel_width;
    let capacity = register_budget(
        mve_insram::scheme::EngineGeometry::default().wordlines as u32,
        kernel_width,
    );
    let has_reduce = program.ops.iter().any(|op| {
        matches!(
            op.sem,
            Some(Sem {
                action: Action::Reduce { .. },
                ..
            })
        )
    });
    let reserved = 1 + if has_reduce { 3 } else { 0 };
    let budget = capacity.saturating_sub(reserved);
    if budget < 2 {
        return Err(Diag::nowhere(format!(
            "kernel width {kernel_width} gives a {capacity}-register file, and the runner \
             reserves {reserved}; fewer than 2 registers remain for allocation — narrow the \
             element types{}",
            if has_reduce {
                " or drop the reduction"
            } else {
                ""
            }
        )));
    }
    let scheduled = schedule(&program.ops);
    stamp(&mut phases.schedule);
    let alloc = allocate(&scheduled, budget)
        .map_err(|e| Diag::nowhere(format!("register allocation failed: {e}")))?;
    // Total functional-memory demand — buffers plus the executor's spill
    // slots and reduction scratch — must fit the engine, so execution can
    // never hit an allocation failure on validated input.
    let lanes = mve_insram::scheme::EngineGeometry::default().total_bitlines();
    let scratch = scratch_bytes(&alloc.code, lanes);
    if buffer_bytes(&program) + scratch > MEMORY_BUDGET_BYTES {
        return Err(Diag::nowhere(format!(
            "kernel needs {} KiB of spill/reduction scratch on top of its buffers, \
             exceeding the {} MiB functional-memory budget — reduce the number of \
             reductions or the register pressure",
            scratch >> 10,
            MEMORY_BUDGET_BYTES >> 20
        )));
    }
    stamp(&mut phases.allocate);
    Ok((
        CompiledKernel {
            source_digest: fnv1a_64(source.as_bytes()),
            ast,
            code: alloc.code,
            kernel_width,
            capacity,
            reserved,
            budget,
            spill_stores: alloc.spill_stores,
            reloads: alloc.reloads,
            program,
        },
        phases,
    ))
}

/// Runtime parameter bindings: one raw scalar and one raw element vector
/// per parameter index (unused slots empty).
#[derive(Debug, Clone)]
pub struct Bindings {
    /// Raw scalar value per parameter (0 for buffers).
    pub scalars: Vec<u64>,
    /// Raw input elements per parameter (empty for scalars and outputs).
    pub inputs: Vec<Vec<u64>>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic raw lane value of `dtype` (floats land in [-1, 1)).
fn raw_value(dtype: DType, x: u64) -> u64 {
    if dtype.is_float() {
        let f = ((x >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
        dtype.from_f32(f as f32)
    } else {
        x & dtype.lane_mask()
    }
}

impl Bindings {
    /// Deterministic bindings derived from the program's parameter list
    /// (name-seeded, so reordering-insensitive content): the values every
    /// front-end — `reproduce --dsl`, the serve `compile` op, the corpus
    /// tests — executes a given kernel with.
    pub fn deterministic(program: &Program) -> Self {
        let mut scalars = Vec::with_capacity(program.params.len());
        let mut inputs = Vec::with_capacity(program.params.len());
        for p in &program.params {
            let mut state = fnv1a_64(p.name.as_bytes()) ^ 0x6d76_656c_5f62_696e;
            match &p.kind {
                ParamKind::Scalar { default } => {
                    let raw = default.unwrap_or_else(|| raw_value(p.dtype, splitmix64(&mut state)));
                    scalars.push(raw);
                    inputs.push(Vec::new());
                }
                ParamKind::BufIn { len } => {
                    scalars.push(0);
                    inputs.push(
                        (0..*len)
                            .map(|_| raw_value(p.dtype, splitmix64(&mut state)))
                            .collect(),
                    );
                }
                ParamKind::BufOut { .. } => {
                    scalars.push(0);
                    inputs.push(Vec::new());
                }
            }
        }
        Self { scalars, inputs }
    }
}

fn binop_opcode(op: BinOp) -> Opcode {
    match op {
        BinOp::Add => Opcode::Add,
        BinOp::Sub => Opcode::Sub,
        BinOp::Mul => Opcode::Mul,
        BinOp::Min => Opcode::Min,
        BinOp::Max => Opcode::Max,
        BinOp::Xor => Opcode::Xor,
        BinOp::And => Opcode::And,
        BinOp::Or => Opcode::Or,
    }
}

/// Precomputed per-op execution plan: the dense value-table slots of the
/// op's operands and definition, plus the slots whose last use this op is.
/// Built once at construction from the liveness analysis, so the `run`
/// replay loop touches only vector indexing — no hash lookups and no
/// per-run allocation on the steady-state path.
struct OpPlan {
    uses: Vec<u32>,
    def: Option<u32>,
    frees: Vec<u32>,
}

/// Executes a [`CompiledKernel`] on an owned engine. Buffers are allocated
/// and inputs written once at construction; [`Executor::run`] replays the
/// allocated code, so steady-state re-execution (the perf workloads) does
/// not grow the functional memory.
pub struct Executor {
    engine: Engine,
    code: Vec<IrOp>,
    plans: Vec<OpPlan>,
    /// Live engine registers per dense value slot (all `None` between runs).
    values: Vec<Option<Reg>>,
    /// Element type per dense value slot (static: from the defining op).
    slot_dtype: Vec<DType>,
    scalars: Vec<u64>,
    buf_base: Vec<u64>,
    buf_len: Vec<usize>,
    buf_dtype: Vec<DType>,
    out_params: Vec<usize>,
    /// Lazily allocated spill-slot base address per dense value slot.
    spill_slots: Vec<Option<u64>>,
    /// Lazily allocated reduction scratch base per op index.
    reduce_scratch: Vec<Option<u64>>,
    // Tracked CR state, so config instructions are emitted only on change
    // (as a hand-written kernel hoists them out of loops).
    dimc: Option<usize>,
    lens: [Option<usize>; MAX_DIMS],
    ld_str: [Option<i64>; MAX_DIMS],
    st_str: [Option<i64>; MAX_DIMS],
    /// When set, [`Executor::run`] emits an [`Event::SrcLine`] marker
    /// whenever the active op's source line changes, so downstream sinks
    /// can attribute events per line. Off by default: an unmarked run's
    /// event stream is byte-identical to pre-attribution builds.
    line_markers: bool,
}

impl Executor {
    /// Builds an executor over a fresh mobile-geometry engine (the
    /// geometry the lowering validated shapes against), allocating and
    /// filling every parameter buffer, and selects the kernel width (one
    /// `vsetwidth`, Section III-G).
    pub fn new(ck: &CompiledKernel, bindings: &Bindings) -> Self {
        Self::with_geometry(ck, bindings, mve_insram::scheme::EngineGeometry::default())
            .expect("the lowering validated every shape against the default geometry")
    }

    /// [`Executor::new`] over an explicit engine geometry (e.g. the
    /// Figure 12(b) array-count sweep). Fails with a diagnostic when a
    /// shape in the compiled code needs more lanes than the geometry
    /// provides — DSL kernels declare fixed shapes and cannot shrink to a
    /// narrower engine the way the hand-written registry kernels do.
    pub fn with_geometry(
        ck: &CompiledKernel,
        bindings: &Bindings,
        geometry: mve_insram::scheme::EngineGeometry,
    ) -> Result<Self, Diag> {
        let lanes = geometry.total_bitlines();
        for op in &ck.code {
            if let Some(sem) = &op.sem {
                let total: usize = sem.shape.iter().product();
                if total > lanes {
                    return Err(Diag::nowhere(format!(
                        "kernel `{}` uses a {total}-lane shape but the {}-array geometry \
                         provides only {lanes} lanes",
                        ck.program.name, geometry.arrays
                    )));
                }
            }
        }
        // Wider geometries grow every spill/reduction slot; re-check the
        // memory budget with the actual lane count.
        if buffer_bytes(&ck.program) + scratch_bytes(&ck.code, lanes) > MEMORY_BUDGET_BYTES {
            return Err(Diag::nowhere(format!(
                "kernel `{}` needs more spill/reduction scratch at {lanes} lanes than the \
                 functional memory provides",
                ck.program.name
            )));
        }
        let mut engine = Engine::new(geometry, mve_core::mem::Memory::default());
        let mut buf_base = Vec::with_capacity(ck.program.params.len());
        let mut buf_len = Vec::with_capacity(ck.program.params.len());
        let mut buf_dtype = Vec::with_capacity(ck.program.params.len());
        let mut out_params = Vec::new();
        for (i, p) in ck.program.params.iter().enumerate() {
            buf_dtype.push(p.dtype);
            match &p.kind {
                ParamKind::Scalar { .. } => {
                    buf_base.push(0);
                    buf_len.push(0);
                }
                ParamKind::BufIn { len } => {
                    let base = engine.mem_alloc(*len as u64 * p.dtype.bytes());
                    let bytes = p.dtype.bytes();
                    for (j, &raw) in bindings.inputs[i].iter().enumerate() {
                        engine
                            .mem_mut()
                            .write_raw(base + j as u64 * bytes, bytes, raw);
                    }
                    buf_base.push(base);
                    buf_len.push(*len);
                }
                ParamKind::BufOut { len } => {
                    let base = engine.mem_alloc(*len as u64 * p.dtype.bytes());
                    buf_base.push(base);
                    buf_len.push(*len);
                    out_params.push(i);
                }
            }
        }
        engine.vsetwidth(ck.kernel_width);
        // Dense value numbering: every VReg the code mentions gets a slot
        // in first-appearance order, and each op's uses/def/last-use frees
        // are resolved to slots up front (spill reloads redefine the
        // spilled value's own slot, so the dtype recorded at the original
        // definition carries over).
        let lv = liveness(&ck.code);
        let mut slot_of: HashMap<VReg, u32> = HashMap::new();
        let mut slot_dtype: Vec<DType> = Vec::new();
        let mut slot = |v: VReg, dtypes: &mut Vec<DType>| -> u32 {
            *slot_of.entry(v).or_insert_with(|| {
                dtypes.push(DType::U8); // overwritten at the defining op
                (dtypes.len() - 1) as u32
            })
        };
        let mut plans = Vec::with_capacity(ck.code.len());
        for (i, op) in ck.code.iter().enumerate() {
            let uses: Vec<u32> = op.uses.iter().map(|&u| slot(u, &mut slot_dtype)).collect();
            let def = op.def.map(|d| slot(d, &mut slot_dtype));
            if let (Some(sem), Some(d)) = (&op.sem, def) {
                slot_dtype[d as usize] = sem.dtype;
            }
            let mut frees: Vec<u32> = op
                .uses
                .iter()
                .zip(&uses)
                .filter(|(u, _)| lv.last_use.get(u) == Some(&i))
                .map(|(_, &s)| s)
                .collect();
            frees.dedup();
            plans.push(OpPlan { uses, def, frees });
        }
        Ok(Self {
            engine,
            values: vec![None; slot_dtype.len()],
            spill_slots: vec![None; slot_dtype.len()],
            reduce_scratch: vec![None; ck.code.len()],
            plans,
            slot_dtype,
            code: ck.code.clone(),
            scalars: bindings.scalars.clone(),
            buf_base,
            buf_len,
            buf_dtype,
            out_params,
            dimc: None,
            lens: [None; MAX_DIMS],
            ld_str: [None; MAX_DIMS],
            st_str: [None; MAX_DIMS],
            line_markers: false,
        })
    }

    /// Enables per-source-line attribution markers for subsequent runs
    /// (see the `line_markers` field). The engine-construction events
    /// already emitted (geometry `vsetwidth`) stay unattributed — they
    /// land in the line-0 `<toplevel>` bucket by design.
    pub fn set_line_markers(&mut self, on: bool) {
        self.line_markers = on;
    }

    /// The engine (trace access, memory inspection).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable engine access (taking the trace between runs).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    fn ensure_shape(&mut self, dims: &[usize]) {
        if self.dimc != Some(dims.len()) {
            self.engine.vsetdimc(dims.len());
            self.dimc = Some(dims.len());
        }
        for (d, &len) in dims.iter().enumerate() {
            if self.lens[d] != Some(len) {
                self.engine.vsetdiml(d, len);
                self.lens[d] = Some(len);
            }
        }
    }

    fn ensure_cr_strides(&mut self, cr: &[(usize, i64)], store: bool) {
        for &(dim, stride) in cr {
            let slot = if store {
                &mut self.st_str[dim]
            } else {
                &mut self.ld_str[dim]
            };
            if *slot != Some(stride) {
                if store {
                    self.engine.vsetststr(dim, stride);
                } else {
                    self.engine.vsetldstr(dim, stride);
                }
                *slot = Some(stride);
            }
        }
    }

    /// The whole-register spill shape: 1-D across every engine lane.
    fn full_shape(&mut self) {
        let lanes = self.engine.lanes();
        self.ensure_shape(&[lanes]);
    }

    /// The Section IV vertical tree reduction, mirrored from the
    /// hand-written kernels' `tree_reduce` (halve while the length stays a
    /// power of two above 256, then finish on the scalar core) — except
    /// the source register is *not* freed (the generic last-use accounting
    /// owns that), and the result is broadcast under `shape`.
    fn reduce(
        &mut self,
        op_index: usize,
        src: Reg,
        shape: &[usize],
        op: BinOp,
        dtype: DType,
    ) -> Reg {
        let total: usize = shape.iter().product();
        let opcode = binop_opcode(op);
        let lanes = self.engine.lanes();
        let scratch = match self.reduce_scratch[op_index] {
            Some(s) => s,
            None => {
                let s = self.engine.mem_alloc(lanes as u64 * dtype.bytes());
                self.reduce_scratch[op_index] = Some(s);
                s
            }
        };
        let stop = if total.is_power_of_two() {
            total.min(256)
        } else {
            total
        };
        let mut m = total;
        let mut cur = src;
        if m > stop {
            // One [m/2, 2] fold shape for the whole halving loop (the
            // CR-amortisation the ISA is designed around).
            self.ensure_shape(&[m / 2, 2]);
            while m > stop {
                if self.lens[0] != Some(m / 2) {
                    self.engine.vsetdiml(0, m / 2);
                    self.lens[0] = Some(m / 2);
                }
                self.engine.vunsetmask(0);
                self.engine
                    .store(cur, scratch, &[StrideMode::One, StrideMode::Seq]);
                self.engine.vresetmask();
                let upper = self.engine.load(
                    dtype,
                    scratch + (m / 2) as u64 * dtype.bytes(),
                    &[StrideMode::One, StrideMode::Zero],
                );
                let sum = self.engine.binop(opcode, op, cur, upper);
                if cur != src {
                    self.engine.free(cur);
                }
                self.engine.free(upper);
                cur = sum;
                m /= 2;
                self.engine.scalar(8);
            }
        }
        // Store the ≤`stop` partials and finish on the scalar core.
        self.ensure_shape(&[stop]);
        self.engine.store(cur, scratch, &[StrideMode::One]);
        if cur != src {
            self.engine.free(cur);
        }
        self.engine.scalar(2 * stop as u64);
        let bytes = dtype.bytes();
        let mut acc = 0u64;
        for i in 0..stop {
            let raw = self
                .engine
                .mem()
                .read_raw(scratch + i as u64 * bytes, bytes);
            acc = if i == 0 {
                raw
            } else {
                dtype.binop(op, acc, raw)
            };
        }
        // Broadcast the result under the op's own shape, so every lane a
        // later use can read holds the reduced value.
        self.ensure_shape(shape);
        self.engine.setdup(dtype, acc)
    }

    /// Executes the allocated code once.
    ///
    /// # Panics
    ///
    /// Panics only on internal invariant violations (the compile pipeline
    /// validates everything user-controlled).
    pub fn run(&mut self) {
        let code = std::mem::take(&mut self.code);
        let plans = std::mem::take(&mut self.plans);
        // Attribution state for this run: 0 = `<toplevel>` (construction
        // events before the first marked op). A marker is emitted only on
        // a line *change*, so straight-line runs of same-line ops cost
        // one marker, and a disabled executor emits none at all.
        let mut cur_line = 0u32;
        for (i, (op, plan)) in code.iter().zip(&plans).enumerate() {
            if self.line_markers && op.span.line != cur_line {
                cur_line = op.span.line;
                self.engine.mark_line(cur_line);
            }
            match (&op.sem, op.name.as_str()) {
                (None, SPILL_STORE) => {
                    let victim = plan.uses[0] as usize;
                    let reg = self.values[victim]
                        .take()
                        .expect("spilled value is in a register");
                    let lanes = self.engine.lanes();
                    let dtype = self.slot_dtype[victim];
                    let slot = match self.spill_slots[victim] {
                        Some(s) => s,
                        None => {
                            let s = self.engine.mem_alloc(lanes as u64 * dtype.bytes());
                            self.spill_slots[victim] = Some(s);
                            s
                        }
                    };
                    // The allocator spills whole registers: all lanes, so
                    // the value survives any later shape.
                    self.full_shape();
                    self.engine.store(reg, slot, &[StrideMode::One]);
                    self.engine.free(reg);
                }
                (None, SPILL_RELOAD) => {
                    let def = plan.def.expect("reload defines its register") as usize;
                    let dtype = self.slot_dtype[def];
                    let slot = self.spill_slots[def].expect("reload follows its spill");
                    self.full_shape();
                    let reg = self.engine.load(dtype, slot, &[StrideMode::One]);
                    self.values[def] = Some(reg);
                }
                (Some(sem), _) => {
                    // `code` was moved out of `self`, so borrowing the op's
                    // Sem conflicts with nothing — no per-op clone of the
                    // shape/stride vectors on the execution hot path.
                    let reg = match &sem.action {
                        Action::Splat(source) => {
                            self.ensure_shape(&sem.shape);
                            let raw = match source {
                                SplatSource::Imm(raw) => *raw,
                                SplatSource::Param(p) => self.scalars[*p],
                            };
                            Some(self.engine.setdup(sem.dtype, raw))
                        }
                        Action::Load {
                            param,
                            elem_offset,
                            modes,
                            cr_strides,
                        } => {
                            self.ensure_shape(&sem.shape);
                            self.ensure_cr_strides(cr_strides, false);
                            let base = self.buf_base[*param] + elem_offset * sem.dtype.bytes();
                            Some(self.engine.load(sem.dtype, base, modes))
                        }
                        Action::Store {
                            param,
                            elem_offset,
                            modes,
                            cr_strides,
                        } => {
                            self.ensure_shape(&sem.shape);
                            self.ensure_cr_strides(cr_strides, true);
                            let base = self.buf_base[*param] + elem_offset * sem.dtype.bytes();
                            let src = self.values[plan.uses[0] as usize].expect("store source");
                            self.engine.store(src, base, modes);
                            None
                        }
                        Action::Binop { opcode, op: binop } => {
                            self.ensure_shape(&sem.shape);
                            let a = self.values[plan.uses[0] as usize].expect("binop lhs");
                            let b = self.values[plan.uses[1] as usize].expect("binop rhs");
                            Some(self.engine.binop(*opcode, *binop, a, b))
                        }
                        Action::ShiftImm { amount, left } => {
                            self.ensure_shape(&sem.shape);
                            let a = self.values[plan.uses[0] as usize].expect("shift source");
                            Some(self.engine.shift_imm(a, *amount, *left, false))
                        }
                        Action::Reduce { op: rop } => {
                            self.ensure_shape(&sem.shape);
                            let src = self.values[plan.uses[0] as usize].expect("reduce source");
                            Some(self.reduce(i, src, &sem.shape, *rop, sem.dtype))
                        }
                    };
                    if let (Some(def), Some(reg)) = (plan.def, reg) {
                        self.values[def as usize] = Some(reg);
                    }
                }
                (None, other) => unreachable!("op `{other}` has no execution semantics"),
            }
            // Free values whose last use this op was (the allocator freed
            // the physical register at the same point).
            for &f in &plan.frees {
                if let Some(reg) = self.values[f as usize].take() {
                    self.engine.free(reg);
                }
            }
        }
        self.code = code;
        self.plans = plans;
        // Any still-live registers are dead program results (impossible
        // after DCE) — free defensively so repeated runs cannot leak.
        for v in &mut self.values {
            if let Some(reg) = v.take() {
                self.engine.free(reg);
            }
        }
    }

    /// Raw output elements per parameter index (`None` for non-outputs).
    pub fn outputs(&self) -> RawOutputs {
        let mut out = vec![None; self.buf_base.len()];
        for &p in &self.out_params {
            let bytes = self.buf_dtype[p].bytes();
            let base = self.buf_base[p];
            out[p] = Some(
                (0..self.buf_len[p])
                    .map(|j| self.engine.mem().read_raw(base + j as u64 * bytes, bytes))
                    .collect(),
            );
        }
        out
    }
}

/// The functional-check outcome of one compiled run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckOutcome {
    /// Output elements compared against the interpreter.
    pub compared: usize,
    /// Elements that disagreed.
    pub mismatches: usize,
}

/// Exact raw comparison of executor outputs against the interpreter's —
/// the one comparison rule every checked path (here and the
/// `DslKernel` adapter) shares.
pub fn compare_outputs(got: &RawOutputs, want: &RawOutputs) -> CheckOutcome {
    let mut compared = 0usize;
    let mut mismatches = 0usize;
    for (g, w) in got.iter().zip(want) {
        if let (Some(g), Some(w)) = (g, w) {
            compared += g.len().min(w.len());
            mismatches += g.iter().zip(w).filter(|(a, b)| a != b).count();
            mismatches += g.len().abs_diff(w.len());
        }
    }
    CheckOutcome {
        compared,
        mismatches,
    }
}

/// Compiles, executes and checks a kernel, returning the executor (with
/// its trace still attached), the interpreter's reference outputs and the
/// comparison.
pub fn run_checked(
    ck: &CompiledKernel,
    bindings: &Bindings,
) -> (Executor, RawOutputs, CheckOutcome) {
    let mut ex = Executor::new(ck, bindings);
    ex.run();
    let want = interpret(&ck.ast, &ck.program.params, bindings);
    let check = compare_outputs(&ex.outputs(), &want);
    (ex, want, check)
}

/// Compiles `source`, executes it with deterministic bindings, checks it
/// against the interpreter, times the trace under `cfg`, and renders the
/// deterministic text artefact every front-end shares: the corpus goldens,
/// `reproduce --dsl` outputs and the serve `compile` reply are all this
/// function's bytes.
pub fn compile_and_render(source: &str, cfg: &SimConfig) -> Result<String, Diag> {
    compile_and_render_timed(source, cfg).map(|(text, _)| text)
}

/// [`compile_and_render`], plus the per-phase compile timings. The
/// rendered text is byte-identical to [`compile_and_render`] — timings
/// ride alongside, never inside, the deterministic artefact.
pub fn compile_and_render_timed(
    source: &str,
    cfg: &SimConfig,
) -> Result<(String, CompilePhases), Diag> {
    use std::fmt::Write as _;
    let (ck, phases) = compile_timed(source)?;
    let bindings = Bindings::deterministic(&ck.program);
    // Execute under the *timing* configuration's geometry, so the trace
    // and the simulation always agree on the array count (the serve
    // protocol pins compile requests to the default geometry; the library
    // API honors whatever the caller asks for, or fails cleanly).
    let mut ex = Executor::with_geometry(&ck, &bindings, cfg.geometry)?;
    ex.run();
    let want = interpret(&ck.ast, &ck.program.params, &bindings);
    let outs = ex.outputs();
    let check = compare_outputs(&outs, &want);
    if check.mismatches != 0 {
        return Err(Diag::nowhere(format!(
            "internal consistency failure: compiled kernel diverges from the reference \
             interpreter on {} of {} elements",
            check.mismatches, check.compared
        )));
    }
    let trace = ex.engine_mut().take_trace();
    let mix = trace.instr_mix();
    let report = simulate(&trace, cfg);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "mvel kernel `{}` — compiled by mve-lang",
        ck.program.name
    );
    let _ = writeln!(s, "digest: {:#018x}", ck.source_digest);
    let mut params = String::new();
    for (i, p) in ck.program.params.iter().enumerate() {
        if i > 0 {
            params.push_str(", ");
        }
        match &p.kind {
            ParamKind::Scalar { .. } => {
                let _ = write!(params, "{}: {}", p.name, dtype_name(p.dtype));
            }
            ParamKind::BufIn { len } => {
                let _ = write!(params, "{}: buf<{}>[{len}]", p.name, dtype_name(p.dtype));
            }
            ParamKind::BufOut { len } => {
                let _ = write!(
                    params,
                    "{}: mut buf<{}>[{len}]",
                    p.name,
                    dtype_name(p.dtype)
                );
            }
        }
    }
    let _ = writeln!(s, "params: {params}");
    let _ = writeln!(
        s,
        "width: {} bits; registers: capacity={} budget={} reserved={}",
        ck.kernel_width, ck.capacity, ck.budget, ck.reserved
    );
    let _ = writeln!(
        s,
        "ops: lowered={} allocated={} spill_stores={} reloads={}",
        ck.program.ops.len(),
        ck.code.len(),
        ck.spill_stores,
        ck.reloads
    );
    let _ = writeln!(
        s,
        "mix: config={} moves={} mem={} arith={} scalar={}",
        mix.config, mix.moves, mix.mem_access, mix.arithmetic, mix.scalar
    );
    let _ = writeln!(
        s,
        "check: compared={} mismatches={}",
        check.compared, check.mismatches
    );
    for (i, p) in ck.program.params.iter().enumerate() {
        if let ParamKind::BufOut { .. } = p.kind {
            let out = outs[i].as_ref().expect("output buffer");
            let digest = {
                let mut bytes = Vec::with_capacity(out.len() * 8);
                for v in out {
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
                fnv1a_64(&bytes)
            };
            let head: Vec<String> = out.iter().take(4).map(|v| format!("{:#x}", v)).collect();
            let _ = writeln!(
                s,
                "out `{}`: digest={digest:#018x} head=[{}]",
                p.name,
                head.join(", ")
            );
        }
    }
    let _ = writeln!(
        s,
        "timing: scheme={} arrays={} ooo={} mode_switch={} cache_warming={}",
        cfg.scheme.short_name(),
        cfg.geometry.arrays,
        cfg.ooo_dispatch,
        cfg.include_mode_switch,
        cfg.warm_caches
    );
    let _ = writeln!(
        s,
        "cycles: total={} compute={} data={} idle={} cb_busy={} cbs={}",
        report.total_cycles,
        report.compute_cycles,
        report.data_cycles,
        report.idle_cycles,
        report.cb_busy_cycles,
        report.control_blocks
    );
    let _ = writeln!(
        s,
        "instrs: vector={} scalar={}",
        report.vector_instrs, report.scalar_instrs
    );
    let _ = writeln!(
        s,
        "energy: array_cycles={} tmu_transfers={}",
        report.energy.array_active_cycles, report.energy.tmu_element_transfers
    );
    let _ = writeln!(s, "util: {:.6}", report.utilization());
    Ok((s, phases))
}
