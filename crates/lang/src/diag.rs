//! Source-located diagnostics.
//!
//! Every failure mode of the front-end — lexing, parsing, type checking,
//! lowering, allocation — funnels into one [`Diag`] carrying a 1-based
//! line/column, so the simulation service can reply with a *typed*
//! diagnostic (`line`/`col` members, not just prose) and CLI front-ends
//! can print `file:line:col:` prefixes an editor understands.

/// A 1-based source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Line, starting at 1 (0 = no source position, e.g. allocator errors).
    pub line: u32,
    /// Column, starting at 1.
    pub col: u32,
}

impl Span {
    /// A position-less span for failures with no single source location.
    pub const NONE: Span = Span { line: 0, col: 0 };
}

/// A value paired with the source span it came from. Equality and hashing
/// ignore the span, so ASTs compare structurally — the property the
/// pretty-print→reparse round-trip suite relies on.
#[derive(Debug, Clone)]
pub struct Spanned<T> {
    /// The wrapped node.
    pub node: T,
    /// Where it appeared.
    pub span: Span,
}

impl<T> Spanned<T> {
    /// Wraps `node` at `span`.
    pub fn new(node: T, span: Span) -> Self {
        Self { node, span }
    }
}

impl<T: PartialEq> PartialEq for Spanned<T> {
    fn eq(&self, other: &Self) -> bool {
        self.node == other.node
    }
}

impl<T: Eq> Eq for Spanned<T> {}

/// One front-end failure, with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag {
    /// What went wrong.
    pub message: String,
    /// Where (line 0 when no position applies).
    pub span: Span,
}

impl Diag {
    /// A diagnostic at `span`.
    pub fn at(span: Span, message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            span,
        }
    }

    /// A position-less diagnostic (pipeline stages past the source).
    pub fn nowhere(message: impl Into<String>) -> Self {
        Self::at(Span::NONE, message)
    }
}

impl std::fmt::Display for Diag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.span.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "{}:{}: {}", self.span.line, self.span.col, self.message)
        }
    }
}

impl std::error::Error for Diag {}
