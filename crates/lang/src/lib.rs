//! # mve-lang — the `.mvel` kernel DSL
//!
//! Until PR 5 the repo could only simulate the 44 hand-written Table III
//! kernels: the Section III-G compiler support (`mve_core::compiler`) had
//! no front-end and no executor, so nothing ever flowed *through* it.
//! This crate closes both gaps and turns the suite open-world — arbitrary
//! client-submitted kernels, the ROADMAP's "as many scenarios as you can
//! imagine":
//!
//! * [`lex`]/[`parse`] — a hand-rolled, std-only lexer and
//!   recursive-descent parser for the small textual DSL (typed buffer and
//!   scalar parameters, multi-dimensional shapes, element-wise and
//!   reduction operators, strided loads/stores, `for` dim blocks that
//!   unroll into the paper's multi-dimensional strip-mining);
//! * [`ast`] — the tree, with a canonical [`ast::pretty`] printer whose
//!   output re-parses to an equal tree (property-tested);
//! * [`lower`] — typed lowering into the compiler IR: inference-driven
//!   type checking, compile-time loop unrolling and constant folding,
//!   static bounds checks against declared buffer lengths, splat
//!   memoization and dead-code elimination;
//! * [`run`] — [`run::compile`] drives the existing list scheduler and
//!   spill-aware linear-scan allocator over the lowered IR, and
//!   [`run::Executor`] executes the allocated code on the functional
//!   [`mve_core::engine::Engine`] — allocator-inserted spills become real
//!   full-register memory traffic, so the §VII-C spill cost finally
//!   exercises the timing simulator;
//! * [`eval`] — an independent AST interpreter, the scalar reference every
//!   compiled execution is checked against;
//! * [`diag`] — line/column diagnostics, surfaced as typed fields in the
//!   service's error replies.
//!
//! ## Example
//!
//! ```
//! use mve_core::sim::SimConfig;
//!
//! let source = r#"
//! kernel scale(a: i32 = 3, x: buf<i32>[1024], out: mut buf<i32>[1024]) {
//!     shape [1024];
//!     let xv = load x [1];
//!     store xv * a -> out [1];
//! }
//! "#;
//! let rendered = mve_lang::compile_and_render(source, &SimConfig::default()).unwrap();
//! assert!(rendered.contains("check: compared=1024 mismatches=0"));
//! ```

pub mod ast;
pub mod diag;
pub mod eval;
pub mod lex;
pub mod lower;
pub mod parse;
pub mod profile;
pub mod run;

pub use ast::{pretty, KernelAst};
pub use diag::{Diag, Span, Spanned};
pub use eval::interpret;
pub use lower::lower;
pub use parse::{parse, parse_tokens};
pub use profile::{profile_and_render, profile_lines, render_annotated, LineReport, LineStat};
pub use run::{
    compare_outputs, compile, compile_and_render, compile_and_render_timed, compile_timed,
    run_checked, Bindings, CheckOutcome, CompilePhases, CompiledKernel, Executor, RawOutputs,
};
