//! Typed lowering: AST → the Section III-G straight-line compiler IR.
//!
//! The pass performs, in one walk:
//!
//! * **type checking** — element types must agree across operators;
//!   literals adopt the type of their context; loads/stores must name
//!   buffer parameters of the right direction;
//! * **`for` unrolling** — dim blocks are compile-time loops over constant
//!   ranges (the paper's multi-dimensional strip-mining), fully unrolled
//!   into the straight-line IR with the loop variable const-folded into
//!   offsets, strides and shift amounts;
//! * **static bounds checking** — every load/store's touched element range
//!   is computed from the shape and resolved strides and must fall inside
//!   the buffer; stores to one buffer must write disjoint ranges (the IR
//!   carries no memory-ordering edges, so the list scheduler is free to
//!   reorder stores — disjointness is what makes that sound);
//! * **splat memoization** — a scalar parameter or literal broadcast is
//!   emitted once per (value, shape), as a hand-written kernel would hoist
//!   it;
//! * **dead-code elimination** — pure ops whose values never reach a store
//!   are dropped, so the allocator's pressure accounting reflects only
//!   observable work.
//!
//! Lane-extent rule: a value may only be used under a shape whose total
//! lane count does not exceed the total of the shape it was defined under
//! (a definition writes exactly its shape's lanes; reading beyond them
//! would observe the register's zero-fill).

use std::collections::HashMap;

use crate::ast::*;
use crate::diag::{Diag, Span};
use mve_core::compiler::{
    Action, IrOp, ParamDecl, ParamKind, Program, Sem, SplatSource, SrcSpan, VReg,
};
use mve_core::config::MAX_DIMS;
use mve_core::dtype::{BinOp, DType};
use mve_core::isa::{Opcode, StrideMode};
use mve_insram::scheme::EngineGeometry;

/// Unrolling safety valve: the op count a single kernel may lower to.
pub const MAX_LOWERED_OPS: usize = 65_536;

/// Largest stride-CR magnitude the DSL accepts. The engine resolves Seq
/// strides as `stride[d-1] × dim[d-1]` in `i64`; with strides bounded
/// here and shape totals bounded by the lane count, that chain (and the
/// per-lane address sums) provably stay far from `i64` overflow.
pub const MAX_STRIDE: i64 = 1 << 31;

/// Functional-memory budget for one kernel's declared buffers (the
/// engine's memory is 64 MiB and the executor also needs spill slots and
/// reduction scratch).
pub const MAX_BUFFER_BYTES: u128 = 32 << 20;

#[derive(Debug, Clone)]
enum ScopeEntry {
    /// A `let`-bound vector value.
    Value {
        vreg: VReg,
        dtype: DType,
        def_lanes: usize,
    },
    /// A `for` loop variable (compile-time constant).
    Loop(i64),
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum SplatKey {
    Imm(u64, DType),
    Param(usize),
}

struct Lowerer {
    params: Vec<ParamDecl>,
    param_index: HashMap<String, usize>,
    ops: Vec<IrOp>,
    next_vreg: u32,
    shape: Option<Vec<usize>>,
    scopes: Vec<HashMap<String, ScopeEntry>>,
    splats: HashMap<(SplatKey, Vec<usize>), VReg>,
    /// `(param, first elem, last elem)` per emitted store, for the
    /// disjointness check.
    store_ranges: Vec<(usize, i64, i64, Span)>,
    lanes: usize,
}

/// Encodes a literal as the raw lane value of `dtype`.
fn encode_lit(lit: &Lit, dtype: DType, span: Span) -> Result<u64, Diag> {
    match lit {
        Lit::Int(v) => {
            if dtype.is_float() {
                return Ok(dtype.from_f32(*v as f32));
            }
            let bits = dtype.bits();
            let (lo, hi) = if dtype.is_signed_int() {
                (-(1i128 << (bits - 1)), (1i128 << (bits - 1)) - 1)
            } else {
                (0, (1i128 << bits) - 1)
            };
            if (i128::from(*v)) < lo || i128::from(*v) > hi {
                return Err(Diag::at(
                    span,
                    format!("literal {v} does not fit {}", dtype_name(dtype)),
                ));
            }
            Ok(dtype.from_i64(*v))
        }
        Lit::Float(v) => {
            if !dtype.is_float() {
                return Err(Diag::at(
                    span,
                    format!(
                        "float literal {v:?} cannot have integer type {}",
                        dtype_name(dtype)
                    ),
                ));
            }
            Ok(dtype.from_f32(*v as f32))
        }
    }
}

/// Maps a DSL element-wise operator to its ISA opcode and lane arithmetic.
pub fn vop_to_isa(op: VOp) -> (Opcode, BinOp) {
    match op {
        VOp::Add => (Opcode::Add, BinOp::Add),
        VOp::Sub => (Opcode::Sub, BinOp::Sub),
        VOp::Mul => (Opcode::Mul, BinOp::Mul),
        VOp::And => (Opcode::And, BinOp::And),
        VOp::Or => (Opcode::Or, BinOp::Or),
        VOp::Xor => (Opcode::Xor, BinOp::Xor),
        VOp::Min => (Opcode::Min, BinOp::Min),
        VOp::Max => (Opcode::Max, BinOp::Max),
    }
}

/// Maps a reduction operator to its combining arithmetic.
pub fn reduce_to_binop(op: ReduceOp) -> (Opcode, BinOp) {
    match op {
        ReduceOp::Add => (Opcode::Add, BinOp::Add),
        ReduceOp::Min => (Opcode::Min, BinOp::Min),
        ReduceOp::Max => (Opcode::Max, BinOp::Max),
    }
}

/// Resolves per-dimension element strides exactly as
/// `mve_core::addrgen::resolve_strides` will at execution time.
pub fn resolve_elem_strides(
    modes: &[StrideMode],
    cr: &[(usize, i64)],
    shape: &[usize],
) -> Vec<i64> {
    let mut strides = vec![0i64; modes.len()];
    for (d, mode) in modes.iter().enumerate() {
        strides[d] = match mode {
            StrideMode::Zero => 0,
            StrideMode::One => 1,
            StrideMode::Seq => {
                if d == 0 {
                    1
                } else {
                    strides[d - 1] * shape[d - 1] as i64
                }
            }
            StrideMode::Cr => cr
                .iter()
                .find(|(dim, _)| *dim == d)
                .map(|(_, s)| *s)
                .unwrap_or(0),
        };
    }
    strides
}

impl Lowerer {
    fn lookup(&self, name: &str) -> Option<&ScopeEntry> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn fresh(&mut self) -> VReg {
        let v = VReg(self.next_vreg);
        self.next_vreg += 1;
        v
    }

    fn push_op(&mut self, op: IrOp, span: Span) -> Result<(), Diag> {
        if self.ops.len() >= MAX_LOWERED_OPS {
            return Err(Diag::at(
                span,
                format!("kernel lowers to more than {MAX_LOWERED_OPS} operations; reduce the unrolled loop sizes"),
            ));
        }
        // Every lowered op funnels through here with the span of the
        // statement/expression it came from — the single stamping point
        // for source attribution (scheduling clones ops, so spans ride
        // through; spills inherit theirs in the allocator).
        self.ops.push(op.at(SrcSpan::new(span.line, span.col)));
        Ok(())
    }

    fn current_shape(&self, span: Span) -> Result<&Vec<usize>, Diag> {
        self.shape
            .as_ref()
            .ok_or_else(|| Diag::at(span, "no `shape [...]` statement precedes this operation"))
    }

    fn eval_iexpr(&self, e: &IExpr) -> Result<i64, Diag> {
        match &e.node {
            IExprKind::Lit(v) => Ok(*v),
            IExprKind::Var(name) => match self.lookup(name) {
                Some(ScopeEntry::Loop(v)) => Ok(*v),
                Some(ScopeEntry::Value { .. }) => Err(Diag::at(
                    e.span,
                    format!("`{name}` is a vector value, not a compile-time constant"),
                )),
                None => Err(Diag::at(
                    e.span,
                    format!("unknown constant `{name}` (only loop variables may appear here)"),
                )),
            },
            IExprKind::Neg(inner) => self
                .eval_iexpr(inner)?
                .checked_neg()
                .ok_or_else(|| Diag::at(e.span, "constant expression overflows")),
            IExprKind::Bin { op, lhs, rhs } => {
                let a = self.eval_iexpr(lhs)?;
                let b = self.eval_iexpr(rhs)?;
                let r = match op {
                    IOp::Add => a.checked_add(b),
                    IOp::Sub => a.checked_sub(b),
                    IOp::Mul => a.checked_mul(b),
                };
                r.ok_or_else(|| Diag::at(e.span, "constant expression overflows"))
            }
        }
    }

    /// Infers the element type of an expression without emitting IR, used
    /// to give literals a type from their context.
    fn infer_dtype(&self, e: &Expr) -> Option<DType> {
        match &e.node {
            ExprKind::Lit(_) => None,
            ExprKind::Ident(name) => match self.lookup(name) {
                Some(ScopeEntry::Value { dtype, .. }) => Some(*dtype),
                _ => self.param_index.get(name).map(|&i| self.params[i].dtype),
            },
            ExprKind::Load { buf, .. } => self.param_index.get(buf).map(|&i| self.params[i].dtype),
            ExprKind::Bin { lhs, rhs, .. } => {
                self.infer_dtype(lhs).or_else(|| self.infer_dtype(rhs))
            }
            ExprKind::Shift { value, .. } | ExprKind::Reduce { value, .. } => {
                self.infer_dtype(value)
            }
        }
    }

    /// Emits (or reuses) a splat of `source` under the current shape.
    fn splat(
        &mut self,
        key: SplatKey,
        source: SplatSource,
        dtype: DType,
        span: Span,
    ) -> Result<VReg, Diag> {
        let shape = self.current_shape(span)?.clone();
        if let Some(&v) = self.splats.get(&(key.clone(), shape.clone())) {
            return Ok(v);
        }
        let def = self.fresh();
        let op = IrOp::new(
            &Opcode::SetDup.assembly(dtype),
            Some(def),
            &[],
            dtype.bits(),
        )
        .with_sem(Sem {
            action: Action::Splat(source),
            shape: shape.clone(),
            dtype,
        });
        self.push_op(op, span)?;
        self.splats.insert((key, shape), def);
        Ok(def)
    }

    /// Resolves a mode list against the current shape; returns the stride
    /// modes, the CR strides, and the resolved element strides.
    #[allow(clippy::type_complexity)]
    fn resolve_modes(
        &self,
        modes: &[ModeExpr],
        span: Span,
    ) -> Result<(Vec<StrideMode>, Vec<(usize, i64)>, Vec<i64>), Diag> {
        let shape = self.current_shape(span)?;
        if modes.len() != shape.len() {
            return Err(Diag::at(
                span,
                format!(
                    "{} stride modes for a {}-dimensional shape",
                    modes.len(),
                    shape.len()
                ),
            ));
        }
        let mut out_modes = Vec::with_capacity(modes.len());
        let mut cr = Vec::new();
        for (d, m) in modes.iter().enumerate() {
            let mode = match m {
                ModeExpr::Seq => StrideMode::Seq,
                ModeExpr::Stride(e) => {
                    let v = self.eval_iexpr(e)?;
                    if v.abs() > MAX_STRIDE {
                        return Err(Diag::at(
                            e.span,
                            format!("stride {v} exceeds the ±{MAX_STRIDE} limit"),
                        ));
                    }
                    match v {
                        0 => StrideMode::Zero,
                        1 => StrideMode::One,
                        other => {
                            cr.push((d, other));
                            StrideMode::Cr
                        }
                    }
                }
            };
            out_modes.push(mode);
        }
        let strides = resolve_elem_strides(&out_modes, &cr, shape);
        Ok((out_modes, cr, strides))
    }

    /// The inclusive element range `[min, max]` a strided access touches.
    ///
    /// Computed in `i128`: strides and offsets are client-controlled, and
    /// this range *is* the safety argument — wrapping `i64` arithmetic
    /// here would let an engineered stride alias back into bounds.
    fn touched_range(&self, base: i64, strides: &[i64], shape: &[usize]) -> (i128, i128) {
        let (mut lo, mut hi) = (i128::from(base), i128::from(base));
        for (d, &s) in strides.iter().enumerate() {
            let span = i128::from(s) * (shape[d] as i128 - 1);
            if span > 0 {
                hi += span;
            } else {
                lo += span;
            }
        }
        (lo, hi)
    }

    fn check_bounds(
        &self,
        what: &str,
        buf: &str,
        len: usize,
        base: i64,
        strides: &[i64],
        span: Span,
    ) -> Result<(i64, i64), Diag> {
        let shape = self.current_shape(span)?;
        let (lo, hi) = self.touched_range(base, strides, shape);
        if lo < 0 || hi >= len as i128 {
            return Err(Diag::at(
                span,
                format!(
                    "{what} touches elements {lo}..={hi} of `{buf}`, outside its {len} elements"
                ),
            ));
        }
        // In-bounds ranges fit i64 by construction (len ≤ the memory
        // budget).
        Ok((lo as i64, hi as i64))
    }

    fn lower_expr(&mut self, e: &Expr, expected: Option<DType>) -> Result<(VReg, DType), Diag> {
        match &e.node {
            ExprKind::Ident(name) => {
                if let Some(entry) = self.lookup(name).cloned() {
                    match entry {
                        ScopeEntry::Value {
                            vreg,
                            dtype,
                            def_lanes,
                        } => {
                            if let Some(want) = expected {
                                if want != dtype {
                                    return Err(Diag::at(
                                        e.span,
                                        format!(
                                            "`{name}` has type {}, expected {}",
                                            dtype_name(dtype),
                                            dtype_name(want)
                                        ),
                                    ));
                                }
                            }
                            let total: usize = self.current_shape(e.span)?.iter().product();
                            if total > def_lanes {
                                return Err(Diag::at(
                                    e.span,
                                    format!(
                                        "`{name}` was defined under a {def_lanes}-lane shape but is \
                                         used under a {total}-lane shape"
                                    ),
                                ));
                            }
                            return Ok((vreg, dtype));
                        }
                        ScopeEntry::Loop(_) => {
                            return Err(Diag::at(
                                e.span,
                                format!(
                                    "loop variable `{name}` cannot appear in an element-wise \
                                     expression (use it in offsets, strides or shapes)"
                                ),
                            ));
                        }
                    }
                }
                let Some(&pi) = self.param_index.get(name) else {
                    return Err(Diag::at(e.span, format!("unknown value `{name}`")));
                };
                let p = &self.params[pi];
                match p.kind {
                    ParamKind::Scalar { .. } => {
                        let dtype = p.dtype;
                        if let Some(want) = expected {
                            if want != dtype {
                                return Err(Diag::at(
                                    e.span,
                                    format!(
                                        "scalar `{name}` has type {}, expected {}",
                                        dtype_name(dtype),
                                        dtype_name(want)
                                    ),
                                ));
                            }
                        }
                        let v =
                            self.splat(SplatKey::Param(pi), SplatSource::Param(pi), dtype, e.span)?;
                        Ok((v, dtype))
                    }
                    _ => Err(Diag::at(
                        e.span,
                        format!("buffer `{name}` must be read with `load {name} [...]`"),
                    )),
                }
            }
            ExprKind::Lit(lit) => {
                let Some(dtype) = expected else {
                    return Err(Diag::at(
                        e.span,
                        "cannot infer the element type of this literal; combine it with a typed \
                         value or parameter",
                    ));
                };
                let raw = encode_lit(lit, dtype, e.span)?;
                let v = self.splat(
                    SplatKey::Imm(raw, dtype),
                    SplatSource::Imm(raw),
                    dtype,
                    e.span,
                )?;
                Ok((v, dtype))
            }
            ExprKind::Load { buf, offset, modes } => {
                let Some(&pi) = self.param_index.get(buf) else {
                    return Err(Diag::at(e.span, format!("unknown buffer `{buf}`")));
                };
                let (len, dtype) = match &self.params[pi].kind {
                    ParamKind::BufIn { len } => (*len, self.params[pi].dtype),
                    ParamKind::BufOut { .. } => {
                        return Err(Diag::at(
                            e.span,
                            format!("`{buf}` is an output buffer; kernels may not read buffers they write"),
                        ));
                    }
                    ParamKind::Scalar { .. } => {
                        return Err(Diag::at(
                            e.span,
                            format!("`{buf}` is a scalar, not a buffer"),
                        ));
                    }
                };
                if let Some(want) = expected {
                    if want != dtype {
                        return Err(Diag::at(
                            e.span,
                            format!(
                                "`{buf}` holds {}, expected {}",
                                dtype_name(dtype),
                                dtype_name(want)
                            ),
                        ));
                    }
                }
                let base = match offset {
                    Some(off) => self.eval_iexpr(off)?,
                    None => 0,
                };
                let (out_modes, cr, strides) = self.resolve_modes(modes, e.span)?;
                self.check_bounds("load", buf, len, base, &strides, e.span)?;
                let shape = self.current_shape(e.span)?.clone();
                let def = self.fresh();
                let op = IrOp::new(
                    &Opcode::StridedLoad.assembly(dtype),
                    Some(def),
                    &[],
                    dtype.bits(),
                )
                .with_sem(Sem {
                    action: Action::Load {
                        param: pi,
                        elem_offset: base as u64,
                        modes: out_modes,
                        cr_strides: cr,
                    },
                    shape,
                    dtype,
                });
                self.push_op(op, e.span)?;
                Ok((def, dtype))
            }
            ExprKind::Bin { op, lhs, rhs } => {
                let dtype = expected
                    .or_else(|| self.infer_dtype(lhs))
                    .or_else(|| self.infer_dtype(rhs))
                    .ok_or_else(|| {
                        Diag::at(e.span, "cannot infer the element type of this expression")
                    })?;
                let (lv, _) = self.lower_expr(lhs, Some(dtype))?;
                let (rv, _) = self.lower_expr(rhs, Some(dtype))?;
                let (opcode, binop) = vop_to_isa(*op);
                let shape = self.current_shape(e.span)?.clone();
                let def = self.fresh();
                let ir = IrOp::new(&opcode.assembly(dtype), Some(def), &[lv, rv], dtype.bits())
                    .with_sem(Sem {
                        action: Action::Binop { opcode, op: binop },
                        shape,
                        dtype,
                    });
                self.push_op(ir, e.span)?;
                Ok((def, dtype))
            }
            ExprKind::Shift {
                left,
                value,
                amount,
            } => {
                let dtype = expected
                    .or_else(|| self.infer_dtype(value))
                    .ok_or_else(|| {
                        Diag::at(e.span, "cannot infer the element type of this expression")
                    })?;
                if dtype.is_float() {
                    return Err(Diag::at(
                        e.span,
                        format!("cannot shift {} values", dtype_name(dtype)),
                    ));
                }
                let (sv, _) = self.lower_expr(value, Some(dtype))?;
                let amt = self.eval_iexpr(amount)?;
                if amt < 0 || amt >= i64::from(dtype.bits()) {
                    return Err(Diag::at(
                        e.span,
                        format!(
                            "shift amount {amt} outside 0..{} for {}",
                            dtype.bits(),
                            dtype_name(dtype)
                        ),
                    ));
                }
                let shape = self.current_shape(e.span)?.clone();
                let def = self.fresh();
                let ir = IrOp::new(
                    &Opcode::ShiftImm.assembly(dtype),
                    Some(def),
                    &[sv],
                    dtype.bits(),
                )
                .with_sem(Sem {
                    action: Action::ShiftImm {
                        amount: amt as u32,
                        left: *left,
                    },
                    shape,
                    dtype,
                });
                self.push_op(ir, e.span)?;
                Ok((def, dtype))
            }
            ExprKind::Reduce { op, value } => {
                let dtype = expected
                    .or_else(|| self.infer_dtype(value))
                    .ok_or_else(|| {
                        Diag::at(e.span, "cannot infer the element type of this reduction")
                    })?;
                let (sv, _) = self.lower_expr(value, Some(dtype))?;
                let (_, binop) = reduce_to_binop(*op);
                let shape = self.current_shape(e.span)?.clone();
                let def = self.fresh();
                let name = format!(
                    "vreduce_{}",
                    match op {
                        ReduceOp::Add => "add",
                        ReduceOp::Min => "min",
                        ReduceOp::Max => "max",
                    }
                );
                let ir = IrOp::new(&name, Some(def), &[sv], dtype.bits()).with_sem(Sem {
                    action: Action::Reduce { op: binop },
                    shape,
                    dtype,
                });
                self.push_op(ir, e.span)?;
                Ok((def, dtype))
            }
        }
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<(), Diag> {
        match &stmt.node {
            StmtKind::Shape(dims) => {
                if dims.len() > MAX_DIMS {
                    return Err(Diag::at(
                        stmt.span,
                        format!("at most {MAX_DIMS} dimensions, got {}", dims.len()),
                    ));
                }
                let mut shape = Vec::with_capacity(dims.len());
                let mut total = 1usize;
                for d in dims {
                    let v = self.eval_iexpr(d)?;
                    // Each length is bounded before the (checked) running
                    // product, so a huge dimension can neither wrap the
                    // total nor sneak past the lane check.
                    if v < 1 || v as u128 > self.lanes as u128 {
                        return Err(Diag::at(
                            d.span,
                            format!(
                                "dimension length {v} outside 1..={} (the engine's lanes)",
                                self.lanes
                            ),
                        ));
                    }
                    shape.push(v as usize);
                    total = total
                        .checked_mul(v as usize)
                        .filter(|&t| t <= self.lanes)
                        .ok_or_else(|| {
                            Diag::at(
                                stmt.span,
                                format!("shape covers more lanes than the engine's {}", self.lanes),
                            )
                        })?;
                }
                self.shape = Some(shape);
                Ok(())
            }
            StmtKind::Let { name, value } => {
                if self.param_index.contains_key(name) {
                    return Err(Diag::at(
                        stmt.span,
                        format!("`{name}` is already a parameter"),
                    ));
                }
                let (vreg, dtype) = self.lower_expr(value, None)?;
                let def_lanes: usize = self.current_shape(stmt.span)?.iter().product();
                self.scopes
                    .last_mut()
                    .expect("scope stack never empty")
                    .insert(
                        name.clone(),
                        ScopeEntry::Value {
                            vreg,
                            dtype,
                            def_lanes,
                        },
                    );
                Ok(())
            }
            StmtKind::Store {
                value,
                buf,
                offset,
                modes,
            } => {
                let Some(&pi) = self.param_index.get(buf) else {
                    return Err(Diag::at(stmt.span, format!("unknown buffer `{buf}`")));
                };
                let (len, dtype) = match &self.params[pi].kind {
                    ParamKind::BufOut { len } => (*len, self.params[pi].dtype),
                    ParamKind::BufIn { .. } => {
                        return Err(Diag::at(
                            stmt.span,
                            format!("`{buf}` is an input buffer; declare it `mut buf<...>` to store into it"),
                        ));
                    }
                    ParamKind::Scalar { .. } => {
                        return Err(Diag::at(
                            stmt.span,
                            format!("`{buf}` is a scalar, not a buffer"),
                        ));
                    }
                };
                let (sv, _) = self.lower_expr(value, Some(dtype))?;
                let base = match offset {
                    Some(off) => self.eval_iexpr(off)?,
                    None => 0,
                };
                let (out_modes, cr, strides) = self.resolve_modes(modes, stmt.span)?;
                let (lo, hi) = self.check_bounds("store", buf, len, base, &strides, stmt.span)?;
                for (p, plo, phi, pspan) in &self.store_ranges {
                    if *p == pi && lo <= *phi && *plo <= hi {
                        return Err(Diag::at(
                            stmt.span,
                            format!(
                                "store overlaps the store to `{buf}` elements {plo}..={phi} at \
                                 line {} (stores must be disjoint — the scheduler may reorder them)",
                                pspan.line
                            ),
                        ));
                    }
                }
                self.store_ranges.push((pi, lo, hi, stmt.span));
                let shape = self.current_shape(stmt.span)?.clone();
                let ir = IrOp::new(
                    &Opcode::StridedStore.assembly(dtype),
                    None,
                    &[sv],
                    dtype.bits(),
                )
                .with_sem(Sem {
                    action: Action::Store {
                        param: pi,
                        elem_offset: base as u64,
                        modes: out_modes,
                        cr_strides: cr,
                    },
                    shape,
                    dtype,
                });
                self.push_op(ir, stmt.span)
            }
            StmtKind::For { var, lo, hi, body } => {
                let lo = self.eval_iexpr(lo)?;
                let hi = self.eval_iexpr(hi)?;
                if hi < lo {
                    return Err(Diag::at(
                        stmt.span,
                        format!("loop range {lo}..{hi} is empty or reversed"),
                    ));
                }
                for i in lo..hi {
                    let mut scope = HashMap::new();
                    scope.insert(var.clone(), ScopeEntry::Loop(i));
                    self.scopes.push(scope);
                    for st in body {
                        self.lower_stmt(st)?;
                    }
                    self.scopes.pop();
                }
                Ok(())
            }
        }
    }
}

/// Dead-code elimination: drop pure ops (anything with a def) whose value
/// never reaches a store, so register pressure reflects observable work.
fn eliminate_dead(ops: Vec<IrOp>) -> Vec<IrOp> {
    let mut live: Vec<bool> = ops.iter().map(|op| op.def.is_none()).collect();
    let mut needed: std::collections::HashSet<VReg> = ops
        .iter()
        .filter(|op| op.def.is_none())
        .flat_map(|op| op.uses.iter().copied())
        .collect();
    for (i, op) in ops.iter().enumerate().rev() {
        if let Some(d) = op.def {
            if needed.contains(&d) {
                live[i] = true;
                needed.extend(op.uses.iter().copied());
            }
        }
    }
    ops.into_iter()
        .zip(live)
        .filter_map(|(op, keep)| keep.then_some(op))
        .collect()
}

/// Lowers a parsed kernel to a [`Program`].
pub fn lower(ast: &KernelAst) -> Result<Program, Diag> {
    let mut params = Vec::with_capacity(ast.params.len());
    let mut param_index = HashMap::new();
    let mut buffer_bytes: u128 = 0;
    for (i, p) in ast.params.iter().enumerate() {
        if param_index.insert(p.name.clone(), i).is_some() {
            return Err(Diag::nowhere(format!("duplicate parameter `{}`", p.name)));
        }
        if let ParamTy::Buf { dtype, len, .. } = &p.ty {
            buffer_bytes += *len as u128 * u128::from(dtype.bytes());
            if buffer_bytes > MAX_BUFFER_BYTES {
                return Err(Diag::nowhere(format!(
                    "buffer parameters exceed the {} MiB functional-memory budget at `{}`",
                    MAX_BUFFER_BYTES >> 20,
                    p.name
                )));
            }
        }
        let decl = match &p.ty {
            ParamTy::Scalar(dtype) => {
                let default = match &p.default {
                    Some(lit) => Some(encode_lit(lit, *dtype, Span::NONE)?),
                    None => None,
                };
                ParamDecl {
                    name: p.name.clone(),
                    dtype: *dtype,
                    kind: ParamKind::Scalar { default },
                }
            }
            ParamTy::Buf { dtype, len, out } => {
                if p.default.is_some() {
                    return Err(Diag::nowhere(format!(
                        "buffer parameter `{}` cannot have a default",
                        p.name
                    )));
                }
                ParamDecl {
                    name: p.name.clone(),
                    dtype: *dtype,
                    kind: if *out {
                        ParamKind::BufOut { len: *len }
                    } else {
                        ParamKind::BufIn { len: *len }
                    },
                }
            }
        };
        params.push(decl);
    }
    let mut lw = Lowerer {
        params,
        param_index,
        ops: Vec::new(),
        next_vreg: 0,
        shape: None,
        scopes: vec![HashMap::new()],
        splats: HashMap::new(),
        store_ranges: Vec::new(),
        lanes: EngineGeometry::default().total_bitlines(),
    };
    for stmt in &ast.body {
        lw.lower_stmt(stmt)?;
    }
    let ops = eliminate_dead(lw.ops);
    if !ops.iter().any(|op| op.def.is_none()) {
        return Err(Diag::nowhere(
            "kernel stores nothing — it has no observable effect",
        ));
    }
    Ok(Program {
        name: ast.name.clone(),
        params: lw.params,
        ops,
    })
}
