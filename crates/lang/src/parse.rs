//! Recursive-descent parser for `.mvel` kernels.
//!
//! Grammar (one kernel per file; `#` comments; keywords `kernel`, `buf`,
//! `mut`, `let`, `store`, `for`, `in`, `shape`, `load`, `reduce`, `seq`,
//! `min`, `max` are reserved):
//!
//! ```text
//! kernel  := "kernel" IDENT "(" param ("," param)* ")" "{" stmt* "}"
//! param   := IDENT ":" ( dtype ("=" literal)?
//!                      | ("mut")? "buf" "<" dtype ">" "[" INT "]" )
//! stmt    := "shape" "[" iexpr ("," iexpr)* "]" ";"
//!          | "let" IDENT "=" expr ";"
//!          | "store" expr "->" IDENT ("@" iexpr)? modes ";"
//!          | "for" IDENT "in" iatom ".. " iatom "{" stmt* "}"
//! modes   := "[" mode ("," mode)* "]"      mode := "seq" | iexpr
//! expr    := bitor                          (precedence, low → high)
//! bitor   := addsub (("&"|"|"|"^") addsub)*
//! addsub  := muldiv (("+"|"-") muldiv)*
//! muldiv  := shift ("*" shift)*
//! shift   := atom (("<<"|">>") iatom)*
//! atom    := literal | "-" literal | IDENT | "min"/"max" "(" expr "," expr ")"
//!          | "load" IDENT ("@" iexpr)? modes
//!          | "reduce" ("add"|"min"|"max") "(" expr ")" | "(" expr ")"
//! iexpr   := iadd                           iadd := imul (("+"|"-") imul)*
//! imul    := iatom ("*" iatom)*             iatom := INT | IDENT | "-" iatom | "(" iexpr ")"
//! ```

use crate::ast::*;
use crate::diag::{Diag, Span, Spanned};
use crate::lex::{lex, Tok, Token};

const KEYWORDS: &[&str] = &[
    "kernel", "buf", "mut", "let", "store", "for", "in", "shape", "load", "reduce", "seq", "min",
    "max",
];

/// Maximum paren/call/reduce nesting inside one expression. Recursive
/// descent (and the recursive lowering/interpretation that follows)
/// burns stack per level; a stack overflow aborts the process — no
/// `catch_unwind` — so hostile depth must be a diagnostic.
pub const MAX_EXPR_DEPTH: usize = 64;

/// Maximum nodes in one expression (operator chains parse iteratively
/// but build a left-deep tree the lowering recurses over).
pub const MAX_EXPR_NODES: usize = 2048;

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    /// Current paren/call nesting inside the statement being parsed.
    depth: usize,
    /// Nodes built for the expression(s) of the current statement.
    nodes: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.pos]
    }

    fn span(&self) -> Span {
        self.peek().span
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if &self.peek().tok == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<Span, Diag> {
        let t = self.peek().clone();
        if t.tok == tok {
            self.bump();
            Ok(t.span)
        } else {
            Err(Diag::at(
                t.span,
                format!("expected {tok} {what}, found {}", t.tok),
            ))
        }
    }

    /// Accepts a keyword spelled as an identifier.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(&self.peek().tok, Tok::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<Span, Diag> {
        let t = self.peek().clone();
        if self.eat_kw(kw) {
            Ok(t.span)
        } else {
            Err(Diag::at(
                t.span,
                format!("expected keyword `{kw}`, found {}", t.tok),
            ))
        }
    }

    /// Accounts one expression node against the per-statement budget.
    fn node(&mut self, span: Span) -> Result<(), Diag> {
        self.nodes += 1;
        if self.nodes > MAX_EXPR_NODES {
            return Err(Diag::at(
                span,
                format!(
                    "expression exceeds {MAX_EXPR_NODES} nodes; split it across `let` bindings"
                ),
            ));
        }
        Ok(())
    }

    /// Enters one nesting level (parens, min/max, reduce).
    fn descend(&mut self, span: Span) -> Result<(), Diag> {
        self.depth += 1;
        if self.depth > MAX_EXPR_DEPTH {
            return Err(Diag::at(
                span,
                format!("expression nesting exceeds {MAX_EXPR_DEPTH} levels"),
            ));
        }
        Ok(())
    }

    fn ascend(&mut self) {
        self.depth -= 1;
    }

    /// A non-keyword identifier.
    fn ident(&mut self, what: &str) -> Result<(String, Span), Diag> {
        let t = self.peek().clone();
        match t.tok {
            Tok::Ident(s) if !KEYWORDS.contains(&s.as_str()) => {
                self.bump();
                Ok((s, t.span))
            }
            Tok::Ident(s) => Err(Diag::at(
                t.span,
                format!("`{s}` is a reserved keyword and cannot name {what}"),
            )),
            other => Err(Diag::at(
                t.span,
                format!("expected an identifier ({what}), found {other}"),
            )),
        }
    }

    fn iatom(&mut self) -> Result<IExpr, Diag> {
        let t = self.peek().clone();
        match t.tok {
            Tok::Int(v) => {
                self.bump();
                self.node(t.span)?;
                Ok(Spanned::new(IExprKind::Lit(v), t.span))
            }
            Tok::Minus => {
                self.bump();
                self.node(t.span)?;
                self.descend(t.span)?;
                let inner = self.iatom()?;
                self.ascend();
                Ok(Spanned::new(IExprKind::Neg(Box::new(inner)), t.span))
            }
            Tok::LParen => {
                self.bump();
                self.descend(t.span)?;
                let e = self.iexpr()?;
                self.ascend();
                self.expect(Tok::RParen, "to close the expression")?;
                Ok(e)
            }
            Tok::Ident(_) => {
                let (name, span) = self.ident("a loop variable")?;
                self.node(span)?;
                Ok(Spanned::new(IExprKind::Var(name), span))
            }
            other => Err(Diag::at(
                t.span,
                format!("expected a constant integer expression, found {other}"),
            )),
        }
    }

    fn imul(&mut self) -> Result<IExpr, Diag> {
        let mut lhs = self.iatom()?;
        while self.peek().tok == Tok::Star {
            let span = self.bump().span;
            self.node(span)?;
            let rhs = self.iatom()?;
            lhs = Spanned::new(
                IExprKind::Bin {
                    op: IOp::Mul,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn iexpr(&mut self) -> Result<IExpr, Diag> {
        let mut lhs = self.imul()?;
        loop {
            let op = match self.peek().tok {
                Tok::Plus => IOp::Add,
                Tok::Minus => IOp::Sub,
                _ => break,
            };
            let span = self.bump().span;
            self.node(span)?;
            let rhs = self.imul()?;
            lhs = Spanned::new(
                IExprKind::Bin {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn modes(&mut self) -> Result<Vec<ModeExpr>, Diag> {
        self.expect(Tok::LBracket, "to open the stride-mode list")?;
        let mut modes = Vec::new();
        loop {
            if self.eat_kw("seq") {
                modes.push(ModeExpr::Seq);
            } else {
                modes.push(ModeExpr::Stride(self.iexpr()?));
            }
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(Tok::RBracket, "to close the stride-mode list")?;
        Ok(modes)
    }

    fn atom(&mut self) -> Result<Expr, Diag> {
        let t = self.peek().clone();
        match &t.tok {
            Tok::Int(v) => {
                let v = *v;
                self.bump();
                self.node(t.span)?;
                Ok(Spanned::new(ExprKind::Lit(Lit::Int(v)), t.span))
            }
            Tok::Float(v) => {
                let v = *v;
                self.bump();
                self.node(t.span)?;
                Ok(Spanned::new(ExprKind::Lit(Lit::Float(v)), t.span))
            }
            Tok::Minus => {
                self.bump();
                let n = self.peek().clone();
                match n.tok {
                    Tok::Int(v) => {
                        self.bump();
                        self.node(t.span)?;
                        Ok(Spanned::new(ExprKind::Lit(Lit::Int(-v)), t.span))
                    }
                    Tok::Float(v) => {
                        self.bump();
                        self.node(t.span)?;
                        Ok(Spanned::new(ExprKind::Lit(Lit::Float(-v)), t.span))
                    }
                    other => Err(Diag::at(
                        n.span,
                        format!("`-` must be followed by a numeric literal here, found {other}"),
                    )),
                }
            }
            Tok::LParen => {
                self.bump();
                self.descend(t.span)?;
                let e = self.expr()?;
                self.ascend();
                self.expect(Tok::RParen, "to close the expression")?;
                Ok(e)
            }
            Tok::Ident(s) if s == "load" => {
                self.bump();
                let (buf, _) = self.ident("a buffer parameter")?;
                let offset = if self.eat(&Tok::At) {
                    Some(self.iexpr()?)
                } else {
                    None
                };
                let modes = self.modes()?;
                self.node(t.span)?;
                Ok(Spanned::new(ExprKind::Load { buf, offset, modes }, t.span))
            }
            Tok::Ident(s) if s == "reduce" => {
                self.bump();
                let op = if self.eat_kw("add") {
                    ReduceOp::Add
                } else if self.eat_kw("min") {
                    ReduceOp::Min
                } else if self.eat_kw("max") {
                    ReduceOp::Max
                } else {
                    return Err(Diag::at(
                        self.span(),
                        format!(
                            "expected `add`, `min` or `max` after `reduce`, found {}",
                            self.peek().tok
                        ),
                    ));
                };
                self.node(t.span)?;
                self.expect(Tok::LParen, "to open the reduce operand")?;
                self.descend(t.span)?;
                let value = self.expr()?;
                self.ascend();
                self.expect(Tok::RParen, "to close the reduce operand")?;
                Ok(Spanned::new(
                    ExprKind::Reduce {
                        op,
                        value: Box::new(value),
                    },
                    t.span,
                ))
            }
            Tok::Ident(s) if s == "min" || s == "max" => {
                let op = if s == "min" { VOp::Min } else { VOp::Max };
                self.bump();
                self.node(t.span)?;
                self.expect(Tok::LParen, "to open the min/max arguments")?;
                self.descend(t.span)?;
                let lhs = self.expr()?;
                self.expect(Tok::Comma, "between the min/max arguments")?;
                let rhs = self.expr()?;
                self.ascend();
                self.expect(Tok::RParen, "to close the min/max arguments")?;
                Ok(Spanned::new(
                    ExprKind::Bin {
                        op,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    },
                    t.span,
                ))
            }
            Tok::Ident(_) => {
                let (name, span) = self.ident("a value")?;
                self.node(span)?;
                Ok(Spanned::new(ExprKind::Ident(name), span))
            }
            other => Err(Diag::at(
                t.span,
                format!("expected an expression, found {other}"),
            )),
        }
    }

    fn shift(&mut self) -> Result<Expr, Diag> {
        let mut lhs = self.atom()?;
        loop {
            let left = match self.peek().tok {
                Tok::Shl => true,
                Tok::Shr => false,
                _ => break,
            };
            let span = self.bump().span;
            self.node(span)?;
            let amount = self.iatom()?;
            lhs = Spanned::new(
                ExprKind::Shift {
                    left,
                    value: Box::new(lhs),
                    amount,
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn muldiv(&mut self) -> Result<Expr, Diag> {
        let mut lhs = self.shift()?;
        while self.peek().tok == Tok::Star {
            let span = self.bump().span;
            self.node(span)?;
            let rhs = self.shift()?;
            lhs = Spanned::new(
                ExprKind::Bin {
                    op: VOp::Mul,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn addsub(&mut self) -> Result<Expr, Diag> {
        let mut lhs = self.muldiv()?;
        loop {
            let op = match self.peek().tok {
                Tok::Plus => VOp::Add,
                Tok::Minus => VOp::Sub,
                _ => break,
            };
            let span = self.bump().span;
            self.node(span)?;
            let rhs = self.muldiv()?;
            lhs = Spanned::new(
                ExprKind::Bin {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn expr(&mut self) -> Result<Expr, Diag> {
        let mut lhs = self.addsub()?;
        loop {
            let op = match self.peek().tok {
                Tok::Amp => VOp::And,
                Tok::Pipe => VOp::Or,
                Tok::Caret => VOp::Xor,
                _ => break,
            };
            let span = self.bump().span;
            self.node(span)?;
            let rhs = self.addsub()?;
            lhs = Spanned::new(
                ExprKind::Bin {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn stmt(&mut self) -> Result<Stmt, Diag> {
        self.depth = 0;
        self.nodes = 0;
        let t = self.peek().clone();
        if self.eat_kw("shape") {
            self.expect(Tok::LBracket, "to open the shape dimensions")?;
            let mut dims = vec![self.iexpr()?];
            while self.eat(&Tok::Comma) {
                dims.push(self.iexpr()?);
            }
            self.expect(Tok::RBracket, "to close the shape dimensions")?;
            self.expect(Tok::Semi, "after the shape statement")?;
            return Ok(Spanned::new(StmtKind::Shape(dims), t.span));
        }
        if self.eat_kw("let") {
            let (name, _) = self.ident("a binding")?;
            self.expect(Tok::Eq, "after the binding name")?;
            let value = self.expr()?;
            self.expect(Tok::Semi, "after the let statement")?;
            return Ok(Spanned::new(StmtKind::Let { name, value }, t.span));
        }
        if self.eat_kw("store") {
            let value = self.expr()?;
            self.expect(Tok::Arrow, "between the stored value and its buffer")?;
            let (buf, _) = self.ident("a buffer parameter")?;
            let offset = if self.eat(&Tok::At) {
                Some(self.iexpr()?)
            } else {
                None
            };
            let modes = self.modes()?;
            self.expect(Tok::Semi, "after the store statement")?;
            return Ok(Spanned::new(
                StmtKind::Store {
                    value,
                    buf,
                    offset,
                    modes,
                },
                t.span,
            ));
        }
        if self.eat_kw("for") {
            let (var, _) = self.ident("a loop variable")?;
            self.expect_kw("in")?;
            let lo = self.iatom()?;
            self.expect(Tok::DotDot, "in the loop range")?;
            let hi = self.iatom()?;
            self.expect(Tok::LBrace, "to open the loop body")?;
            let mut body = Vec::new();
            while !self.eat(&Tok::RBrace) {
                if self.peek().tok == Tok::Eof {
                    return Err(Diag::at(self.span(), "unclosed loop body"));
                }
                body.push(self.stmt()?);
            }
            return Ok(Spanned::new(StmtKind::For { var, lo, hi, body }, t.span));
        }
        Err(Diag::at(
            t.span,
            format!(
                "expected a statement (`shape`, `let`, `store` or `for`), found {}",
                t.tok
            ),
        ))
    }

    fn param(&mut self) -> Result<Param, Diag> {
        let (name, _) = self.ident("a parameter")?;
        self.expect(Tok::Colon, "after the parameter name")?;
        let out = self.eat_kw("mut");
        if self.eat_kw("buf") {
            self.expect(Tok::Lt, "after `buf`")?;
            let (ty_name, ty_span) = match self.bump() {
                Token {
                    tok: Tok::Ident(s),
                    span,
                } => (s, span),
                t => {
                    return Err(Diag::at(
                        t.span,
                        format!("expected an element type, found {}", t.tok),
                    ))
                }
            };
            let dtype = dtype_from_name(&ty_name)
                .ok_or_else(|| Diag::at(ty_span, format!("unknown element type `{ty_name}`")))?;
            self.expect(Tok::Gt, "after the element type")?;
            self.expect(Tok::LBracket, "to open the buffer length")?;
            let (len, len_span) = match self.bump() {
                Token {
                    tok: Tok::Int(v),
                    span,
                } => (v, span),
                t => {
                    return Err(Diag::at(
                        t.span,
                        format!("expected the buffer length, found {}", t.tok),
                    ))
                }
            };
            if len <= 0 {
                return Err(Diag::at(len_span, "buffer length must be positive"));
            }
            self.expect(Tok::RBracket, "to close the buffer length")?;
            return Ok(Param {
                name,
                ty: ParamTy::Buf {
                    dtype,
                    len: len as usize,
                    out,
                },
                default: None,
            });
        }
        if out {
            return Err(Diag::at(
                self.span(),
                "`mut` only applies to buffer parameters",
            ));
        }
        let (ty_name, ty_span) = match self.bump() {
            Token {
                tok: Tok::Ident(s),
                span,
            } => (s, span),
            t => {
                return Err(Diag::at(
                    t.span,
                    format!("expected a parameter type, found {}", t.tok),
                ))
            }
        };
        let dtype = dtype_from_name(&ty_name)
            .ok_or_else(|| Diag::at(ty_span, format!("unknown type `{ty_name}`")))?;
        let default = if self.eat(&Tok::Eq) {
            let t = self.bump();
            Some(match t.tok {
                Tok::Int(v) => Lit::Int(v),
                Tok::Float(v) => Lit::Float(v),
                Tok::Minus => match self.bump() {
                    Token {
                        tok: Tok::Int(v), ..
                    } => Lit::Int(-v),
                    Token {
                        tok: Tok::Float(v), ..
                    } => Lit::Float(-v),
                    t => {
                        return Err(Diag::at(
                            t.span,
                            format!("expected a numeric default, found {}", t.tok),
                        ))
                    }
                },
                other => {
                    return Err(Diag::at(
                        t.span,
                        format!("expected a numeric default, found {other}"),
                    ))
                }
            })
        } else {
            None
        };
        Ok(Param {
            name,
            ty: ParamTy::Scalar(dtype),
            default,
        })
    }

    fn kernel(&mut self) -> Result<KernelAst, Diag> {
        self.expect_kw("kernel")?;
        let (name, _) = self.ident("the kernel")?;
        self.expect(Tok::LParen, "to open the parameter list")?;
        let mut params = Vec::new();
        if self.peek().tok != Tok::RParen {
            params.push(self.param()?);
            while self.eat(&Tok::Comma) {
                params.push(self.param()?);
            }
        }
        self.expect(Tok::RParen, "to close the parameter list")?;
        self.expect(Tok::LBrace, "to open the kernel body")?;
        let mut body = Vec::new();
        while !self.eat(&Tok::RBrace) {
            if self.peek().tok == Tok::Eof {
                return Err(Diag::at(self.span(), "unclosed kernel body"));
            }
            body.push(self.stmt()?);
        }
        Ok(KernelAst { name, params, body })
    }
}

/// Parses one `.mvel` kernel.
pub fn parse(source: &str) -> Result<KernelAst, Diag> {
    parse_tokens(lex(source)?)
}

/// Parses an already-lexed token stream — the split lets callers time the
/// lex and parse phases independently (`mve_lang::compile_timed`).
pub fn parse_tokens(toks: Vec<Token>) -> Result<KernelAst, Diag> {
    let mut p = Parser {
        toks,
        pos: 0,
        depth: 0,
        nodes: 0,
    };
    let k = p.kernel()?;
    if p.peek().tok != Tok::Eof {
        return Err(Diag::at(
            p.span(),
            format!("trailing input after the kernel: {}", p.peek().tok),
        ));
    }
    Ok(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::pretty;

    const DOT: &str = r#"
# inner product
kernel dot(x: buf<i32>[8192], y: buf<i32>[8192], out: mut buf<i32>[1]) {
    shape [8192];
    let xv = load x [1];
    let yv = load y [1];
    let s = reduce add (xv * yv);
    shape [1];
    store s -> out [1];
}
"#;

    #[test]
    fn parses_dot_and_round_trips() {
        let k = parse(DOT).unwrap();
        assert_eq!(k.name, "dot");
        assert_eq!(k.params.len(), 3);
        assert_eq!(k.body.len(), 6);
        let printed = pretty(&k);
        let again = parse(&printed).unwrap();
        assert_eq!(k, again, "\n{printed}");
    }

    #[test]
    fn parses_for_loops_strides_and_defaults() {
        let src = r#"
kernel saxpy(a: f32 = 2.5, x: buf<f32>[4096], out: mut buf<f32>[4096]) {
    shape [1024, 2];
    for i in 0..2 {
        let xv = load x @ i * 2048 [1, seq];
        store xv * a -> out @ i * 2048 [1, 1024];
    }
}
"#;
        let k = parse(src).unwrap();
        let printed = pretty(&k);
        assert_eq!(parse(&printed).unwrap(), k, "\n{printed}");
        match &k.params[0].default {
            Some(Lit::Float(v)) => assert_eq!(*v, 2.5),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_carry_line_and_column() {
        let err = parse("kernel k() {\n    let = 3;\n}").unwrap_err();
        assert_eq!(err.span.line, 2);
        assert!(err.message.contains("identifier"), "{err}");
        let err = parse("kernel k() { store 1 -> out [1] }").unwrap_err();
        assert!(err.message.contains("`;`"), "{err}");
    }

    #[test]
    fn keywords_cannot_name_things() {
        let err = parse("kernel k(load: i32) {}").unwrap_err();
        assert!(err.message.contains("reserved"), "{err}");
    }

    #[test]
    fn operator_precedence_is_bitwise_add_mul_shift() {
        let k = parse("kernel k(o: mut buf<i32>[4]) { shape [4]; store 1 + 2 * 3 & 4 -> o [1]; }")
            .unwrap();
        let printed = pretty(&k);
        // Canonical printing keeps the structure without redundant parens.
        assert!(
            printed.contains("store 1 + 2 * 3 & 4 -> o [1];"),
            "{printed}"
        );
        assert_eq!(parse(&printed).unwrap(), k);
    }
}
