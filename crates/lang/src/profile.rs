//! Per-source-line kernel profiling.
//!
//! [`profile_lines`] compiles a `.mvel` kernel, executes it with
//! deterministic bindings and [`Executor::set_line_markers`] on, and
//! aggregates every observable quantity per source line: engine events,
//! scalar instructions, active lanes, touched cache lines, simulated
//! cycles (via [`mve_core::sim::simulate_lines`]'s frontier sampling)
//! and allocator-inserted spill traffic (statically, from the spans the
//! spill ops inherited). [`render_annotated`] turns the report into the
//! deterministic `perf annotate`-style text artefact the serve `profile`
//! op, `mve-client profile` and the committed corpus goldens all share.
//!
//! The load-bearing invariant is **conservation**: per-line counts sum
//! exactly to the per-class totals the ordinary profile reports. Events
//! emitted outside any source line (engine-construction `vsetwidth`)
//! land in the line-0 `<toplevel>` bucket, never dropped.
//! [`profile_lines`] re-checks the invariant on every call and fails
//! loudly rather than returning a report that lies.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::diag::Diag;
use crate::eval::interpret;
use crate::run::{compare_outputs, compile, Bindings, Executor};
use mve_core::compiler::{SPILL_RELOAD, SPILL_STORE};
use mve_core::profile::ProfilingSink;
use mve_core::sim::{simulate_lines, SimConfig};

/// Everything attributed to one source line (line 0 = `<toplevel>`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LineStat {
    /// 1-based source line; 0 = `<toplevel>` (unattributed events).
    pub line: u32,
    /// Vector engine events (config + move + mem + arithmetic).
    pub events: u64,
    /// Dynamic scalar instructions.
    pub scalar_instrs: u64,
    /// Sum of active SIMD lanes across compute/memory events.
    pub active_lanes: u64,
    /// Deduplicated cache lines touched.
    pub cache_lines: u64,
    /// Simulated cycles attributed to this line.
    pub cycles: u64,
    /// Allocator-inserted `spill.store` ops whose pressure this line caused.
    pub spill_stores: u64,
    /// Allocator-inserted `spill.reload` ops reloading for this line.
    pub reloads: u64,
}

/// A per-source-line profile of one kernel under one timing config.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineReport {
    /// Kernel name from the source.
    pub name: String,
    /// FNV-1a digest of the source (same as the compile artefact).
    pub source_digest: u64,
    /// Total simulated cycles (equals the per-line sum, by invariant).
    pub total_cycles: u64,
    /// Per-line rows in ascending line order; `<toplevel>` (line 0)
    /// first when present.
    pub lines: Vec<LineStat>,
}

impl LineReport {
    /// Column-wise totals over every row — by the conservation
    /// invariant these equal the unattributed per-class totals.
    pub fn totals(&self) -> LineStat {
        let mut t = LineStat::default();
        for l in &self.lines {
            t.events += l.events;
            t.scalar_instrs += l.scalar_instrs;
            t.active_lanes += l.active_lanes;
            t.cache_lines += l.cache_lines;
            t.cycles += l.cycles;
            t.spill_stores += l.spill_stores;
            t.reloads += l.reloads;
        }
        t
    }
}

/// Compiles `source`, runs it with line markers, and returns the
/// per-line attribution under `cfg`. The run is checked against the
/// reference interpreter and the conservation invariant is re-verified
/// before the report is returned; either failure is a hard error.
pub fn profile_lines(source: &str, cfg: &SimConfig) -> Result<LineReport, Diag> {
    let ck = compile(source)?;
    let bindings = Bindings::deterministic(&ck.program);
    let mut ex = Executor::with_geometry(&ck, &bindings, cfg.geometry)?;
    ex.set_line_markers(true);
    ex.run();
    let want = interpret(&ck.ast, &ck.program.params, &bindings);
    let check = compare_outputs(&ex.outputs(), &want);
    if check.mismatches != 0 {
        return Err(Diag::nowhere(format!(
            "internal consistency failure: compiled kernel diverges from the reference \
             interpreter on {} of {} elements",
            check.mismatches, check.compared
        )));
    }
    let trace = ex.engine_mut().take_trace();

    // Counts: replay into the profiling sink (the markers in the trace
    // drive its per-line buckets) and re-check conservation against the
    // per-class totals it aggregates alongside.
    let mut sink = ProfilingSink::new();
    trace.replay_into(&mut sink);
    if let Some(q) = sink.conservation_violation() {
        return Err(Diag::nowhere(format!(
            "per-line profile conservation violated for `{q}`: line sums diverge from \
             class totals"
        )));
    }

    // Cycles: frontier-sampled attribution; telescopes to the total.
    let (report, cycles) = simulate_lines(&trace, cfg);

    // Spill traffic: static, from the spans the allocator's spill ops
    // inherited (the code is straight-line — each op executes once).
    let mut spill_stores: BTreeMap<u32, u64> = BTreeMap::new();
    let mut reloads: BTreeMap<u32, u64> = BTreeMap::new();
    for op in &ck.code {
        if op.name == SPILL_STORE {
            *spill_stores.entry(op.span.line).or_insert(0) += 1;
        } else if op.name == SPILL_RELOAD {
            *reloads.entry(op.span.line).or_insert(0) += 1;
        }
    }

    let mut rows: BTreeMap<u32, LineStat> = BTreeMap::new();
    fn row(rows: &mut BTreeMap<u32, LineStat>, line: u32) -> &mut LineStat {
        rows.entry(line).or_insert_with(|| LineStat {
            line,
            ..LineStat::default()
        })
    }
    for (&line, p) in sink.lines() {
        let r = row(&mut rows, line);
        r.events = p.events;
        r.scalar_instrs = p.scalar_instrs;
        r.active_lanes = p.active_lanes;
        r.cache_lines = p.cache_lines;
    }
    for (&line, &c) in &cycles {
        row(&mut rows, line).cycles = c;
    }
    for (&line, &n) in &spill_stores {
        row(&mut rows, line).spill_stores = n;
    }
    for (&line, &n) in &reloads {
        row(&mut rows, line).reloads = n;
    }

    let out = LineReport {
        name: ck.program.name.clone(),
        source_digest: ck.source_digest,
        total_cycles: report.total_cycles,
        lines: rows.into_values().collect(),
    };
    let t = out.totals();
    if t.cycles != report.total_cycles
        || t.spill_stores != ck.spill_stores as u64
        || t.reloads != ck.reloads as u64
    {
        return Err(Diag::nowhere(
            "per-line profile conservation violated: cycle or spill sums diverge from totals"
                .to_owned(),
        ));
    }
    Ok(out)
}

/// Renders a [`LineReport`] over its source as a deterministic
/// `perf annotate`-style listing: every source line annotated with its
/// cycle share, instruction counts, and spill traffic; the `<toplevel>`
/// bucket listed first. Counts and simulated cycles only — no
/// wall-clock — so the bytes are stable across runs and machines and
/// can be committed as goldens and cached by the daemon.
pub fn render_annotated(source: &str, report: &LineReport) -> String {
    let mut s = String::new();
    let t = report.totals();
    let _ = writeln!(
        s,
        "mvel per-line profile `{}` — compiled by mve-lang",
        report.name
    );
    let _ = writeln!(s, "digest: {:#018x}", report.source_digest);
    let _ = writeln!(
        s,
        "total: cycles={} events={} scalar={} spill_stores={} reloads={}",
        report.total_cycles, t.events, t.scalar_instrs, t.spill_stores, t.reloads
    );
    let _ = writeln!(
        s,
        " cycle%    cycles   events   scalar  spst  spld  line  source"
    );
    let by_line: BTreeMap<u32, &LineStat> = report.lines.iter().map(|l| (l.line, l)).collect();
    let mut render_row = |stat: Option<&LineStat>, line: u32, text: &str| {
        let z = LineStat::default();
        let l = stat.unwrap_or(&z);
        // Fixed-point percentage (2 decimals, round-half-up) keeps the
        // bytes independent of float formatting.
        let pct_x100 = (l.cycles * 10_000 + report.total_cycles / 2)
            .checked_div(report.total_cycles)
            .unwrap_or(0);
        let label = if line == 0 {
            "    -".to_owned()
        } else {
            format!("{line:>5}")
        };
        let _ = writeln!(
            s,
            "{:>4}.{:02}% {:>9} {:>8} {:>8} {:>5} {:>5} {label}  {text}",
            pct_x100 / 100,
            pct_x100 % 100,
            l.cycles,
            l.events,
            l.scalar_instrs,
            l.spill_stores,
            l.reloads,
        );
    };
    if let Some(top) = by_line.get(&0) {
        render_row(Some(top), 0, "<toplevel>");
    }
    for (i, text) in source.lines().enumerate() {
        let line = (i + 1) as u32;
        render_row(by_line.get(&line).copied(), line, text);
    }
    s
}

/// [`profile_lines`] + [`render_annotated`] in one call — the bytes the
/// serve `profile` op and `mve-client profile` print.
pub fn profile_and_render(source: &str, cfg: &SimConfig) -> Result<(String, LineReport), Diag> {
    let report = profile_lines(source, cfg)?;
    let text = render_annotated(source, &report);
    Ok((text, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAXPY: &str = "kernel saxpy(a: i32, x: buf<i32>[8192], y: buf<i32>[8192], \
                         out: mut buf<i32>[8192]) {\n\
                             shape [8192];\n\
                             let xv = load x [1];\n\
                             let yv = load y [1];\n\
                             store xv * a + yv -> out [1];\n\
                         }\n";

    #[test]
    fn per_line_sums_conserve_and_attribute_loads() {
        let cfg = SimConfig::default();
        let report = profile_lines(SAXPY, &cfg).expect("profiles");
        let t = report.totals();
        assert_eq!(t.cycles, report.total_cycles);
        assert!(t.events > 0);
        // Lines 3 and 4 are the loads; both must carry memory traffic.
        for line in [3u32, 4] {
            let l = report
                .lines
                .iter()
                .find(|l| l.line == line)
                .unwrap_or_else(|| panic!("line {line} missing"));
            assert!(l.cache_lines > 0, "line {line}: {l:?}");
            assert!(l.cycles > 0, "line {line}: {l:?}");
        }
        // Construction-time vsetwidth lands in `<toplevel>`, not dropped.
        let top = report.lines.iter().find(|l| l.line == 0).expect("toplevel");
        assert!(top.events > 0);
    }

    #[test]
    fn annotated_render_is_deterministic_and_total_line_is_exact() {
        let cfg = SimConfig::default();
        let (a, report) = profile_and_render(SAXPY, &cfg).expect("profiles");
        let (b, _) = profile_and_render(SAXPY, &cfg).expect("profiles");
        assert_eq!(a, b);
        assert!(a.contains("<toplevel>"));
        assert!(a.contains(&format!("total: cycles={}", report.total_cycles)));
        // Every source line appears in the listing.
        for text in SAXPY.lines() {
            assert!(a.contains(text.trim_end()), "missing {text:?}");
        }
    }

    #[test]
    fn markers_change_nothing_observable() {
        use crate::run::compile_and_render;
        // The golden render path (no markers) and a marked run must agree
        // on totals: markers are free.
        let cfg = SimConfig::default();
        let rendered = compile_and_render(SAXPY, &cfg).expect("renders");
        let report = profile_lines(SAXPY, &cfg).expect("profiles");
        let cycles_line = rendered
            .lines()
            .find(|l| l.starts_with("cycles: total="))
            .expect("cycles line");
        let total: u64 = cycles_line
            .trim_start_matches("cycles: total=")
            .split_whitespace()
            .next()
            .expect("total field")
            .parse()
            .expect("numeric total");
        assert_eq!(total, report.total_cycles);
    }
}
