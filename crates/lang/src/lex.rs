//! The `.mvel` lexer: hand-rolled, std-only (like the service's JSON
//! reader), producing spanned tokens for the recursive-descent parser.
//!
//! `#` starts a comment running to end of line. Integer literals are
//! decimal or `0x` hex; float literals require a decimal point and accept
//! an optional exponent (`1.5`, `2.0e-3`) so `{:?}`-printed `f64`s from
//! the pretty-printer re-lex exactly.

use crate::diag::{Diag, Span};

/// One token kind.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (keywords are resolved by the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `<`.
    Lt,
    /// `>`.
    Gt,
    /// `,`.
    Comma,
    /// `;`.
    Semi,
    /// `:`.
    Colon,
    /// `=`.
    Eq,
    /// `->`.
    Arrow,
    /// `..`.
    DotDot,
    /// `@`.
    At,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `&`.
    Amp,
    /// `|`.
    Pipe,
    /// `^`.
    Caret,
    /// `<<`.
    Shl,
    /// `>>`.
    Shr,
    /// End of input.
    Eof,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v) => write!(f, "`{v}`"),
            Tok::Float(v) => write!(f, "`{v:?}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Eq => write!(f, "`=`"),
            Tok::Arrow => write!(f, "`->`"),
            Tok::DotDot => write!(f, "`..`"),
            Tok::At => write!(f, "`@`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Amp => write!(f, "`&`"),
            Tok::Pipe => write!(f, "`|`"),
            Tok::Caret => write!(f, "`^`"),
            Tok::Shl => write!(f, "`<<`"),
            Tok::Shr => write!(f, "`>>`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub span: Span,
}

/// Lexes `source` into tokens (with a trailing [`Tok::Eof`]).
pub fn lex(source: &str) -> Result<Vec<Token>, Diag> {
    let mut out = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    macro_rules! push {
        ($tok:expr, $span:expr) => {
            out.push(Token {
                tok: $tok,
                span: $span,
            })
        };
    }
    while i < bytes.len() {
        let span = Span { line, col };
        let c = bytes[i];
        match c {
            b'\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            b' ' | b'\t' | b'\r' => {
                i += 1;
                col += 1;
            }
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                    col += 1;
                }
            }
            b'(' | b')' | b'{' | b'}' | b'[' | b']' | b',' | b';' | b':' | b'@' | b'+' | b'*'
            | b'&' | b'|' | b'^' | b'=' => {
                let tok = match c {
                    b'(' => Tok::LParen,
                    b')' => Tok::RParen,
                    b'{' => Tok::LBrace,
                    b'}' => Tok::RBrace,
                    b'[' => Tok::LBracket,
                    b']' => Tok::RBracket,
                    b',' => Tok::Comma,
                    b';' => Tok::Semi,
                    b':' => Tok::Colon,
                    b'@' => Tok::At,
                    b'+' => Tok::Plus,
                    b'*' => Tok::Star,
                    b'&' => Tok::Amp,
                    b'|' => Tok::Pipe,
                    b'^' => Tok::Caret,
                    _ => Tok::Eq,
                };
                push!(tok, span);
                i += 1;
                col += 1;
            }
            b'-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    push!(Tok::Arrow, span);
                    i += 2;
                    col += 2;
                } else {
                    push!(Tok::Minus, span);
                    i += 1;
                    col += 1;
                }
            }
            b'.' => {
                if bytes.get(i + 1) == Some(&b'.') {
                    push!(Tok::DotDot, span);
                    i += 2;
                    col += 2;
                } else {
                    return Err(Diag::at(span, "unexpected `.`"));
                }
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'<') {
                    push!(Tok::Shl, span);
                    i += 2;
                    col += 2;
                } else {
                    push!(Tok::Lt, span);
                    i += 1;
                    col += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    push!(Tok::Shr, span);
                    i += 2;
                    col += 2;
                } else {
                    push!(Tok::Gt, span);
                    i += 1;
                    col += 1;
                }
            }
            b'0'..=b'9' => {
                let start = i;
                if c == b'0' && bytes.get(i + 1) == Some(&b'x') {
                    i += 2;
                    while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    let text = &source[start + 2..i];
                    let v = i64::from_str_radix(text, 16)
                        .map_err(|_| Diag::at(span, format!("invalid hex literal `0x{text}`")))?;
                    push!(Tok::Int(v), span);
                } else {
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let mut is_float = false;
                    // A `.` starts a fraction only when a digit follows —
                    // `0..4` must stay Int DotDot Int.
                    if bytes.get(i) == Some(&b'.')
                        && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                    {
                        is_float = true;
                        i += 1;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                    if is_float && matches!(bytes.get(i), Some(b'e') | Some(b'E')) {
                        let mut j = i + 1;
                        if matches!(bytes.get(j), Some(b'+') | Some(b'-')) {
                            j += 1;
                        }
                        if bytes.get(j).is_some_and(u8::is_ascii_digit) {
                            i = j;
                            while i < bytes.len() && bytes[i].is_ascii_digit() {
                                i += 1;
                            }
                        }
                    }
                    let text = &source[start..i];
                    if is_float {
                        let v: f64 = text.parse().map_err(|_| {
                            Diag::at(span, format!("invalid float literal `{text}`"))
                        })?;
                        push!(Tok::Float(v), span);
                    } else {
                        let v: i64 = text.parse().map_err(|_| {
                            Diag::at(span, format!("integer literal `{text}` overflows i64"))
                        })?;
                        push!(Tok::Int(v), span);
                    }
                }
                col += (i - start) as u32;
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                push!(Tok::Ident(source[start..i].to_owned()), span);
                col += (i - start) as u32;
            }
            other => {
                return Err(Diag::at(
                    span,
                    format!("unexpected character `{}`", other as char),
                ));
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        span: Span { line, col },
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_the_token_zoo() {
        let toks = lex("kernel k(a: buf<i32>[8]) { # c\n let x_1 = 0x10 + 2.5e-1; }").unwrap();
        let kinds: Vec<&Tok> = toks.iter().map(|t| &t.tok).collect();
        assert!(matches!(kinds[0], Tok::Ident(s) if s == "kernel"));
        assert!(kinds.contains(&&Tok::Int(16)));
        assert!(kinds.contains(&&Tok::Float(0.25)));
        assert_eq!(kinds.last(), Some(&&Tok::Eof));
    }

    #[test]
    fn range_is_not_a_float() {
        let toks = lex("0..4").unwrap();
        let kinds: Vec<&Tok> = toks.iter().map(|t| &t.tok).collect();
        assert_eq!(
            kinds,
            vec![&Tok::Int(0), &Tok::DotDot, &Tok::Int(4), &Tok::Eof]
        );
    }

    #[test]
    fn spans_are_one_based_and_track_lines() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].span, Span { line: 1, col: 1 });
        assert_eq!(toks[1].span, Span { line: 2, col: 3 });
    }

    #[test]
    fn bad_characters_are_diagnosed_with_position() {
        let err = lex("a\n $").unwrap_err();
        assert_eq!(err.span, Span { line: 2, col: 2 });
        assert!(err.message.contains('$'), "{err}");
    }
}
