//! The scalar reference interpreter: direct AST evaluation, the ground
//! truth every compiled execution is checked against (the DSL analogue of
//! the hand-written kernels' scalar references).
//!
//! The interpreter shares no code with the lowering, the scheduler, the
//! allocator or the engine — addresses are recomputed from the AST's
//! stride expressions, so a bug anywhere in the compile pipeline shows up
//! as a mismatch. The single deliberate exception is reduction *order*:
//! the vertical-tree fold is mirrored exactly (pairwise halving, then an
//! in-order scalar finish), so float reductions compare bit-exactly.
//!
//! Call only on kernels that lowered successfully; the interpreter assumes
//! a well-typed tree and panics on internal inconsistencies.

use std::collections::HashMap;

use crate::ast::*;
use crate::run::{Bindings, RawOutputs};
use mve_core::compiler::{ParamDecl, ParamKind};
use mve_core::dtype::DType;

enum IVal {
    Value { data: Vec<u64>, dtype: DType },
    Loop(i64),
}

struct Interp<'a> {
    params: &'a [ParamDecl],
    param_index: HashMap<&'a str, usize>,
    bindings: &'a Bindings,
    outputs: RawOutputs,
    shape: Vec<usize>,
    scopes: Vec<HashMap<String, IVal>>,
}

impl Interp<'_> {
    fn lookup(&self, name: &str) -> Option<&IVal> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn total(&self) -> usize {
        self.shape.iter().product()
    }

    fn eval_iexpr(&self, e: &IExpr) -> i64 {
        match &e.node {
            IExprKind::Lit(v) => *v,
            IExprKind::Var(name) => match self.lookup(name) {
                Some(IVal::Loop(v)) => *v,
                _ => panic!("constant `{name}` not a loop variable"),
            },
            IExprKind::Neg(inner) => -self.eval_iexpr(inner),
            IExprKind::Bin { op, lhs, rhs } => {
                let a = self.eval_iexpr(lhs);
                let b = self.eval_iexpr(rhs);
                match op {
                    IOp::Add => a + b,
                    IOp::Sub => a - b,
                    IOp::Mul => a * b,
                }
            }
        }
    }

    /// Per-dimension element strides (the Section III-C resolution rules,
    /// recomputed from the AST rather than shared with the lowering).
    fn strides(&self, modes: &[ModeExpr]) -> Vec<i64> {
        let mut strides = vec![0i64; modes.len()];
        for (d, m) in modes.iter().enumerate() {
            strides[d] = match m {
                ModeExpr::Seq => {
                    if d == 0 {
                        1
                    } else {
                        strides[d - 1] * self.shape[d - 1] as i64
                    }
                }
                ModeExpr::Stride(e) => self.eval_iexpr(e),
            };
        }
        strides
    }

    /// The element index lane `lane` addresses.
    fn elem_of_lane(&self, lane: usize, base: i64, strides: &[i64]) -> usize {
        let mut rem = lane;
        let mut elem = base;
        for (d, &len) in self.shape.iter().enumerate() {
            let c = rem % len;
            rem /= len;
            elem += c as i64 * strides[d];
        }
        elem as usize
    }

    fn infer_dtype(&self, e: &Expr) -> Option<DType> {
        match &e.node {
            ExprKind::Lit(_) => None,
            ExprKind::Ident(name) => match self.lookup(name) {
                Some(IVal::Value { dtype, .. }) => Some(*dtype),
                _ => self
                    .param_index
                    .get(name.as_str())
                    .map(|&i| self.params[i].dtype),
            },
            ExprKind::Load { buf, .. } => self
                .param_index
                .get(buf.as_str())
                .map(|&i| self.params[i].dtype),
            ExprKind::Bin { lhs, rhs, .. } => {
                self.infer_dtype(lhs).or_else(|| self.infer_dtype(rhs))
            }
            ExprKind::Shift { value, .. } | ExprKind::Reduce { value, .. } => {
                self.infer_dtype(value)
            }
        }
    }

    fn eval_expr(&self, e: &Expr, expected: Option<DType>) -> (Vec<u64>, DType) {
        let total = self.total();
        match &e.node {
            ExprKind::Ident(name) => {
                if let Some(IVal::Value { data, dtype }) = self.lookup(name) {
                    return (data[..total].to_vec(), *dtype);
                }
                let pi = self.param_index[name.as_str()];
                let dtype = self.params[pi].dtype;
                let raw = self.bindings.scalars[pi];
                (vec![raw; total], dtype)
            }
            ExprKind::Lit(lit) => {
                let dtype = expected.expect("literal type was inferred during lowering");
                let raw = match lit {
                    Lit::Int(v) => {
                        if dtype.is_float() {
                            dtype.from_f32(*v as f32)
                        } else {
                            dtype.from_i64(*v)
                        }
                    }
                    Lit::Float(v) => dtype.from_f32(*v as f32),
                };
                (vec![raw; total], dtype)
            }
            ExprKind::Load { buf, offset, modes } => {
                let pi = self.param_index[buf.as_str()];
                let dtype = self.params[pi].dtype;
                let base = offset.as_ref().map_or(0, |o| self.eval_iexpr(o));
                let strides = self.strides(modes);
                let data = &self.bindings.inputs[pi];
                let out = (0..total)
                    .map(|lane| data[self.elem_of_lane(lane, base, &strides)])
                    .collect();
                (out, dtype)
            }
            ExprKind::Bin { op, lhs, rhs } => {
                let dtype = expected
                    .or_else(|| self.infer_dtype(lhs))
                    .or_else(|| self.infer_dtype(rhs))
                    .expect("binop type was inferred during lowering");
                let (a, _) = self.eval_expr(lhs, Some(dtype));
                let (b, _) = self.eval_expr(rhs, Some(dtype));
                let binop = crate::lower::vop_to_isa(*op).1;
                let out = a
                    .iter()
                    .zip(&b)
                    .map(|(&x, &y)| dtype.binop(binop, x, y))
                    .collect();
                (out, dtype)
            }
            ExprKind::Shift {
                left,
                value,
                amount,
            } => {
                let dtype = expected
                    .or_else(|| self.infer_dtype(value))
                    .expect("shift type was inferred during lowering");
                let (a, _) = self.eval_expr(value, Some(dtype));
                let amt = self.eval_iexpr(amount) as u32;
                let out = a
                    .iter()
                    .map(|&x| {
                        if *left {
                            dtype.shl(x, amt)
                        } else {
                            dtype.shr(x, amt)
                        }
                    })
                    .collect();
                (out, dtype)
            }
            ExprKind::Reduce { op, value } => {
                let dtype = expected
                    .or_else(|| self.infer_dtype(value))
                    .expect("reduce type was inferred during lowering");
                let (mut v, _) = self.eval_expr(value, Some(dtype));
                let binop = crate::lower::reduce_to_binop(*op).1;
                // Mirror the engine's fold order exactly: pairwise halving
                // while the length is a power of two above 256, then an
                // in-order scalar fold of the partials.
                let mut m = v.len();
                let stop = if m.is_power_of_two() { m.min(256) } else { m };
                while m > stop {
                    for i in 0..m / 2 {
                        v[i] = dtype.binop(binop, v[i], v[i + m / 2]);
                    }
                    m /= 2;
                }
                let mut acc = v[0];
                for &x in v.iter().take(stop).skip(1) {
                    acc = dtype.binop(binop, acc, x);
                }
                (vec![acc; total], dtype)
            }
        }
    }

    fn run_stmt(&mut self, stmt: &Stmt) {
        match &stmt.node {
            StmtKind::Shape(dims) => {
                self.shape = dims.iter().map(|d| self.eval_iexpr(d) as usize).collect();
            }
            StmtKind::Let { name, value } => {
                let (data, dtype) = self.eval_expr(value, None);
                self.scopes
                    .last_mut()
                    .expect("scope stack never empty")
                    .insert(name.clone(), IVal::Value { data, dtype });
            }
            StmtKind::Store {
                value,
                buf,
                offset,
                modes,
            } => {
                let (data, _) = self.eval_expr(value, None);
                let pi = self.param_index[buf.as_str()];
                let base = offset.as_ref().map_or(0, |o| self.eval_iexpr(o));
                let strides = self.strides(modes);
                let total = self.total();
                let elems: Vec<usize> = (0..total)
                    .map(|lane| self.elem_of_lane(lane, base, &strides))
                    .collect();
                let out = self.outputs[pi]
                    .as_mut()
                    .expect("store target is an output");
                for (lane, &elem) in elems.iter().enumerate() {
                    out[elem] = data[lane];
                }
            }
            StmtKind::For { var, lo, hi, body } => {
                let lo = self.eval_iexpr(lo);
                let hi = self.eval_iexpr(hi);
                for i in lo..hi {
                    let mut scope = HashMap::new();
                    scope.insert(var.clone(), IVal::Loop(i));
                    self.scopes.push(scope);
                    for st in body {
                        self.run_stmt(st);
                    }
                    self.scopes.pop();
                }
            }
        }
    }
}

/// Interprets a kernel over `bindings`, returning the raw output elements
/// per parameter index (`None` for non-outputs). Output buffers start
/// zeroed, exactly like freshly allocated engine memory.
pub fn interpret(ast: &KernelAst, params: &[ParamDecl], bindings: &Bindings) -> RawOutputs {
    let outputs = params
        .iter()
        .map(|p| match &p.kind {
            ParamKind::BufOut { len } => Some(vec![0u64; *len]),
            _ => None,
        })
        .collect();
    let mut interp = Interp {
        params,
        param_index: params
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name.as_str(), i))
            .collect(),
        bindings,
        outputs,
        shape: Vec::new(),
        scopes: vec![HashMap::new()],
    };
    for stmt in &ast.body {
        interp.run_stmt(stmt);
    }
    interp.outputs
}
