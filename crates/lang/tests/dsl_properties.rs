//! DSL property suites (deterministic vendored proptest):
//!
//! * **Round-trip** — `parse(pretty(ast)) == ast` over randomly generated
//!   kernel trees (spans excluded from equality), so the canonical printer
//!   and the parser can never drift apart.
//! * **Budget invariant** — for randomly generated *executable* kernels
//!   across random shapes and element widths, the scheduled + allocated
//!   code never holds more values in physical registers than the budget
//!   the allocator was given: walking the code with the allocator's own
//!   free-before-def discipline, `|live| ≤ budget` at every step, and
//!   every use reads a currently-resident register.

use std::collections::{HashMap, HashSet};

use mve_core::compiler::{IrOp, VReg, SPILL_RELOAD, SPILL_STORE};
use mve_core::dtype::DType;
use mve_lang::ast::*;
use mve_lang::diag::{Span, Spanned};
use mve_lang::{compile, parse, pretty, run_checked, Bindings};
use proptest::prelude::*;

/// Deterministic generator state (splitmix64).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

fn sp<T>(node: T) -> Spanned<T> {
    Spanned::new(node, Span::NONE)
}

// ---------------------------------------------------------------------
// Arbitrary (not necessarily executable) trees for the round-trip suite.
// ---------------------------------------------------------------------

const NAMES: &[&str] = &["a", "b", "c", "x0", "vv", "img", "out2", "w_1"];

fn arb_iexpr(g: &mut Gen, depth: usize) -> IExpr {
    if depth == 0 || g.chance(40) {
        return match g.below(3) {
            0 => sp(IExprKind::Lit(g.below(1000) as i64)),
            1 => sp(IExprKind::Var(
                NAMES[g.below(NAMES.len() as u64) as usize].into(),
            )),
            _ => sp(IExprKind::Neg(Box::new(arb_iexpr(g, 0)))),
        };
    }
    let op = match g.below(3) {
        0 => IOp::Add,
        1 => IOp::Sub,
        _ => IOp::Mul,
    };
    sp(IExprKind::Bin {
        op,
        lhs: Box::new(arb_iexpr(g, depth - 1)),
        rhs: Box::new(arb_iexpr(g, depth - 1)),
    })
}

fn arb_modes(g: &mut Gen) -> Vec<ModeExpr> {
    (0..1 + g.below(3))
        .map(|_| {
            if g.chance(30) {
                ModeExpr::Seq
            } else {
                ModeExpr::Stride(arb_iexpr(g, 1))
            }
        })
        .collect()
}

fn arb_expr(g: &mut Gen, depth: usize) -> Expr {
    if depth == 0 || g.chance(30) {
        return match g.below(4) {
            0 => sp(ExprKind::Ident(
                NAMES[g.below(NAMES.len() as u64) as usize].into(),
            )),
            1 => sp(ExprKind::Lit(Lit::Int(g.below(2000) as i64 - 1000))),
            2 => sp(ExprKind::Lit(Lit::Float(
                (g.below(4001) as f64 - 2000.0) / 16.0,
            ))),
            _ => sp(ExprKind::Load {
                buf: NAMES[g.below(NAMES.len() as u64) as usize].into(),
                offset: g.chance(50).then(|| arb_iexpr(g, 1)),
                modes: arb_modes(g),
            }),
        };
    }
    match g.below(8) {
        0..=4 => {
            let op = [
                VOp::Add,
                VOp::Sub,
                VOp::Mul,
                VOp::And,
                VOp::Or,
                VOp::Xor,
                VOp::Min,
                VOp::Max,
            ][g.below(8) as usize];
            sp(ExprKind::Bin {
                op,
                lhs: Box::new(arb_expr(g, depth - 1)),
                rhs: Box::new(arb_expr(g, depth - 1)),
            })
        }
        5 => sp(ExprKind::Shift {
            left: g.chance(50),
            value: Box::new(arb_expr(g, depth - 1)),
            amount: arb_iexpr(g, 0),
        }),
        _ => sp(ExprKind::Reduce {
            op: [ReduceOp::Add, ReduceOp::Min, ReduceOp::Max][g.below(3) as usize],
            value: Box::new(arb_expr(g, depth - 1)),
        }),
    }
}

fn arb_stmt(g: &mut Gen, depth: usize) -> Stmt {
    match g.below(if depth > 0 { 4 } else { 3 }) {
        0 => sp(StmtKind::Shape(
            (0..1 + g.below(3)).map(|_| arb_iexpr(g, 1)).collect(),
        )),
        1 => sp(StmtKind::Let {
            name: NAMES[g.below(NAMES.len() as u64) as usize].into(),
            value: arb_expr(g, 2),
        }),
        2 => sp(StmtKind::Store {
            value: arb_expr(g, 2),
            buf: NAMES[g.below(NAMES.len() as u64) as usize].into(),
            offset: g.chance(50).then(|| arb_iexpr(g, 1)),
            modes: arb_modes(g),
        }),
        _ => sp(StmtKind::For {
            var: "k".into(),
            lo: arb_iexpr(g, 0),
            hi: arb_iexpr(g, 0),
            body: (0..1 + g.below(3))
                .map(|_| arb_stmt(g, depth - 1))
                .collect(),
        }),
    }
}

fn arb_kernel(seed: u64) -> KernelAst {
    let g = &mut Gen(seed);
    let params = (0..g.below(4))
        .map(|i| {
            let dtype = DType::ALL[g.below(10) as usize];
            if g.chance(60) {
                Param {
                    name: format!("p{i}"),
                    ty: ParamTy::Buf {
                        dtype,
                        len: 1 + g.below(10_000) as usize,
                        out: g.chance(40),
                    },
                    default: None,
                }
            } else {
                Param {
                    name: format!("p{i}"),
                    ty: ParamTy::Scalar(dtype),
                    default: g.chance(50).then(|| {
                        if dtype.is_float() {
                            Lit::Float((g.below(64) as f64 - 32.0) / 4.0)
                        } else {
                            Lit::Int(g.below(100) as i64)
                        }
                    }),
                }
            }
        })
        .collect();
    KernelAst {
        name: format!("k{}", seed % 97),
        params,
        body: (0..1 + g.below(5)).map(|_| arb_stmt(g, 2)).collect(),
    }
}

// ---------------------------------------------------------------------
// Executable kernels for the budget-invariant suite.
// ---------------------------------------------------------------------

/// A random kernel guaranteed to lower, schedule and allocate: one input
/// buffer, one output buffer, an optional scalar, a random shape, chains
/// of element-wise work over in-bounds strided loads, disjoint stores.
fn executable_kernel(seed: u64) -> String {
    use std::fmt::Write as _;
    let g = &mut Gen(seed ^ 0xeeee);
    let dtype = DType::ALL[g.below(10) as usize];
    let dt = dtype_name(dtype);
    let dims: Vec<usize> = (0..1 + g.below(3))
        .map(|_| 1 + g.below(16) as usize)
        .collect();
    let mut s = String::new();
    let _ = writeln!(
        s,
        "kernel gen(x: buf<{dt}>[65536], s0: {dt}, out: mut buf<{dt}>[65536]) {{"
    );
    let shape = dims
        .iter()
        .map(usize::to_string)
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(s, "    shape [{shape}];");
    let n_lets = 1 + g.below(6);
    let allow_reduce = dtype.bits() <= 32;
    for i in 0..n_lets {
        let expr = gen_expr(g, dims.len(), i, dtype, allow_reduce);
        let _ = writeln!(s, "    let v{i} = {expr};");
    }
    let n_stores = 1 + g.below(3);
    for k in 0..n_stores {
        let off = 256 + k * 4096;
        let modes = gen_modes(g, dims.len());
        let _ = writeln!(s, "    store v{} -> out @ {off} {modes};", g.below(n_lets));
    }
    s.push_str("}\n");
    s
}

fn gen_modes(g: &mut Gen, dims: usize) -> String {
    let parts: Vec<String> = (0..dims)
        .map(|_| match g.below(5) {
            0 => "0".to_owned(),
            1 => "seq".to_owned(),
            2 => (g.below(9) as i64 - 4).to_string(),
            _ => "1".to_owned(),
        })
        .collect();
    format!("[{}]", parts.join(", "))
}

fn gen_expr(g: &mut Gen, dims: usize, upto: u64, dtype: DType, allow_reduce: bool) -> String {
    // A typed leaf: literals alone cannot anchor type inference, so the
    // first operand always names a load, a prior binding or the scalar.
    let typed_leaf = |g: &mut Gen| -> String {
        match g.below(3) {
            0 => format!("load x @ {} {}", 200 + g.below(800), gen_modes(g, dims)),
            1 if upto > 0 => format!("v{}", g.below(upto)),
            _ => "s0".to_owned(),
        }
    };
    let leaf = |g: &mut Gen| -> String {
        match g.below(4) {
            0 => format!("load x @ {} {}", 200 + g.below(800), gen_modes(g, dims)),
            1 if upto > 0 => format!("v{}", g.below(upto)),
            2 => "s0".to_owned(),
            _ => {
                if dtype.is_float() {
                    "0.5".to_owned()
                } else {
                    g.below(100).to_string()
                }
            }
        }
    };
    let a = typed_leaf(g);
    let b = leaf(g);
    match g.below(8) {
        0 => format!("{a} + {b}"),
        1 => format!("{a} - {b}"),
        2 => format!("{a} * {b}"),
        3 => format!("min({a}, {b})"),
        4 => format!("max({a}, {b})"),
        5 if !dtype.is_float() => format!("({a}) >> {}", g.below(u64::from(dtype.bits()))),
        6 if allow_reduce && g.chance(30) => format!("reduce add ({a})"),
        _ => format!("({a}) + ({b})"),
    }
}

/// Walks allocated code with the allocator's own discipline and returns
/// the peak number of simultaneously resident values; panics if a use
/// reads a non-resident register.
fn peak_resident(code: &[IrOp]) -> usize {
    let mut last_use: HashMap<VReg, usize> = HashMap::new();
    for (i, op) in code.iter().enumerate() {
        for &u in &op.uses {
            last_use.insert(u, i);
        }
    }
    let mut live: HashSet<VReg> = HashSet::new();
    let mut peak = 0usize;
    for (i, op) in code.iter().enumerate() {
        for &u in &op.uses {
            assert!(
                live.contains(&u),
                "op {i} `{}` reads v{} which is not resident",
                op.name,
                u.0
            );
        }
        if op.name == SPILL_STORE {
            live.remove(&op.uses[0]);
            continue;
        }
        // The allocator frees dying operands before placing the def.
        for &u in &op.uses {
            if last_use.get(&u) == Some(&i) {
                live.remove(&u);
            }
        }
        if let Some(d) = op.def {
            live.insert(d);
            let _ = SPILL_RELOAD; // reloads are ordinary defs here
        }
        peak = peak.max(live.len());
    }
    peak
}

proptest! {
    /// `parse(pretty(ast)) == ast` for arbitrary (even semantically
    /// nonsensical) trees: printing is canonical and lossless.
    #[test]
    fn pretty_then_reparse_is_identity(seed in 0u64..u64::MAX) {
        let ast = arb_kernel(seed);
        let printed = pretty(&ast);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("pretty output failed to parse: {e}\n{printed}"));
        prop_assert_eq!(&reparsed, &ast, "\n{}", printed);
        // Printing is a fixed point.
        prop_assert_eq!(pretty(&reparsed), printed);
    }

    /// Lowered, scheduled and allocated programs keep the resident set
    /// within the allocator's budget across random shapes and widths —
    /// and still compute what the interpreter computes.
    #[test]
    fn allocated_code_respects_the_register_budget(seed in 0u64..u64::MAX) {
        let src = executable_kernel(seed);
        let ck = compile(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        let peak = peak_resident(&ck.code);
        prop_assert!(
            peak <= ck.budget,
            "peak {} exceeds budget {} (width {})\n{}",
            peak, ck.budget, ck.kernel_width, src
        );
        // Spot-check execution on a subset (full runs are engine-heavy).
        if seed % 8 == 0 {
            let b = Bindings::deterministic(&ck.program);
            let (_ex, _want, check) = run_checked(&ck, &b);
            prop_assert_eq!(check.mismatches, 0, "{}", src);
        }
    }
}
