//! End-to-end properties of the compiled-kernel pipeline:
//!
//! * a compiled `.mvel` dot product produces cycle/energy stats
//!   **identical** to the equivalent hand-written engine sequence run
//!   through `simulate()` with the same `SimConfig` (the PR-5 acceptance
//!   criterion);
//! * a register-pressured kernel demonstrably emits spill/reload memory
//!   traffic that shows up in the trace instruction mix — and still
//!   computes the right answer;
//! * the functional check holds across the DSL feature surface
//!   (multi-dim strided loads, dim blocks, reductions, shifts, min/max).

use mve_core::dtype::{BinOp, DType};
use mve_core::engine::Engine;
use mve_core::isa::{Opcode, StrideMode};
use mve_core::sim::{simulate, SimConfig};
use mve_lang::{compile, run_checked, Bindings};

const DOT: &str = r#"
kernel dot(x: buf<i32>[8192], y: buf<i32>[8192], out: mut buf<i32>[1]) {
    shape [8192];
    let xv = load x [1];
    let yv = load y [1];
    let s = reduce add (xv * yv);
    shape [1];
    store s -> out [1];
}
"#;

/// The hand-written engine sequence a human would write for `dot` —
/// mirroring what a Table III registry kernel's `run_mve` body looks like,
/// including the Section IV vertical tree reduction.
fn hand_written_dot(x: &[u64], y: &[u64]) -> (mve_core::trace::Trace, u64) {
    let mut e = Engine::default_mobile();
    let n = 8192usize;
    let xa = e.mem_alloc(n as u64 * 4);
    let ya = e.mem_alloc(n as u64 * 4);
    let oa = e.mem_alloc(4);
    for (i, &v) in x.iter().enumerate() {
        e.mem_mut().write_raw(xa + i as u64 * 4, 4, v);
    }
    for (i, &v) in y.iter().enumerate() {
        e.mem_mut().write_raw(ya + i as u64 * 4, 4, v);
    }
    e.vsetwidth(32);
    e.vsetdimc(1);
    e.vsetdiml(0, n);
    let xv = e.load(DType::I32, xa, &[StrideMode::One]);
    let yv = e.load(DType::I32, ya, &[StrideMode::One]);
    let p = e.binop(Opcode::Mul, BinOp::Mul, xv, yv);
    e.free(xv);
    e.free(yv);
    // Vertical tree reduction: halve 8192 → 256 partials in one
    // [m/2, 2] fold shape, then finish on the scalar core.
    let scratch = e.mem_alloc(e.lanes() as u64 * 4);
    e.vsetdimc(2);
    e.vsetdiml(0, n / 2);
    e.vsetdiml(1, 2);
    let mut m = n;
    let mut cur = p;
    while m > 256 {
        if m != n {
            e.vsetdiml(0, m / 2);
        }
        e.vunsetmask(0);
        e.store(cur, scratch, &[StrideMode::One, StrideMode::Seq]);
        e.vresetmask();
        let upper = e.load(
            DType::I32,
            scratch + (m / 2) as u64 * 4,
            &[StrideMode::One, StrideMode::Zero],
        );
        let sum = e.binop(Opcode::Add, BinOp::Add, cur, upper);
        if cur != p {
            e.free(cur);
        }
        e.free(upper);
        cur = sum;
        m /= 2;
        e.scalar(8);
    }
    // Dim 0 already holds 256 when the loop exits; only the dimension
    // count changes for the scalar finish.
    e.vsetdimc(1);
    e.store(cur, scratch, &[StrideMode::One]);
    e.free(cur);
    e.scalar(2 * 256);
    let mut acc = 0u64;
    for i in 0..256 {
        let raw = e.mem().read_raw(scratch + i as u64 * 4, 4);
        acc = if i == 0 {
            raw
        } else {
            DType::I32.binop(BinOp::Add, acc, raw)
        };
    }
    e.vsetdiml(0, n);
    let s = e.setdup(DType::I32, acc);
    e.free(p);
    e.vsetdiml(0, 1);
    e.store(s, oa, &[StrideMode::One]);
    e.free(s);
    let out = e.mem().read_raw(oa, 4);
    (e.take_trace(), out)
}

#[test]
fn compiled_dot_matches_hand_written_stats_exactly() {
    let ck = compile(DOT).unwrap();
    assert_eq!(ck.spill_stores, 0, "dot must not spill");
    let bindings = Bindings::deterministic(&ck.program);
    let (mut ex, want, check) = run_checked(&ck, &bindings);
    assert_eq!(check.mismatches, 0, "{check:?}");
    let dsl_trace = ex.engine_mut().take_trace();

    let (hand_trace, hand_out) = hand_written_dot(&bindings.inputs[0], &bindings.inputs[1]);

    // Functional equality: compiled == hand-written == interpreter.
    assert_eq!(ex.outputs()[2].as_ref().unwrap()[0], hand_out);
    assert_eq!(want[2].as_ref().unwrap()[0], hand_out);

    // Identical instruction mixes...
    assert_eq!(dsl_trace.instr_mix(), hand_trace.instr_mix());

    // ...and identical cycle/energy stats under the same SimConfig — the
    // compiled path is indistinguishable from the hand-written kernel.
    for cfg in [
        SimConfig::default(),
        SimConfig::default().with_ooo_dispatch(),
        SimConfig::default()
            .without_mode_switch()
            .without_cache_warming(),
    ] {
        let a = simulate(&dsl_trace, &cfg);
        let b = simulate(&hand_trace, &cfg);
        assert_eq!(a, b, "reports diverge under {cfg:?}");
        assert!(a.total_cycles > 0);
    }
}

const SPILLSTORM: &str = r#"
# Four long-lived 64-bit loads, each consumed by all three outputs: at
# width 64 the register file holds 4 registers and the runner reserves 1,
# so the allocator must spill.
kernel spillstorm(x: buf<i64>[4096], out: mut buf<i64>[3072]) {
    shape [1024];
    let l0 = load x @ 0 [1];
    let l1 = load x @ 1024 [1];
    let l2 = load x @ 2048 [1];
    let l3 = load x @ 3072 [1];
    store (l0 + l1) + (l2 + l3) -> out @ 0 [1];
    store (l0 + l3) + (l1 + l2) -> out @ 1024 [1];
    store (l0 + l2) + (l1 + l3) -> out @ 2048 [1];
}
"#;

#[test]
fn register_pressure_emits_real_spill_traffic_and_stays_correct() {
    let ck = compile(SPILLSTORM).unwrap();
    assert_eq!(ck.kernel_width, 64);
    assert_eq!(ck.capacity, 4);
    assert_eq!(ck.budget, 3);
    assert!(ck.spill_stores > 0, "must spill under a 3-register budget");
    assert!(ck.reloads >= ck.spill_stores);

    let bindings = Bindings::deterministic(&ck.program);
    let (mut ex, _want, check) = run_checked(&ck, &bindings);
    assert_eq!(
        check.mismatches, 0,
        "spilled values must survive the round-trip"
    );
    // The spill/reload ops are real memory instructions in the trace: the
    // mix shows exactly the program's 7 accesses plus one per spill store
    // and one per reload.
    let trace = ex.engine_mut().take_trace();
    let mix = trace.instr_mix();
    assert_eq!(
        mix.mem_access,
        7 + (ck.spill_stores + ck.reloads) as u64,
        "{mix:?}"
    );

    // And the timing simulation charges them: the same kernel with a
    // comfortable budget (32-bit elements halve the width, doubling the
    // file) spills nothing and moves strictly fewer elements.
    let relaxed = compile(&SPILLSTORM.replace("i64", "i32")).unwrap();
    assert_eq!(relaxed.spill_stores, 0);
    let rb = Bindings::deterministic(&relaxed.program);
    let (mut rex, _, rcheck) = run_checked(&relaxed, &rb);
    assert_eq!(rcheck.mismatches, 0);
    let cfg = SimConfig::default();
    let spilled = simulate(&trace, &cfg);
    let clean = simulate(&rex.engine_mut().take_trace(), &cfg);
    assert!(
        spilled.energy.tmu_element_transfers > clean.energy.tmu_element_transfers,
        "spill traffic must move more elements ({} vs {})",
        spilled.energy.tmu_element_transfers,
        clean.energy.tmu_element_transfers
    );
}

#[test]
fn feature_surface_matches_the_interpreter() {
    // Strided 2-D stencil with a CR row stride, shifts, min/max, an f32
    // strip-mined dim block, and a non-power-of-two reduction.
    for src in [
        r#"
kernel stencil(img: buf<i16>[4161], out: mut buf<i16>[4096]) {
    shape [64, 64];
    let c = load img @ 0 [1, 65];
    let e = load img @ 1 [1, 65];
    let w = load img @ 2 [1, 65];
    let blur = (c >> 1) + ((e + w) >> 2);
    store blur -> out [1, seq];
}
"#,
        r#"
kernel saxpy(a: f32 = 2.5, x: buf<f32>[4096], y: buf<f32>[4096], out: mut buf<f32>[4096]) {
    for i in 0..4 {
        shape [1024];
        let xv = load x @ i * 1024 [1];
        let yv = load y @ i * 1024 [1];
        store xv * a + yv -> out @ i * 1024 [1];
    }
}
"#,
        r#"
kernel oddsum(v: buf<u32>[1000], out: mut buf<u32>[2]) {
    shape [1000];
    let s = reduce add (load v [1]);
    let m = reduce max (load v [1]);
    shape [1];
    store s -> out @ 0 [1];
    store min(m, 4095) -> out @ 1 [1];
}
"#,
    ] {
        let ck = compile(src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        let b = Bindings::deterministic(&ck.program);
        let (_ex, _want, check) = run_checked(&ck, &b);
        assert_eq!(check.mismatches, 0, "{src}");
        assert!(check.compared > 0);
    }
}

#[test]
fn reduction_fold_is_bit_exact_for_floats() {
    // The interpreter mirrors the engine's vertical-tree order, so even
    // float reductions compare bit-exactly (not just within tolerance).
    let src = r#"
kernel fsum(v: buf<f32>[8192], out: mut buf<f32>[1]) {
    shape [8192];
    let s = reduce add (load v [1]);
    shape [1];
    store s -> out [1];
}
"#;
    let ck = compile(src).unwrap();
    let b = Bindings::deterministic(&ck.program);
    let (_ex, _want, check) = run_checked(&ck, &b);
    assert_eq!(check.mismatches, 0);
    assert_eq!(check.compared, 1);
}

#[test]
fn hostile_inputs_get_diagnostics_not_panics() {
    // Client-controlled strides, shapes and buffer lengths must surface
    // as diagnostics — never debug-overflow panics or wrapped bounds
    // math that lets an access alias back into range.
    let cases = [
        // Giant stride: previously overflowed the i64 bounds arithmetic.
        (
            "kernel k(x: buf<i32>[16], o: mut buf<i32>[16]) {\n    shape [2, 3];\n    \
             store load x [1, 4611686018427387904] -> o [1, seq];\n}",
            "stride",
        ),
        // Negative monster stride.
        (
            "kernel k(x: buf<i32>[16], o: mut buf<i32>[16]) {\n    shape [2, 2];\n    \
             store load x [1, -4611686018427387904] -> o [1, seq];\n}",
            "stride",
        ),
        // Shape whose usize product would wrap back under the lane bound.
        (
            "kernel k(o: mut buf<i32>[4]) {\n    shape [4294967296, 4294967296];\n    \
             store 1 + 0 -> o [1, 1];\n}",
            "dimension length",
        ),
        // Buffer larger than the functional-memory budget (previously an
        // engine allocation panic at execution time).
        (
            "kernel k(x: buf<i64>[999999999], o: mut buf<i32>[4]) {\n    shape [4];\n    \
             store (load x [1]) + 0 -> o [1];\n}",
            "memory budget",
        ),
        // Constant-expression overflow in an offset.
        (
            "kernel k(x: buf<i32>[16], o: mut buf<i32>[4]) {\n    shape [4];\n    \
             store load x @ 9223372036854775807 * 9223372036854775807 [1] -> o [1];\n}",
            "overflows",
        ),
    ];
    for (src, needle) in cases {
        let Err(err) = compile(src) else {
            panic!("must not compile:\n{src}");
        };
        assert!(
            err.message.contains(needle),
            "{src}\nwanted `{needle}` in: {err}"
        );
    }
    // A buffer comfortably inside the budget still compiles.
    let ok = "kernel k(x: buf<i8>[8388608], o: mut buf<i8>[128]) {\n    shape [128];\n    \
              store (load x [1]) + 0 -> o [1];\n}";
    compile(ok).unwrap_or_else(|e| panic!("{e}"));
}

#[test]
fn executor_geometry_override_is_validated() {
    let ck = compile(DOT).unwrap();
    let b = Bindings::deterministic(&ck.program);
    // 8 arrays → 2048 lanes: the 8192-lane dot product cannot run there.
    let geom = mve_insram::scheme::EngineGeometry::with_arrays(8);
    let Err(err) = mve_lang::Executor::with_geometry(&ck, &b, geom) else {
        panic!("8192-lane kernel must not fit a 2048-lane geometry");
    };
    assert!(err.message.contains("8192-lane shape"), "{err}");
    // A small kernel runs fine on the narrow geometry and its trace
    // reflects it.
    let small = compile(
        "kernel s(x: buf<i32>[1024], o: mut buf<i32>[1024]) {\n    shape [1024];\n    \
         let v = load x [1];\n    store v + v -> o [1];\n}",
    )
    .unwrap();
    let sb = Bindings::deterministic(&small.program);
    let mut ex = mve_lang::Executor::with_geometry(&small, &sb, geom).unwrap();
    ex.run();
    assert_eq!(ex.engine().lanes(), 2048);
    let want = mve_lang::interpret(&small.ast, &small.program.params, &sb);
    assert_eq!(
        mve_lang::compare_outputs(&ex.outputs(), &want).mismatches,
        0
    );
}

#[test]
fn scratch_hungry_kernels_are_rejected_at_compile_time() {
    // Each reduction needs a full-register scratch slot at execution
    // time; a kernel with thousands of them would exhaust the 64 MiB
    // functional memory mid-run. That must be a compile diagnostic, not
    // an execution panic.
    let mut src = String::from(
        "kernel many(x: buf<i32>[8192], o: mut buf<i32>[3000]) {\n    shape [8192];\n    \
         let v = load x [1];\n",
    );
    for i in 0..3000 {
        src.push_str(&format!("    let r{i} = reduce add (v);\n"));
    }
    src.push_str("    shape [1];\n");
    for i in 0..3000 {
        src.push_str(&format!("    store r{i} -> o @ {i} [1];\n"));
    }
    src.push_str("}\n");
    let Err(err) = compile(&src) else {
        panic!("3000 reductions must not fit the scratch budget");
    };
    assert!(err.message.contains("scratch"), "{err}");

    // A handful of reductions stays comfortably within budget.
    let ok = compile(
        "kernel few(x: buf<i32>[8192], o: mut buf<i32>[4]) {\n    shape [8192];\n    \
         let v = load x [1];\n    let a = reduce add (v);\n    let b = reduce max (v);\n    \
         shape [1];\n    store a -> o @ 0 [1];\n    store b -> o @ 1 [1];\n}",
    );
    ok.unwrap_or_else(|e| panic!("{e}"));
}

#[test]
fn deep_and_huge_expressions_are_diagnostics_not_stack_overflows() {
    // Deep nesting and massive operator chains must be parse diagnostics:
    // recursive descent (and the recursive lowering behind it) burns
    // stack per level, and a stack overflow aborts the whole process —
    // the daemon's catch_unwind cannot contain it.
    let deep = format!(
        "kernel k(x: buf<i32>[4], o: mut buf<i32>[4]) {{\n    shape [4];\n    store {}load x [1]{} -> o [1];\n}}",
        "(".repeat(500),
        ")".repeat(500)
    );
    let Err(err) = compile(&deep) else {
        panic!("500-deep nesting must not parse");
    };
    assert!(err.message.contains("nesting"), "{err}");

    let huge = format!(
        "kernel k(x: buf<i32>[4], o: mut buf<i32>[4]) {{\n    shape [4];\n    let v = load x [1];\n    store v{} -> o [1];\n}}",
        " + v".repeat(5000)
    );
    let Err(err) = compile(&huge) else {
        panic!("5000-term chain must not parse");
    };
    assert!(err.message.contains("nodes"), "{err}");
}

/// ISSUE-9 phase timing: `compile_timed` / `compile_and_render_timed`
/// report per-phase durations without perturbing the compile — the
/// rendered artefact is byte-identical to the untimed path, and every
/// phase slot is populated with a name the observability docs promise.
#[test]
fn timed_compile_reports_phases_and_identical_bytes() {
    let (ck, phases) = mve_lang::compile_timed(DOT).expect("compiles");
    let untimed = compile(DOT).expect("compiles");
    assert_eq!(
        ck.program, untimed.program,
        "timing must not change codegen"
    );
    let names: Vec<&str> = phases.phases().iter().map(|(n, _)| *n).collect();
    assert_eq!(
        names,
        ["lex", "parse", "lower", "schedule", "allocate"],
        "stable phase vocabulary"
    );
    let total: std::time::Duration = phases.phases().iter().map(|(_, d)| *d).sum();
    assert!(total > std::time::Duration::ZERO, "phases must be measured");

    let cfg = SimConfig::default();
    let (timed_text, _) = mve_lang::compile_and_render_timed(DOT, &cfg).expect("renders");
    let untimed_text = mve_lang::compile_and_render(DOT, &cfg).expect("renders");
    assert_eq!(timed_text, untimed_text, "rendered bytes must be identical");
}
