//! libpng — row defiltering kernels. PNG reconstruction has serial
//! dependences along one axis, so each kernel vectorises along the *other*
//! axis: `filter_sub` across rows (lanes = rows, marching along columns),
//! `filter_up` across columns (lanes = columns, marching down rows), and
//! `filter_paeth` across rows with its predictor select built from Tag-latch
//! predication (Section III-E).

use crate::common::{check_exact, engine, gen_u8, tag_to_data, KernelRun, Scale};
use crate::registry::{Kernel, KernelInfo, Library};
use mve_core::dtype::DType;
use mve_core::isa::StrideMode;
use mve_coresim::neon::{NeonOpClass, NeonProfile};

fn image(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Test => (48, 64),
        Scale::Paper => (640, 720),
    }
}

/// `recon[y][x] = filt[y][x] + recon[y][x-1]` — serial in x, parallel in y.
pub struct FilterSub;

impl Kernel for FilterSub {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "png_filter_sub",
            library: Library::Libpng,
            dims: 1,
            dtype_bits: 8,
            selected: false,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        let (w, h) = image(scale);
        let filt = gen_u8(0x71, w * h);
        let mut want = vec![0u8; w * h];
        for y in 0..h {
            let mut left = 0u8;
            for x in 0..w {
                left = filt[y * w + x].wrapping_add(left);
                want[y * w + x] = left;
            }
        }

        let mut e = engine();
        e.vsetwidth(8);
        let fa = e.mem_alloc_typed::<u8>(w * h);
        let oa = e.mem_alloc_typed::<u8>(w * h);
        e.mem_fill(fa, &filt);

        let lanes = e.lanes();
        let rows_per_tile = lanes.min(h).min(256);
        e.vsetdimc(1);
        e.vsetldstr(0, w as i64);
        e.vsetststr(0, w as i64);
        let mut y = 0usize;
        while y < h {
            let rows = rows_per_tile.min(h - y);
            e.vsetdiml(0, rows);
            e.scalar(6);
            // `left` accumulates in-register across the column march.
            let mut left = e.vsetdup_ub(0);
            for x in 0..w {
                e.scalar(3);
                let f = e.vsld_ub(fa + (y * w + x) as u64, &[StrideMode::Cr]);
                let rec = e.vadd_ub(f, left);
                e.vsst_ub(rec, oa + (y * w + x) as u64, &[StrideMode::Cr]);
                e.free(f);
                e.free(left);
                left = rec;
            }
            e.free(left);
            y += rows;
        }
        let got = e.mem_read_vec::<u8>(oa, w * h);
        KernelRun {
            checked: check_exact(&got, &want),
            trace: e.take_trace(),
        }
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        let (w, h) = image(scale);
        // Serial in x: Neon cannot parallelise within a row; libpng's Neon
        // sub filter processes 4 bytes per dependent step.
        let steps = (w * h / 16) as u64;
        NeonProfile {
            ops: vec![
                (NeonOpClass::IntSimple, steps),
                (NeonOpClass::Permute, steps),
            ],
            chain_ops: vec![(NeonOpClass::IntSimple, (w * h / 4) as u64)],
            loads: steps,
            stores: steps,
            scalar_instrs: steps * 3,
            touched_bytes: (w * h * 2) as u64,
            base_addr: 0xD00_0000,
        }
    }
}

/// `recon[y][x] = filt[y][x] + recon[y-1][x]` — serial in y, parallel in x.
pub struct FilterUp;

impl Kernel for FilterUp {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "png_filter_up",
            library: Library::Libpng,
            dims: 1,
            dtype_bits: 8,
            selected: false,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        let (w, h) = image(scale);
        let filt = gen_u8(0x72, w * h);
        let mut want = vec![0u8; w * h];
        for y in 0..h {
            for x in 0..w {
                let above = if y == 0 { 0 } else { want[(y - 1) * w + x] };
                want[y * w + x] = filt[y * w + x].wrapping_add(above);
            }
        }

        let mut e = engine();
        e.vsetwidth(8);
        let fa = e.mem_alloc_typed::<u8>(w * h);
        let oa = e.mem_alloc_typed::<u8>(w * h);
        e.mem_fill(fa, &filt);

        assert!(w <= e.lanes(), "row wider than the engine");
        e.vsetdimc(1);
        e.vsetdiml(0, w);
        let mut above = e.vsetdup_ub(0);
        for y in 0..h {
            e.scalar(4);
            let f = e.vsld_ub(fa + (y * w) as u64, &[StrideMode::One]);
            let rec = e.vadd_ub(f, above);
            e.vsst_ub(rec, oa + (y * w) as u64, &[StrideMode::One]);
            e.free(f);
            e.free(above);
            above = rec;
        }
        e.free(above);
        let got = e.mem_read_vec::<u8>(oa, w * h);
        KernelRun {
            checked: check_exact(&got, &want),
            trace: e.take_trace(),
        }
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        let (w, h) = image(scale);
        let steps = (w * h / 16) as u64;
        NeonProfile {
            ops: vec![(NeonOpClass::IntSimple, steps)],
            chain_ops: vec![],
            loads: steps * 2,
            stores: steps,
            scalar_instrs: steps * 2,
            touched_bytes: (w * h * 2) as u64,
            base_addr: 0xE00_0000,
        }
    }
}

fn paeth_predict(a: i16, b: i16, c: i16) -> i16 {
    let p = a + b - c;
    let pa = (p - a).abs();
    let pb = (p - b).abs();
    let pc = (p - c).abs();
    if pa <= pb && pa <= pc {
        a
    } else if pb <= pc {
        b
    } else {
        c
    }
}

/// Paeth defilter: the predictor select is a two-level Tag-latch
/// predication sequence.
///
/// Paeth depends on *left*, *above* and *upper-left*, so neither rows nor
/// columns are independent — the parallel set is the anti-diagonal
/// wavefront. Lane `y` at step `t` reconstructs pixel `(y, t-y)`; the three
/// predictors were produced at steps `t-1`/`t-2` and come back from memory
/// with stride `w` (MVE moves data between lanes through the cache,
/// Table II). Wavefront activation/retirement is two dimension-level mask
/// instructions per step (Section III-E) — the pattern that motivates
/// MVE's cheap masking.
pub struct FilterPaeth;

impl Kernel for FilterPaeth {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "png_filter_paeth",
            library: Library::Libpng,
            dims: 1,
            dtype_bits: 16,
            selected: false,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        let (w, h) = image(scale);
        let filt = gen_u8(0x73, w * h);
        // Padded reconstruction buffer: guard row above, guard column left.
        let stride = w + 1;
        let mut want = vec![0u8; (h + 1) * stride];
        for y in 0..h {
            for x in 0..w {
                let a = i16::from(want[(y + 1) * stride + x]); // left
                let b = i16::from(want[y * stride + x + 1]); // above
                let c = i16::from(want[y * stride + x]); // upper-left
                let pred = paeth_predict(a, b, c) as u8;
                want[(y + 1) * stride + x + 1] = filt[y * w + x].wrapping_add(pred);
            }
        }

        let mut e = engine();
        e.vsetwidth(16);
        let fa = e.mem_alloc_typed::<u8>(w * h);
        let ra = e.mem_alloc_typed::<u8>((h + 1) * stride);
        e.mem_fill(fa, &filt);

        // Rows are tiled to the 256-entry mask CR; the tile's top guard row
        // is the previous tile's last reconstructed row (already in memory).
        let rows_per_tile = 256.min(h);
        e.vsetdimc(1);
        e.vsetdiml(0, rows_per_tile);
        // All wavefront accesses stride by `stride-1` lanes apart... the
        // padded row pitch minus one column per row step.
        let wf = stride as i64 - 1;
        e.vsetldstr(0, wf);
        e.vsetststr(0, wf);
        let mut y0 = 0usize;
        while y0 < h {
            let rows = rows_per_tile.min(h - y0);
            e.vsetdiml(0, rows);
            // Start with every wavefront lane off.
            for lane in 0..rows {
                e.vunsetmask(lane);
            }
            let tile = ra + (y0 * stride) as u64; // padded guard row of tile
            for t in 0..(w + rows - 1) {
                e.scalar(8);
                // Advance the wavefront: lane t enters, lane t-w retires.
                if t < rows {
                    e.vsetmask(t);
                }
                if t >= w && t - w < rows {
                    e.vunsetmask(t - w);
                }
                let lanebase = |col_off: u64, row_off: u64| {
                    tile + row_off * stride as u64 + t as u64 + col_off
                };
                // a = left, b = above, c = upper-left (stride w apart).
                let a8 = e.vsld_ub(lanebase(0, 1), &[StrideMode::Cr]);
                let a = e.vcvt(a8, DType::I16);
                e.free(a8);
                let b8 = e.vsld_ub(lanebase(1, 0), &[StrideMode::Cr]);
                let b = e.vcvt(b8, DType::I16);
                e.free(b8);
                let c8 = e.vsld_ub(lanebase(0, 0), &[StrideMode::Cr]);
                let c = e.vcvt(c8, DType::I16);
                e.free(c8);
                // pa=|b-c|, pb=|a-c|, pc=|a+b-2c|.
                let zero = e.vsetdup_w(0);
                let bc = e.vsub_w(b, c);
                let nbc = e.vsub_w(zero, bc);
                let pa = e.vmax_w(bc, nbc);
                e.free(bc);
                e.free(nbc);
                let ac = e.vsub_w(a, c);
                let nac = e.vsub_w(zero, ac);
                let pb = e.vmax_w(ac, nac);
                e.free(ac);
                e.free(nac);
                let ab = e.vadd_w(a, b);
                let c2 = e.vadd_w(c, c);
                let abc = e.vsub_w(ab, c2);
                e.free(ab);
                e.free(c2);
                let nabc = e.vsub_w(zero, abc);
                let pc = e.vmax_w(abc, nabc);
                e.free(abc);
                e.free(nabc);
                e.free(zero);
                // pred = c; if pb<=pc pred = b; if pa<=pb && pa<=pc pred = a.
                let pred = e.vcpy_w(c);
                e.free(c);
                e.vlte_w(pb, pc);
                e.set_predication(true);
                e.copy_into(pred, b);
                e.set_predication(false);
                e.free(b);
                e.vlte_w(pa, pb);
                let m1 = tag_to_data(&mut e, DType::I16);
                e.vlte_w(pa, pc);
                let m2 = tag_to_data(&mut e, DType::I16);
                for r in [pa, pb, pc] {
                    e.free(r);
                }
                let both = e.vand_w(m1, m2);
                let one = e.vsetdup_w(1);
                e.veq_w(both, one);
                e.set_predication(true);
                e.copy_into(pred, a);
                e.set_predication(false);
                for r in [m1, m2, both, one, a] {
                    e.free(r);
                }
                // recon = filt + pred (mod 256). filt[y][x] at lane y:
                // fa + y0*w + y*w + (t-y) = fa + y0*w + t + y*(w-1).
                e.vsetldstr(0, w as i64 - 1);
                let f8 = e.vsld_ub(fa + (y0 * w + t) as u64, &[StrideMode::Cr]);
                e.vsetldstr(0, wf);
                let f = e.vcvt(f8, DType::I16);
                e.free(f8);
                let sum = e.vadd_w(f, pred);
                e.free(f);
                e.free(pred);
                let rec8 = e.vcvt(sum, DType::U8);
                e.free(sum);
                e.vsst_ub(rec8, lanebase(1, 1), &[StrideMode::Cr]);
                e.free(rec8);
            }
            e.vresetmask();
            y0 += rows;
        }
        let got = e.mem_read_vec::<u8>(ra, (h + 1) * stride);
        KernelRun {
            checked: check_exact(&got, &want),
            trace: e.take_trace(),
        }
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        let (w, h) = image(scale);
        let steps = (w * h / 8) as u64; // widened to 16-bit lanes
                                        // Paeth is serial in both x and y on a SIMD machine: libpng's Neon
                                        // paeth handles one 4-byte pixel per ~10-op dependent step.
        NeonProfile {
            ops: vec![
                (NeonOpClass::IntSimple, steps * 12),
                (NeonOpClass::Permute, steps * 2),
            ],
            chain_ops: vec![(NeonOpClass::IntSimple, (w * h / 4 * 3) as u64)],
            loads: steps * 3,
            stores: steps,
            scalar_instrs: steps * 4,
            touched_bytes: (w * h * 2) as u64,
            base_addr: 0xF00_0000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_sub_matches_reference() {
        assert!(FilterSub.run_mve(Scale::Test).checked.ok());
    }

    #[test]
    fn filter_up_matches_reference() {
        assert!(FilterUp.run_mve(Scale::Test).checked.ok());
    }

    #[test]
    fn paeth_predictor_scalar_sanity() {
        assert_eq!(paeth_predict(0, 0, 0), 0);
        assert_eq!(paeth_predict(10, 200, 10), 200); // p=200, closest to b
        assert_eq!(paeth_predict(200, 10, 10), 200);
        assert_eq!(paeth_predict(100, 100, 1), 100);
    }

    #[test]
    fn filter_paeth_matches_reference() {
        let run = FilterPaeth.run_mve(Scale::Test);
        assert!(run.checked.ok(), "{:?}", run.checked);
    }
}
