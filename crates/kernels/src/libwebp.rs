//! libwebp — seven kernels spanning sharp-YUV refinement, bilinear
//! upsampling, alpha premultiplication, the two lossless prediction filters,
//! per-block distortion (SSE) and coefficient quantisation.

use crate::common::{check_exact, engine, gen_i16, gen_u8, tree_halve, KernelRun, Scale};
use crate::registry::{Kernel, KernelInfo, Library};
use mve_core::dtype::DType;
use mve_core::isa::StrideMode;
use mve_coresim::neon::{NeonOpClass, NeonProfile};

fn npix(scale: Scale) -> usize {
    match scale {
        Scale::Test => 8 * 1024,
        Scale::Paper => 640 * 360,
    }
}

/// Sharp-YUV update step: `out = clamp(ref + (a - b), 0, 16383)` on 16-bit
/// luma samples.
pub struct SharpUpdate;

impl Kernel for SharpUpdate {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "webp_sharp_update",
            library: Library::Libwebp,
            dims: 1,
            dtype_bits: 16,
            selected: false,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        let n = npix(scale);
        let refv: Vec<i16> = gen_i16(0x81, n)
            .iter()
            .map(|v| v.unsigned_abs() as i16)
            .collect();
        let av = gen_i16(0x82, n);
        let bv = gen_i16(0x83, n);
        let want: Vec<i16> = (0..n)
            .map(|i| (refv[i] as i32 + (av[i] as i32 - bv[i] as i32)).clamp(0, 16383) as i16)
            .collect();

        let mut e = engine();
        e.vsetwidth(16);
        let ra = e.mem_alloc_typed::<i16>(n);
        let aa = e.mem_alloc_typed::<i16>(n);
        let ba = e.mem_alloc_typed::<i16>(n);
        let oa = e.mem_alloc_typed::<i16>(n);
        e.mem_fill(ra, &refv);
        e.mem_fill(aa, &av);
        e.mem_fill(ba, &bv);

        let lanes = e.lanes();
        e.vsetdimc(1);
        let mut base = 0usize;
        while base < n {
            let chunk = lanes.min(n - base);
            e.vsetdiml(0, chunk);
            e.scalar(6);
            let r = e.vsld_w(ra + (base * 2) as u64, &[StrideMode::One]);
            let a = e.vsld_w(aa + (base * 2) as u64, &[StrideMode::One]);
            let b = e.vsld_w(ba + (base * 2) as u64, &[StrideMode::One]);
            let d = e.vsub_w(a, b);
            e.free(a);
            e.free(b);
            let s = e.vadd_w(r, d);
            e.free(r);
            e.free(d);
            let zero = e.vsetdup_w(0);
            let lo = e.vmax_w(s, zero);
            e.free(s);
            e.free(zero);
            let cap = e.vsetdup_w(16383);
            let hi = e.vmin_w(lo, cap);
            e.free(lo);
            e.free(cap);
            e.vsst_w(hi, oa + (base * 2) as u64, &[StrideMode::One]);
            e.free(hi);
            base += chunk;
        }
        let got = e.mem_read_vec::<i16>(oa, n);
        KernelRun {
            checked: check_exact(&got, &want),
            trace: e.take_trace(),
        }
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        let v = npix(scale) as u64 / 8;
        NeonProfile {
            ops: vec![(NeonOpClass::IntSimple, v * 4)],
            chain_ops: vec![],
            loads: v * 3,
            stores: v,
            scalar_instrs: v * 2,
            touched_bytes: npix(scale) as u64 * 8,
            base_addr: 0x1100_0000,
        }
    }
}

/// Horizontal bilinear 2× upsampling: `out[2i]=a[i]`,
/// `out[2i+1]=(a[i]+a[i+1]+1)>>1`.
pub struct UpsampleBilinear;

impl Kernel for UpsampleBilinear {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "webp_upsample",
            library: Library::Libwebp,
            dims: 2,
            dtype_bits: 8,
            selected: false,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        let n = npix(scale);
        let src = gen_u8(0x84, n + 1);
        let mut want = vec![0u8; 2 * n];
        for i in 0..n {
            want[2 * i] = src[i];
            want[2 * i + 1] = (((u16::from(src[i]) + u16::from(src[i + 1])) + 1) >> 1) as u8;
        }

        let mut e = engine();
        e.vsetwidth(16);
        let sa = e.mem_alloc_typed::<u8>(n + 1);
        let oa = e.mem_alloc_typed::<u8>(2 * n);
        e.mem_fill(sa, &src);

        let lanes = e.lanes();
        e.vsetdimc(1);
        e.vsetststr(0, 2); // interleaved output positions
        let mut base = 0usize;
        while base < n {
            let chunk = lanes.min(n - base);
            e.vsetdiml(0, chunk);
            e.scalar(6);
            let a = e.vsld_ub(sa + base as u64, &[StrideMode::One]);
            // Even outputs: straight copy.
            e.vsst_ub(a, oa + (2 * base) as u64, &[StrideMode::Cr]);
            let b = e.vsld_ub(sa + (base + 1) as u64, &[StrideMode::One]);
            let aw = e.vcvt(a, DType::U16);
            e.free(a);
            let bw = e.vcvt(b, DType::U16);
            e.free(b);
            let s = e.vadd_uw(aw, bw);
            e.free(aw);
            e.free(bw);
            let one = e.vsetdup_uw(1);
            let s1 = e.vadd_uw(s, one);
            e.free(s);
            e.free(one);
            let avg = e.vshir_uw(s1, 1);
            e.free(s1);
            let avg8 = e.vcvt(avg, DType::U8);
            e.free(avg);
            e.vsst_ub(avg8, oa + (2 * base + 1) as u64, &[StrideMode::Cr]);
            e.free(avg8);
            base += chunk;
        }
        let got = e.mem_read_vec::<u8>(oa, 2 * n);
        KernelRun {
            checked: check_exact(&got, &want),
            trace: e.take_trace(),
        }
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        let v = npix(scale) as u64 / 16;
        NeonProfile {
            ops: vec![
                (NeonOpClass::IntSimple, v * 3),
                (NeonOpClass::Permute, v * 2),
            ],
            chain_ops: vec![],
            loads: v * 2,
            stores: v * 2,
            scalar_instrs: v * 2,
            touched_bytes: npix(scale) as u64 * 3,
            base_addr: 0x1200_0000,
        }
    }
}

/// Alpha premultiplication: `out = (x·a + 255) >> 8`.
pub struct AlphaMultiply;

impl Kernel for AlphaMultiply {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "webp_alpha_mult",
            library: Library::Libwebp,
            dims: 1,
            dtype_bits: 16,
            selected: false,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        let n = npix(scale);
        let x = gen_u8(0x85, n);
        let a = gen_u8(0x86, n);
        let want: Vec<u8> = (0..n)
            .map(|i| (((u32::from(x[i]) * u32::from(a[i])) + 255) >> 8) as u8)
            .collect();

        let mut e = engine();
        e.vsetwidth(32);
        let xa = e.mem_alloc_typed::<u8>(n);
        let aa = e.mem_alloc_typed::<u8>(n);
        let oa = e.mem_alloc_typed::<u8>(n);
        e.mem_fill(xa, &x);
        e.mem_fill(aa, &a);

        let lanes = e.lanes();
        e.vsetdimc(1);
        let mut base = 0usize;
        while base < n {
            let chunk = lanes.min(n - base);
            e.vsetdiml(0, chunk);
            e.scalar(6);
            let xv8 = e.vsld_ub(xa + base as u64, &[StrideMode::One]);
            let xv = e.vcvt(xv8, DType::U32);
            e.free(xv8);
            let av8 = e.vsld_ub(aa + base as u64, &[StrideMode::One]);
            let av = e.vcvt(av8, DType::U32);
            e.free(av8);
            let p = e.vmul_udw(xv, av);
            e.free(xv);
            e.free(av);
            let c = e.vsetdup_udw(255);
            let pc = e.vadd_udw(p, c);
            e.free(p);
            e.free(c);
            let sh = e.vshir_udw(pc, 8);
            e.free(pc);
            let o8 = e.vcvt(sh, DType::U8);
            e.free(sh);
            e.vsst_ub(o8, oa + base as u64, &[StrideMode::One]);
            e.free(o8);
            base += chunk;
        }
        let got = e.mem_read_vec::<u8>(oa, n);
        KernelRun {
            checked: check_exact(&got, &want),
            trace: e.take_trace(),
        }
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        let v = npix(scale) as u64 / 8;
        NeonProfile {
            ops: vec![
                (NeonOpClass::IntMul, v),
                (NeonOpClass::IntSimple, v),
                (NeonOpClass::Shift, v),
                (NeonOpClass::Permute, v * 2),
            ],
            chain_ops: vec![],
            loads: v,
            stores: v / 2,
            scalar_instrs: v,
            touched_bytes: npix(scale) as u64 * 3,
            base_addr: 0x1300_0000,
        }
    }
}

fn image(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Test => (64, 48),
        Scale::Paper => (640, 360),
    }
}

/// Lossless vertical filter: `out[y][x] = in[y][x] - in[y-1][x]` — reads
/// only inputs, so it is one fully-parallel 2-D pass.
pub struct VerticalFilter;

impl Kernel for VerticalFilter {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "webp_vertical_filter",
            library: Library::Libwebp,
            dims: 2,
            dtype_bits: 8,
            selected: false,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        let (w, h) = image(scale);
        let img = gen_u8(0x87, w * h);
        let mut want = vec![0u8; w * h];
        want[..w].copy_from_slice(&img[..w]);
        for y in 1..h {
            for x in 0..w {
                want[y * w + x] = img[y * w + x].wrapping_sub(img[(y - 1) * w + x]);
            }
        }

        let mut e = engine();
        e.vsetwidth(8);
        let ia = e.mem_alloc_typed::<u8>(w * h);
        let oa = e.mem_alloc_typed::<u8>(w * h);
        e.mem_fill(ia, &img);
        // Row 0 passes through on the scalar side.
        for x in 0..w {
            let v = e.mem_read::<u8>(ia, x);
            e.mem_mut().write::<u8>(oa, x, v);
        }
        e.scalar(2 * w as u64);

        let lanes = e.lanes();
        let rows_per_tile = (lanes / w).clamp(1, 256);
        e.vsetdimc(2);
        e.vsetdiml(0, w);
        e.vsetldstr(1, w as i64);
        e.vsetststr(1, w as i64);
        let mut y = 1usize;
        while y < h {
            let rows = rows_per_tile.min(h - y);
            e.vsetdiml(1, rows);
            e.scalar(6);
            let cur = e.vsld_ub(ia + (y * w) as u64, &[StrideMode::One, StrideMode::Cr]);
            let above = e.vsld_ub(
                ia + ((y - 1) * w) as u64,
                &[StrideMode::One, StrideMode::Cr],
            );
            let d = e.vsub_ub(cur, above);
            e.vsst_ub(d, oa + (y * w) as u64, &[StrideMode::One, StrideMode::Cr]);
            for r in [cur, above, d] {
                e.free(r);
            }
            y += rows;
        }
        let got = e.mem_read_vec::<u8>(oa, w * h);
        KernelRun {
            checked: check_exact(&got, &want),
            trace: e.take_trace(),
        }
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        let (w, h) = image(scale);
        let v = (w * h / 16) as u64;
        NeonProfile {
            ops: vec![(NeonOpClass::IntSimple, v)],
            chain_ops: vec![],
            loads: v * 2,
            stores: v,
            scalar_instrs: v,
            touched_bytes: (w * h * 2) as u64,
            base_addr: 0x1400_0000,
        }
    }
}

/// Lossless gradient filter: `out = in - clamp(left + above - upleft)`;
/// like [`VerticalFilter`], it reads only inputs.
pub struct GradientFilter;

impl Kernel for GradientFilter {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "webp_gradient_filter",
            library: Library::Libwebp,
            dims: 2,
            dtype_bits: 16,
            selected: false,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        let (w, h) = image(scale);
        let img = gen_u8(0x88, w * h);
        let grad =
            |l: u8, a: u8, c: u8| (i16::from(l) + i16::from(a) - i16::from(c)).clamp(0, 255) as u8;
        let mut want = vec![0u8; w * h];
        for y in 0..h {
            for x in 0..w {
                let pred = if y == 0 || x == 0 {
                    0
                } else {
                    grad(
                        img[y * w + x - 1],
                        img[(y - 1) * w + x],
                        img[(y - 1) * w + x - 1],
                    )
                };
                want[y * w + x] = img[y * w + x].wrapping_sub(pred);
            }
        }
        // Edge rows/cols handled by the scalar core.
        let mut e = engine();
        e.vsetwidth(16);
        let ia = e.mem_alloc_typed::<u8>(w * h);
        let oa = e.mem_alloc_typed::<u8>(w * h);
        e.mem_fill(ia, &img);
        for x in 0..w {
            let v = e.mem_read::<u8>(ia, x);
            e.mem_mut().write::<u8>(oa, x, v);
        }
        for y in 1..h {
            let v = e.mem_read::<u8>(ia, y * w);
            e.mem_mut().write::<u8>(oa, y * w, v);
        }
        e.scalar(2 * (w + h) as u64);

        let lanes = e.lanes();
        let wi = w - 1; // interior width
        let rows_per_tile = (lanes / wi).clamp(1, 256);
        e.vsetdimc(2);
        e.vsetdiml(0, wi);
        e.vsetldstr(1, w as i64);
        e.vsetststr(1, w as i64);
        let m = [StrideMode::One, StrideMode::Cr];
        let mut y = 1usize;
        while y < h {
            let rows = rows_per_tile.min(h - y);
            e.vsetdiml(1, rows);
            e.scalar(8);
            let base = ia + (y * w + 1) as u64;
            let cur8 = e.vsld_ub(base, &m);
            let l8 = e.vsld_ub(base - 1, &m);
            let a8 = e.vsld_ub(base - w as u64, &m);
            let c8 = e.vsld_ub(base - w as u64 - 1, &m);
            let l = e.vcvt(l8, DType::I16);
            e.free(l8);
            let a = e.vcvt(a8, DType::I16);
            e.free(a8);
            let c = e.vcvt(c8, DType::I16);
            e.free(c8);
            let la = e.vadd_w(l, a);
            e.free(l);
            e.free(a);
            let p = e.vsub_w(la, c);
            e.free(la);
            e.free(c);
            let zero = e.vsetdup_w(0);
            let p0 = e.vmax_w(p, zero);
            e.free(p);
            e.free(zero);
            let cap = e.vsetdup_w(255);
            let p1 = e.vmin_w(p0, cap);
            e.free(p0);
            e.free(cap);
            let cur = e.vcvt(cur8, DType::I16);
            e.free(cur8);
            let d = e.vsub_w(cur, p1);
            e.free(cur);
            e.free(p1);
            let d8 = e.vcvt(d, DType::U8);
            e.free(d);
            e.vsst_ub(d8, oa + (y * w + 1) as u64, &m);
            e.free(d8);
            y += rows;
        }
        let got = e.mem_read_vec::<u8>(oa, w * h);
        KernelRun {
            checked: check_exact(&got, &want),
            trace: e.take_trace(),
        }
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        let (w, h) = image(scale);
        let v = (w * h / 8) as u64;
        NeonProfile {
            ops: vec![(NeonOpClass::IntSimple, v * 6), (NeonOpClass::Permute, v)],
            chain_ops: vec![],
            loads: v * 4,
            stores: v,
            scalar_instrs: v * 2,
            touched_bytes: (w * h * 2) as u64,
            base_addr: 0x1500_0000,
        }
    }
}

/// Per-4×4-block sum of squared differences (distortion metric).
pub struct Sse4x4;

impl Kernel for Sse4x4 {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "webp_sse4x4",
            library: Library::Libwebp,
            dims: 2,
            dtype_bits: 32,
            selected: false,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        let blocks = match scale {
            Scale::Test => 256,
            Scale::Paper => 4096,
        };
        let a = gen_u8(0x89, blocks * 16);
        let b = gen_u8(0x8A, blocks * 16);
        let want: Vec<i32> = (0..blocks)
            .map(|blk| {
                (0..16)
                    .map(|p| {
                        let d = i32::from(a[blk * 16 + p]) - i32::from(b[blk * 16 + p]);
                        d * d
                    })
                    .sum()
            })
            .collect();

        let mut e = engine();
        let aa = e.mem_alloc_typed::<u8>(blocks * 16);
        let ba = e.mem_alloc_typed::<u8>(blocks * 16);
        let oa = e.mem_alloc_typed::<i32>(blocks);
        e.mem_fill(aa, &a);
        e.mem_fill(ba, &b);

        let lanes = e.lanes();
        let bpt = (lanes / 16).min(blocks).max(1);
        let mut blk = 0usize;
        while blk < blocks {
            let nb = bpt.min(blocks - blk);
            // Block-transposed layout [B, 16]: lane = b + B·p, so the
            // halving fold sums within each block.
            e.vsetdimc(2);
            e.vsetdiml(0, nb);
            e.vsetdiml(1, 16);
            e.vsetldstr(0, 16);
            e.vsetldstr(1, 1);
            e.scalar(8);
            let m = [StrideMode::Cr, StrideMode::Cr];
            let av8 = e.vsld_ub(aa + (blk * 16) as u64, &m);
            let av = e.vcvt(av8, DType::I32);
            e.free(av8);
            let bv8 = e.vsld_ub(ba + (blk * 16) as u64, &m);
            let bv = e.vcvt(bv8, DType::I32);
            e.free(bv8);
            let d = e.vsub_dw(av, bv);
            e.free(av);
            e.free(bv);
            let sq = e.vmul_dw(d, d);
            e.free(d);
            e.vsetdimc(1);
            e.vsetdiml(0, nb * 16);
            let sums = tree_halve(&mut e, sq, nb * 16, nb);
            e.vsetdimc(1);
            e.vsetdiml(0, nb);
            e.vsst_dw(sums, oa + (blk * 4) as u64, &[StrideMode::One]);
            e.free(sums);
            blk += nb;
        }
        let got = e.mem_read_vec::<i32>(oa, blocks);
        KernelRun {
            checked: check_exact(&got, &want),
            trace: e.take_trace(),
        }
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        let blocks = match scale {
            Scale::Test => 256u64,
            Scale::Paper => 4096,
        };
        NeonProfile {
            ops: vec![
                (NeonOpClass::IntMul, blocks * 4),
                (NeonOpClass::IntSimple, blocks * 4),
                (NeonOpClass::Reduce, blocks),
            ],
            chain_ops: vec![(NeonOpClass::Reduce, blocks / 16)],
            loads: blocks * 2,
            stores: blocks / 4,
            scalar_instrs: blocks * 4,
            touched_bytes: blocks * 36,
            base_addr: 0x1600_0000,
        }
    }
}

/// Coefficient quantisation with sign restore: `q = sign(c)·((|c|·iq) >> 17)`.
pub struct QuantizeCoeffs;

impl Kernel for QuantizeCoeffs {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "webp_quantize",
            library: Library::Libwebp,
            dims: 1,
            dtype_bits: 32,
            selected: false,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        let n = npix(scale);
        let coefs = gen_i16(0x8B, n);
        let iq: i32 = 3567; // fixed-point 1/q
        let want: Vec<i16> = coefs
            .iter()
            .map(|&c| {
                let q = ((i32::from(c).abs() * iq) >> 17) as i16;
                if c < 0 {
                    -q
                } else {
                    q
                }
            })
            .collect();

        let mut e = engine();
        let ca = e.mem_alloc_typed::<i16>(n);
        let oa = e.mem_alloc_typed::<i16>(n);
        e.mem_fill(ca, &coefs);

        let lanes = e.lanes();
        e.vsetdimc(1);
        let mut base = 0usize;
        while base < n {
            let chunk = lanes.min(n - base);
            e.vsetdiml(0, chunk);
            e.scalar(6);
            let c16 = e.vsld_w(ca + (base * 2) as u64, &[StrideMode::One]);
            let c = e.vcvt(c16, DType::I32);
            e.free(c16);
            let zero = e.vsetdup_dw(0);
            let neg = e.vsub_dw(zero, c);
            let abs = e.vmax_dw(c, neg);
            e.free(neg);
            let k = e.vsetdup_dw(iq);
            let p = e.vmul_dw(abs, k);
            e.free(abs);
            e.free(k);
            let q = e.vshir_dw(p, 17);
            e.free(p);
            // Restore sign where c < 0 via predicated copy of -q.
            let nq = e.vsub_dw(zero, q);
            e.vlt_dw(c, zero);
            e.set_predication(true);
            e.copy_into(q, nq);
            e.set_predication(false);
            for r in [c, zero, nq] {
                e.free(r);
            }
            let q16 = e.vcvt(q, DType::I16);
            e.free(q);
            e.vsst_w(q16, oa + (base * 2) as u64, &[StrideMode::One]);
            e.free(q16);
            base += chunk;
        }
        let got = e.mem_read_vec::<i16>(oa, n);
        KernelRun {
            checked: check_exact(&got, &want),
            trace: e.take_trace(),
        }
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        let v = npix(scale) as u64 / 4;
        NeonProfile {
            ops: vec![
                (NeonOpClass::IntMul, v),
                (NeonOpClass::IntSimple, v * 3),
                (NeonOpClass::Shift, v),
            ],
            chain_ops: vec![],
            loads: v,
            stores: v,
            scalar_instrs: v,
            touched_bytes: npix(scale) as u64 * 4,
            base_addr: 0x1700_0000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharp_update_matches() {
        assert!(SharpUpdate.run_mve(Scale::Test).checked.ok());
    }

    #[test]
    fn upsample_matches() {
        assert!(UpsampleBilinear.run_mve(Scale::Test).checked.ok());
    }

    #[test]
    fn alpha_multiply_matches() {
        assert!(AlphaMultiply.run_mve(Scale::Test).checked.ok());
    }

    #[test]
    fn vertical_filter_matches() {
        assert!(VerticalFilter.run_mve(Scale::Test).checked.ok());
    }

    #[test]
    fn gradient_filter_matches() {
        assert!(GradientFilter.run_mve(Scale::Test).checked.ok());
    }

    #[test]
    fn sse4x4_matches() {
        assert!(Sse4x4.run_mve(Scale::Test).checked.ok());
    }

    #[test]
    fn quantize_coeffs_matches() {
        assert!(QuantizeCoeffs.run_mve(Scale::Test).checked.ok());
    }
}
