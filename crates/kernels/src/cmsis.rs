//! CMSIS-DSP — the three FIR variants of the paper's selected set.
//!
//! CMSIS-DSP is Arm's fixed-point DSP library, so the variants use its
//! fixed-point types: FIR-V (q15/i16, 32 taps), FIR-S (q7/i8, 16 taps),
//! FIR-L (q31/i32, 128 taps). Low precision is where bit-serial in-cache
//! computing shines (Figure 12(c)): arithmetic latency is quadratic in the
//! element width.

use crate::common::{check_exact, engine, gen_i16, KernelRun, Scale};
use crate::registry::{Kernel, KernelInfo, Library};
use mve_baselines::gpu::GpuKernelCost;
use mve_baselines::rvv::Rvv;
use mve_core::dtype::{BinOp, DType};
use mve_core::isa::{Opcode, StrideMode};
use mve_coresim::neon::{NeonOpClass, NeonProfile};

/// The FIR filter family; variant selects precision and tap count.
#[derive(Debug, Clone, Copy)]
pub enum Fir {
    /// q15 (i16), 32 taps.
    V,
    /// q7 (i8), 16 taps.
    S,
    /// q31 (i32), 128 taps.
    L,
}

impl Fir {
    fn taps(&self) -> usize {
        match self {
            Fir::V => 32,
            Fir::S => 16,
            Fir::L => 128,
        }
    }

    fn dtype(&self) -> DType {
        match self {
            Fir::V => DType::I16,
            Fir::S => DType::I8,
            Fir::L => DType::I32,
        }
    }

    fn samples(scale: Scale) -> usize {
        match scale {
            Scale::Test => 8 * 1024,
            Scale::Paper => 192 * 1024,
        }
    }

    /// Deterministic sample/coefficient data as canonical lane values.
    fn gen_lanes(&self, seed: u64, n: usize) -> Vec<u64> {
        let dt = self.dtype();
        gen_i16(seed, n)
            .iter()
            .map(|&v| dt.from_i64(i64::from(v)))
            .collect()
    }

    /// Scalar reference in the variant's exact wrap-around semantics:
    /// `y[i] = Σ_t h[t]·x[i+t]` (mod 2^width).
    pub fn scalar_ref(&self, x: &[u64], h: &[u64]) -> Vec<u64> {
        let dt = self.dtype();
        let n_out = x.len() - h.len() + 1;
        (0..n_out)
            .map(|i| {
                h.iter().enumerate().fold(0u64, |acc, (t, &c)| {
                    let p = dt.binop(BinOp::Mul, c, x[i + t]);
                    dt.binop(BinOp::Add, acc, p)
                })
            })
            .collect()
    }

    fn run_mve_impl(&self, scale: Scale) -> KernelRun {
        let dt = self.dtype();
        let eb = dt.bytes();
        let n = Self::samples(scale);
        let taps = self.taps();
        let x = self.gen_lanes(0x41, n);
        let h = self.gen_lanes(0x42, taps);
        let want = self.scalar_ref(&x, &h);
        let n_out = want.len();

        let mut e = engine();
        e.vsetwidth(dt.bits().max(8));
        let xa = e.mem_alloc(n as u64 * eb);
        let oa = e.mem_alloc(n_out as u64 * eb);
        for (i, &v) in x.iter().enumerate() {
            e.mem_mut().write_raw(xa + i as u64 * eb, eb, v);
        }

        let lanes = e.lanes();
        e.vsetdimc(1);
        let mut base = 0usize;
        while base < n_out {
            let chunk = lanes.min(n_out - base);
            e.vsetdiml(0, chunk);
            e.scalar(6);
            let mut acc = e.setdup(dt, 0);
            for (t, &c) in h.iter().enumerate() {
                e.scalar(4);
                let xv = e.load(dt, xa + ((base + t) as u64) * eb, &[StrideMode::One]);
                let cv = e.setdup(dt, c);
                let p = e.binop(Opcode::Mul, BinOp::Mul, xv, cv);
                let acc2 = e.binop(Opcode::Add, BinOp::Add, acc, p);
                for r in [xv, cv, p, acc] {
                    e.free(r);
                }
                acc = acc2;
            }
            e.store(acc, oa + (base as u64) * eb, &[StrideMode::One]);
            e.free(acc);
            base += chunk;
        }
        let got: Vec<u64> = (0..n_out)
            .map(|i| e.mem().read_raw(oa + i as u64 * eb, eb))
            .collect();
        KernelRun {
            checked: check_exact(&got, &want),
            trace: e.take_trace(),
        }
    }

    fn run_rvv_impl(&self, scale: Scale) -> KernelRun {
        // FIR is 1-D, so the RVV version mirrors the MVE structure with
        // 1-D loads — near parity, as Figure 10 shows.
        let dt = self.dtype();
        let eb = dt.bytes();
        let n = Self::samples(scale);
        let taps = self.taps();
        let x = self.gen_lanes(0x41, n);
        let h = self.gen_lanes(0x42, taps);
        let want = self.scalar_ref(&x, &h);
        let n_out = want.len();

        let mut e = engine();
        e.vsetwidth(dt.bits().max(8));
        let xa = e.mem_alloc(n as u64 * eb);
        let oa = e.mem_alloc(n_out as u64 * eb);
        for (i, &v) in x.iter().enumerate() {
            e.mem_mut().write_raw(xa + i as u64 * eb, eb, v);
        }

        let lanes = e.lanes();
        let mut rvv = Rvv::new(&mut e);
        let mut base = 0usize;
        while base < n_out {
            let chunk = lanes.min(n_out - base);
            rvv.setvl(chunk);
            rvv.engine().scalar(6);
            let mut acc = rvv.engine().setdup(dt, 0);
            for (t, &c) in h.iter().enumerate() {
                rvv.engine().scalar(4);
                let xv = rvv.load_1d(dt, xa + ((base + t) as u64) * eb, 1);
                let en = rvv.engine();
                let cv = en.setdup(dt, c);
                let p = en.binop(Opcode::Mul, BinOp::Mul, xv, cv);
                let acc2 = en.binop(Opcode::Add, BinOp::Add, acc, p);
                for r in [xv, cv, p, acc] {
                    en.free(r);
                }
                acc = acc2;
            }
            rvv.store_1d(acc, oa + (base as u64) * eb, 1);
            rvv.engine().free(acc);
            base += chunk;
        }
        let got: Vec<u64> = (0..n_out)
            .map(|i| e.mem().read_raw(oa + i as u64 * eb, eb))
            .collect();
        KernelRun {
            checked: check_exact(&got, &want),
            trace: e.take_trace(),
        }
    }
}

impl Kernel for Fir {
    fn info(&self) -> KernelInfo {
        let (name, bits) = match self {
            Fir::V => ("fir_v", 16),
            Fir::S => ("fir_s", 8),
            Fir::L => ("fir_l", 32),
        };
        KernelInfo {
            name,
            library: Library::CmsisDsp,
            dims: 1,
            dtype_bits: bits,
            selected: true,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        self.run_mve_impl(scale)
    }

    fn run_rvv(&self, scale: Scale) -> Option<KernelRun> {
        Some(self.run_rvv_impl(scale))
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        let n = Self::samples(scale) as u64;
        let taps = self.taps() as u64;
        let lanes = u64::from(128 / self.dtype().bits());
        let macs = n * taps / lanes;
        NeonProfile {
            ops: vec![(NeonOpClass::IntMul, macs)],
            chain_ops: vec![(NeonOpClass::IntMul, taps)],
            loads: macs,
            stores: n / lanes,
            scalar_instrs: macs,
            touched_bytes: n * self.dtype().bytes(),
            base_addr: 0x400_0000,
        }
    }

    fn gpu_cost(&self, scale: Scale) -> Option<GpuKernelCost> {
        let n = Self::samples(scale) as u64;
        let taps = self.taps() as u64;
        let esize = self.dtype().bytes();
        Some(GpuKernelCost {
            ops: 2 * n * taps,
            bytes_in: n * esize,
            bytes_out: n * esize,
            launches: 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Checked;

    fn assert_ok(c: &Checked) {
        assert!(c.ok(), "{c:?}");
    }

    #[test]
    fn fir_v_mve_and_rvv_match() {
        assert_ok(&Fir::V.run_mve(Scale::Test).checked);
        assert_ok(&Fir::V.run_rvv(Scale::Test).expect("rvv").checked);
    }

    #[test]
    fn fir_s_mve_and_rvv_match() {
        assert_ok(&Fir::S.run_mve(Scale::Test).checked);
        assert_ok(&Fir::S.run_rvv(Scale::Test).expect("rvv").checked);
    }

    #[test]
    fn fir_l_mve_matches() {
        assert_ok(&Fir::L.run_mve(Scale::Test).checked);
        assert_ok(&Fir::L.run_rvv(Scale::Test).expect("rvv").checked);
    }

    #[test]
    fn tap_counts_scale_instruction_count() {
        let v = Fir::V.run_mve(Scale::Test).trace.instr_mix().vector_total();
        let l = Fir::L.run_mve(Scale::Test).trace.instr_mix().vector_total();
        assert!(l > 3 * v, "128 taps must cost more than 32: {l} vs {v}");
    }

    #[test]
    fn scalar_ref_wraps_like_fixed_point() {
        // q7 products wrap at 8 bits, matching the engine's semantics.
        let f = Fir::S;
        let x = vec![DType::I8.from_i64(100), DType::I8.from_i64(50)];
        let h = vec![DType::I8.from_i64(3)];
        let y = f.scalar_ref(&x, &h);
        assert_eq!(DType::I8.to_i64(y[0]), i64::from(100i8.wrapping_mul(3)));
    }
}
