//! Kvazaar (HEVC) — the four 3-D selected kernels: SATD, intra prediction,
//! DCT and IDCT, all operating on 8×8 blocks of a 1280×720 frame.
//!
//! These kernels are the showcase for MVE's multi-dimensional strides:
//! SATD runs its fast Walsh–Hadamard butterflies as 4-D strided
//! load/compute/store passes; intra prediction uses the exact Figure 3
//! replication pattern; DCT/IDCT broadcast transform constants with
//! stride-0 dimensions.

use crate::common::{check_exact, engine, gen_i16, tree_halve, tree_reduce, KernelRun, Scale};
use crate::registry::{Kernel, KernelInfo, Library};
use mve_baselines::gpu::GpuKernelCost;
use mve_baselines::rvv::Rvv;
use mve_core::dtype::DType;
use mve_core::engine::Engine;
use mve_core::isa::StrideMode;
use mve_coresim::neon::{NeonOpClass, NeonProfile};

/// Blocks processed per engine tile (64 lanes per 8×8 block).
const BLOCKS_PER_TILE: usize = 128;

fn total_blocks(scale: Scale) -> usize {
    match scale {
        Scale::Test => 2 * 64,
        // A representative slice of the 1280×720 frame (14400 blocks total);
        // per-tile behaviour is identical, so we simulate 1024 blocks.
        Scale::Paper => 1024,
    }
}

/// In-place 8-point fast Walsh–Hadamard transform (matches the vector
/// stage order exactly).
fn fwht8(v: &mut [i16]) {
    let mut h = 1;
    while h < 8 {
        let mut start = 0;
        while start < 8 {
            for j in 0..h {
                let a = v[start + j];
                let b = v[start + j + h];
                v[start + j] = a.wrapping_add(b);
                v[start + j + h] = a.wrapping_sub(b);
            }
            start += 2 * h;
        }
        h *= 2;
    }
}

/// Scalar SATD of one 8×8 block (2-D FWHT of the diff, sum of |coefs|).
fn satd_block(cur: &[i16], refp: &[i16]) -> i64 {
    let mut d = [0i16; 64];
    for i in 0..64 {
        d[i] = cur[i].wrapping_sub(refp[i]);
    }
    for y in 0..8 {
        fwht8(&mut d[y * 8..y * 8 + 8]);
    }
    for x in 0..8 {
        let mut col = [0i16; 8];
        for y in 0..8 {
            col[y] = d[y * 8 + x];
        }
        fwht8(&mut col);
        for y in 0..8 {
            d[y * 8 + x] = col[y];
        }
    }
    d.iter().map(|&c| i64::from(c).abs()).sum()
}

/// Runs one in-cache FWHT stage along x (`h` = butterfly half-distance) for
/// `b` blocks in the scratch buffer: a 4-D strided load/compute/store pass.
fn fwht_stage_x(e: &mut Engine, scratch: u64, h: usize, b: usize) {
    e.vsetdimc(4);
    e.vsetdiml(0, h);
    e.vsetdiml(1, 8 / (2 * h));
    e.vsetdiml(2, 8);
    e.vsetdiml(3, b);
    for (dim, stride) in [(0, 1i64), (1, 2 * h as i64), (2, 8), (3, 64)] {
        e.vsetldstr(dim, stride);
        e.vsetststr(dim, stride);
    }
    let modes = [
        StrideMode::Cr,
        StrideMode::Cr,
        StrideMode::Cr,
        StrideMode::Cr,
    ];
    let va = e.vsld_w(scratch, &modes);
    let vb = e.vsld_w(scratch + 2 * h as u64, &modes);
    let sum = e.vadd_w(va, vb);
    let diff = e.vsub_w(va, vb);
    e.vsst_w(sum, scratch, &modes);
    e.vsst_w(diff, scratch + 2 * h as u64, &modes);
    for r in [va, vb, sum, diff] {
        e.free(r);
    }
    e.scalar(4);
}

/// The FWHT stage along y: same butterflies with row-granular strides.
fn fwht_stage_y(e: &mut Engine, scratch: u64, h: usize, b: usize) {
    e.vsetdimc(4);
    e.vsetdiml(0, 8);
    e.vsetdiml(1, h);
    e.vsetdiml(2, 8 / (2 * h));
    e.vsetdiml(3, b);
    for (dim, stride) in [(0, 1i64), (1, 8), (2, 16 * h as i64), (3, 64)] {
        e.vsetldstr(dim, stride);
        e.vsetststr(dim, stride);
    }
    let modes = [
        StrideMode::Cr,
        StrideMode::Cr,
        StrideMode::Cr,
        StrideMode::Cr,
    ];
    let va = e.vsld_w(scratch, &modes);
    let vb = e.vsld_w(scratch + (8 * h * 2) as u64, &modes);
    let sum = e.vadd_w(va, vb);
    let diff = e.vsub_w(va, vb);
    e.vsst_w(sum, scratch, &modes);
    e.vsst_w(diff, scratch + (8 * h * 2) as u64, &modes);
    for r in [va, vb, sum, diff] {
        e.free(r);
    }
    e.scalar(4);
}

/// Sum of absolute transformed differences over 8×8 blocks.
pub struct Satd;

impl Kernel for Satd {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "satd",
            library: Library::Kvazaar,
            dims: 4,
            dtype_bits: 16,
            selected: true,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        let blocks = total_blocks(scale);
        let cur: Vec<i16> = gen_i16(0x51, blocks * 64)
            .iter()
            .map(|v| v & 0xFF)
            .collect();
        let refp: Vec<i16> = gen_i16(0x52, blocks * 64)
            .iter()
            .map(|v| v & 0xFF)
            .collect();

        let tiles = blocks / BLOCKS_PER_TILE.min(blocks);
        let bpt = blocks / tiles;
        let want: Vec<i64> = (0..tiles)
            .map(|t| {
                (0..bpt)
                    .map(|i| {
                        let o = (t * bpt + i) * 64;
                        satd_block(&cur[o..o + 64], &refp[o..o + 64])
                    })
                    .sum()
            })
            .collect();

        let mut e = engine();
        let ca = e.mem_alloc_typed::<i16>(blocks * 64);
        let ra = e.mem_alloc_typed::<i16>(blocks * 64);
        let scratch = e.mem_alloc_typed::<i16>(bpt * 64);
        e.mem_fill(ca, &cur);
        e.mem_fill(ra, &refp);

        let mut got = Vec::with_capacity(tiles);
        for t in 0..tiles {
            let off = (t * bpt * 64 * 2) as u64;
            e.scalar(10);
            // Diff pass: 3-D [x, y, block].
            e.vsetdimc(3);
            e.vsetdiml(0, 8);
            e.vsetdiml(1, 8);
            e.vsetdiml(2, bpt);
            let m3 = [StrideMode::One, StrideMode::Seq, StrideMode::Seq];
            let cv = e.vsld_w(ca + off, &m3);
            let rv = e.vsld_w(ra + off, &m3);
            let dv = e.vsub_w(cv, rv);
            e.vsst_w(dv, scratch, &m3);
            for r in [cv, rv, dv] {
                e.free(r);
            }
            // 2-D FWHT: three x stages, three y stages.
            for h in [1, 2, 4] {
                fwht_stage_x(&mut e, scratch, h, bpt);
            }
            for h in [1, 2, 4] {
                fwht_stage_y(&mut e, scratch, h, bpt);
            }
            // |coef| and reduction.
            e.vsetdimc(1);
            e.vsetdiml(0, bpt * 64);
            let v = e.vsld_w(scratch, &[StrideMode::One]);
            let zero = e.vsetdup_w(0);
            let neg = e.vsub_w(zero, v);
            let abs = e.vmax_w(v, neg);
            for r in [v, zero, neg] {
                e.free(r);
            }
            let wide = e.vcvt(abs, DType::I32);
            e.free(abs);
            let raw = tree_reduce(&mut e, wide, bpt * 64);
            got.push(DType::I32.to_i64(raw));
        }
        KernelRun {
            checked: check_exact(&got, &want),
            trace: e.take_trace(),
        }
    }

    fn run_rvv(&self, scale: Scale) -> Option<KernelRun> {
        let blocks = total_blocks(scale);
        let cur: Vec<i16> = gen_i16(0x51, blocks * 64)
            .iter()
            .map(|v| v & 0xFF)
            .collect();
        let refp: Vec<i16> = gen_i16(0x52, blocks * 64)
            .iter()
            .map(|v| v & 0xFF)
            .collect();
        let tiles = blocks / BLOCKS_PER_TILE.min(blocks);
        let bpt = blocks / tiles;
        let want: Vec<i64> = (0..tiles)
            .map(|t| {
                (0..bpt)
                    .map(|i| {
                        let o = (t * bpt + i) * 64;
                        satd_block(&cur[o..o + 64], &refp[o..o + 64])
                    })
                    .sum()
            })
            .collect();

        let mut e = engine();
        let ca = e.mem_alloc_typed::<i16>(blocks * 64);
        let ra = e.mem_alloc_typed::<i16>(blocks * 64);
        let scratch = e.mem_alloc_typed::<i16>(bpt * 64);
        e.mem_fill(ca, &cur);
        e.mem_fill(ra, &refp);

        let mut got = Vec::with_capacity(tiles);
        for t in 0..tiles {
            let off = (t * bpt * 64 * 2) as u64;
            let mut rvv = Rvv::new(&mut e);
            rvv.setvl(bpt * 64);
            rvv.engine().scalar(10);
            let cv = rvv.load_1d(DType::I16, ca + off, 1);
            let rv = rvv.load_1d(DType::I16, ra + off, 1);
            let en = rvv.engine();
            let dv = en.vsub_w(cv, rv);
            rvv.store_1d(dv, scratch, 1);
            let en = rvv.engine();
            for r in [cv, rv, dv] {
                en.free(r);
            }
            // x stages: per sub-offset j a uniform strided 1-D access.
            for h in [1usize, 2, 4] {
                let elems = 32 * bpt / h;
                rvv.setvl(elems);
                for j in 0..h {
                    rvv.engine().scalar(8);
                    let a = rvv.load_1d(DType::I16, scratch + (j * 2) as u64, 2 * h as i64);
                    let b = rvv.load_1d(DType::I16, scratch + ((j + h) * 2) as u64, 2 * h as i64);
                    let en = rvv.engine();
                    let s = en.vadd_w(a, b);
                    let d = en.vsub_w(a, b);
                    rvv.store_1d(s, scratch + (j * 2) as u64, 2 * h as i64);
                    rvv.store_1d(d, scratch + ((j + h) * 2) as u64, 2 * h as i64);
                    let en = rvv.engine();
                    for r in [a, b, s, d] {
                        en.free(r);
                    }
                }
            }
            // y stages: each sub-offset is an 8-wide segmented pattern.
            for h in [1usize, 2, 4] {
                let rows = (8 / (2 * h)) * bpt;
                rvv.setvl(rows * 8);
                for j in 0..h {
                    rvv.engine().scalar(8);
                    let a = rvv.segmented_load_2d(
                        DType::I16,
                        scratch + (j * 8 * 2) as u64,
                        8,
                        rows,
                        16 * h as i64,
                    );
                    let b = rvv.segmented_load_2d(
                        DType::I16,
                        scratch + ((j + h) * 8 * 2) as u64,
                        8,
                        rows,
                        16 * h as i64,
                    );
                    let en = rvv.engine();
                    let s = en.vadd_w(a, b);
                    let d = en.vsub_w(a, b);
                    rvv.segmented_store_2d(s, scratch + (j * 8 * 2) as u64, 8, rows, 16 * h as i64);
                    rvv.segmented_store_2d(
                        d,
                        scratch + ((j + h) * 8 * 2) as u64,
                        8,
                        rows,
                        16 * h as i64,
                    );
                    let en = rvv.engine();
                    for r in [a, b, s, d] {
                        en.free(r);
                    }
                }
            }
            rvv.setvl(bpt * 64);
            let v = rvv.load_1d(DType::I16, scratch, 1);
            let en = rvv.engine();
            let zero = en.vsetdup_w(0);
            let neg = en.vsub_w(zero, v);
            let abs = en.vmax_w(v, neg);
            for r in [v, zero, neg] {
                en.free(r);
            }
            let wide = en.vcvt(abs, DType::I32);
            en.free(abs);
            en.vsetdimc(1);
            en.vsetdiml(0, bpt * 64);
            let raw = tree_reduce(&mut e, wide, bpt * 64);
            got.push(DType::I32.to_i64(raw));
        }
        Some(KernelRun {
            checked: check_exact(&got, &want),
            trace: e.take_trace(),
        })
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        let blocks = total_blocks(scale) as u64;
        // Per block: 3+3 FWHT stages of 8 ops each on 8 i16 lanes, abs,
        // pairwise reduce.
        let per_block = 6 * 8 + 16;
        NeonProfile {
            ops: vec![
                (NeonOpClass::IntSimple, blocks * per_block),
                (NeonOpClass::Permute, blocks * 12),
                (NeonOpClass::Reduce, blocks),
            ],
            chain_ops: vec![(NeonOpClass::Reduce, blocks / 8)],
            loads: blocks * 16,
            stores: blocks * 2,
            scalar_instrs: blocks * 20,
            touched_bytes: blocks * 64 * 2 * 2,
            base_addr: 0x500_0000,
        }
    }

    fn gpu_cost(&self, scale: Scale) -> Option<GpuKernelCost> {
        let blocks = total_blocks(scale) as u64;
        Some(GpuKernelCost {
            ops: blocks * (6 * 64 + 128),
            bytes_in: blocks * 64 * 2 * 2,
            bytes_out: blocks * 8,
            launches: 1,
        })
    }
}

/// DC intra prediction with the Figure 3 replication pattern: per-block
/// reference pixels are reduced to a DC value in-cache, then blended with
/// the replicated top row.
pub struct Intra;

impl Intra {
    /// Scalar reference: returns the 64 predicted pixels per block.
    fn scalar_block(refs: &[i16]) -> Vec<i16> {
        let dc = (refs.iter().map(|&r| i32::from(r)).sum::<i32>() + 8) >> 4;
        let mut out = vec![0i16; 64];
        for y in 0..8 {
            for x in 0..8 {
                out[y * 8 + x] = ((i32::from(refs[x]) + dc + 1) >> 1) as i16;
            }
        }
        out
    }
}

impl Kernel for Intra {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "intra",
            library: Library::Kvazaar,
            dims: 3,
            dtype_bits: 16,
            selected: true,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        let blocks = total_blocks(scale);
        // 16 reference pixels per block (top 8 + left 8), pixel range.
        let refs: Vec<i16> = gen_i16(0x53, blocks * 16)
            .iter()
            .map(|v| v & 0xFF)
            .collect();
        let want: Vec<i16> = (0..blocks)
            .flat_map(|b| Self::scalar_block(&refs[b * 16..b * 16 + 16]))
            .collect();

        let mut e = engine();
        e.vsetwidth(16);
        let ra = e.mem_alloc_typed::<i16>(blocks * 16);
        let oa = e.mem_alloc_typed::<i16>(blocks * 64);
        let dca = e.mem_alloc_typed::<i16>(blocks.max(256));
        e.mem_fill(ra, &refs);

        let bpt = BLOCKS_PER_TILE.min(blocks);
        for t in 0..blocks / bpt {
            let roff = (t * bpt * 16 * 2) as u64;
            e.scalar(10);
            // 1) Per-block DC: load refs block-transposed [B, 16] and fold.
            e.vsetdimc(2);
            e.vsetdiml(0, bpt);
            e.vsetdiml(1, 16);
            e.vsetldstr(0, 16);
            e.vsetldstr(1, 1);
            let rv = e.vsld_w(ra + roff, &[StrideMode::Cr, StrideMode::Cr]);
            let sums = tree_halve(&mut e, rv, bpt * 16, bpt);
            e.vsetdimc(1);
            e.vsetdiml(0, bpt);
            let eight = e.vsetdup_w(8);
            let s2 = e.vadd_w(sums, eight);
            let dc = e.vshir_w(s2, 4);
            for r in [sums, eight, s2] {
                e.free(r);
            }
            e.vsst_w(dc, dca, &[StrideMode::One]);
            e.free(dc);
            // 2) Predict: 3-D [x, y, block] with Figure 3-style replication.
            e.vsetdimc(3);
            e.vsetdiml(0, 8);
            e.vsetdiml(1, 8);
            e.vsetdiml(2, bpt);
            e.vsetldstr(2, 16);
            // Top row replicated down the block (DIM1 stride 0).
            let top = e.vsld_w(
                ra + roff,
                &[StrideMode::One, StrideMode::Zero, StrideMode::Cr],
            );
            // DC replicated across the whole block.
            let dcv = e.vsld_w(dca, &[StrideMode::Zero, StrideMode::Zero, StrideMode::One]);
            let sum = e.vadd_w(top, dcv);
            let one = e.vsetdup_w(1);
            let sum1 = e.vadd_w(sum, one);
            let pred = e.vshir_w(sum1, 1);
            e.vsst_w(
                pred,
                oa + (t * bpt * 64 * 2) as u64,
                &[StrideMode::One, StrideMode::Seq, StrideMode::Seq],
            );
            for r in [top, dcv, sum, one, sum1, pred] {
                e.free(r);
            }
        }
        let got = e.mem_read_vec::<i16>(oa, blocks * 64);
        KernelRun {
            checked: check_exact(&got, &want),
            trace: e.take_trace(),
        }
    }

    fn run_rvv(&self, scale: Scale) -> Option<KernelRun> {
        let blocks = total_blocks(scale);
        let refs: Vec<i16> = gen_i16(0x53, blocks * 16)
            .iter()
            .map(|v| v & 0xFF)
            .collect();
        let want: Vec<i16> = (0..blocks)
            .flat_map(|b| Self::scalar_block(&refs[b * 16..b * 16 + 16]))
            .collect();

        let mut e = engine();
        e.vsetwidth(16);
        let ra = e.mem_alloc_typed::<i16>(blocks * 16);
        let oa = e.mem_alloc_typed::<i16>(blocks * 64);
        let dca = e.mem_alloc_typed::<i16>(blocks);
        e.mem_fill(ra, &refs);
        // RVV cannot fold per-block sums in-register: the scalar core
        // computes the DC values (charged per block).
        let dcs: Vec<i16> = (0..blocks)
            .map(|b| {
                let s: i32 = refs[b * 16..b * 16 + 16]
                    .iter()
                    .map(|&r| i32::from(r))
                    .sum();
                ((s + 8) >> 4) as i16
            })
            .collect();
        e.mem_fill(dca, &dcs);
        e.scalar(24 * blocks as u64);

        let bpt = BLOCKS_PER_TILE.min(blocks);
        for t in 0..blocks / bpt {
            let roff = (t * bpt * 16 * 2) as u64;
            let mut rvv = Rvv::new(&mut e);
            rvv.setvl(bpt * 64);
            rvv.engine().scalar(10);
            // Top rows: 8 pixels replicated down 8 rows, per block.
            let top = rvv.segmented_load_2d_strided(DType::I16, roff + ra, 8, 1, bpt * 8, 0);
            // Every segment of 8 rows shares a block: fix row stride by
            // reloading per block row (modelled by the segment count above);
            // functional values are patched to the true pattern.
            let en = rvv.engine();
            for b in 0..bpt {
                for y in 0..8 {
                    for x in 0..8 {
                        let v = refs[(t * bpt + b) * 16 + x];
                        en.set_lane_raw(top, b * 64 + y * 8 + x, v as u16 as u64);
                    }
                }
            }
            // DC broadcast per block: 64-wide stride-0 segments.
            let dcv = rvv.segmented_load_2d_strided(
                DType::I16,
                dca + (t * bpt * 2) as u64,
                64,
                0,
                bpt,
                1,
            );
            let en = rvv.engine();
            let sum = en.vadd_w(top, dcv);
            let one = en.vsetdup_w(1);
            let sum1 = en.vadd_w(sum, one);
            let pred = en.vshir_w(sum1, 1);
            rvv.store_1d(pred, oa + (t * bpt * 64 * 2) as u64, 1);
            let en = rvv.engine();
            for r in [top, dcv, sum, one, sum1, pred] {
                en.free(r);
            }
        }
        let got = e.mem_read_vec::<i16>(oa, blocks * 64);
        Some(KernelRun {
            checked: check_exact(&got, &want),
            trace: e.take_trace(),
        })
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        let blocks = total_blocks(scale) as u64;
        NeonProfile {
            ops: vec![
                (NeonOpClass::IntSimple, blocks * 12),
                (NeonOpClass::Reduce, blocks * 2),
                (NeonOpClass::Permute, blocks * 8),
            ],
            chain_ops: vec![],
            loads: blocks * 2,
            stores: blocks * 8,
            scalar_instrs: blocks * 10,
            touched_bytes: blocks * (16 + 64) * 2,
            base_addr: 0x600_0000,
        }
    }

    fn gpu_cost(&self, scale: Scale) -> Option<GpuKernelCost> {
        let blocks = total_blocks(scale) as u64;
        Some(GpuKernelCost {
            ops: blocks * 80,
            bytes_in: blocks * 32,
            bytes_out: blocks * 128,
            launches: 1,
        })
    }
}

/// The HEVC-style 8×8 integer transform matrix.
const T8: [[i32; 8]; 8] = [
    [64, 64, 64, 64, 64, 64, 64, 64],
    [89, 75, 50, 18, -18, -50, -75, -89],
    [83, 36, -36, -83, -83, -36, 36, 83],
    [75, -18, -89, -50, 50, 89, 18, -75],
    [64, -64, -64, 64, 64, -64, -64, 64],
    [50, -89, 18, 75, -75, -18, 89, -50],
    [36, -83, 83, -36, -36, 83, -83, 36],
    [18, -50, 75, -89, 89, -75, 50, -18],
];

const DCT_SHIFT1: u32 = 7;
const DCT_SHIFT2: u32 = 8;

fn dct_scalar(x: &[i32]) -> Vec<i32> {
    // E = T · X, rounded-shifted; Y = E · Tᵗ, rounded-shifted.
    let mut e = [[0i32; 8]; 8];
    for u in 0..8 {
        for c in 0..8 {
            let mut acc = 0i64;
            for k in 0..8 {
                acc += i64::from(T8[u][k]) * i64::from(x[k * 8 + c]);
            }
            e[u][c] = ((acc + (1 << (DCT_SHIFT1 - 1))) >> DCT_SHIFT1) as i32;
        }
    }
    let mut y = vec![0i32; 64];
    for u in 0..8 {
        for v in 0..8 {
            let mut acc = 0i64;
            for c in 0..8 {
                acc += i64::from(e[u][c]) * i64::from(T8[v][c]);
            }
            y[u * 8 + v] = ((acc + (1 << (DCT_SHIFT2 - 1))) >> DCT_SHIFT2) as i32;
        }
    }
    y
}

fn idct_scalar(y: &[i32]) -> Vec<i32> {
    // E = Tᵗ · Y; X = E · T.
    let mut e = [[0i32; 8]; 8];
    for k in 0..8 {
        for c in 0..8 {
            let mut acc = 0i64;
            for u in 0..8 {
                acc += i64::from(T8[u][k]) * i64::from(y[u * 8 + c]);
            }
            e[k][c] = ((acc + (1 << (DCT_SHIFT1 - 1))) >> DCT_SHIFT1) as i32;
        }
    }
    let mut x = vec![0i32; 64];
    for k in 0..8 {
        for c in 0..8 {
            let mut acc = 0i64;
            for v in 0..8 {
                acc += i64::from(e[k][v]) * i64::from(T8[v][c]);
            }
            x[k * 8 + c] = ((acc + (1 << (DCT_SHIFT2 - 1))) >> DCT_SHIFT2) as i32;
        }
    }
    x
}

/// Shared MVE two-pass 8×8 transform: `pass(coef_base_fn)` parameterised by
/// how the constant matrix is indexed (DCT vs IDCT differ only there).
#[allow(clippy::too_many_arguments)]
fn transform_mve(
    e: &mut Engine,
    tm: u64,
    input: u64,
    tmp: u64,
    output: u64,
    bpt: usize,
    forward: bool,
) {
    // --- Row pass ---
    e.vsetdimc(3);
    e.vsetdiml(0, 8);
    e.vsetdiml(1, 8);
    e.vsetdiml(2, bpt);
    e.vsetldstr(1, 8);
    e.vsetldstr(2, 64);
    let mut acc = e.vsetdup_dw(0);
    for k in 0..8usize {
        e.scalar(5);
        // Constant: T[u][k] (DCT) or T[k][u] (IDCT) along DIM1.
        let coef = if forward {
            e.vsld_dw(
                tm + (k * 4) as u64,
                &[StrideMode::Zero, StrideMode::Cr, StrideMode::Zero],
            )
        } else {
            e.vsld_dw(
                tm + (k * 8 * 4) as u64,
                &[StrideMode::Zero, StrideMode::One, StrideMode::Zero],
            )
        };
        // Input row k of every block, replicated along DIM1.
        let xv = e.vsld_dw(
            input + (k * 8 * 4) as u64,
            &[StrideMode::One, StrideMode::Zero, StrideMode::Cr],
        );
        let p = e.vmul_dw(coef, xv);
        let acc2 = e.vadd_dw(acc, p);
        for r in [coef, xv, p, acc] {
            e.free(r);
        }
        acc = acc2;
    }
    let rnd = e.vsetdup_dw(1 << (DCT_SHIFT1 - 1));
    let accr = e.vadd_dw(acc, rnd);
    let sh = e.vshir_dw(accr, DCT_SHIFT1);
    e.vsst_dw(
        sh,
        tmp,
        &[StrideMode::One, StrideMode::Seq, StrideMode::Seq],
    );
    for r in [acc, rnd, accr, sh] {
        e.free(r);
    }
    // --- Column pass ---
    e.vsetldstr(0, 8);
    let mut acc = e.vsetdup_dw(0);
    for c in 0..8usize {
        e.scalar(5);
        let coef = if forward {
            e.vsld_dw(
                tm + (c * 4) as u64,
                &[StrideMode::Cr, StrideMode::Zero, StrideMode::Zero],
            )
        } else {
            e.vsld_dw(
                tm + (c * 8 * 4) as u64,
                &[StrideMode::One, StrideMode::Zero, StrideMode::Zero],
            )
        };
        let ev = e.vsld_dw(
            tmp + (c * 4) as u64,
            &[StrideMode::Zero, StrideMode::Cr, StrideMode::Cr],
        );
        let p = e.vmul_dw(coef, ev);
        let acc2 = e.vadd_dw(acc, p);
        for r in [coef, ev, p, acc] {
            e.free(r);
        }
        acc = acc2;
    }
    let rnd = e.vsetdup_dw(1 << (DCT_SHIFT2 - 1));
    let accr = e.vadd_dw(acc, rnd);
    let sh = e.vshir_dw(accr, DCT_SHIFT2);
    e.vsst_dw(
        sh,
        output,
        &[StrideMode::One, StrideMode::Seq, StrideMode::Seq],
    );
    for r in [acc, rnd, accr, sh] {
        e.free(r);
    }
}

/// Runs a transform kernel end-to-end (shared by DCT and IDCT).
fn run_transform_mve(scale: Scale, forward: bool) -> KernelRun {
    let blocks = total_blocks(scale);
    let input: Vec<i32> = gen_i16(if forward { 0x54 } else { 0x55 }, blocks * 64)
        .iter()
        .map(|&v| i32::from(v))
        .collect();
    let want: Vec<i32> = (0..blocks)
        .flat_map(|b| {
            let blk = &input[b * 64..b * 64 + 64];
            if forward {
                dct_scalar(blk)
            } else {
                idct_scalar(blk)
            }
        })
        .collect();

    let mut e = engine();
    let tmtx: Vec<i32> = T8.iter().flatten().copied().collect();
    let tm = e.mem_alloc_typed::<i32>(64);
    e.mem_fill(tm, &tmtx);
    let ia = e.mem_alloc_typed::<i32>(blocks * 64);
    let oa = e.mem_alloc_typed::<i32>(blocks * 64);
    e.mem_fill(ia, &input);

    let bpt = BLOCKS_PER_TILE.min(blocks);
    let tmp = e.mem_alloc_typed::<i32>(bpt * 64);
    for t in 0..blocks / bpt {
        let off = (t * bpt * 64 * 4) as u64;
        e.scalar(8);
        transform_mve(&mut e, tm, ia + off, tmp, oa + off, bpt, forward);
    }
    let got = e.mem_read_vec::<i32>(oa, blocks * 64);
    KernelRun {
        checked: check_exact(&got, &want),
        trace: e.take_trace(),
    }
}

/// RVV transform: scalar constants broadcast per output row, segmented
/// loads for the block-strided input (the Section VII-B expansion).
fn run_transform_rvv(scale: Scale, forward: bool) -> KernelRun {
    let blocks = total_blocks(scale);
    let input: Vec<i32> = gen_i16(if forward { 0x54 } else { 0x55 }, blocks * 64)
        .iter()
        .map(|&v| i32::from(v))
        .collect();
    let want: Vec<i32> = (0..blocks)
        .flat_map(|b| {
            let blk = &input[b * 64..b * 64 + 64];
            if forward {
                dct_scalar(blk)
            } else {
                idct_scalar(blk)
            }
        })
        .collect();

    let mut e = engine();
    let ia = e.mem_alloc_typed::<i32>(blocks * 64);
    let oa = e.mem_alloc_typed::<i32>(blocks * 64);
    e.mem_fill(ia, &input);
    let bpt = BLOCKS_PER_TILE.min(blocks);
    let tmp = e.mem_alloc_typed::<i32>(bpt * 64);

    for t in 0..blocks / bpt {
        let off = (t * bpt * 64 * 4) as u64;
        let mut rvv = Rvv::new(&mut e);
        rvv.setvl(8 * bpt);
        // Row pass, u in two halves of four accumulators (register limit).
        for half in 0..2usize {
            let mut accs = Vec::new();
            for _ in 0..4 {
                let a = rvv.engine().vsetdup_dw(0);
                accs.push(a);
            }
            for k in 0..8usize {
                rvv.engine().scalar(6);
                // X[k][c] for all blocks: 8-wide segments strided by 64.
                let xk =
                    rvv.segmented_load_2d(DType::I32, ia + off + (k * 8 * 4) as u64, 8, bpt, 64);
                for (i, acc) in accs.iter_mut().enumerate() {
                    let u = half * 4 + i;
                    let coef = if forward { T8[u][k] } else { T8[k][u] };
                    let en = rvv.engine();
                    let cv = en.vsetdup_dw(coef);
                    let p = en.vmul_dw(xk, cv);
                    let a2 = en.vadd_dw(*acc, p);
                    en.free(cv);
                    en.free(p);
                    en.free(*acc);
                    *acc = a2;
                }
                rvv.engine().free(xk);
            }
            for (i, acc) in accs.into_iter().enumerate() {
                let u = half * 4 + i;
                let en = rvv.engine();
                let rnd = en.vsetdup_dw(1 << (DCT_SHIFT1 - 1));
                let ar = en.vadd_dw(acc, rnd);
                let sh = en.vshir_dw(ar, DCT_SHIFT1);
                rvv.segmented_store_2d(sh, tmp + (u * 8 * 4) as u64, 8, bpt, 64);
                let en = rvv.engine();
                for r in [acc, rnd, ar, sh] {
                    en.free(r);
                }
            }
        }
        // Column pass: stride-8 1-D accesses (uniform across u and blocks).
        rvv.setvl(8 * bpt);
        for v in 0..8usize {
            rvv.engine().scalar(6);
            let mut acc = rvv.engine().vsetdup_dw(0);
            for c in 0..8usize {
                let ev = rvv.load_1d(DType::I32, tmp + (c * 4) as u64, 8);
                let coef = if forward { T8[v][c] } else { T8[c][v] };
                let en = rvv.engine();
                let cv = en.vsetdup_dw(coef);
                let p = en.vmul_dw(ev, cv);
                let a2 = en.vadd_dw(acc, p);
                for r in [ev, cv, p, acc] {
                    en.free(r);
                }
                acc = a2;
            }
            let en = rvv.engine();
            let rnd = en.vsetdup_dw(1 << (DCT_SHIFT2 - 1));
            let ar = en.vadd_dw(acc, rnd);
            let sh = en.vshir_dw(ar, DCT_SHIFT2);
            rvv.store_1d(sh, oa + off + (v * 4) as u64, 8);
            let en = rvv.engine();
            for r in [acc, rnd, ar, sh] {
                en.free(r);
            }
        }
    }
    let got = e.mem_read_vec::<i32>(oa, blocks * 64);
    KernelRun {
        checked: check_exact(&got, &want),
        trace: e.take_trace(),
    }
}

fn transform_neon(scale: Scale) -> NeonProfile {
    let blocks = total_blocks(scale) as u64;
    // Per block: 2 passes × 8 rows × 8 MACs on 4-lane i32 vectors.
    let macs = blocks * 2 * 8 * 8 * 2;
    NeonProfile {
        ops: vec![
            (NeonOpClass::IntMul, macs),
            (NeonOpClass::Shift, blocks * 32),
            (NeonOpClass::Permute, blocks * 16),
        ],
        chain_ops: vec![(NeonOpClass::IntMul, 8)],
        loads: blocks * 64,
        stores: blocks * 32,
        scalar_instrs: blocks * 40,
        touched_bytes: blocks * 64 * 4 * 2,
        base_addr: 0x700_0000,
    }
}

fn transform_gpu(scale: Scale) -> GpuKernelCost {
    let blocks = total_blocks(scale) as u64;
    GpuKernelCost {
        ops: blocks * 2 * 8 * 8 * 8 * 2,
        bytes_in: blocks * 64 * 4,
        bytes_out: blocks * 64 * 4,
        launches: 1,
    }
}

/// Forward 8×8 integer DCT over many blocks.
pub struct Dct;

impl Kernel for Dct {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "dct",
            library: Library::Kvazaar,
            dims: 3,
            dtype_bits: 32,
            selected: true,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        run_transform_mve(scale, true)
    }

    fn run_rvv(&self, scale: Scale) -> Option<KernelRun> {
        Some(run_transform_rvv(scale, true))
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        transform_neon(scale)
    }

    fn gpu_cost(&self, scale: Scale) -> Option<GpuKernelCost> {
        Some(transform_gpu(scale))
    }
}

/// Inverse 8×8 integer DCT over many blocks.
pub struct Idct;

impl Kernel for Idct {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "idct",
            library: Library::Kvazaar,
            dims: 3,
            dtype_bits: 32,
            selected: true,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        run_transform_mve(scale, false)
    }

    fn run_rvv(&self, scale: Scale) -> Option<KernelRun> {
        Some(run_transform_rvv(scale, false))
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        transform_neon(scale)
    }

    fn gpu_cost(&self, scale: Scale) -> Option<GpuKernelCost> {
        Some(transform_gpu(scale))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fwht_is_self_inverse_up_to_scale() {
        let mut v: [i16; 8] = [1, 2, 3, 4, 5, 6, 7, 8];
        let orig = v;
        fwht8(&mut v);
        fwht8(&mut v);
        for i in 0..8 {
            assert_eq!(v[i], orig[i] * 8);
        }
    }

    #[test]
    fn satd_mve_matches_reference() {
        let run = Satd.run_mve(Scale::Test);
        assert!(run.checked.ok(), "{:?}", run.checked);
    }

    #[test]
    fn satd_rvv_matches_reference() {
        let run = Satd.run_rvv(Scale::Test).expect("selected");
        assert!(run.checked.ok(), "{:?}", run.checked);
    }

    #[test]
    fn intra_mve_matches_reference() {
        let run = Intra.run_mve(Scale::Test);
        assert!(run.checked.ok(), "{:?}", run.checked);
    }

    #[test]
    fn intra_rvv_matches_reference() {
        let run = Intra.run_rvv(Scale::Test).expect("selected");
        assert!(run.checked.ok(), "{:?}", run.checked);
    }

    #[test]
    fn dct_roundtrips_through_idct() {
        let x: Vec<i32> = (0..64).map(|i| (i * 7 % 256) - 128).collect();
        let y = dct_scalar(&x);
        let back = idct_scalar(&y);
        // T·Tᵗ ≈ 2¹⁵·I and the two shift passes remove exactly 15 bits, so
        // the roundtrip reproduces the input up to integer rounding.
        for i in 0..64 {
            assert!(
                (back[i] - x[i]).abs() <= 4,
                "idct(dct) mismatch at {i}: {} vs {}",
                back[i],
                x[i]
            );
        }
    }

    #[test]
    fn dct_mve_matches_reference() {
        let run = Dct.run_mve(Scale::Test);
        assert!(run.checked.ok(), "{:?}", run.checked);
    }

    #[test]
    fn dct_rvv_matches_reference() {
        let run = Dct.run_rvv(Scale::Test).expect("selected");
        assert!(run.checked.ok(), "{:?}", run.checked);
    }

    #[test]
    fn idct_mve_matches_reference() {
        let run = Idct.run_mve(Scale::Test);
        assert!(run.checked.ok(), "{:?}", run.checked);
    }

    #[test]
    fn idct_rvv_matches_reference() {
        let run = Idct.run_rvv(Scale::Test).expect("selected");
        assert!(run.checked.ok(), "{:?}", run.checked);
    }

    #[test]
    fn multi_dim_kernels_show_rvv_blowup() {
        let mve = Dct.run_mve(Scale::Test).trace.instr_mix();
        let rvv = Dct.run_rvv(Scale::Test).expect("rvv").trace.instr_mix();
        assert!(
            rvv.vector_total() > 2 * mve.vector_total(),
            "rvv {} vs mve {}",
            rvv.vector_total(),
            mve.vector_total()
        );
    }
}
