//! Shared kernel scaffolding: deterministic data generation, functional
//! checking, the tree-reduction building block of Section IV, and the
//! run-result types the harness consumes.

use mve_core::dtype::DType;
use mve_core::engine::{Engine, Reg};
use mve_core::isa::StrideMode;
use mve_core::trace::Trace;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Problem-size selector: small shapes for unit tests, Table III shapes for
/// the benchmark harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced datasets so the functional engine runs fast in debug tests.
    Test,
    /// The paper's Table III dataset sizes.
    Paper,
}

/// Outcome of checking an implementation against the scalar reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checked {
    /// Elements compared.
    pub compared: usize,
    /// Elements that disagreed.
    pub mismatches: usize,
}

impl Checked {
    /// Whether the outputs matched.
    pub fn ok(&self) -> bool {
        self.compared > 0 && self.mismatches == 0
    }
}

/// One kernel execution: the dynamic trace plus the functional check.
#[derive(Debug)]
pub struct KernelRun {
    /// The recorded instruction trace.
    pub trace: Trace,
    /// Functional comparison against the scalar reference.
    pub checked: Checked,
}

use std::cell::Cell;

thread_local! {
    /// Array-count override for the Figure 12(b) scalability sweep.
    static ENGINE_ARRAYS: Cell<usize> = const { Cell::new(32) };
}

/// Overrides the number of compute-enabled SRAM arrays used by
/// [`engine`] on this thread (Figure 12(b) sweeps 8–64). Returns the
/// previous value so sweeps can restore it.
pub fn set_engine_arrays(arrays: usize) -> usize {
    ENGINE_ARRAYS.with(|c| c.replace(arrays))
}

/// The array count [`engine`] currently uses on this thread.
pub fn engine_arrays() -> usize {
    ENGINE_ARRAYS.with(Cell::get)
}

/// RAII form of [`set_engine_arrays`]: restores the previous count on
/// drop, **including unwinds** — a panicking kernel must not leave the
/// thread-local poisoned for whatever runs on the thread next (the
/// simulation service reuses worker threads across requests and recovers
/// from kernel panics with `catch_unwind`).
pub struct EngineArraysGuard {
    prev: usize,
}

impl EngineArraysGuard {
    /// Overrides the engine array count until the guard drops.
    pub fn new(arrays: usize) -> Self {
        Self {
            prev: set_engine_arrays(arrays),
        }
    }
}

impl Drop for EngineArraysGuard {
    fn drop(&mut self) {
        set_engine_arrays(self.prev);
    }
}

/// A fresh engine with the paper's mobile geometry (or the thread's
/// [`set_engine_arrays`] override).
pub fn engine() -> Engine {
    let arrays = engine_arrays();
    if arrays == 32 {
        Engine::default_mobile()
    } else {
        Engine::new(
            mve_insram::scheme::EngineGeometry::with_arrays(arrays),
            mve_core::mem::Memory::default(),
        )
    }
}

/// Deterministic byte data.
pub fn gen_u8(seed: u64, n: usize) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen()).collect()
}

/// Deterministic 16-bit data in a comfortable range for transforms.
pub fn gen_i16(seed: u64, n: usize) -> Vec<i16> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-512i16..512)).collect()
}

/// Deterministic 32-bit integer data.
pub fn gen_i32(seed: u64, n: usize) -> Vec<i32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| rng.gen_range(-100_000i32..100_000))
        .collect()
}

/// Deterministic floats in [-1, 1).
pub fn gen_f32(seed: u64, n: usize) -> Vec<f32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

/// Exact element-wise comparison.
pub fn check_exact<T: PartialEq>(got: &[T], want: &[T]) -> Checked {
    let compared = got.len().min(want.len());
    let mismatches = got[..compared]
        .iter()
        .zip(&want[..compared])
        .filter(|(g, w)| g != w)
        .count()
        + got.len().abs_diff(want.len());
    Checked {
        compared,
        mismatches,
    }
}

/// Float comparison with relative tolerance (vector reduction order and f16
/// repacking legitimately reorder rounding).
pub fn check_f32(got: &[f32], want: &[f32], rel_tol: f32) -> Checked {
    let compared = got.len().min(want.len());
    let mismatches = got[..compared]
        .iter()
        .zip(&want[..compared])
        .filter(|(g, w)| {
            let scale = w.abs().max(1.0);
            (*g - *w).abs() > rel_tol * scale
        })
        .count()
        + got.len().abs_diff(want.len());
    Checked {
        compared,
        mismatches,
    }
}

/// The Section IV vertical halving step, generalised: reduces `len` lanes of
/// `v` to `stop` partial sums by repeatedly masking off the lower half,
/// storing the upper half to scratch memory, reloading it at half length and
/// adding (the paper's `vertical_reduction_step`). Frees `v` and returns the
/// register holding the `stop` partials.
///
/// # Panics
///
/// Panics unless `len` and `stop` are powers of two with
/// `stop <= len <= lanes`.
pub fn tree_halve(e: &mut Engine, v: Reg, len: usize, stop: usize) -> Reg {
    assert!(
        len.is_power_of_two() && stop.is_power_of_two() && stop <= len,
        "tree reduction needs power-of-two lengths (len {len}, stop {stop})"
    );
    assert!(len <= e.lanes(), "length exceeds engine lanes");
    let dtype = v.dtype();
    let tmp = e.mem_alloc(len as u64 * dtype.bytes());
    let mut m = len;
    let mut cur = v;
    // The whole fold runs in one [M/2, 2] shape: only dim 0 shrinks per
    // step, so the dimension count and the 2-element split dimension are
    // configured once. This halves the dynamic config-instruction count
    // versus reprogramming a 2-D store shape and a 1-D load shape on every
    // step — the CR-amortisation the ISA is designed around.
    if m > stop {
        e.vsetdimc(2);
        e.vsetdiml(1, 2);
    }
    while m > stop {
        // Split M lanes into two M/2-element halves (Section IV listing).
        e.vsetdiml(0, m / 2);
        // Mask off the first half (element 0 of the highest dimension) and
        // store the second half to temporary memory.
        e.vunsetmask(0);
        e.store(cur, tmp, &[StrideMode::One, StrideMode::Seq]);
        e.vresetmask();
        // Reload the stored upper half with a stride-0 replicated highest
        // dimension: lanes 0..M/2 receive it, and only those feed the next
        // step (the upper copy is dropped when dim 0 halves again).
        let upper = e.load(
            dtype,
            tmp + (m / 2) as u64 * dtype.bytes(),
            &[StrideMode::One, StrideMode::Zero],
        );
        let sum = e.binop(
            mve_core::isa::Opcode::Add,
            mve_core::dtype::BinOp::Add,
            cur,
            upper,
        );
        e.free(cur);
        e.free(upper);
        cur = sum;
        m /= 2;
        e.scalar(8);
    }
    cur
}

/// The Section IV vertical tree reduction: reduces `len` lanes of `v` down
/// to at most 256 partial sums in-cache, then finishes on the scalar core
/// (Section IV: below 256 elements, in-cache latency stops paying off).
/// Returns the raw reduced value in the register's data type. Frees `v`.
///
/// ```
/// use mve_core::{DType, StrideMode};
/// use mve_kernels::common::{engine, tree_reduce};
///
/// let mut e = engine();
/// e.vsetdimc(1);
/// e.vsetdiml(0, 1024);
/// let buf = e.mem_alloc_typed::<i32>(1024);
/// e.mem_fill(buf, &vec![2i32; 1024]);
/// let v = e.load(DType::I32, buf, &[StrideMode::One]);
/// let sum = tree_reduce(&mut e, v, 1024);
/// assert_eq!(DType::I32.to_i64(sum), 2048);
/// ```
///
/// # Panics
///
/// Panics if `len` is not a power of two or exceeds the engine lanes.
pub fn tree_reduce(e: &mut Engine, v: Reg, len: usize) -> u64 {
    let dtype = v.dtype();
    let stop = len.min(256);
    let cur = tree_halve(e, v, len, stop);
    // Store the ≤256 partials and finish on the CPU core.
    e.vsetdimc(1);
    e.vsetdiml(0, stop);
    let tmp = e.mem_alloc(stop as u64 * dtype.bytes());
    e.store(cur, tmp, &[StrideMode::One]);
    e.free(cur);
    e.scalar(2 * stop as u64);
    let mut acc: u64 = 0;
    let mut first = true;
    for i in 0..stop {
        let raw = e
            .mem()
            .read_raw(tmp + i as u64 * dtype.bytes(), dtype.bytes());
        if first {
            acc = raw;
            first = false;
        } else {
            acc = dtype.binop(mve_core::dtype::BinOp::Add, acc, raw);
        }
    }
    acc
}

/// Materialises the Tag latch as 0/1 data: with predication on, a broadcast
/// of 1 writes only tagged lanes of a zero-initialised fresh register. This
/// is how search kernels (strlen/memchr/compare258) export compare results.
pub fn tag_to_data(e: &mut Engine, dtype: DType) -> Reg {
    e.set_predication(true);
    let ones = e.setdup(dtype, 1);
    e.set_predication(false);
    ones
}

/// Rounds `n` up to the next power of two.
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(gen_u8(7, 32), gen_u8(7, 32));
        assert_ne!(gen_u8(7, 32), gen_u8(8, 32));
        assert_eq!(gen_f32(1, 8), gen_f32(1, 8));
    }

    #[test]
    fn check_exact_counts_mismatches() {
        let c = check_exact(&[1, 2, 3], &[1, 9, 3]);
        assert_eq!(c.mismatches, 1);
        assert!(!c.ok());
        assert!(check_exact(&[1, 2], &[1, 2]).ok());
        // Length mismatch is a failure.
        assert!(!check_exact(&[1, 2], &[1, 2, 3]).ok());
    }

    #[test]
    fn check_f32_tolerates_rounding() {
        let c = check_f32(&[1.0, 2.0003], &[1.0, 2.0], 1e-3);
        assert!(c.ok());
        let c = check_f32(&[1.0, 2.5], &[1.0, 2.0], 1e-3);
        assert!(!c.ok());
    }

    #[test]
    fn tree_reduce_i32_matches_scalar_sum() {
        let mut e = engine();
        let n = 4096usize;
        let data = gen_i32(3, n);
        let a = e.mem_alloc_typed::<i32>(n);
        e.mem_fill(a, &data);
        e.vsetdimc(1);
        e.vsetdiml(0, n);
        let v = e.load(DType::I32, a, &[StrideMode::One]);
        let raw = tree_reduce(&mut e, v, n);
        let want: i32 = data.iter().fold(0i32, |s, &x| s.wrapping_add(x));
        assert_eq!(DType::I32.to_i64(raw) as i32, want);
    }

    #[test]
    fn tree_reduce_f32_close_to_scalar_sum() {
        let mut e = engine();
        let n = 2048usize;
        let data = gen_f32(5, n);
        let a = e.mem_alloc_typed::<f32>(n);
        e.mem_fill(a, &data);
        e.vsetdimc(1);
        e.vsetdiml(0, n);
        let v = e.load(DType::F32, a, &[StrideMode::One]);
        let raw = tree_reduce(&mut e, v, n);
        let got = f32::from_bits(raw as u32);
        let want: f32 = data.iter().sum();
        assert!((got - want).abs() < 1e-2, "{got} vs {want}");
    }

    #[test]
    fn tree_reduce_small_input_goes_straight_to_cpu() {
        let mut e = engine();
        let data = [5i32, 7, -2, 10];
        let a = e.mem_alloc_typed::<i32>(4);
        e.mem_fill(a, &data);
        e.vsetdimc(1);
        e.vsetdiml(0, 4);
        let v = e.load(DType::I32, a, &[StrideMode::One]);
        let raw = tree_reduce(&mut e, v, 4);
        assert_eq!(DType::I32.to_i64(raw), 20);
    }
}
