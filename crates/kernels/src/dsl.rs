//! The [`Kernel`]-trait adapter for compiled `.mvel` kernels, so
//! client-submitted programs flow through the same machinery as the 44
//! hand-written Table III kernels: `simulate`/`simulate_sweep`, the trace
//! tooling and the service batching all consume a [`KernelRun`] without
//! knowing whether a compiler produced it.
//!
//! DSL kernels declare their own shapes, so [`Scale`] is ignored — a
//! `.mvel` file is its own dataset description. They are never registered
//! in the Table III suite ([`crate::registry::all_kernels`] stays at 44);
//! the adapter exists for ad-hoc execution paths.

use std::collections::HashSet;
use std::sync::{Mutex, OnceLock};

use crate::common::{Checked, KernelRun, Scale};
use crate::registry::{Kernel, KernelInfo, Library};
use mve_coresim::neon::{NeonOpClass, NeonProfile};
use mve_insram::scheme::EngineGeometry;
use mve_lang::{compare_outputs, compile, interpret, Bindings, CompiledKernel, Diag, Executor};

/// Interns a kernel name as `&'static str` ([`KernelInfo::name`] requires
/// a static lifetime). Repeated compiles of the same name reuse the
/// interned copy, so a long-running daemon leaks at most one string per
/// distinct kernel name, not per compile.
fn intern(name: &str) -> &'static str {
    static INTERNED: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let mut set = INTERNED
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(&existing) = set.get(name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    set.insert(leaked);
    leaked
}

/// A compiled `.mvel` kernel behind the [`Kernel`] trait.
pub struct DslKernel {
    compiled: CompiledKernel,
    info: KernelInfo,
}

impl DslKernel {
    /// Compiles `source` and wraps it as a [`Kernel`].
    pub fn compile(source: &str) -> Result<Self, Diag> {
        let compiled = compile(source)?;
        let dims = compiled
            .program
            .ops
            .iter()
            .filter_map(|op| op.sem.as_ref().map(|s| s.shape.len()))
            .max()
            .unwrap_or(1);
        let info = KernelInfo {
            name: intern(&compiled.program.name),
            library: Library::Dsl,
            dims,
            dtype_bits: compiled.kernel_width,
            selected: false,
        };
        Ok(Self { compiled, info })
    }

    /// The underlying compiled kernel (metadata, allocated code).
    pub fn compiled(&self) -> &CompiledKernel {
        &self.compiled
    }
}

impl Kernel for DslKernel {
    fn info(&self) -> KernelInfo {
        self.info
    }

    /// Executes the compiled program on a fresh engine with deterministic
    /// bindings and checks it against the AST interpreter. `scale` is
    /// ignored (the kernel's declared shapes are its dataset), but the
    /// thread's [`crate::common::set_engine_arrays`] override is honored
    /// like every registry kernel.
    ///
    /// # Panics
    ///
    /// Panics when the thread's engine-arrays override provides fewer
    /// lanes than the kernel's widest shape needs — a DSL kernel cannot
    /// shrink its declared shapes the way hand-written kernels do.
    fn run_mve(&self, _scale: Scale) -> KernelRun {
        let bindings = Bindings::deterministic(&self.compiled.program);
        let geometry = EngineGeometry::with_arrays(crate::common::engine_arrays());
        let mut ex = Executor::with_geometry(&self.compiled, &bindings, geometry)
            .unwrap_or_else(|e| panic!("{e}"));
        ex.run();
        let want = interpret(&self.compiled.ast, &self.compiled.program.params, &bindings);
        let check = compare_outputs(&ex.outputs(), &want);
        KernelRun {
            trace: ex.engine_mut().take_trace(),
            checked: Checked {
                compared: check.compared,
                mismatches: check.mismatches,
            },
        }
    }

    /// A coarse synthetic Neon estimate (DSL kernels never appear in the
    /// Figure 7 suite comparison; the profile only keeps generic tooling
    /// total-agnostic): one 128-bit op per 4 lanes per lowered compute op,
    /// one load/store per 4 lanes per memory op.
    fn neon_profile(&self, _scale: Scale) -> NeonProfile {
        let mut ops = 0u64;
        let mut loads = 0u64;
        let mut stores = 0u64;
        let mut touched = 0u64;
        for op in &self.compiled.program.ops {
            let Some(sem) = &op.sem else { continue };
            let total: u64 = sem.shape.iter().product::<usize>() as u64;
            let vecs = total.div_ceil(4).max(1);
            use mve_core::compiler::Action;
            match &sem.action {
                Action::Load { .. } => {
                    loads += vecs;
                    touched += total * sem.dtype.bytes();
                }
                Action::Store { .. } => {
                    stores += vecs;
                    touched += total * sem.dtype.bytes();
                }
                Action::Reduce { .. } => ops += 2 * vecs,
                _ => ops += vecs,
            }
        }
        NeonProfile {
            ops: vec![(NeonOpClass::IntSimple, ops.max(1))],
            chain_ops: vec![],
            loads,
            stores,
            scalar_instrs: (loads + stores + ops) / 2,
            touched_bytes: touched.max(64),
            base_addr: 0x200_0000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCALE2: &str = r#"
kernel scale2(x: buf<i32>[2048], out: mut buf<i32>[2048]) {
    shape [2048];
    let v = load x [1];
    store v + v -> out [1];
}
"#;

    #[test]
    fn dsl_kernel_runs_through_the_kernel_trait() {
        let k = DslKernel::compile(SCALE2).unwrap();
        assert_eq!(k.info().name, "scale2");
        assert_eq!(k.info().library, Library::Dsl);
        assert_eq!(k.info().dtype_bits, 32);
        let run = k.run_mve(Scale::Test);
        assert!(run.checked.ok(), "{:?}", run.checked);
        assert!(run.trace.instr_mix().mem_access >= 2);
        // Scale is declared in the source, not by the harness.
        let paper = k.run_mve(Scale::Paper);
        assert_eq!(paper.checked, run.checked);
        assert!(k.neon_profile(Scale::Test).loads > 0);
    }

    #[test]
    fn engine_arrays_override_is_honored_like_registry_kernels() {
        let k = DslKernel::compile(SCALE2).unwrap();
        // 16 arrays → 4096 lanes: the 2048-lane kernel fits and runs on
        // the overridden geometry, exactly like the fig12b sweep expects.
        let _guard = crate::common::EngineArraysGuard::new(16);
        let run = k.run_mve(Scale::Test);
        assert!(run.checked.ok(), "{:?}", run.checked);
    }

    #[test]
    fn too_narrow_engine_override_panics_with_a_diagnostic() {
        let k = DslKernel::compile(SCALE2).unwrap();
        // 4 arrays → 1024 lanes: the 2048-lane kernel cannot shrink.
        let _guard = crate::common::EngineArraysGuard::new(4);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| k.run_mve(Scale::Test)))
            .expect_err("must refuse the narrow geometry");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("2048-lane shape"), "{msg}");
    }

    #[test]
    fn interning_is_stable_across_compiles() {
        let a = DslKernel::compile(SCALE2).unwrap();
        let b = DslKernel::compile(SCALE2).unwrap();
        assert!(std::ptr::eq(a.info().name, b.info().name));
    }

    #[test]
    fn compile_errors_surface_with_positions() {
        let Err(err) =
            DslKernel::compile("kernel broken(x: buf<i32>[4]) {\n    store y -> x [1];\n}")
        else {
            panic!("broken kernel must not compile");
        };
        assert_eq!(err.span.line, 2);
    }
}
