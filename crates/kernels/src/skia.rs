//! Skia — 2-D graphics kernels: source-over blending with per-pixel alpha
//! replication, 32-bit fills, horizontal convolution and the multiply
//! transfer mode.

use crate::common::{check_exact, engine, gen_u8, KernelRun, Scale};
use crate::registry::{Kernel, KernelInfo, Library};
use mve_core::dtype::DType;
use mve_core::isa::StrideMode;
use mve_coresim::neon::{NeonOpClass, NeonProfile};

fn npix(scale: Scale) -> usize {
    match scale {
        Scale::Test => 2 * 1024,
        Scale::Paper => 320 * 180,
    }
}

/// Source-over blit of premultiplied RGBA rows: per byte,
/// `out = src + ((dst · (255 - srcA)) >> 8)` with the pixel's alpha
/// replicated across its four channels (a stride-0 dimension).
pub struct BlitRow;

impl Kernel for BlitRow {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "skia_blit_row",
            library: Library::Skia,
            dims: 2,
            dtype_bits: 16,
            selected: false,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        let px = npix(scale);
        let src = gen_u8(0x91, 4 * px);
        let dst = gen_u8(0x92, 4 * px);
        let want: Vec<u8> = (0..4 * px)
            .map(|i| {
                let a = u16::from(src[i / 4 * 4 + 3]);
                let d = u16::from(dst[i]);
                (u16::from(src[i]) + ((d * (255 - a)) >> 8)) as u8
            })
            .collect();

        let mut e = engine();
        e.vsetwidth(16);
        let sa = e.mem_alloc_typed::<u8>(4 * px);
        let da = e.mem_alloc_typed::<u8>(4 * px);
        let oa = e.mem_alloc_typed::<u8>(4 * px);
        e.mem_fill(sa, &src);
        e.mem_fill(da, &dst);

        let lanes = e.lanes();
        let px_per_tile = (lanes / 4).min(px);
        // 2-D: channel (DIM0, 4 lanes), pixel (DIM1).
        e.vsetdimc(2);
        e.vsetdiml(0, 4);
        e.vsetldstr(1, 4);
        e.vsetststr(1, 4);
        let mut p = 0usize;
        while p < px {
            let np = px_per_tile.min(px - p);
            e.vsetdiml(1, np);
            e.scalar(8);
            let m = [StrideMode::One, StrideMode::Cr];
            let s8 = e.vsld_ub(sa + (4 * p) as u64, &m);
            let d8 = e.vsld_ub(da + (4 * p) as u64, &m);
            // Alpha replicated across the channel dimension (stride 0).
            let a8 = e.vsld_ub(sa + (4 * p + 3) as u64, &[StrideMode::Zero, StrideMode::Cr]);
            let d = e.vcvt(d8, DType::U16);
            e.free(d8);
            let a = e.vcvt(a8, DType::U16);
            e.free(a8);
            let c255 = e.vsetdup_uw(255);
            let inv = e.vsub_uw(c255, a);
            e.free(c255);
            e.free(a);
            let t = e.vmul_uw(d, inv);
            e.free(d);
            e.free(inv);
            let sh = e.vshir_uw(t, 8);
            e.free(t);
            let s = e.vcvt(s8, DType::U16);
            e.free(s8);
            let o = e.vadd_uw(s, sh);
            e.free(s);
            e.free(sh);
            let o8 = e.vcvt(o, DType::U8);
            e.free(o);
            e.vsst_ub(o8, oa + (4 * p) as u64, &m);
            e.free(o8);
            p += np;
        }
        let got = e.mem_read_vec::<u8>(oa, 4 * px);
        KernelRun {
            checked: check_exact(&got, &want),
            trace: e.take_trace(),
        }
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        let v = npix(scale) as u64 / 2; // 16-bit math, 8 lanes, 4 ch
        NeonProfile {
            ops: vec![
                (NeonOpClass::IntMul, v),
                (NeonOpClass::IntSimple, v * 2),
                (NeonOpClass::Shift, v),
                (NeonOpClass::Permute, v * 2), // alpha duplication
            ],
            chain_ops: vec![],
            loads: v,
            stores: v / 2,
            scalar_instrs: v,
            touched_bytes: npix(scale) as u64 * 12,
            base_addr: 0x1800_0000,
        }
    }
}

/// 32-bit colour fill (`sk_memset32`).
pub struct Memset32;

impl Kernel for Memset32 {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "skia_memset32",
            library: Library::Skia,
            dims: 1,
            dtype_bits: 32,
            selected: false,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        let n = npix(scale);
        let colour: u32 = 0xFF00_7F3C;
        let want = vec![colour; n];

        let mut e = engine();
        let oa = e.mem_alloc_typed::<u32>(n);
        let lanes = e.lanes();
        e.vsetdimc(1);
        let mut base = 0usize;
        while base < n {
            let chunk = lanes.min(n - base);
            e.vsetdiml(0, chunk);
            e.scalar(4);
            let v = e.vsetdup_udw(colour);
            e.vsst_udw(v, oa + (base * 4) as u64, &[StrideMode::One]);
            e.free(v);
            base += chunk;
        }
        let got = e.mem_read_vec::<u32>(oa, n);
        KernelRun {
            checked: check_exact(&got, &want),
            trace: e.take_trace(),
        }
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        let v = npix(scale) as u64 / 4;
        NeonProfile {
            ops: vec![],
            chain_ops: vec![],
            loads: 0,
            stores: v,
            scalar_instrs: v / 2,
            touched_bytes: npix(scale) as u64 * 4,
            base_addr: 0x1900_0000,
        }
    }
}

/// 4-tap horizontal convolution (`convolve_horizontally`), 8-bit pixels with
/// 16.16-style fixed-point weights accumulated in 32 bits.
pub struct ConvolveHoriz;

impl Kernel for ConvolveHoriz {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "skia_convolve",
            library: Library::Skia,
            dims: 1,
            dtype_bits: 32,
            selected: false,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        let n = npix(scale);
        let src = gen_u8(0x93, n + 4);
        let weights: [i32; 4] = [410, 1638, 1229, 819]; // Σ = 4096 (1 << 12)
        let want: Vec<u8> = (0..n)
            .map(|i| {
                let acc: i32 = (0..4).map(|t| i32::from(src[i + t]) * weights[t]).sum();
                ((acc + 2048) >> 12).clamp(0, 255) as u8
            })
            .collect();

        let mut e = engine();
        let sa = e.mem_alloc_typed::<u8>(n + 4);
        let oa = e.mem_alloc_typed::<u8>(n);
        e.mem_fill(sa, &src);

        let lanes = e.lanes();
        e.vsetdimc(1);
        let mut base = 0usize;
        while base < n {
            let chunk = lanes.min(n - base);
            e.vsetdiml(0, chunk);
            e.scalar(6);
            let mut acc = e.vsetdup_dw(2048);
            for (t, &wt) in weights.iter().enumerate() {
                let p8 = e.vsld_ub(sa + (base + t) as u64, &[StrideMode::One]);
                let p = e.vcvt(p8, DType::I32);
                e.free(p8);
                let k = e.vsetdup_dw(wt);
                let m = e.vmul_dw(p, k);
                e.free(p);
                e.free(k);
                let acc2 = e.vadd_dw(acc, m);
                e.free(m);
                e.free(acc);
                acc = acc2;
            }
            let sh = e.vshir_dw(acc, 12);
            e.free(acc);
            let zero = e.vsetdup_dw(0);
            let lo = e.vmax_dw(sh, zero);
            e.free(sh);
            e.free(zero);
            let cap = e.vsetdup_dw(255);
            let hi = e.vmin_dw(lo, cap);
            e.free(lo);
            e.free(cap);
            let o8 = e.vcvt(hi, DType::U8);
            e.free(hi);
            e.vsst_ub(o8, oa + base as u64, &[StrideMode::One]);
            e.free(o8);
            base += chunk;
        }
        let got = e.mem_read_vec::<u8>(oa, n);
        KernelRun {
            checked: check_exact(&got, &want),
            trace: e.take_trace(),
        }
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        let v = npix(scale) as u64 / 4;
        NeonProfile {
            ops: vec![
                (NeonOpClass::IntMul, v * 4),
                (NeonOpClass::IntSimple, v * 6),
                (NeonOpClass::Shift, v),
            ],
            chain_ops: vec![(NeonOpClass::IntMul, 4)],
            loads: v * 4,
            stores: v / 4,
            scalar_instrs: v * 2,
            touched_bytes: npix(scale) as u64 * 2,
            base_addr: 0x1A00_0000,
        }
    }
}

/// Multiply transfer mode: `out = (s · d + 255) >> 8` per byte.
pub struct XfermodeMultiply;

impl Kernel for XfermodeMultiply {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "skia_xfermode_mul",
            library: Library::Skia,
            dims: 1,
            dtype_bits: 16,
            selected: false,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        let n = 4 * npix(scale);
        let s = gen_u8(0x94, n);
        let d = gen_u8(0x95, n);
        let want: Vec<u8> = (0..n)
            .map(|i| (((u32::from(s[i]) * u32::from(d[i])) + 255) >> 8) as u8)
            .collect();

        let mut e = engine();
        e.vsetwidth(32);
        let sa = e.mem_alloc_typed::<u8>(n);
        let da = e.mem_alloc_typed::<u8>(n);
        let oa = e.mem_alloc_typed::<u8>(n);
        e.mem_fill(sa, &s);
        e.mem_fill(da, &d);

        let lanes = e.lanes();
        e.vsetdimc(1);
        let mut base = 0usize;
        while base < n {
            let chunk = lanes.min(n - base);
            e.vsetdiml(0, chunk);
            e.scalar(6);
            let s8 = e.vsld_ub(sa + base as u64, &[StrideMode::One]);
            let sv = e.vcvt(s8, DType::U32);
            e.free(s8);
            let d8 = e.vsld_ub(da + base as u64, &[StrideMode::One]);
            let dv = e.vcvt(d8, DType::U32);
            e.free(d8);
            let p = e.vmul_udw(sv, dv);
            e.free(sv);
            e.free(dv);
            let c = e.vsetdup_udw(255);
            let pc = e.vadd_udw(p, c);
            e.free(p);
            e.free(c);
            let sh = e.vshir_udw(pc, 8);
            e.free(pc);
            let o8 = e.vcvt(sh, DType::U8);
            e.free(sh);
            e.vsst_ub(o8, oa + base as u64, &[StrideMode::One]);
            e.free(o8);
            base += chunk;
        }
        let got = e.mem_read_vec::<u8>(oa, n);
        KernelRun {
            checked: check_exact(&got, &want),
            trace: e.take_trace(),
        }
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        let v = npix(scale) as u64; // 4 bytes/px, 8 u16 lanes → px/2 × 4
        NeonProfile {
            ops: vec![
                (NeonOpClass::IntMul, v / 2),
                (NeonOpClass::IntSimple, v / 2),
                (NeonOpClass::Shift, v / 2),
                (NeonOpClass::Permute, v),
            ],
            chain_ops: vec![],
            loads: v / 2,
            stores: v / 4,
            scalar_instrs: v / 2,
            touched_bytes: npix(scale) as u64 * 12,
            base_addr: 0x1B00_0000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blit_row_matches() {
        assert!(BlitRow.run_mve(Scale::Test).checked.ok());
    }

    #[test]
    fn memset32_matches() {
        let run = Memset32.run_mve(Scale::Test);
        assert!(run.checked.ok());
        // Fill kernels have no loads.
        let mix = run.trace.instr_mix();
        assert!(mix.mem_access > 0);
    }

    #[test]
    fn convolve_matches() {
        assert!(ConvolveHoriz.run_mve(Scale::Test).checked.ok());
    }

    #[test]
    fn xfermode_matches() {
        assert!(XfermodeMultiply.run_mve(Scale::Test).checked.ok());
    }
}
