//! WebAudio (Blink) — f32 audio-chunk kernels. WebAudio processes audio in
//! 128-sample render quanta across multiple channels, which is exactly the
//! "limited 1-D parallelism" motivating example of the paper's introduction:
//! MVE batches `chunk × channel` into one 2-D/3-D shape.

use crate::common::{check_f32, engine, gen_f32, tree_reduce, KernelRun, Scale};
use crate::registry::{Kernel, KernelInfo, Library};

use mve_core::isa::StrideMode;
use mve_coresim::neon::{NeonOpClass, NeonProfile};

/// WebAudio render quantum.
const FRAMES: usize = 128;

fn chunks(scale: Scale) -> usize {
    match scale {
        Scale::Test => 32,
        Scale::Paper => 1024,
    }
}
const CHANNELS: usize = 4;

fn total(scale: Scale) -> usize {
    FRAMES * CHANNELS * chunks(scale)
}

/// Generic element-wise audio op runner shared by vsmul/vadd/vclip.
fn run_elementwise(
    scale: Scale,
    seed: u64,
    want_fn: impl Fn(f32, f32) -> f32,
    op: impl Fn(
        &mut mve_core::engine::Engine,
        mve_core::engine::Reg,
        mve_core::engine::Reg,
    ) -> mve_core::engine::Reg,
) -> KernelRun {
    let n = total(scale);
    let x = gen_f32(seed, n);
    let y = gen_f32(seed ^ 0xFF, n);
    let want: Vec<f32> = x.iter().zip(&y).map(|(&a, &b)| want_fn(a, b)).collect();

    let mut e = engine();
    let xa = e.mem_alloc_typed::<f32>(n);
    let ya = e.mem_alloc_typed::<f32>(n);
    let oa = e.mem_alloc_typed::<f32>(n);
    e.mem_fill(xa, &x);
    e.mem_fill(ya, &y);

    let lanes = e.lanes();
    // 3-D shape: frames × channels × chunks (all contiguous here, but the
    // multi-dimensional config is what lets one instruction span chunks).
    let chunks_per_tile = (lanes / (FRAMES * CHANNELS)).max(1);
    e.vsetdimc(3);
    e.vsetdiml(0, FRAMES);
    e.vsetdiml(1, CHANNELS);
    let m = [StrideMode::One, StrideMode::Seq, StrideMode::Seq];
    let mut c = 0usize;
    let nchunks = chunks(scale);
    while c < nchunks {
        let nc = chunks_per_tile.min(nchunks - c);
        e.vsetdiml(2, nc);
        e.scalar(6);
        let off = (c * FRAMES * CHANNELS * 4) as u64;
        let xv = e.vsld_f(xa + off, &m);
        let yv = e.vsld_f(ya + off, &m);
        let r = op(&mut e, xv, yv);
        e.vsst_f(r, oa + off, &m);
        for rg in [xv, yv, r] {
            e.free(rg);
        }
        c += nc;
    }
    let got = e.mem_read_vec::<f32>(oa, n);
    KernelRun {
        checked: check_f32(&got, &want, 1e-6),
        trace: e.take_trace(),
    }
}

fn audio_profile(scale: Scale, ops_per_elem: u64, loads_per_elem_x4: u64) -> NeonProfile {
    let v = total(scale) as u64 / 4;
    NeonProfile {
        ops: vec![(NeonOpClass::FpAdd, v * ops_per_elem)],
        chain_ops: vec![],
        loads: v * loads_per_elem_x4,
        stores: v,
        scalar_instrs: v * 2,
        touched_bytes: total(scale) as u64 * 12,
        base_addr: 0x1C00_0000,
    }
}

/// Scale a buffer by a constant (`VectorMath::vsmul`).
pub struct Vsmul;

impl Kernel for Vsmul {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "audio_vsmul",
            library: Library::Webaudio,
            dims: 3,
            dtype_bits: 32,
            selected: false,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        let k = std::f32::consts::FRAC_1_SQRT_2;
        run_elementwise(
            scale,
            0xA1,
            |a, _| a * k,
            |e, x, _| {
                let kv = e.vsetdup_f(k);
                let r = e.vmul_f(x, kv);
                e.free(kv);
                r
            },
        )
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        audio_profile(scale, 1, 1)
    }
}

/// Element-wise buffer addition (`VectorMath::vadd`).
pub struct VaddAudio;

impl Kernel for VaddAudio {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "audio_vadd",
            library: Library::Webaudio,
            dims: 3,
            dtype_bits: 32,
            selected: false,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        run_elementwise(scale, 0xA2, |a, b| a + b, |e, x, y| e.vadd_f(x, y))
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        audio_profile(scale, 1, 2)
    }
}

/// Clamp samples to [-1, 1] (`VectorMath::vclip`).
pub struct Vclip;

impl Kernel for Vclip {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "audio_vclip",
            library: Library::Webaudio,
            dims: 3,
            dtype_bits: 32,
            selected: false,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        run_elementwise(
            scale,
            0xA3,
            |a, b| (a + b).clamp(-1.0, 1.0),
            |e, x, y| {
                let s = e.vadd_f(x, y); // mix, then clip
                let lo = e.vsetdup_f(-1.0);
                let a = e.vmax_f(s, lo);
                e.free(s);
                e.free(lo);
                let hi = e.vsetdup_f(1.0);
                let r = e.vmin_f(a, hi);
                e.free(a);
                e.free(hi);
                r
            },
        )
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        audio_profile(scale, 3, 2)
    }
}

/// Energy sum of a buffer (`VectorMath::sum`), via the Section IV tree
/// reduction.
pub struct SumAudio;

impl Kernel for SumAudio {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "audio_sum",
            library: Library::Webaudio,
            dims: 2,
            dtype_bits: 32,
            selected: false,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        let n = total(scale);
        let x = gen_f32(0xA4, n);
        let mut e = engine();
        let xa = e.mem_alloc_typed::<f32>(n);
        e.mem_fill(xa, &x);

        let lanes = e.lanes();
        let mut sums = Vec::new();
        let mut want = Vec::new();
        e.vsetdimc(1);
        let mut base = 0usize;
        while base < n {
            let chunk = lanes.min(n - base);
            assert!(chunk.is_power_of_two(), "audio tiles are powers of two");
            e.vsetdiml(0, chunk);
            e.scalar(6);
            let v = e.vsld_f(xa + (base * 4) as u64, &[StrideMode::One]);
            let raw = tree_reduce(&mut e, v, chunk);
            sums.push(f32::from_bits(raw as u32));
            // Reference reduced in the same pairwise order.
            let mut vals: Vec<f32> = x[base..base + chunk].to_vec();
            while vals.len() > 1 {
                let half = vals.len() / 2;
                for i in 0..half {
                    vals[i] += vals[i + half];
                }
                vals.truncate(half);
            }
            want.push(vals[0]);
            base += chunk;
        }
        KernelRun {
            checked: check_f32(&sums, &want, 1e-3),
            trace: e.take_trace(),
        }
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        let v = total(scale) as u64 / 4;
        NeonProfile {
            ops: vec![(NeonOpClass::FpAdd, v), (NeonOpClass::Reduce, 4)],
            chain_ops: vec![(NeonOpClass::FpAdd, v / 4)],
            loads: v,
            stores: 1,
            scalar_instrs: v,
            touched_bytes: total(scale) as u64 * 4,
            base_addr: 0x1D00_0000,
        }
    }
}

/// Planar → interleaved channel conversion: a pure layout transpose done by
/// one strided load + one strided store per tile (Section IV matrix
/// transposition pattern).
pub struct Interleave;

impl Kernel for Interleave {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "audio_interleave",
            library: Library::Webaudio,
            dims: 2,
            dtype_bits: 32,
            selected: false,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        let nchunks = chunks(scale);
        let frames = FRAMES * nchunks;
        let n = frames * CHANNELS;
        let planar = gen_f32(0xA5, n); // planar[c * frames + f]
        let mut want = vec![0.0f32; n];
        for f in 0..frames {
            for c in 0..CHANNELS {
                want[f * CHANNELS + c] = planar[c * frames + f];
            }
        }

        let mut e = engine();
        let ia = e.mem_alloc_typed::<f32>(n);
        let oa = e.mem_alloc_typed::<f32>(n);
        e.mem_fill(ia, &planar);

        let lanes = e.lanes();
        let frames_per_tile = lanes / CHANNELS;
        e.vsetdimc(2);
        e.vsetdiml(0, CHANNELS);
        e.vsetldstr(0, frames as i64); // channel plane stride
        e.vsetldstr(1, 1);
        e.vsetststr(0, 1);
        e.vsetststr(1, CHANNELS as i64);
        let mut f = 0usize;
        while f < frames {
            let nf = frames_per_tile.min(frames - f);
            e.vsetdiml(1, nf);
            e.scalar(6);
            // Load: lane [c][f] = planar[c·F + f]; store: out[f·C + c].
            let v = e.vsld_f(ia + (f * 4) as u64, &[StrideMode::Cr, StrideMode::Cr]);
            e.vsst_f(
                v,
                oa + (f * CHANNELS * 4) as u64,
                &[StrideMode::Cr, StrideMode::Cr],
            );
            e.free(v);
            f += nf;
        }
        let got = e.mem_read_vec::<f32>(oa, n);
        KernelRun {
            checked: check_f32(&got, &want, 0.0),
            trace: e.take_trace(),
        }
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        let v = total(scale) as u64 / 4;
        NeonProfile {
            ops: vec![(NeonOpClass::Permute, v * 2)],
            chain_ops: vec![],
            loads: v,
            stores: v,
            scalar_instrs: v * 2,
            touched_bytes: total(scale) as u64 * 8,
            base_addr: 0x1E00_0000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vsmul_matches() {
        assert!(Vsmul.run_mve(Scale::Test).checked.ok());
    }

    #[test]
    fn vadd_matches() {
        assert!(VaddAudio.run_mve(Scale::Test).checked.ok());
    }

    #[test]
    fn vclip_matches() {
        assert!(Vclip.run_mve(Scale::Test).checked.ok());
    }

    #[test]
    fn sum_matches() {
        assert!(SumAudio.run_mve(Scale::Test).checked.ok());
    }

    #[test]
    fn interleave_matches_and_is_two_instructions_per_tile() {
        let run = Interleave.run_mve(Scale::Test);
        assert!(run.checked.ok());
        let mix = run.trace.instr_mix();
        // Pure transpose: memory accesses dominate, no arithmetic.
        assert_eq!(mix.arithmetic, 0);
    }
}
