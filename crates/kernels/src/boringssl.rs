//! BoringSSL — block-parallel cryptography. ChaCha20 and the SHA-256
//! message schedule parallelise across independent blocks (one block per
//! SIMD lane); the 8-register in-cache file forces their 16-word working
//! sets through memory, which is exactly the register-pressure behaviour
//! Section III-G describes.

use crate::common::{check_exact, engine, gen_u8, KernelRun, Scale};
use crate::registry::{Kernel, KernelInfo, Library};
use mve_core::isa::StrideMode;
use mve_coresim::neon::{NeonOpClass, NeonProfile};

fn nblocks(scale: Scale) -> usize {
    match scale {
        Scale::Test => 128,
        Scale::Paper => 2048, // 128 KB of keystream
    }
}

/// Scalar ChaCha20 quarter round.
fn qr(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// Scalar ChaCha20 block function.
fn chacha_block(key: &[u32; 8], counter: u32, nonce: &[u32; 3]) -> [u32; 16] {
    let mut s = [0u32; 16];
    s[0..4].copy_from_slice(&[0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574]);
    s[4..12].copy_from_slice(key);
    s[12] = counter;
    s[13..16].copy_from_slice(nonce);
    let init = s;
    for _ in 0..10 {
        qr(&mut s, 0, 4, 8, 12);
        qr(&mut s, 1, 5, 9, 13);
        qr(&mut s, 2, 6, 10, 14);
        qr(&mut s, 3, 7, 11, 15);
        qr(&mut s, 0, 5, 10, 15);
        qr(&mut s, 1, 6, 11, 12);
        qr(&mut s, 2, 7, 8, 13);
        qr(&mut s, 3, 4, 9, 14);
    }
    for i in 0..16 {
        s[i] = s[i].wrapping_add(init[i]);
    }
    s
}

/// Multi-block ChaCha20 keystream generation: state word `w` of block `b`
/// lives at `state[w·B + b]`, so each quarter-round step is a handful of
/// 1-D vector ops; the 16-word state spills through memory by construction.
pub struct Chacha20;

impl Kernel for Chacha20 {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "chacha20",
            library: Library::Boringssl,
            dims: 1,
            dtype_bits: 32,
            selected: false,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        let b = nblocks(scale);
        let key: [u32; 8] = [1, 2, 3, 4, 5, 6, 7, 0xdead_beef];
        let nonce: [u32; 3] = [0x0102_0304, 0, 42];
        let want: Vec<u32> = (0..b)
            .flat_map(|blk| chacha_block(&key, blk as u32, &nonce))
            .collect();

        let mut e = engine();
        assert!(b <= e.lanes(), "blocks exceed the lane count");
        // state[w][b] and init[w][b], word-major.
        let sa = e.mem_alloc_typed::<u32>(16 * b);
        let ia = e.mem_alloc_typed::<u32>(16 * b);
        let oa = e.mem_alloc_typed::<u32>(16 * b);
        let mut init = vec![0u32; 16 * b];
        for blk in 0..b {
            let consts = [0x6170_7865u32, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
            for w in 0..4 {
                init[w * b + blk] = consts[w];
            }
            for w in 0..8 {
                init[(4 + w) * b + blk] = key[w];
            }
            init[12 * b + blk] = blk as u32;
            for w in 0..3 {
                init[(13 + w) * b + blk] = nonce[w];
            }
        }
        e.mem_fill(sa, &init);
        e.mem_fill(ia, &init);
        e.scalar(8 * b as u64);

        e.vsetdimc(1);
        e.vsetdiml(0, b);
        let word = |w: usize| sa + (w * b * 4) as u64;
        // In-register quarter round: loads 4 state words, stores 4 back.
        let vqr = |e: &mut mve_core::engine::Engine, a: usize, bb: usize, c: usize, d: usize| {
            e.scalar(4);
            let m = [StrideMode::One];
            let mut va = e.vsld_udw(word(a), &m);
            let mut vb = e.vsld_udw(word(bb), &m);
            let mut vc = e.vsld_udw(word(c), &m);
            let mut vd = e.vsld_udw(word(d), &m);
            for (rot1, rot2) in [(16u32, 12u32), (8, 7)] {
                let t = e.vadd_udw(va, vb);
                e.free(va);
                va = t;
                let x = e.vxor_udw(vd, va);
                e.free(vd);
                vd = e.vrotil_udw(x, rot1);
                e.free(x);
                let t = e.vadd_udw(vc, vd);
                e.free(vc);
                vc = t;
                let x = e.vxor_udw(vb, vc);
                e.free(vb);
                vb = e.vrotil_udw(x, rot2);
                e.free(x);
            }
            e.vsst_udw(va, word(a), &m);
            e.vsst_udw(vb, word(bb), &m);
            e.vsst_udw(vc, word(c), &m);
            e.vsst_udw(vd, word(d), &m);
            for r in [va, vb, vc, vd] {
                e.free(r);
            }
        };
        for _ in 0..10 {
            vqr(&mut e, 0, 4, 8, 12);
            vqr(&mut e, 1, 5, 9, 13);
            vqr(&mut e, 2, 6, 10, 14);
            vqr(&mut e, 3, 7, 11, 15);
            vqr(&mut e, 0, 5, 10, 15);
            vqr(&mut e, 1, 6, 11, 12);
            vqr(&mut e, 2, 7, 8, 13);
            vqr(&mut e, 3, 4, 9, 14);
        }
        // Final feed-forward addition.
        for w in 0..16 {
            e.scalar(3);
            let s = e.vsld_udw(word(w), &[StrideMode::One]);
            let i0 = e.vsld_udw(ia + (w * b * 4) as u64, &[StrideMode::One]);
            let o = e.vadd_udw(s, i0);
            e.vsst_udw(o, oa + (w * b * 4) as u64, &[StrideMode::One]);
            for r in [s, i0, o] {
                e.free(r);
            }
        }
        // Compare in block-major order.
        let got_wordmajor = e.mem_read_vec::<u32>(oa, 16 * b);
        let mut got = Vec::with_capacity(16 * b);
        for blk in 0..b {
            for w in 0..16 {
                got.push(got_wordmajor[w * b + blk]);
            }
        }
        KernelRun {
            checked: check_exact(&got, &want),
            trace: e.take_trace(),
        }
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        let b = nblocks(scale) as u64;
        // 4-block Neon ChaCha: 20 rounds × 4 QRs × 12 ops per 4 blocks.
        let v = b / 4;
        NeonProfile {
            ops: vec![
                (NeonOpClass::IntSimple, v * 20 * 4 * 8),
                (NeonOpClass::Shift, v * 20 * 4 * 8),
            ],
            chain_ops: vec![(NeonOpClass::IntSimple, 20 * 12)],
            loads: v * 16,
            stores: v * 16,
            scalar_instrs: v * 60,
            touched_bytes: b * 64 * 2,
            base_addr: 0x2100_0000,
        }
    }
}

/// Scalar SHA-256 sigma functions.
fn sigma0(x: u32) -> u32 {
    x.rotate_right(7) ^ x.rotate_right(18) ^ (x >> 3)
}
fn sigma1(x: u32) -> u32 {
    x.rotate_right(17) ^ x.rotate_right(19) ^ (x >> 10)
}

/// SHA-256 message-schedule expansion (`W[16..64]`) across many blocks.
pub struct Sha256Msched;

impl Kernel for Sha256Msched {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "sha256_msched",
            library: Library::Boringssl,
            dims: 1,
            dtype_bits: 32,
            selected: false,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        let b = nblocks(scale);
        let msg = gen_u8(0xC1, b * 64);
        // W[t][blk] layout; first 16 words from the message (big-endian).
        let mut w = vec![0u32; 64 * b];
        for blk in 0..b {
            for t in 0..16 {
                let o = blk * 64 + t * 4;
                w[t * b + blk] = u32::from_be_bytes([msg[o], msg[o + 1], msg[o + 2], msg[o + 3]]);
            }
        }
        let mut want = w.clone();
        for t in 16..64 {
            for blk in 0..b {
                want[t * b + blk] = sigma1(want[(t - 2) * b + blk])
                    .wrapping_add(want[(t - 7) * b + blk])
                    .wrapping_add(sigma0(want[(t - 15) * b + blk]))
                    .wrapping_add(want[(t - 16) * b + blk]);
            }
        }

        let mut e = engine();
        assert!(b <= e.lanes(), "blocks exceed the lane count");
        let wa = e.mem_alloc_typed::<u32>(64 * b);
        e.mem_fill(wa, &w);
        e.scalar(20 * b as u64); // endianness prep on the scalar core

        e.vsetdimc(1);
        e.vsetdiml(0, b);
        let word = |t: usize| wa + (t * b * 4) as u64;
        let m = [StrideMode::One];
        // In-register sigma: rot^rot^shift.
        let sigma = |e: &mut mve_core::engine::Engine, v, r1: u32, r2: u32, sh: u32| {
            let a = e.vrotir_udw(v, r1);
            let bb = e.vrotir_udw(v, r2);
            let c = e.vshir_udw(v, sh);
            let x = e.vxor_udw(a, bb);
            e.free(a);
            e.free(bb);
            let out = e.vxor_udw(x, c);
            e.free(x);
            e.free(c);
            out
        };
        for t in 16..64 {
            e.scalar(5);
            let w2 = e.vsld_udw(word(t - 2), &m);
            let s1 = sigma(&mut e, w2, 17, 19, 10);
            e.free(w2);
            let w7 = e.vsld_udw(word(t - 7), &m);
            let sum1 = e.vadd_udw(s1, w7);
            e.free(s1);
            e.free(w7);
            let w15 = e.vsld_udw(word(t - 15), &m);
            let s0 = sigma(&mut e, w15, 7, 18, 3);
            e.free(w15);
            let sum2 = e.vadd_udw(sum1, s0);
            e.free(sum1);
            e.free(s0);
            let w16 = e.vsld_udw(word(t - 16), &m);
            let out = e.vadd_udw(sum2, w16);
            e.free(sum2);
            e.free(w16);
            e.vsst_udw(out, word(t), &m);
            e.free(out);
        }
        let got = e.mem_read_vec::<u32>(wa, 64 * b);
        KernelRun {
            checked: check_exact(&got, &want),
            trace: e.take_trace(),
        }
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        let b = nblocks(scale) as u64;
        let v = b / 4 * 48;
        NeonProfile {
            ops: vec![(NeonOpClass::IntSimple, v * 5), (NeonOpClass::Shift, v * 6)],
            chain_ops: vec![(NeonOpClass::IntSimple, 48)],
            loads: v * 4,
            stores: v,
            scalar_instrs: v * 2,
            touched_bytes: b * 256,
            base_addr: 0x2200_0000,
        }
    }
}

/// Keystream XOR (the cipher application pass).
pub struct XorCipher;

impl Kernel for XorCipher {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "xor_cipher",
            library: Library::Boringssl,
            dims: 1,
            dtype_bits: 8,
            selected: false,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        let n = nblocks(scale) * 64;
        let data = gen_u8(0xC2, n);
        let ks = gen_u8(0xC3, n);
        let want: Vec<u8> = data.iter().zip(&ks).map(|(&d, &k)| d ^ k).collect();

        let mut e = engine();
        e.vsetwidth(8);
        let da = e.mem_alloc_typed::<u8>(n);
        let ka = e.mem_alloc_typed::<u8>(n);
        let oa = e.mem_alloc_typed::<u8>(n);
        e.mem_fill(da, &data);
        e.mem_fill(ka, &ks);

        let lanes = e.lanes();
        e.vsetdimc(1);
        let mut base = 0usize;
        while base < n {
            let chunk = lanes.min(n - base);
            e.vsetdiml(0, chunk);
            e.scalar(5);
            let d = e.vsld_ub(da + base as u64, &[StrideMode::One]);
            let k = e.vsld_ub(ka + base as u64, &[StrideMode::One]);
            let x = e.vxor_ub(d, k);
            e.vsst_ub(x, oa + base as u64, &[StrideMode::One]);
            for r in [d, k, x] {
                e.free(r);
            }
            base += chunk;
        }
        let got = e.mem_read_vec::<u8>(oa, n);
        KernelRun {
            checked: check_exact(&got, &want),
            trace: e.take_trace(),
        }
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        let v = (nblocks(scale) * 64 / 16) as u64;
        NeonProfile {
            ops: vec![(NeonOpClass::IntSimple, v)],
            chain_ops: vec![],
            loads: v * 2,
            stores: v,
            scalar_instrs: v,
            touched_bytes: (nblocks(scale) * 64 * 3) as u64,
            base_addr: 0x2300_0000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chacha_reference_rfc_vector() {
        // RFC 8439 §2.3.2 test vector.
        let key: [u32; 8] = [
            0x0302_0100,
            0x0706_0504,
            0x0b0a_0908,
            0x0f0e_0d0c,
            0x1312_1110,
            0x1716_1514,
            0x1b1a_1918,
            0x1f1e_1d1c,
        ];
        let nonce: [u32; 3] = [0x0900_0000, 0x4a00_0000, 0];
        let out = chacha_block(&key, 1, &nonce);
        assert_eq!(out[0], 0xe4e7_f110);
        assert_eq!(out[15], 0x4e3c_50a2);
    }

    #[test]
    fn chacha_mve_matches() {
        assert!(Chacha20.run_mve(Scale::Test).checked.ok());
    }

    #[test]
    fn sha256_msched_matches() {
        assert!(Sha256Msched.run_mve(Scale::Test).checked.ok());
    }

    #[test]
    fn xor_cipher_matches() {
        assert!(XorCipher.run_mve(Scale::Test).checked.ok());
    }
}
