//! XNNPACK — `gemm` (dense, the Section IV replication listing) and `spmm`
//! (sparse × dense, the Section IV irregular-access listing).
//!
//! The registry kernels run in **fp16** — XNNPACK's FP16 inference mode, the
//! common configuration on Armv8.2 mobile cores (Table IV lists the FP16
//! extension). The f32 variants (`run_mve_sized`, `gpu_cost_sized`) remain
//! for the Figure 9 sweep, which compares against the fp32 CLBlast/clSPARSE
//! OpenCL libraries, exactly as the paper does.

use crate::common::{check_f32, engine, gen_f32, tree_halve, KernelRun, Scale};
use crate::registry::{Kernel, KernelInfo, Library};
use mve_baselines::gpu::GpuKernelCost;
use mve_baselines::rvv::Rvv;
use mve_core::dtype::DType;
use mve_core::isa::StrideMode;
use mve_coresim::neon::{NeonOpClass, NeonProfile};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Row-major dense GEMM with multi-dimensional replication (Section IV).
pub struct Gemm;

/// GEMM problem size (N×K input, K×M weight, N×M output).
#[derive(Debug, Clone, Copy)]
pub struct GemmSize {
    /// Input rows.
    pub n: usize,
    /// Reduction depth.
    pub k: usize,
    /// Output columns.
    pub m: usize,
}

impl Gemm {
    /// Problem size per scale (Paper: a MobileNet-class 1×1-conv layer).
    pub fn size(scale: Scale) -> GemmSize {
        match scale {
            Scale::Test => GemmSize {
                n: 16,
                k: 24,
                m: 64,
            },
            Scale::Paper => GemmSize {
                n: 64,
                k: 128,
                m: 128,
            },
        }
    }

    /// Scalar reference.
    pub fn scalar_ref(s: GemmSize, input: &[f32], weight: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; s.n * s.m];
        for n in 0..s.n {
            for m in 0..s.m {
                let mut acc = 0.0f32;
                for k in 0..s.k {
                    acc += input[n * s.k + k] * weight[k * s.m + m];
                }
                out[n * s.m + m] = acc;
            }
        }
        out
    }

    /// Runs the MVE GEMM of the Section IV listing for an arbitrary size;
    /// shared by the Figure 9 sweep.
    pub fn run_mve_sized(s: GemmSize) -> KernelRun {
        let input = gen_f32(0x21, s.n * s.k);
        let weight = gen_f32(0x22, s.k * s.m);
        let want = Self::scalar_ref(s, &input, &weight);

        let mut e = engine();
        let ia = e.mem_alloc_typed::<f32>(s.n * s.k);
        let wa = e.mem_alloc_typed::<f32>(s.k * s.m);
        let oa = e.mem_alloc_typed::<f32>(s.n * s.m);
        e.mem_fill(ia, &input);
        e.mem_fill(wa, &weight);

        let lanes = e.lanes();
        let rows_per_tile = (lanes / s.m).max(1);
        // 2D: M output columns (DIM0), rows-per-tile rows (DIM1).
        e.vsetdimc(2);
        e.vsetdiml(0, s.m);
        e.vsetldstr(1, s.k as i64); // input row stride for mode 3
        let mut n = 0usize;
        while n < s.n {
            let rows = rows_per_tile.min(s.n - n);
            e.vsetdiml(1, rows);
            e.scalar(8);
            let mut acc = e.vsetdup_f(0.0);
            for k in 0..s.k {
                e.scalar(6);
                // Input column, replicated horizontally (DIM0 stride 0).
                let iv = e.vsld_f(
                    ia + ((n * s.k + k) * 4) as u64,
                    &[StrideMode::Zero, StrideMode::Cr],
                );
                // Weight row, replicated vertically (DIM1 stride 0).
                let wv = e.vsld_f(
                    wa + ((k * s.m) * 4) as u64,
                    &[StrideMode::One, StrideMode::Zero],
                );
                let p = e.vmul_f(iv, wv);
                let acc2 = e.vadd_f(acc, p);
                for r in [iv, wv, p, acc] {
                    e.free(r);
                }
                acc = acc2;
            }
            // Store rows sequentially.
            e.vsst_f(
                acc,
                oa + (n * s.m * 4) as u64,
                &[StrideMode::One, StrideMode::Seq],
            );
            e.free(acc);
            n += rows;
        }
        let got = e.mem_read_vec::<f32>(oa, s.n * s.m);
        KernelRun {
            checked: check_f32(&got, &want, 1e-4),
            trace: e.take_trace(),
        }
    }
}

impl Kernel for Gemm {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "gemm",
            library: Library::Xnnpack,
            dims: 2,
            dtype_bits: 32,
            selected: true,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        let s = Self::size(scale);
        crate::precision::run_gemm_dims(crate::precision::Precision::F16, s.n, s.k, s.m)
    }

    fn run_rvv(&self, scale: Scale) -> Option<KernelRun> {
        // fp16, matching the MVE variant: same data, same accumulation order.
        let dt = DType::F16;
        let s = Self::size(scale);
        let input: Vec<u64> = gen_f32(0xE1, s.n * s.k)
            .iter()
            .map(|&v| dt.from_f32(v))
            .collect();
        let weight: Vec<u64> = gen_f32(0xE2, s.k * s.m)
            .iter()
            .map(|&v| dt.from_f32(v))
            .collect();
        let mac = |acc: u64, a: u64, b: u64| {
            let p = dt.binop(mve_core::dtype::BinOp::Mul, a, b);
            dt.binop(mve_core::dtype::BinOp::Add, acc, p)
        };
        let mut want = vec![0u64; s.n * s.m];
        for n in 0..s.n {
            for m in 0..s.m {
                let mut acc = dt.from_f32(0.0);
                for k in 0..s.k {
                    acc = mac(acc, input[n * s.k + k], weight[k * s.m + m]);
                }
                want[n * s.m + m] = acc;
            }
        }

        let mut e = engine();
        let ia = e.mem_alloc((s.n * s.k * 2) as u64);
        let wa = e.mem_alloc((s.k * s.m * 2) as u64);
        let oa = e.mem_alloc((s.n * s.m * 2) as u64);
        for (i, &v) in input.iter().enumerate() {
            e.mem_mut().write_raw(ia + (i * 2) as u64, 2, v);
        }
        for (i, &v) in weight.iter().enumerate() {
            e.mem_mut().write_raw(wa + (i * 2) as u64, 2, v);
        }

        let lanes = e.lanes();
        let rows_per_tile = (lanes / s.m).max(1);
        let mut rvv = Rvv::new(&mut e);
        let mut n = 0usize;
        while n < s.n {
            let rows = rows_per_tile.min(s.n - n);
            rvv.setvl(rows * s.m);
            rvv.engine().scalar(8);
            let mut acc = rvv.engine().vsetdup_hf(0.0);
            for k in 0..s.k {
                rvv.engine().scalar(6);
                // Input column replication needs an index-vector gather;
                // the gather cost model covers any pattern, so patch the
                // strided-column values in afterwards.
                let iv = rvv.replicated_load(dt, ia + ((n * s.k + k) * 2) as u64, rows, s.m);
                let en = rvv.engine();
                for r in 0..rows {
                    let v = input[(n + r) * s.k + k];
                    for m in 0..s.m {
                        en.set_lane_raw(iv, r * s.m + m, v);
                    }
                }
                // Weight row tiled per segment (stride-0 segments).
                let wv = rvv.segmented_load_2d(dt, wa + (k * s.m * 2) as u64, s.m, rows, 0);
                let en = rvv.engine();
                let p = en.vmul_hf(iv, wv);
                let acc2 = en.vadd_hf(acc, p);
                for r in [iv, wv, p, acc] {
                    en.free(r);
                }
                acc = acc2;
            }
            // Output rows are contiguous: a single unit-stride store.
            rvv.store_1d(acc, oa + (n * s.m * 2) as u64, 1);
            rvv.engine().free(acc);
            n += rows;
        }
        let got: Vec<u64> = (0..s.n * s.m)
            .map(|i| e.mem().read_raw(oa + (i * 2) as u64, 2))
            .collect();
        Some(KernelRun {
            checked: crate::common::check_exact(&got, &want),
            trace: e.take_trace(),
        })
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        // fp16: 8 lanes per 128-bit vector.
        let s = Self::size(scale);
        let (n, k, m) = (s.n as u64, s.k as u64, s.m as u64);
        let fmacs = n * k * m / 8;
        NeonProfile {
            ops: vec![
                (NeonOpClass::FpMac, fmacs),
                (NeonOpClass::Permute, n * k / 8),
            ],
            chain_ops: vec![(NeonOpClass::FpMac, k)],
            loads: n * k / 8 + n * k * m / 32,
            stores: n * m / 8,
            scalar_instrs: fmacs,
            touched_bytes: (n * k + k * m + n * m) * 2,
            base_addr: 0x200_0000,
        }
    }

    fn gpu_cost(&self, scale: Scale) -> Option<GpuKernelCost> {
        // fp16 on the GPU: double ALU rate (ops halved), half the bytes.
        let s = Self::size(scale);
        let (n, k, m) = (s.n as u64, s.k as u64, s.m as u64);
        Some(GpuKernelCost {
            ops: n * k * m,
            bytes_in: (n * k + k * m) * 2,
            bytes_out: n * m * 2,
            launches: 1,
        })
    }
}

impl Gemm {
    /// GPU cost for an arbitrary size (Figure 9 sweep).
    pub fn gpu_cost_sized(s: GemmSize) -> GpuKernelCost {
        let (n, k, m) = (s.n as u64, s.k as u64, s.m as u64);
        GpuKernelCost {
            ops: 2 * n * k * m,
            bytes_in: (n * k + k * m) * 4,
            bytes_out: n * m * 4,
            launches: 1,
        }
    }
}

/// Sparse (CSR) × dense matrix multiplication with random-base vector loads.
pub struct Spmm;

/// SpMM problem description.
#[derive(Debug, Clone, Copy)]
pub struct SpmmSize {
    /// Sparse rows.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
    /// Dense output columns (must be a power of two for the in-cache fold).
    pub m: usize,
    /// Nonzero density of the sparse matrix.
    pub density: f64,
}

/// A CSR matrix plus its dense operand.
pub struct SpmmData {
    /// CSR row offsets (len n+1).
    pub row_ptr: Vec<usize>,
    /// CSR column indices.
    pub col_idx: Vec<usize>,
    /// CSR values.
    pub values: Vec<f32>,
    /// Dense K×M weight.
    pub weight: Vec<f32>,
}

impl Spmm {
    /// Problem size per scale.
    pub fn size(scale: Scale) -> SpmmSize {
        match scale {
            Scale::Test => SpmmSize {
                n: 6,
                k: 48,
                m: 32,
                density: 0.3,
            },
            // An XNNPACK CNN-layer shape: wide output (M), sparse input.
            Scale::Paper => SpmmSize {
                n: 16,
                k: 256,
                m: 512,
                density: 0.3,
            },
        }
    }

    /// Deterministic CSR + weight generation.
    pub fn gen_data(s: SpmmSize, seed: u64) -> SpmmData {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut row_ptr = vec![0usize];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for _ in 0..s.n {
            for k in 0..s.k {
                if rng.gen_bool(s.density) {
                    col_idx.push(k);
                    values.push(rng.gen_range(-1.0f32..1.0));
                }
            }
            row_ptr.push(col_idx.len());
        }
        let weight = gen_f32(seed ^ 0x5555, s.k * s.m);
        SpmmData {
            row_ptr,
            col_idx,
            values,
            weight,
        }
    }

    /// Scalar reference.
    pub fn scalar_ref(s: SpmmSize, d: &SpmmData) -> Vec<f32> {
        let mut out = vec![0.0f32; s.n * s.m];
        for n in 0..s.n {
            for j in d.row_ptr[n]..d.row_ptr[n + 1] {
                let (k, v) = (d.col_idx[j], d.values[j]);
                for m in 0..s.m {
                    out[n * s.m + m] += v * d.weight[k * s.m + m];
                }
            }
        }
        out
    }

    /// MVE SpMM for an arbitrary size (shared with the Figure 9 sweep).
    ///
    /// Per row: the scalar core materialises pointer arrays for the nonzero
    /// values and the matching weight rows (Section IV "Irregular accesses");
    /// MVE random-loads both — values replicated across M (stride-0 DIM0),
    /// weight rows sequential — multiplies, and folds the batch dimension
    /// in-cache.
    pub fn run_mve_sized(s: SpmmSize) -> KernelRun {
        assert!(s.m.is_power_of_two(), "M must be a power of two");
        let d = Self::gen_data(s, 0x31);
        let want = Self::scalar_ref(s, &d);

        let mut e = engine();
        let va = e.mem_alloc_typed::<f32>(d.values.len().max(1));
        let wa = e.mem_alloc_typed::<f32>(s.k * s.m);
        let oa = e.mem_alloc_typed::<f32>(s.n * s.m);
        let zero_val = e.mem_alloc_typed::<f32>(1); // padding target
        e.mem_fill(va, &d.values);
        e.mem_fill(wa, &d.weight);
        e.mem_fill(zero_val, &[0.0f32]);

        let lanes = e.lanes();
        let max_nnz = (0..s.n)
            .map(|n| d.row_ptr[n + 1] - d.row_ptr[n])
            .max()
            .unwrap_or(1)
            .max(1);
        // <= lanes/m, power of two, no larger than the densest row needs.
        let batch = ((lanes / s.m).next_power_of_two() / 2)
            .clamp(2, 256)
            .min(max_nnz.next_power_of_two());
        let vptr = e.mem_alloc_typed::<u64>(batch);
        let wptr = e.mem_alloc_typed::<u64>(batch);

        for n in 0..s.n {
            e.scalar(10);
            // Accumulate [M, batch] products across batch passes; fold the
            // batch dimension in-cache once per row.
            e.vsetdimc(2);
            e.vsetdiml(0, s.m);
            e.vsetdiml(1, batch);
            let mut acc2d = e.vsetdup_f(0.0);
            let (lo, hi) = (d.row_ptr[n], d.row_ptr[n + 1]);
            let mut j = lo;
            while j < hi {
                let take = batch.min(hi - j);
                // Scalar core computes the pointer arrays (charged per nnz).
                e.scalar(4 * take as u64);
                let mut vp = Vec::with_capacity(batch);
                let mut wp = Vec::with_capacity(batch);
                for b in 0..batch {
                    if b < take {
                        vp.push(va + ((j + b) * 4) as u64);
                        wp.push(wa + (d.col_idx[j + b] * s.m * 4) as u64);
                    } else {
                        vp.push(zero_val); // value 0 ⇒ no contribution
                        wp.push(wa);
                    }
                }
                e.mem_fill(vptr, &vp);
                e.mem_fill(wptr, &wp);

                // 2D: [M (dim0), batch (dim1, random bases)].
                let vv = e.vrld_f(vptr, &[StrideMode::Zero]);
                let wv = e.vrld_f(wptr, &[StrideMode::One]);
                let p = e.vmul_f(vv, wv);
                e.free(vv);
                e.free(wv);
                let acc2 = e.vadd_f(acc2d, p);
                e.free(acc2d);
                e.free(p);
                acc2d = acc2;
                j += take;
            }
            e.vsetdimc(1);
            e.vsetdiml(0, s.m * batch);
            let folded = tree_halve(&mut e, acc2d, s.m * batch, s.m);
            e.vsetdimc(1);
            e.vsetdiml(0, s.m);
            e.vsst_f(folded, oa + (n * s.m * 4) as u64, &[StrideMode::One]);
            e.free(folded);
        }
        let got = e.mem_read_vec::<f32>(oa, s.n * s.m);
        KernelRun {
            checked: check_f32(&got, &want, 1e-4),
            trace: e.take_trace(),
        }
    }
}

impl Kernel for Spmm {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "spmm",
            library: Library::Xnnpack,
            dims: 2,
            dtype_bits: 32,
            selected: true,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        crate::precision::run_spmm_sized(crate::precision::Precision::F16, Self::size(scale))
    }

    fn run_rvv(&self, scale: Scale) -> Option<KernelRun> {
        // RVV processes one nonzero at a time with M-lane 1-D operations —
        // the low-DLP path Section VII-A describes for SpMM. fp16, matching
        // the MVE variant; checked against a sequential-order f16 reference.
        let dt = DType::F16;
        let s = Self::size(scale);
        let d = Self::gen_data(s, 0xE5);
        let values: Vec<u64> = d.values.iter().map(|&v| dt.from_f32(v)).collect();
        let weight: Vec<u64> = d.weight.iter().map(|&v| dt.from_f32(v)).collect();
        let mac = |acc: u64, a: u64, b: u64| {
            let p = dt.binop(mve_core::dtype::BinOp::Mul, a, b);
            dt.binop(mve_core::dtype::BinOp::Add, acc, p)
        };
        let mut want = vec![dt.from_f32(0.0); s.n * s.m];
        for n in 0..s.n {
            for m in 0..s.m {
                let mut acc = dt.from_f32(0.0);
                for j in d.row_ptr[n]..d.row_ptr[n + 1] {
                    acc = mac(acc, values[j], weight[d.col_idx[j] * s.m + m]);
                }
                want[n * s.m + m] = acc;
            }
        }

        let mut e = engine();
        let wa = e.mem_alloc((s.k * s.m * 2) as u64);
        let oa = e.mem_alloc((s.n * s.m * 2) as u64);
        for (i, &v) in weight.iter().enumerate() {
            e.mem_mut().write_raw(wa + (i * 2) as u64, 2, v);
        }

        let mut rvv = Rvv::new(&mut e);
        rvv.setvl(s.m);
        for n in 0..s.n {
            rvv.engine().scalar(10);
            let mut acc = rvv.engine().vsetdup_hf(0.0);
            for j in d.row_ptr[n]..d.row_ptr[n + 1] {
                rvv.engine().scalar(8); // pointer chase + loop
                let wv = rvv.load_1d(dt, wa + (d.col_idx[j] * s.m * 2) as u64, 1);
                let en = rvv.engine();
                let sv = en.setdup(dt, values[j]);
                let p = en.vmul_hf(wv, sv);
                let acc2 = en.vadd_hf(acc, p);
                for r in [wv, sv, p, acc] {
                    en.free(r);
                }
                acc = acc2;
            }
            rvv.store_1d(acc, oa + (n * s.m * 2) as u64, 1);
            rvv.engine().free(acc);
        }
        let got: Vec<u64> = (0..s.n * s.m)
            .map(|i| e.mem().read_raw(oa + (i * 2) as u64, 2))
            .collect();
        Some(KernelRun {
            checked: crate::common::check_exact(&got, &want),
            trace: e.take_trace(),
        })
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        // fp16: 8 lanes per 128-bit vector.
        let s = Self::size(scale);
        let nnz = (s.n * s.k) as f64 * s.density;
        let per_nz = s.m as u64 / 8;
        let fmacs = (nnz * per_nz as f64) as u64;
        NeonProfile {
            ops: vec![(NeonOpClass::FpMac, fmacs)],
            chain_ops: vec![],
            loads: fmacs + nnz as u64,
            stores: (s.n * s.m / 8) as u64,
            scalar_instrs: 6 * nnz as u64 + fmacs,
            touched_bytes: ((s.k * s.m + s.n * s.m) * 2) as u64,
            base_addr: 0x300_0000,
        }
    }

    fn gpu_cost(&self, scale: Scale) -> Option<GpuKernelCost> {
        // fp16 on the GPU: double ALU rate, half the bytes.
        let s = Self::size(scale);
        let nnz = ((s.n * s.k) as f64 * s.density) as u64;
        Some(GpuKernelCost {
            ops: nnz * s.m as u64,
            bytes_in: nnz * 6 + (s.k * s.m * 2) as u64,
            bytes_out: (s.n * s.m * 2) as u64,
            launches: 1,
        })
    }
}

impl Spmm {
    /// GPU cost for an arbitrary size (Figure 9 sweep).
    pub fn gpu_cost_sized(s: SpmmSize) -> GpuKernelCost {
        let nnz = ((s.n * s.k) as f64 * s.density) as u64;
        GpuKernelCost {
            ops: 2 * nnz * s.m as u64,
            bytes_in: nnz * 8 + (s.k * s.m * 4) as u64,
            bytes_out: (s.n * s.m * 4) as u64,
            launches: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_mve_matches_reference() {
        let run = Gemm.run_mve(Scale::Test);
        assert!(run.checked.ok(), "{:?}", run.checked);
    }

    #[test]
    fn gemm_rvv_matches_reference() {
        let run = Gemm.run_rvv(Scale::Test).expect("selected");
        assert!(run.checked.ok(), "{:?}", run.checked);
    }

    #[test]
    fn gemm_rvv_needs_many_more_instructions() {
        // The Figure 11 claim: RVV's per-segment emulation inflates the
        // dynamic vector instruction count on 2-D kernels.
        let mve = Gemm.run_mve(Scale::Test).trace.instr_mix();
        let rvv = Gemm.run_rvv(Scale::Test).expect("rvv").trace.instr_mix();
        assert!(
            rvv.vector_total() > 2 * mve.vector_total(),
            "rvv {} vs mve {}",
            rvv.vector_total(),
            mve.vector_total()
        );
        assert!(rvv.scalar > mve.scalar);
    }

    #[test]
    fn spmm_mve_matches_reference() {
        let run = Spmm.run_mve(Scale::Test);
        assert!(run.checked.ok(), "{:?}", run.checked);
    }

    #[test]
    fn spmm_rvv_matches_reference() {
        let run = Spmm.run_rvv(Scale::Test).expect("selected");
        assert!(run.checked.ok(), "{:?}", run.checked);
    }

    #[test]
    fn spmm_mve_uses_random_loads() {
        let run = Spmm.run_mve(Scale::Test);
        let has_random = run.trace.events().iter().any(|ev| {
            matches!(
                ev,
                mve_core::trace::Event::Memory {
                    opcode: mve_core::isa::Opcode::RandomLoad,
                    ..
                }
            )
        });
        assert!(has_random, "SpMM must use vrld");
    }
}
