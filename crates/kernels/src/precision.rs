//! Precision-parametric variants of GEMM, SpMM and FIR for the Figure 12(c)
//! bit-precision sensitivity study (F32 / I32 / F16 / I16).
//!
//! Bit-serial arithmetic latency is quadratic in the element width, so these
//! four variants are the paper's probe into the precision/performance
//! trade-off. Each variant computes functionally and is checked against a
//! same-precision scalar reference.

use crate::common::{engine, gen_f32, Checked, KernelRun, Scale};
use mve_core::dtype::DType;
use mve_core::engine::{Engine, Reg};
use mve_core::isa::StrideMode;

/// The four precisions of Figure 12(c).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// 32-bit float.
    F32,
    /// 32-bit signed integer.
    I32,
    /// 16-bit float.
    F16,
    /// 16-bit signed integer.
    I16,
}

impl Precision {
    /// All four, in the paper's plot order.
    pub const ALL: [Precision; 4] = [
        Precision::F32,
        Precision::I32,
        Precision::F16,
        Precision::I16,
    ];

    /// The engine data type.
    pub fn dtype(&self) -> DType {
        match self {
            Precision::F32 => DType::F32,
            Precision::I32 => DType::I32,
            Precision::F16 => DType::F16,
            Precision::I16 => DType::I16,
        }
    }

    /// Label used in CSV output.
    pub fn label(&self) -> &'static str {
        match self {
            Precision::F32 => "F32",
            Precision::I32 => "I32",
            Precision::F16 => "F16",
            Precision::I16 => "I16",
        }
    }

    /// Element bytes.
    fn bytes(&self) -> u64 {
        self.dtype().bytes()
    }

    /// Packs an f32 sample into this precision's canonical lane value.
    fn pack(&self, v: f32) -> u64 {
        match self {
            Precision::F32 => DType::F32.from_f32(v),
            Precision::F16 => DType::F16.from_f32(v),
            // Integers: scale [-1,1) samples to a fixed-point range.
            Precision::I32 => DType::I32.from_i64((v * 1024.0) as i64),
            Precision::I16 => DType::I16.from_i64((v * 127.0) as i64),
        }
    }

    /// Scalar multiply-accumulate in this precision's exact semantics.
    fn mac(&self, acc: u64, a: u64, b: u64) -> u64 {
        let dt = self.dtype();
        let p = dt.binop(mve_core::dtype::BinOp::Mul, a, b);
        dt.binop(mve_core::dtype::BinOp::Add, acc, p)
    }
}

fn store_packed(e: &mut Engine, base: u64, prec: Precision, vals: &[u64]) {
    for (i, &v) in vals.iter().enumerate() {
        e.mem_mut()
            .write_raw(base + i as u64 * prec.bytes(), prec.bytes(), v);
    }
}

fn typed_load(e: &mut Engine, prec: Precision, base: u64, modes: &[StrideMode]) -> Reg {
    e.load(prec.dtype(), base, modes)
}

fn typed_mul(e: &mut Engine, a: Reg, b: Reg) -> Reg {
    e.binop(
        mve_core::isa::Opcode::Mul,
        mve_core::dtype::BinOp::Mul,
        a,
        b,
    )
}

fn typed_add(e: &mut Engine, a: Reg, b: Reg) -> Reg {
    e.binop(
        mve_core::isa::Opcode::Add,
        mve_core::dtype::BinOp::Add,
        a,
        b,
    )
}

fn check_lanes(e: &Engine, got_base: u64, prec: Precision, want: &[u64]) -> Checked {
    let mut mismatches = 0;
    for (i, &w) in want.iter().enumerate() {
        let g = e
            .mem()
            .read_raw(got_base + i as u64 * prec.bytes(), prec.bytes());
        if g != w {
            mismatches += 1;
        }
    }
    Checked {
        compared: want.len(),
        mismatches,
    }
}

/// GEMM at an arbitrary precision (Figure 12(c) sizes: 64×64×64).
pub fn run_gemm(prec: Precision, scale: Scale) -> KernelRun {
    let (n, k, m) = match scale {
        Scale::Test => (8, 12, 32),
        Scale::Paper => (64, 64, 64),
    };
    run_gemm_dims(prec, n, k, m)
}

/// GEMM at an arbitrary precision and explicit dimensions (shared by the
/// XNNPACK fp16 kernel).
pub fn run_gemm_dims(prec: Precision, n: usize, k: usize, m: usize) -> KernelRun {
    let input: Vec<u64> = gen_f32(0xE1, n * k).iter().map(|&v| prec.pack(v)).collect();
    let weight: Vec<u64> = gen_f32(0xE2, k * m).iter().map(|&v| prec.pack(v)).collect();
    // Same-order scalar reference in exact lane semantics.
    let mut want = vec![prec.pack(0.0); n * m];
    for r in 0..n {
        for c in 0..m {
            let mut acc = prec.pack(0.0);
            for j in 0..k {
                acc = prec.mac(acc, input[r * k + j], weight[j * m + c]);
            }
            want[r * m + c] = acc;
        }
    }

    let mut e = engine();
    e.vsetwidth(32);
    let eb = prec.bytes();
    let ia = e.mem_alloc(n as u64 * k as u64 * eb);
    let wa = e.mem_alloc(k as u64 * m as u64 * eb);
    let oa = e.mem_alloc(n as u64 * m as u64 * eb);
    store_packed(&mut e, ia, prec, &input);
    store_packed(&mut e, wa, prec, &weight);

    let lanes = e.lanes();
    let rows_per_tile = (lanes / m).max(1);
    e.vsetdimc(2);
    e.vsetdiml(0, m);
    e.vsetldstr(1, k as i64);
    let mut r = 0usize;
    while r < n {
        let rows = rows_per_tile.min(n - r);
        e.vsetdiml(1, rows);
        e.scalar(8);
        let mut acc = e.setdup(prec.dtype(), prec.pack(0.0));
        for j in 0..k {
            e.scalar(6);
            let iv = typed_load(
                &mut e,
                prec,
                ia + ((r * k + j) as u64) * eb,
                &[StrideMode::Zero, StrideMode::Cr],
            );
            let wv = typed_load(
                &mut e,
                prec,
                wa + ((j * m) as u64) * eb,
                &[StrideMode::One, StrideMode::Zero],
            );
            let p = typed_mul(&mut e, iv, wv);
            let acc2 = typed_add(&mut e, acc, p);
            for rg in [iv, wv, p, acc] {
                e.free(rg);
            }
            acc = acc2;
        }
        e.store(
            acc,
            oa + ((r * m) as u64) * eb,
            &[StrideMode::One, StrideMode::Seq],
        );
        e.free(acc);
        r += rows;
    }
    KernelRun {
        checked: check_lanes(&e, oa, prec, &want),
        trace: e.take_trace(),
    }
}

/// FIR at an arbitrary precision.
pub fn run_fir(prec: Precision, scale: Scale, taps: usize) -> KernelRun {
    let n = match scale {
        Scale::Test => 4 * 1024,
        Scale::Paper => 64 * 1024,
    };
    let x: Vec<u64> = gen_f32(0xE3, n).iter().map(|&v| prec.pack(v)).collect();
    let h: Vec<u64> = gen_f32(0xE4, taps).iter().map(|&v| prec.pack(v)).collect();
    let n_out = n - taps + 1;
    let mut want = vec![prec.pack(0.0); n_out];
    for (i, w) in want.iter_mut().enumerate() {
        let mut acc = prec.pack(0.0);
        for t in 0..taps {
            acc = prec.mac(acc, h[t], x[i + t]);
        }
        *w = acc;
    }

    let mut e = engine();
    e.vsetwidth(32);
    let eb = prec.bytes();
    let xa = e.mem_alloc(n as u64 * eb);
    let oa = e.mem_alloc(n_out as u64 * eb);
    store_packed(&mut e, xa, prec, &x);

    let lanes = e.lanes();
    e.vsetdimc(1);
    let mut base = 0usize;
    while base < n_out {
        let chunk = lanes.min(n_out - base);
        e.vsetdiml(0, chunk);
        e.scalar(6);
        let mut acc = e.setdup(prec.dtype(), prec.pack(0.0));
        for (t, &c) in h.iter().enumerate() {
            e.scalar(4);
            let xv = typed_load(
                &mut e,
                prec,
                xa + ((base + t) as u64) * eb,
                &[StrideMode::One],
            );
            let cv = e.setdup(prec.dtype(), c);
            let p = typed_mul(&mut e, xv, cv);
            let acc2 = typed_add(&mut e, acc, p);
            for rg in [xv, cv, p, acc] {
                e.free(rg);
            }
            acc = acc2;
        }
        e.store(acc, oa + (base as u64) * eb, &[StrideMode::One]);
        e.free(acc);
        base += chunk;
    }
    KernelRun {
        checked: check_lanes(&e, oa, prec, &want),
        trace: e.take_trace(),
    }
}

/// SpMM at an arbitrary precision (same structure as the f32 kernel, with
/// the batch fold in the target precision).
pub fn run_spmm(prec: Precision, scale: Scale) -> KernelRun {
    let s = crate::xnnpack::Spmm::size(scale);
    run_spmm_sized(prec, s)
}

/// SpMM at an arbitrary precision and explicit size.
pub fn run_spmm_sized(prec: Precision, s: crate::xnnpack::SpmmSize) -> KernelRun {
    use crate::xnnpack::Spmm;
    let d = Spmm::gen_data(s, 0xE5);
    let values: Vec<u64> = d.values.iter().map(|&v| prec.pack(v)).collect();
    let weight: Vec<u64> = d.weight.iter().map(|&v| prec.pack(v)).collect();

    let mut e = engine();
    e.vsetwidth(32);
    let eb = prec.bytes();
    let va = e.mem_alloc((values.len().max(1) as u64) * eb);
    let wa = e.mem_alloc((s.k * s.m) as u64 * eb);
    let oa = e.mem_alloc((s.n * s.m) as u64 * eb);
    let zero_val = e.mem_alloc(eb);
    store_packed(&mut e, va, prec, &values);
    store_packed(&mut e, wa, prec, &weight);
    e.mem_mut().write_raw(zero_val, eb, prec.pack(0.0));

    // The kernel accumulates [M x batch] partial products across batches
    // and folds the batch dimension once per row; the reference follows the
    // same order exactly.
    let lanes = e.lanes();
    let max_nnz = (0..s.n)
        .map(|n| d.row_ptr[n + 1] - d.row_ptr[n])
        .max()
        .unwrap_or(1)
        .max(1);
    let batch = ((lanes / s.m).next_power_of_two() / 2)
        .clamp(2, 256)
        .min(max_nnz.next_power_of_two());
    let dt = prec.dtype();
    let mut want = vec![prec.pack(0.0); s.n * s.m];
    for n in 0..s.n {
        let (lo, hi) = (d.row_ptr[n], d.row_ptr[n + 1]);
        // acc2d[b][m] accumulates products across batch passes.
        let mut acc2d = vec![vec![prec.pack(0.0); s.m]; batch];
        let mut j = lo;
        while j < hi {
            let take = batch.min(hi - j);
            for b in 0..take {
                for m in 0..s.m {
                    let p = dt.binop(
                        mve_core::dtype::BinOp::Mul,
                        values[j + b],
                        weight[d.col_idx[j + b] * s.m + m],
                    );
                    acc2d[b][m] = dt.binop(mve_core::dtype::BinOp::Add, acc2d[b][m], p);
                }
            }
            j += take;
        }
        // Pairwise fold of the batch dimension (tree_halve order).
        let mut len = batch;
        while len > 1 {
            for b in 0..len / 2 {
                for m in 0..s.m {
                    acc2d[b][m] = dt.binop(
                        mve_core::dtype::BinOp::Add,
                        acc2d[b][m],
                        acc2d[b + len / 2][m],
                    );
                }
            }
            len /= 2;
        }
        want[n * s.m..(n + 1) * s.m].copy_from_slice(&acc2d[0]);
    }

    let vptr = e.mem_alloc_typed::<u64>(batch);
    let wptr = e.mem_alloc_typed::<u64>(batch);
    for n in 0..s.n {
        e.scalar(10);
        // Accumulate [M, batch] products across batch passes.
        e.vsetdimc(2);
        e.vsetdiml(0, s.m);
        e.vsetdiml(1, batch);
        let mut acc2d = e.setdup(dt, prec.pack(0.0));
        let (lo, hi) = (d.row_ptr[n], d.row_ptr[n + 1]);
        let mut j = lo;
        while j < hi {
            let take = batch.min(hi - j);
            e.scalar(4 * take as u64);
            let mut vp = Vec::with_capacity(batch);
            let mut wp = Vec::with_capacity(batch);
            for b in 0..batch {
                if b < take {
                    vp.push(va + ((j + b) as u64) * eb);
                    wp.push(wa + (d.col_idx[j + b] * s.m) as u64 * eb);
                } else {
                    vp.push(zero_val);
                    wp.push(wa);
                }
            }
            e.mem_fill(vptr, &vp);
            e.mem_fill(wptr, &wp);
            let vv = e.rload(dt, vptr, &[StrideMode::Zero]);
            let wv = e.rload(dt, wptr, &[StrideMode::One]);
            let p = typed_mul(&mut e, vv, wv);
            e.free(vv);
            e.free(wv);
            let acc2 = typed_add(&mut e, acc2d, p);
            e.free(acc2d);
            e.free(p);
            acc2d = acc2;
            j += take;
        }
        // One in-cache fold per row.
        e.vsetdimc(1);
        e.vsetdiml(0, s.m * batch);
        let folded = crate::common::tree_halve(&mut e, acc2d, s.m * batch, s.m);
        e.vsetdimc(1);
        e.vsetdiml(0, s.m);
        e.store(folded, oa + (n * s.m) as u64 * eb, &[StrideMode::One]);
        e.free(folded);
    }
    KernelRun {
        checked: check_lanes(&e, oa, prec, &want),
        trace: e.take_trace(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_all_precisions_match() {
        for prec in Precision::ALL {
            let run = run_gemm(prec, Scale::Test);
            assert!(run.checked.ok(), "{}: {:?}", prec.label(), run.checked);
        }
    }

    #[test]
    fn fir_all_precisions_match() {
        for prec in Precision::ALL {
            let run = run_fir(prec, Scale::Test, 16);
            assert!(run.checked.ok(), "{}: {:?}", prec.label(), run.checked);
        }
    }

    #[test]
    fn spmm_all_precisions_match() {
        for prec in Precision::ALL {
            let run = run_spmm(prec, Scale::Test);
            assert!(run.checked.ok(), "{}: {:?}", prec.label(), run.checked);
        }
    }

    #[test]
    fn lower_precision_emits_same_instruction_count() {
        // Precision changes latency, not instruction count.
        let a = run_gemm(Precision::F32, Scale::Test).trace.instr_mix();
        let b = run_gemm(Precision::I16, Scale::Test).trace.instr_mix();
        assert_eq!(a.vector_total(), b.vector_total());
    }
}
