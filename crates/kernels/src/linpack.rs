//! Linpack — `daxpy` (the paper's LPACK kernel, 1-D, f32).

use crate::common::{check_f32, engine, gen_f32, KernelRun, Scale};
use crate::registry::{Kernel, KernelInfo, Library};
use mve_baselines::gpu::GpuKernelCost;
use mve_baselines::rvv::Rvv;
use mve_core::dtype::DType;
use mve_core::isa::StrideMode;
use mve_coresim::neon::{NeonOpClass, NeonProfile};

/// `y[i] += a * x[i]` over a long vector.
pub struct Daxpy;

impl Daxpy {
    fn n(scale: Scale) -> usize {
        match scale {
            Scale::Test => 16 * 1024,
            Scale::Paper => 512 * 1024,
        }
    }

    /// Scalar reference.
    pub fn scalar_ref(a: f32, x: &[f32], y: &[f32]) -> Vec<f32> {
        x.iter().zip(y).map(|(xi, yi)| a * xi + yi).collect()
    }
}

impl Kernel for Daxpy {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "lpack",
            library: Library::Linpack,
            dims: 1,
            dtype_bits: 32,
            selected: true,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        let n = Self::n(scale);
        let a = 2.5f32;
        let x = gen_f32(0x11, n);
        let y = gen_f32(0x12, n);
        let want = Self::scalar_ref(a, &x, &y);

        let mut e = engine();
        let xa = e.mem_alloc_typed::<f32>(n);
        let ya = e.mem_alloc_typed::<f32>(n);
        let oa = e.mem_alloc_typed::<f32>(n);
        e.mem_fill(xa, &x);
        e.mem_fill(ya, &y);

        let lanes = e.lanes();
        e.vsetdimc(1);
        e.vsetdiml(0, lanes.min(n));
        let av = e.vsetdup_f(a);
        let mut base = 0usize;
        while base < n {
            let chunk = lanes.min(n - base);
            e.vsetdiml(0, chunk);
            e.scalar(6); // loop control + address updates
            let xv = e.vsld_f(xa + base as u64 * 4, &[StrideMode::One]);
            let yv = e.vsld_f(ya + base as u64 * 4, &[StrideMode::One]);
            let p = e.vmul_f(xv, av);
            let s = e.vadd_f(p, yv);
            e.vsst_f(s, oa + base as u64 * 4, &[StrideMode::One]);
            for r in [xv, yv, p, s] {
                e.free(r);
            }
            base += chunk;
        }
        let got = e.mem_read_vec::<f32>(oa, n);
        KernelRun {
            checked: check_f32(&got, &want, 1e-6),
            trace: e.take_trace(),
        }
    }

    fn run_rvv(&self, scale: Scale) -> Option<KernelRun> {
        let n = Self::n(scale);
        let a = 2.5f32;
        let x = gen_f32(0x11, n);
        let y = gen_f32(0x12, n);
        let want = Self::scalar_ref(a, &x, &y);

        let mut e = engine();
        let xa = e.mem_alloc_typed::<f32>(n);
        let ya = e.mem_alloc_typed::<f32>(n);
        let oa = e.mem_alloc_typed::<f32>(n);
        e.mem_fill(xa, &x);
        e.mem_fill(ya, &y);

        let lanes = e.lanes();
        let mut rvv = Rvv::new(&mut e);
        let mut base = 0usize;
        while base < n {
            let chunk = lanes.min(n - base);
            rvv.setvl(chunk);
            rvv.engine().scalar(6);
            let xv = rvv.load_1d(DType::F32, xa + base as u64 * 4, 1);
            let yv = rvv.load_1d(DType::F32, ya + base as u64 * 4, 1);
            let en = rvv.engine();
            let av = en.vsetdup_f(a);
            let p = en.vmul_f(xv, av);
            let s = en.vadd_f(p, yv);
            rvv.store_1d(s, oa + base as u64 * 4, 1);
            let en = rvv.engine();
            for r in [xv, yv, av, p, s] {
                en.free(r);
            }
            base += chunk;
        }
        let got = e.mem_read_vec::<f32>(oa, n);
        Some(KernelRun {
            checked: check_f32(&got, &want, 1e-6),
            trace: e.take_trace(),
        })
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        let n = Self::n(scale) as u64;
        let vecs = n / 4; // 4 f32 lanes per 128-bit vector
        NeonProfile {
            ops: vec![(NeonOpClass::FpMac, vecs)],
            chain_ops: vec![],
            loads: 2 * vecs,
            stores: vecs,
            scalar_instrs: 2 * vecs,
            touched_bytes: 3 * n * 4,
            base_addr: 0x100_0000,
        }
    }

    fn gpu_cost(&self, scale: Scale) -> Option<GpuKernelCost> {
        let n = Self::n(scale) as u64;
        Some(GpuKernelCost {
            ops: 2 * n,
            bytes_in: 2 * n * 4,
            bytes_out: n * 4,
            launches: 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mve_matches_reference() {
        let run = Daxpy.run_mve(Scale::Test);
        assert!(run.checked.ok(), "{:?}", run.checked);
        assert!(run.trace.instr_mix().mem_access > 0);
    }

    #[test]
    fn rvv_matches_reference() {
        let run = Daxpy.run_rvv(Scale::Test).expect("selected kernel");
        assert!(run.checked.ok(), "{:?}", run.checked);
    }

    #[test]
    fn rvv_and_mve_cost_similarly_in_1d() {
        // LPACK is 1-D: RVV should not blow up the instruction count
        // (Figure 10 shows near-parity for 1-D kernels).
        let mve = Daxpy.run_mve(Scale::Test);
        let rvv = Daxpy.run_rvv(Scale::Test).expect("rvv");
        let m = mve.trace.instr_mix().vector_total();
        let r = rvv.trace.instr_mix().vector_total();
        assert!((r as f64) < 1.5 * m as f64, "rvv {r} vs mve {m}");
    }
}
