//! Arm Optimized Routines — string/network utilities: memcpy, memset,
//! strlen, memchr and the Internet checksum (the paper's selected CSUM).

use crate::common::{check_exact, engine, gen_u8, tag_to_data, tree_reduce, KernelRun, Scale};
use crate::registry::{Kernel, KernelInfo, Library};
use mve_baselines::gpu::GpuKernelCost;
use mve_baselines::rvv::Rvv;
use mve_core::dtype::DType;
use mve_core::isa::StrideMode;
use mve_coresim::neon::{NeonOpClass, NeonProfile};

fn buf_len(scale: Scale) -> usize {
    match scale {
        Scale::Test => 16 * 1024,
        Scale::Paper => 128 * 1024,
    }
}

/// Bulk copy.
pub struct Memcpy;

impl Kernel for Memcpy {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "memcpy",
            library: Library::OptRoutines,
            dims: 1,
            dtype_bits: 8,
            selected: false,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        let n = buf_len(scale);
        let src = gen_u8(0xD1, n);
        let mut e = engine();
        e.vsetwidth(8);
        let sa = e.mem_alloc_typed::<u8>(n);
        let da = e.mem_alloc_typed::<u8>(n);
        e.mem_fill(sa, &src);
        let lanes = e.lanes();
        e.vsetdimc(1);
        let mut base = 0usize;
        while base < n {
            let chunk = lanes.min(n - base);
            e.vsetdiml(0, chunk);
            e.scalar(4);
            let v = e.vsld_ub(sa + base as u64, &[StrideMode::One]);
            e.vsst_ub(v, da + base as u64, &[StrideMode::One]);
            e.free(v);
            base += chunk;
        }
        let got = e.mem_read_vec::<u8>(da, n);
        KernelRun {
            checked: check_exact(&got, &src),
            trace: e.take_trace(),
        }
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        let v = buf_len(scale) as u64 / 16;
        NeonProfile {
            ops: vec![],
            chain_ops: vec![],
            loads: v,
            stores: v,
            scalar_instrs: v,
            touched_bytes: buf_len(scale) as u64 * 2,
            base_addr: 0x2400_0000,
        }
    }
}

/// Bulk fill.
pub struct Memset;

impl Kernel for Memset {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "memset",
            library: Library::OptRoutines,
            dims: 1,
            dtype_bits: 8,
            selected: false,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        let n = buf_len(scale);
        let fill = 0xA5u8;
        let want = vec![fill; n];
        let mut e = engine();
        e.vsetwidth(8);
        let da = e.mem_alloc_typed::<u8>(n);
        let lanes = e.lanes();
        e.vsetdimc(1);
        let mut base = 0usize;
        while base < n {
            let chunk = lanes.min(n - base);
            e.vsetdiml(0, chunk);
            e.scalar(3);
            let v = e.vsetdup_ub(fill);
            e.vsst_ub(v, da + base as u64, &[StrideMode::One]);
            e.free(v);
            base += chunk;
        }
        let got = e.mem_read_vec::<u8>(da, n);
        KernelRun {
            checked: check_exact(&got, &want),
            trace: e.take_trace(),
        }
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        let v = buf_len(scale) as u64 / 16;
        NeonProfile {
            ops: vec![],
            chain_ops: vec![],
            loads: 0,
            stores: v,
            scalar_instrs: v / 2,
            touched_bytes: buf_len(scale) as u64,
            base_addr: 0x2500_0000,
        }
    }
}

/// Shared scan kernel: find the first occurrence of `target` using compare
/// + Tag materialisation + scalar scan of the flag tile.
fn scan_for_byte(scale: Scale, data: &[u8], target: u8) -> (KernelRun, usize) {
    let n = data.len();
    let mut e = engine();
    e.vsetwidth(8);
    let da = e.mem_alloc_typed::<u8>(n);
    let fa = e.mem_alloc_typed::<u8>(e.lanes());
    e.mem_fill(da, data);

    let lanes = e.lanes();
    e.vsetdimc(1);
    let mut found = n;
    let mut base = 0usize;
    while base < n {
        let chunk = lanes.min(n - base);
        e.vsetdiml(0, chunk);
        e.scalar(5);
        let v = e.vsld_ub(da + base as u64, &[StrideMode::One]);
        let t = e.vsetdup_ub(target);
        e.veq_ub(v, t);
        e.free(v);
        e.free(t);
        let flags = tag_to_data(&mut e, DType::U8);
        e.vsst_ub(flags, fa, &[StrideMode::One]);
        e.free(flags);
        // Scalar scan of the flag tile (early-exit strlen-style loop).
        e.scalar(chunk as u64 / 16);
        let mut hit = None;
        for i in 0..chunk {
            if e.mem_read::<u8>(fa, i) == 1 {
                hit = Some(base + i);
                break;
            }
        }
        if let Some(h) = hit {
            found = h;
            break;
        }
        base += chunk;
    }
    let _ = scale;
    (
        KernelRun {
            checked: check_exact(
                &[found],
                &[data.iter().position(|&b| b == target).unwrap_or(n)],
            ),
            trace: e.take_trace(),
        },
        found,
    )
}

/// C string length (find the first NUL).
pub struct Strlen;

impl Kernel for Strlen {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "strlen",
            library: Library::OptRoutines,
            dims: 1,
            dtype_bits: 8,
            selected: false,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        let n = buf_len(scale);
        let mut s: Vec<u8> = gen_u8(0xD2, n).iter().map(|&b| b | 1).collect();
        s[n * 3 / 4] = 0; // the terminator
        scan_for_byte(scale, &s, 0).0
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        let v = (buf_len(scale) * 3 / 4 / 16) as u64;
        NeonProfile {
            ops: vec![(NeonOpClass::IntSimple, v), (NeonOpClass::Reduce, v / 4)],
            chain_ops: vec![],
            loads: v,
            stores: 0,
            scalar_instrs: v,
            touched_bytes: (buf_len(scale) * 3 / 4) as u64,
            base_addr: 0x2600_0000,
        }
    }
}

/// Find a byte in a buffer.
pub struct Memchr;

impl Kernel for Memchr {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "memchr",
            library: Library::OptRoutines,
            dims: 1,
            dtype_bits: 8,
            selected: false,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        let n = buf_len(scale);
        let mut s: Vec<u8> = gen_u8(0xD3, n).iter().map(|&b| b % 250).collect();
        s[n / 2 + 17] = 0xFE;
        scan_for_byte(scale, &s, 0xFE).0
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        let v = (buf_len(scale) / 2 / 16) as u64;
        NeonProfile {
            ops: vec![(NeonOpClass::IntSimple, v), (NeonOpClass::Reduce, v / 4)],
            chain_ops: vec![],
            loads: v,
            stores: 0,
            scalar_instrs: v,
            touched_bytes: (buf_len(scale) / 2) as u64,
            base_addr: 0x2700_0000,
        }
    }
}

/// RFC 1071 Internet checksum (the paper's CSUM selected kernel): 16-bit
/// ones'-complement sum of a buffer.
pub struct Csum;

impl Csum {
    /// Scalar reference.
    pub fn scalar_ref(data: &[u8]) -> u16 {
        let mut sum: u64 = 0;
        for pair in data.chunks(2) {
            let w = u64::from(pair[0]) | (u64::from(*pair.get(1).unwrap_or(&0)) << 8);
            sum += w;
        }
        while sum >> 16 != 0 {
            sum = (sum & 0xFFFF) + (sum >> 16);
        }
        !(sum as u16)
    }
}

impl Kernel for Csum {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "csum",
            library: Library::OptRoutines,
            dims: 1,
            dtype_bits: 32,
            selected: true,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        let n = buf_len(scale);
        let data = gen_u8(0xD4, n);
        let want = vec![Self::scalar_ref(&data)];

        let mut e = engine();
        let da = e.mem_alloc_typed::<u8>(n);
        e.mem_fill(da, &data);

        let words = n / 2;
        let lanes = e.lanes();
        e.vsetdimc(1);
        let mut total: u64 = 0;
        let mut base = 0usize;
        while base < words {
            let chunk = lanes.min(words - base);
            e.vsetdiml(0, chunk);
            e.scalar(5);
            let w16 = e.vsld_uw(da + (base * 2) as u64, &[StrideMode::One]);
            let w32 = e.vcvt(w16, DType::U32);
            e.free(w16);
            let part = tree_reduce(&mut e, w32, chunk);
            total += part;
            e.scalar(4);
            base += chunk;
        }
        // Ones'-complement folds on the scalar core.
        while total >> 16 != 0 {
            total = (total & 0xFFFF) + (total >> 16);
        }
        e.scalar(6);
        let got = vec![!(total as u16)];
        KernelRun {
            checked: check_exact(&got, &want),
            trace: e.take_trace(),
        }
    }

    fn run_rvv(&self, scale: Scale) -> Option<KernelRun> {
        // CSUM is 1-D: the RVV version is structurally identical.
        let n = buf_len(scale);
        let data = gen_u8(0xD4, n);
        let want = vec![Self::scalar_ref(&data)];

        let mut e = engine();
        let da = e.mem_alloc_typed::<u8>(n);
        e.mem_fill(da, &data);
        let words = n / 2;
        let lanes = e.lanes();
        let mut total: u64 = 0;
        let mut base = 0usize;
        while base < words {
            let chunk = lanes.min(words - base);
            let mut rvv = Rvv::new(&mut e);
            rvv.setvl(chunk);
            rvv.engine().scalar(5);
            let w16 = rvv.load_1d(DType::U16, da + (base * 2) as u64, 1);
            let en = rvv.engine();
            let w32 = en.vcvt(w16, DType::U32);
            en.free(w16);
            en.vsetdimc(1);
            en.vsetdiml(0, chunk);
            let part = tree_reduce(&mut e, w32, chunk);
            total += part;
            e.scalar(4);
            base += chunk;
        }
        while total >> 16 != 0 {
            total = (total & 0xFFFF) + (total >> 16);
        }
        e.scalar(6);
        let got = vec![!(total as u16)];
        Some(KernelRun {
            checked: check_exact(&got, &want),
            trace: e.take_trace(),
        })
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        let v = buf_len(scale) as u64 / 16;
        NeonProfile {
            ops: vec![
                (NeonOpClass::IntSimple, v * 2),
                (NeonOpClass::Reduce, v / 8),
            ],
            chain_ops: vec![(NeonOpClass::IntSimple, v / 8)],
            loads: v,
            stores: 0,
            scalar_instrs: v,
            touched_bytes: buf_len(scale) as u64,
            base_addr: 0x2800_0000,
        }
    }

    fn gpu_cost(&self, scale: Scale) -> Option<GpuKernelCost> {
        let n = buf_len(scale) as u64;
        Some(GpuKernelCost {
            ops: n,
            bytes_in: n,
            bytes_out: 4,
            launches: 2, // reduce + fold passes
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memcpy_matches() {
        assert!(Memcpy.run_mve(Scale::Test).checked.ok());
    }

    #[test]
    fn memset_matches() {
        assert!(Memset.run_mve(Scale::Test).checked.ok());
    }

    #[test]
    fn strlen_finds_terminator() {
        assert!(Strlen.run_mve(Scale::Test).checked.ok());
    }

    #[test]
    fn memchr_finds_byte() {
        assert!(Memchr.run_mve(Scale::Test).checked.ok());
    }

    #[test]
    fn csum_reference_sanity() {
        // RFC 1071 example: bytes 00 01 f2 03 f4 f5 f6 f7 → sum 0xddf2,
        // checksum 0x220d (little-endian word interpretation).
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let c = Csum::scalar_ref(&data);
        let sum = !c;
        let mut check: u64 = 0;
        for p in data.chunks(2) {
            check += u64::from(p[0]) | (u64::from(p[1]) << 8);
        }
        while check >> 16 != 0 {
            check = (check & 0xFFFF) + (check >> 16);
        }
        assert_eq!(u64::from(sum), check);
    }

    #[test]
    fn csum_mve_matches() {
        assert!(Csum.run_mve(Scale::Test).checked.ok());
    }

    #[test]
    fn csum_rvv_matches() {
        assert!(Csum.run_rvv(Scale::Test).expect("selected").checked.ok());
    }
}
