//! Kernel metadata and the suite registry (Table III).

use std::collections::HashMap;
use std::sync::OnceLock;

use crate::common::{KernelRun, Scale};
use mve_baselines::gpu::GpuKernelCost;
use mve_coresim::neon::NeonProfile;

/// The twelve mobile libraries of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Library {
    /// Linpack — linear algebra.
    Linpack,
    /// XNNPACK — machine-learning inference operators.
    Xnnpack,
    /// CMSIS-DSP — embedded signal processing.
    CmsisDsp,
    /// Kvazaar — HEVC video encoding.
    Kvazaar,
    /// libjpeg — JPEG codec.
    Libjpeg,
    /// libpng — PNG codec.
    Libpng,
    /// libwebp — WebP codec.
    Libwebp,
    /// Skia — 2-D graphics.
    Skia,
    /// WebAudio (Blink) — audio processing.
    Webaudio,
    /// zlib — data compression.
    Zlib,
    /// BoringSSL — cryptography.
    Boringssl,
    /// Arm Optimized Routines — string/network utilities.
    OptRoutines,
    /// Client-submitted `.mvel` kernels compiled by `mve-lang` (not part
    /// of the Table III suite; never in [`Library::ALL`]).
    Dsl,
}

impl Library {
    /// All libraries in Table III order.
    pub const ALL: [Library; 12] = [
        Library::Linpack,
        Library::Xnnpack,
        Library::CmsisDsp,
        Library::Kvazaar,
        Library::Libjpeg,
        Library::Libpng,
        Library::Libwebp,
        Library::Skia,
        Library::Webaudio,
        Library::Zlib,
        Library::Boringssl,
        Library::OptRoutines,
    ];

    /// Display name used in the figures.
    pub fn name(&self) -> &'static str {
        match self {
            Library::Linpack => "Linpack",
            Library::Xnnpack => "XNNPACK",
            Library::CmsisDsp => "CMSIS-DSP",
            Library::Kvazaar => "Kvazaar",
            Library::Libjpeg => "libjpeg",
            Library::Libpng => "libpng",
            Library::Libwebp => "libwebp",
            Library::Skia => "Skia",
            Library::Webaudio => "Webaudio",
            Library::Zlib => "zlib",
            Library::Boringssl => "boringssl",
            Library::OptRoutines => "Opt. Routines",
            Library::Dsl => "mve-lang",
        }
    }

    /// Application domain (Table III).
    pub fn domain(&self) -> &'static str {
        match self {
            Library::Linpack => "Linear Algebra",
            Library::Xnnpack => "Machine Learning",
            Library::CmsisDsp => "Signal Processing",
            Library::Kvazaar => "Video Processing",
            Library::Libjpeg | Library::Libpng | Library::Libwebp => "Image Processing",
            Library::Skia => "Graphics",
            Library::Webaudio => "Audio Processing",
            Library::Zlib => "Data Compression",
            Library::Boringssl => "Cryptography",
            Library::OptRoutines => "String/Network Utilities",
            Library::Dsl => "User-Defined Kernels",
        }
    }

    /// Dataset description (Table III).
    pub fn dataset(&self) -> &'static str {
        match self {
            Library::Linpack => "512K",
            Library::Xnnpack => "CNN layers",
            Library::CmsisDsp => "192K",
            Library::Kvazaar
            | Library::Libjpeg
            | Library::Libpng
            | Library::Libwebp
            | Library::Skia => "1280x720",
            Library::Webaudio => "32S x 44.1kHz",
            Library::Zlib | Library::Boringssl | Library::OptRoutines => "128KB",
            Library::Dsl => "client-submitted",
        }
    }
}

/// Static description of one kernel.
#[derive(Debug, Clone, Copy)]
pub struct KernelInfo {
    /// Kernel name (lower-case, as used in CSV outputs).
    pub name: &'static str,
    /// Owning library.
    pub library: Library,
    /// Logical dimensions the MVE implementation uses.
    pub dims: usize,
    /// Dominant element width in bits.
    pub dtype_bits: u32,
    /// Member of the 11-kernel selected set (Figures 8–13).
    pub selected: bool,
}

/// A benchmark kernel with all its backends.
pub trait Kernel {
    /// Metadata.
    fn info(&self) -> KernelInfo;

    /// Runs the MVE implementation on a fresh engine and checks the output
    /// against the scalar reference.
    fn run_mve(&self, scale: Scale) -> KernelRun;

    /// Runs the RVV (1-D) implementation, for the selected kernels.
    fn run_rvv(&self, _scale: Scale) -> Option<KernelRun> {
        None
    }

    /// The dynamic Neon instruction profile of the Arm baseline.
    fn neon_profile(&self, scale: Scale) -> NeonProfile;

    /// The GPU offload descriptor, for the selected kernels.
    fn gpu_cost(&self, _scale: Scale) -> Option<GpuKernelCost> {
        None
    }
}

/// All 44 kernels of the suite.
pub fn all_kernels() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(crate::linpack::Daxpy),
        Box::new(crate::xnnpack::Gemm),
        Box::new(crate::xnnpack::Spmm),
        Box::new(crate::cmsis::Fir::V),
        Box::new(crate::cmsis::Fir::S),
        Box::new(crate::cmsis::Fir::L),
        Box::new(crate::kvazaar::Satd),
        Box::new(crate::kvazaar::Intra),
        Box::new(crate::kvazaar::Dct),
        Box::new(crate::kvazaar::Idct),
        Box::new(crate::libjpeg::H2v2Upsample),
        Box::new(crate::libjpeg::H2v2Downsample),
        Box::new(crate::libjpeg::YcbcrToRgb),
        Box::new(crate::libjpeg::RgbToYcbcr),
        Box::new(crate::libjpeg::Quantize),
        Box::new(crate::libpng::FilterSub),
        Box::new(crate::libpng::FilterUp),
        Box::new(crate::libpng::FilterPaeth),
        Box::new(crate::libwebp::SharpUpdate),
        Box::new(crate::libwebp::UpsampleBilinear),
        Box::new(crate::libwebp::AlphaMultiply),
        Box::new(crate::libwebp::VerticalFilter),
        Box::new(crate::libwebp::GradientFilter),
        Box::new(crate::libwebp::Sse4x4),
        Box::new(crate::libwebp::QuantizeCoeffs),
        Box::new(crate::skia::BlitRow),
        Box::new(crate::skia::Memset32),
        Box::new(crate::skia::ConvolveHoriz),
        Box::new(crate::skia::XfermodeMultiply),
        Box::new(crate::webaudio::Vsmul),
        Box::new(crate::webaudio::VaddAudio),
        Box::new(crate::webaudio::Vclip),
        Box::new(crate::webaudio::SumAudio),
        Box::new(crate::webaudio::Interleave),
        Box::new(crate::zlib::Adler32),
        Box::new(crate::zlib::Compare258),
        Box::new(crate::boringssl::Chacha20),
        Box::new(crate::boringssl::Sha256Msched),
        Box::new(crate::boringssl::XorCipher),
        Box::new(crate::optroutines::Memcpy),
        Box::new(crate::optroutines::Memset),
        Box::new(crate::optroutines::Strlen),
        Box::new(crate::optroutines::Memchr),
        Box::new(crate::optroutines::Csum),
    ]
}

/// The 11 selected kernels of Figures 8–13 (CSUM, LPACK, FIR-V/S/L, GEMM,
/// SPMM, SATD, INTRA, DCT, IDCT).
pub fn selected_kernels() -> Vec<Box<dyn Kernel>> {
    all_kernels()
        .into_iter()
        .filter(|k| k.info().selected)
        .collect()
}

/// Lazily-built name → registry-position index, so every front-end (the
/// CLI binaries and the simulation service) resolves kernel names in O(1)
/// instead of scanning the suite.
fn name_index() -> &'static HashMap<&'static str, usize> {
    static INDEX: OnceLock<HashMap<&'static str, usize>> = OnceLock::new();
    INDEX.get_or_init(|| {
        all_kernels()
            .iter()
            .enumerate()
            .map(|(i, k)| (k.info().name, i))
            .collect()
    })
}

/// All kernel names, sorted — the vocabulary quoted by [`UnknownKernel`].
pub fn kernel_names_sorted() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = name_index().keys().copied().collect();
    names.sort_unstable();
    names
}

/// Case-sensitive Levenshtein distance (iterative two-row form).
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The nearest name to `name` among `candidates` (a "did you mean?"
/// suggestion), if one is close enough to plausibly be a typo: edit
/// distance at most `max(1, len/3)`, ties broken by iteration order —
/// pass a sorted vocabulary for deterministic output. Shared by every
/// vocabulary front-end: [`UnknownKernel`] (so `ext_pumice --kernel` and
/// the serve error reply inherit it) and the artefact vocabulary behind
/// `reproduce --only`.
pub fn did_you_mean<'a>(name: &str, candidates: &[&'a str]) -> Option<&'a str> {
    let budget = (name.chars().count() / 3).max(1);
    candidates
        .iter()
        .map(|&c| (edit_distance(name, c), c))
        .filter(|&(d, _)| d > 0 && d <= budget)
        .min_by_key(|&(d, _)| d)
        .map(|(_, c)| c)
}

/// A kernel name that is not in the Table III suite. Its `Display` output
/// is the one help message every front-end shows (`reproduce`,
/// `ext_pumice`, and the `mve-serve` error reply), so the failure mode of
/// a typo'd kernel is a nearest-name suggestion plus the sorted list of
/// valid names, everywhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownKernel {
    /// The name that failed to resolve.
    pub name: String,
}

impl std::fmt::Display for UnknownKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names = kernel_names_sorted();
        write!(f, "unknown kernel `{}`;", self.name)?;
        if let Some(suggestion) = did_you_mean(&self.name, &names) {
            write!(f, " did you mean `{suggestion}`?")?;
        }
        write!(f, " valid kernels: {}", names.join(", "))
    }
}

impl std::error::Error for UnknownKernel {}

/// Resolves one kernel by its registry name via the lazily-built lookup
/// map (no linear name scan).
pub fn kernel_by_name(name: &str) -> Result<Box<dyn Kernel>, UnknownKernel> {
    let &i = name_index().get(name).ok_or_else(|| UnknownKernel {
        name: name.to_owned(),
    })?;
    let mut kernels = all_kernels();
    Ok(kernels.swap_remove(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_44_kernels() {
        assert_eq!(all_kernels().len(), 44);
    }

    #[test]
    fn selected_set_has_11_kernels() {
        let sel = selected_kernels();
        assert_eq!(sel.len(), 11);
        for k in &sel {
            assert!(
                k.run_rvv(Scale::Test).is_some(),
                "{} needs RVV",
                k.info().name
            );
            assert!(
                k.gpu_cost(Scale::Test).is_some(),
                "{} needs GPU",
                k.info().name
            );
        }
    }

    #[test]
    fn per_library_kernel_counts_match_table_iii() {
        let all = all_kernels();
        let count = |lib: Library| all.iter().filter(|k| k.info().library == lib).count();
        assert_eq!(count(Library::Linpack), 1);
        assert_eq!(count(Library::Xnnpack), 2);
        assert_eq!(count(Library::CmsisDsp), 3);
        assert_eq!(count(Library::Kvazaar), 4);
        assert_eq!(count(Library::Libjpeg), 5);
        assert_eq!(count(Library::Libpng), 3);
        assert_eq!(count(Library::Libwebp), 7);
        assert_eq!(count(Library::Skia), 4);
        assert_eq!(count(Library::Webaudio), 5);
        assert_eq!(count(Library::Zlib), 2);
        assert_eq!(count(Library::Boringssl), 3);
        assert_eq!(count(Library::OptRoutines), 5);
    }

    #[test]
    fn kernel_by_name_resolves_every_registered_kernel() {
        for k in all_kernels() {
            let name = k.info().name;
            let found = kernel_by_name(name).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(found.info().name, name);
            assert_eq!(found.info().library, k.info().library);
        }
    }

    #[test]
    fn unknown_kernel_lists_the_sorted_vocabulary() {
        let Err(err) = kernel_by_name("gemmm") else {
            panic!("gemmm is a typo and must not resolve");
        };
        let msg = err.to_string();
        assert!(msg.contains("unknown kernel `gemmm`"), "{msg}");
        let sorted = kernel_names_sorted();
        assert_eq!(sorted.len(), 44);
        assert!(sorted.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
        // Every valid name appears in the help message, in sorted order.
        let list = msg.split("valid kernels: ").nth(1).expect("list");
        assert_eq!(list, sorted.join(", "));
    }

    #[test]
    fn typos_get_nearest_name_suggestions() {
        // One help message, one suggestion policy, every front-end.
        for (typo, want) in [
            ("gemmm", "gemm"),
            ("gemn", "gemm"),
            ("adler23", "adler32"),
            ("memst", "memset"),
            ("strlen1", "strlen"),
            ("chacha21", "chacha20"),
            ("webp_upsampl", "webp_upsample"),
        ] {
            let Err(err) = kernel_by_name(typo) else {
                panic!("{typo} must not resolve");
            };
            let msg = err.to_string();
            assert!(
                msg.contains(&format!("did you mean `{want}`?")),
                "{typo}: {msg}"
            );
        }
        // Nothing near: no suggestion, just the vocabulary.
        let Err(err) = kernel_by_name("zzzzzzzz") else {
            panic!("zzzzzzzz must not resolve");
        };
        let msg = err.to_string();
        assert!(!msg.contains("did you mean"), "{msg}");
        assert!(msg.contains("valid kernels: "), "{msg}");
    }

    #[test]
    fn did_you_mean_respects_the_distance_budget() {
        let vocab = ["gemm", "spmm", "satd"];
        assert_eq!(did_you_mean("gemmm", &vocab), Some("gemm"));
        assert_eq!(did_you_mean("spm", &vocab), Some("spmm"));
        // An exact match is not a typo.
        assert_eq!(did_you_mean("gemm", &vocab), None);
        // Too far from everything (budget = len/3).
        assert_eq!(did_you_mean("quicksort", &vocab), None);
        // Deterministic tie-break: first candidate in (sorted) order.
        assert_eq!(did_you_mean("gexm", &["geam", "gebm"]), Some("geam"));
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = all_kernels().iter().map(|k| k.info().name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate kernel names");
    }
}
