//! libjpeg — five kernels, including the Figure 4 `h2v2_upsample` random
//! row-pointer pattern (libjpeg allocates image rows in separate memory).

use crate::common::{check_exact, engine, gen_i16, gen_u8, KernelRun, Scale};
use crate::registry::{Kernel, KernelInfo, Library};
use mve_core::dtype::DType;
use mve_core::isa::StrideMode;
use mve_coresim::neon::{NeonOpClass, NeonProfile};

fn plane(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Test => (64, 32),
        Scale::Paper => (640, 360),
    }
}

/// 2×2 pixel replication from randomly-allocated rows (Figure 4).
pub struct H2v2Upsample;

impl Kernel for H2v2Upsample {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "h2v2_upsample",
            library: Library::Libjpeg,
            dims: 3,
            dtype_bits: 8,
            selected: false,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        let (m, r) = plane(scale);
        let rows: Vec<Vec<u8>> = (0..r).map(|i| gen_u8(0x61 + i as u64, m)).collect();
        // Reference: each input row produces two output rows of doubled
        // pixels.
        let want: Vec<Vec<u8>> = rows
            .iter()
            .flat_map(|row| {
                let doubled: Vec<u8> = row.iter().flat_map(|&p| [p, p]).collect();
                [doubled.clone(), doubled]
            })
            .collect();

        let mut e = engine();
        e.vsetwidth(8);
        // Rows live at scattered addresses (libjpeg row allocator).
        let mut in_ptrs_v = Vec::with_capacity(r);
        for row in &rows {
            let a = e.mem_alloc_typed::<u8>(m + 192); // scatter with slack
            e.mem_fill(a, row);
            in_ptrs_v.push(a);
        }
        let mut out_ptrs_v = Vec::with_capacity(2 * r);
        for _ in 0..2 * r {
            out_ptrs_v.push(e.mem_alloc_typed::<u8>(2 * m));
        }

        // The scalar core doubles the input pointer list so one 3-D random
        // load covers both output rows of each input row.
        let dup_ptrs: Vec<u64> = in_ptrs_v.iter().flat_map(|&p| [p, p]).collect();
        let ptr_in = e.mem_alloc_typed::<u64>(2 * r);
        let ptr_out = e.mem_alloc_typed::<u64>(2 * r);
        e.mem_fill(ptr_in, &dup_ptrs);
        e.mem_fill(ptr_out, &out_ptrs_v);
        e.scalar(4 * r as u64);

        let lanes = e.lanes();
        let rows_per_tile = (lanes / (2 * m)).clamp(1, 256);
        let mut k = 0usize;
        while k < 2 * r {
            let chunk = rows_per_tile.min(2 * r - k);
            // 3-D: duplicate pixels (DIM0), M columns (DIM1), rows (DIM2).
            e.vsetdimc(3);
            e.vsetdiml(0, 2);
            e.vsetdiml(1, m);
            e.vsetdiml(2, chunk);
            e.scalar(8);
            let v = e.vrld_ub(
                ptr_in + (k * 8) as u64,
                &[StrideMode::Zero, StrideMode::One],
            );
            e.vrst_ub(
                v,
                ptr_out + (k * 8) as u64,
                &[StrideMode::One, StrideMode::Seq],
            );
            e.free(v);
            k += chunk;
        }
        let mut mismatches = 0;
        let mut compared = 0;
        for (i, w) in want.iter().enumerate() {
            let got = e.mem_read_vec::<u8>(out_ptrs_v[i], 2 * m);
            compared += w.len();
            mismatches += got.iter().zip(w).filter(|(g, w)| g != w).count();
        }
        KernelRun {
            checked: crate::common::Checked {
                compared,
                mismatches,
            },
            trace: e.take_trace(),
        }
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        let (m, r) = plane(scale);
        let px = (m * r) as u64;
        NeonProfile {
            ops: vec![(NeonOpClass::Permute, px / 16 * 4)],
            chain_ops: vec![],
            loads: px / 16,
            stores: px / 16 * 4,
            scalar_instrs: px / 16 * 6 + 4 * r as u64,
            touched_bytes: px * 5,
            base_addr: 0x800_0000,
        }
    }
}

/// 2×2 box-filter downsampling.
pub struct H2v2Downsample;

impl Kernel for H2v2Downsample {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "h2v2_downsample",
            library: Library::Libjpeg,
            dims: 2,
            dtype_bits: 8,
            selected: false,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        let (m_out, r_out) = plane(scale);
        let (w_in, h_in) = (2 * m_out, 2 * r_out);
        let img = gen_u8(0x62, w_in * h_in);
        let want: Vec<u8> = (0..r_out)
            .flat_map(|y| {
                let img = &img;
                (0..m_out).map(move |x| {
                    let s = u16::from(img[2 * y * w_in + 2 * x])
                        + u16::from(img[2 * y * w_in + 2 * x + 1])
                        + u16::from(img[(2 * y + 1) * w_in + 2 * x])
                        + u16::from(img[(2 * y + 1) * w_in + 2 * x + 1]);
                    ((s + 2) >> 2) as u8
                })
            })
            .collect();

        let mut e = engine();
        e.vsetwidth(16);
        let ia = e.mem_alloc_typed::<u8>(w_in * h_in);
        let oa = e.mem_alloc_typed::<u8>(m_out * r_out);
        e.mem_fill(ia, &img);

        let lanes = e.lanes();
        let rows_per_tile = (lanes / m_out).clamp(1, 256);
        e.vsetdimc(2);
        e.vsetdiml(0, m_out);
        e.vsetldstr(0, 2);
        e.vsetldstr(1, 2 * w_in as i64);
        e.vsetststr(1, m_out as i64);
        let mut y = 0usize;
        while y < r_out {
            let rows = rows_per_tile.min(r_out - y);
            e.vsetdiml(1, rows);
            e.scalar(8);
            let base = ia + (2 * y * w_in) as u64;
            let modes = [StrideMode::Cr, StrideMode::Cr];
            let p00 = e.vsld_ub(base, &modes);
            let p01 = e.vsld_ub(base + 1, &modes);
            let p10 = e.vsld_ub(base + w_in as u64, &modes);
            let p11 = e.vsld_ub(base + w_in as u64 + 1, &modes);
            // Widen to 16-bit for the sum.
            let w00 = e.vcvt(p00, DType::U16);
            let w01 = e.vcvt(p01, DType::U16);
            let s0 = e.vadd_uw(w00, w01);
            for rg in [p00, p01, w00, w01] {
                e.free(rg);
            }
            let w10 = e.vcvt(p10, DType::U16);
            let w11 = e.vcvt(p11, DType::U16);
            let s1 = e.vadd_uw(w10, w11);
            for rg in [p10, p11, w10, w11] {
                e.free(rg);
            }
            let s = e.vadd_uw(s0, s1);
            let two = e.vsetdup_uw(2);
            let s2 = e.vadd_uw(s, two);
            let sh = e.vshir_uw(s2, 2);
            let out8 = e.vcvt(sh, DType::U8);
            e.vsst_ub(
                out8,
                oa + (y * m_out) as u64,
                &[StrideMode::One, StrideMode::Cr],
            );
            for rg in [s0, s1, s, two, s2, sh, out8] {
                e.free(rg);
            }
            y += rows;
        }
        let got = e.mem_read_vec::<u8>(oa, m_out * r_out);
        KernelRun {
            checked: check_exact(&got, &want),
            trace: e.take_trace(),
        }
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        let (m, r) = plane(scale);
        let out_px = (m * r) as u64;
        NeonProfile {
            ops: vec![
                (NeonOpClass::IntSimple, out_px / 8 * 5),
                (NeonOpClass::Permute, out_px / 8 * 2),
                (NeonOpClass::Shift, out_px / 8),
            ],
            chain_ops: vec![],
            loads: out_px / 8 * 4,
            stores: out_px / 16,
            scalar_instrs: out_px / 8 * 3,
            touched_bytes: out_px * 5,
            base_addr: 0x900_0000,
        }
    }
}

const FIX_R_CR: i32 = 91881; // 1.402 << 16
const FIX_G_CB: i32 = 22554; // 0.344 << 16
const FIX_G_CR: i32 = 46802; // 0.714 << 16
const FIX_B_CB: i32 = 116130; // 1.772 << 16

fn clamp_u8(v: i32) -> u8 {
    v.clamp(0, 255) as u8
}

/// Planar YCbCr → interleaved-free RGB conversion (fixed point).
pub struct YcbcrToRgb;

impl Kernel for YcbcrToRgb {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "ycbcr_to_rgb",
            library: Library::Libjpeg,
            dims: 1,
            dtype_bits: 32,
            selected: false,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        let (w, h) = plane(scale);
        let n = w * h;
        let yp = gen_u8(0x63, n);
        let cbp = gen_u8(0x64, n);
        let crp = gen_u8(0x65, n);
        let mut want = Vec::with_capacity(3 * n);
        for i in 0..n {
            let (y, cb, cr) = (
                i32::from(yp[i]),
                i32::from(cbp[i]) - 128,
                i32::from(crp[i]) - 128,
            );
            want.push(clamp_u8(y + ((FIX_R_CR * cr) >> 16)));
            want.push(clamp_u8(y - ((FIX_G_CB * cb + FIX_G_CR * cr) >> 16)));
            want.push(clamp_u8(y + ((FIX_B_CB * cb) >> 16)));
        }

        let mut e = engine();
        let ya = e.mem_alloc_typed::<u8>(n);
        let cba = e.mem_alloc_typed::<u8>(n);
        let cra = e.mem_alloc_typed::<u8>(n);
        let oa = e.mem_alloc_typed::<u8>(3 * n);
        e.mem_fill(ya, &yp);
        e.mem_fill(cba, &cbp);
        e.mem_fill(cra, &crp);

        let lanes = e.lanes();
        e.vsetdimc(1);
        let mut base = 0usize;
        while base < n {
            let chunk = lanes.min(n - base);
            e.vsetdiml(0, chunk);
            e.scalar(8);
            // The 128 bias constant lives only while centring chroma — the
            // 8-register file (256 word-lines / 32-bit) forces this reuse
            // discipline, exactly as the paper's register allocator would.
            let c128 = e.vsetdup_dw(128);
            let y8 = e.vsld_ub(ya + base as u64, &[StrideMode::One]);
            let y = e.vcvt(y8, DType::I32);
            e.free(y8);
            let cb8 = e.vsld_ub(cba + base as u64, &[StrideMode::One]);
            let cb0 = e.vcvt(cb8, DType::I32);
            e.free(cb8);
            let cb = e.vsub_dw(cb0, c128);
            e.free(cb0);
            let cr8 = e.vsld_ub(cra + base as u64, &[StrideMode::One]);
            let cr0 = e.vcvt(cr8, DType::I32);
            e.free(cr8);
            let cr = e.vsub_dw(cr0, c128);
            e.free(cr0);
            e.free(c128);

            let zero = e.vsetdup_dw(0);
            let maxv = e.vsetdup_dw(255);
            // Channel helper: clamp(v) then store strided every 3rd byte.
            // Frees the input eagerly to stay inside the register file.
            let emit = |e: &mut mve_core::engine::Engine, v, off: u64| {
                let lo = e.vmax_dw(v, zero);
                e.free(v);
                let hi = e.vmin_dw(lo, maxv);
                e.free(lo);
                let b8 = e.vcvt(hi, DType::U8);
                e.free(hi);
                e.vsetststr(0, 3);
                e.vsst_ub(b8, oa + 3 * base as u64 + off, &[StrideMode::Cr]);
                e.free(b8);
            };
            // R = y + (FIX_R_CR * cr >> 16)
            let k = e.vsetdup_dw(FIX_R_CR);
            let t = e.vmul_dw(k, cr);
            e.free(k);
            let ts = e.vshir_dw(t, 16);
            e.free(t);
            let r = e.vadd_dw(y, ts);
            e.free(ts);
            emit(&mut e, r, 0);
            // G = y - ((FIX_G_CB*cb + FIX_G_CR*cr) >> 16)
            let k1 = e.vsetdup_dw(FIX_G_CB);
            let t1 = e.vmul_dw(k1, cb);
            e.free(k1);
            let k2 = e.vsetdup_dw(FIX_G_CR);
            let t2 = e.vmul_dw(k2, cr);
            e.free(k2);
            let t3 = e.vadd_dw(t1, t2);
            e.free(t1);
            e.free(t2);
            let t4 = e.vshir_dw(t3, 16);
            e.free(t3);
            let g = e.vsub_dw(y, t4);
            e.free(t4);
            emit(&mut e, g, 1);
            // B = y + (FIX_B_CB*cb >> 16)
            let k3 = e.vsetdup_dw(FIX_B_CB);
            let t5 = e.vmul_dw(k3, cb);
            e.free(k3);
            let t6 = e.vshir_dw(t5, 16);
            e.free(t5);
            let b = e.vadd_dw(y, t6);
            e.free(t6);
            emit(&mut e, b, 2);

            for rg in [y, cb, cr, zero, maxv] {
                e.free(rg);
            }
            base += chunk;
        }
        let got = e.mem_read_vec::<u8>(oa, 3 * n);
        KernelRun {
            checked: check_exact(&got, &want),
            trace: e.take_trace(),
        }
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        let (w, h) = plane(scale);
        let px = (w * h) as u64;
        let v = px / 4; // widened to 32-bit lanes
        NeonProfile {
            ops: vec![
                (NeonOpClass::IntMul, v * 4),
                (NeonOpClass::IntSimple, v * 8),
                (NeonOpClass::Shift, v * 4),
                (NeonOpClass::Permute, v * 4),
            ],
            chain_ops: vec![],
            loads: 3 * px / 16,
            stores: 3 * px / 16,
            scalar_instrs: v * 2,
            touched_bytes: px * 6,
            base_addr: 0xA00_0000,
        }
    }
}

const FIX_Y_R: i32 = 19595;
const FIX_Y_G: i32 = 38470;
const FIX_Y_B: i32 = 7471;

/// RGB → Y plane conversion (the luma part of `rgb_ycc_convert`).
pub struct RgbToYcbcr;

impl Kernel for RgbToYcbcr {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "rgb_to_ycbcr",
            library: Library::Libjpeg,
            dims: 2,
            dtype_bits: 32,
            selected: false,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        let (w, h) = plane(scale);
        let n = w * h;
        let rgb = gen_u8(0x66, 3 * n);
        let want: Vec<u8> = (0..n)
            .map(|i| {
                let (r, g, b) = (
                    i32::from(rgb[3 * i]),
                    i32::from(rgb[3 * i + 1]),
                    i32::from(rgb[3 * i + 2]),
                );
                ((FIX_Y_R * r + FIX_Y_G * g + FIX_Y_B * b + 32768) >> 16) as u8
            })
            .collect();

        let mut e = engine();
        let ia = e.mem_alloc_typed::<u8>(3 * n);
        let oa = e.mem_alloc_typed::<u8>(n);
        e.mem_fill(ia, &rgb);

        let lanes = e.lanes();
        e.vsetdimc(1);
        e.vsetldstr(0, 3); // interleaved RGB: every 3rd byte
        let mut base = 0usize;
        while base < n {
            let chunk = lanes.min(n - base);
            e.vsetdiml(0, chunk);
            e.scalar(8);
            let mut acc = e.vsetdup_dw(32768);
            for (ch, k) in [(0u64, FIX_Y_R), (1, FIX_Y_G), (2, FIX_Y_B)] {
                let p8 = e.vsld_ub(ia + 3 * base as u64 + ch, &[StrideMode::Cr]);
                let p = e.vcvt(p8, DType::I32);
                e.free(p8);
                let kv = e.vsetdup_dw(k);
                let t = e.vmul_dw(p, kv);
                let acc2 = e.vadd_dw(acc, t);
                for rg in [p, kv, t, acc] {
                    e.free(rg);
                }
                acc = acc2;
            }
            let sh = e.vshir_dw(acc, 16);
            e.free(acc);
            let y8 = e.vcvt(sh, DType::U8);
            e.free(sh);
            e.vsetststr(0, 1);
            e.vsst_ub(y8, oa + base as u64, &[StrideMode::Cr]);
            e.free(y8);
            base += chunk;
        }
        let got = e.mem_read_vec::<u8>(oa, n);
        KernelRun {
            checked: check_exact(&got, &want),
            trace: e.take_trace(),
        }
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        let (w, h) = plane(scale);
        let px = (w * h) as u64;
        let v = px / 4;
        NeonProfile {
            ops: vec![
                (NeonOpClass::IntMul, v * 3),
                (NeonOpClass::IntSimple, v * 3),
                (NeonOpClass::Shift, v),
                (NeonOpClass::Permute, v * 3),
            ],
            chain_ops: vec![],
            loads: 3 * px / 16,
            stores: px / 16,
            scalar_instrs: v * 2,
            touched_bytes: px * 4,
            base_addr: 0xB00_0000,
        }
    }
}

/// Per-coefficient quantisation of 8×8 DCT blocks via reciprocal multiply.
pub struct Quantize;

impl Kernel for Quantize {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "jpeg_quantize",
            library: Library::Libjpeg,
            dims: 2,
            dtype_bits: 16,
            selected: false,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        let blocks = match scale {
            Scale::Test => 128,
            Scale::Paper => 2048,
        };
        let coefs = gen_i16(0x67, blocks * 64);
        // Reciprocal table: recip[i] = (1<<16)/divisor[i].
        let divisors: Vec<i32> = (0..64).map(|i| 8 + (i % 16) * 2).collect();
        let recip: Vec<i32> = divisors.iter().map(|&d| (1 << 16) / d).collect();
        let want: Vec<i16> = coefs
            .iter()
            .enumerate()
            .map(|(i, &c)| ((i32::from(c) * recip[i % 64] + 32768) >> 16) as i16)
            .collect();

        let mut e = engine();
        let ca = e.mem_alloc_typed::<i16>(blocks * 64);
        let ra = e.mem_alloc_typed::<i32>(64);
        let oa = e.mem_alloc_typed::<i16>(blocks * 64);
        e.mem_fill(ca, &coefs);
        e.mem_fill(ra, &recip);

        let lanes = e.lanes();
        let bpt = (lanes / 64).min(256);
        e.vsetdimc(2);
        e.vsetdiml(0, 64);
        let mut b = 0usize;
        while b < blocks {
            let nb = bpt.min(blocks - b);
            e.vsetdiml(1, nb);
            e.scalar(6);
            let c16 = e.vsld_w(
                ca + (b * 64 * 2) as u64,
                &[StrideMode::One, StrideMode::Seq],
            );
            let c = e.vcvt(c16, DType::I32);
            e.free(c16);
            // Reciprocals replicated across blocks (DIM1 stride 0).
            let rv = e.vsld_dw(ra, &[StrideMode::One, StrideMode::Zero]);
            let p = e.vmul_dw(c, rv);
            e.free(c);
            e.free(rv);
            let rnd = e.vsetdup_dw(32768);
            let pr = e.vadd_dw(p, rnd);
            e.free(p);
            e.free(rnd);
            let q = e.vshir_dw(pr, 16);
            e.free(pr);
            let q16 = e.vcvt(q, DType::I16);
            e.free(q);
            e.vsst_w(
                q16,
                oa + (b * 64 * 2) as u64,
                &[StrideMode::One, StrideMode::Seq],
            );
            e.free(q16);
            b += nb;
        }
        let got = e.mem_read_vec::<i16>(oa, blocks * 64);
        KernelRun {
            checked: check_exact(&got, &want),
            trace: e.take_trace(),
        }
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        let blocks = match scale {
            Scale::Test => 128u64,
            Scale::Paper => 2048,
        };
        let v = blocks * 64 / 8;
        NeonProfile {
            ops: vec![
                (NeonOpClass::IntMul, v * 2),
                (NeonOpClass::Shift, v),
                (NeonOpClass::IntSimple, v),
            ],
            chain_ops: vec![],
            loads: v + blocks * 64 / 4,
            stores: v,
            scalar_instrs: v,
            touched_bytes: blocks * 64 * 4,
            base_addr: 0xC00_0000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upsample_matches_reference() {
        let run = H2v2Upsample.run_mve(Scale::Test);
        assert!(run.checked.ok(), "{:?}", run.checked);
        // Must use the Figure 4 random-access path.
        let randoms = run
            .trace
            .events()
            .iter()
            .filter(|ev| {
                matches!(
                    ev,
                    mve_core::trace::Event::Memory {
                        opcode: mve_core::isa::Opcode::RandomLoad
                            | mve_core::isa::Opcode::RandomStore,
                        ..
                    }
                )
            })
            .count();
        assert!(randoms >= 2, "upsample must use vrld/vrst");
    }

    #[test]
    fn downsample_matches_reference() {
        assert!(H2v2Downsample.run_mve(Scale::Test).checked.ok());
    }

    #[test]
    fn ycbcr_to_rgb_matches_reference() {
        assert!(YcbcrToRgb.run_mve(Scale::Test).checked.ok());
    }

    #[test]
    fn rgb_to_ycbcr_matches_reference() {
        assert!(RgbToYcbcr.run_mve(Scale::Test).checked.ok());
    }

    #[test]
    fn quantize_matches_reference() {
        assert!(Quantize.run_mve(Scale::Test).checked.ok());
    }
}
