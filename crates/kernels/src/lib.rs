//! The Swan mobile data-parallel benchmark suite, reimplemented for the MVE
//! reproduction (Table III: 12 libraries, 44 kernels).
//!
//! Every kernel provides:
//!
//! * a **scalar reference** — plain Rust, the ground truth;
//! * an **MVE implementation** — written with the `__mdv` intrinsics of
//!   `mve-core`, functionally checked against the reference on every run;
//! * a **Neon profile** — the dynamic 2×128-bit instruction mix of a
//!   hand-vectorised Arm implementation (the Figure 7 baseline);
//! * for the 11 selected kernels (Figures 8–13): an **RVV implementation**
//!   (1-D instructions only, via `mve-baselines::rvv`) and a **GPU cost**
//!   descriptor for the Adreno model.
//!
//! | Library | Domain | Kernels |
//! |---|---|---|
//! | Linpack | Linear algebra | daxpy |
//! | XNNPACK | Machine learning | gemm, spmm |
//! | CMSIS-DSP | Signal processing | fir_v, fir_s, fir_l |
//! | Kvazaar | Video coding | satd, intra, dct, idct |
//! | libjpeg | Image codec | upsample, downsample, ycbcr→rgb, rgb→ycbcr, quantize |
//! | libpng | Image codec | expand_palette, filter_sub, filter_paeth |
//! | libwebp | Image codec | sharp_update, upsample_bilinear, alpha_mult, vertical_filter, gradient_filter, sse4x4, quantize_coeffs |
//! | Skia | Graphics | blit_row, memset32, convolve_horiz, xfermode_multiply |
//! | WebAudio | Audio | vsmul, vadd, vclip, sum, interleave |
//! | zlib | Compression | adler32, compare258 |
//! | boringssl | Cryptography | chacha20_block, sha256_msched, xor_cipher |
//! | Arm Opt. Routines | String/network | memcpy, memset, strlen, memchr, csum |

pub mod boringssl;
pub mod cmsis;
pub mod common;
pub mod dsl;
pub mod kvazaar;
pub mod libjpeg;
pub mod libpng;
pub mod libwebp;
pub mod linpack;
pub mod optroutines;
pub mod precision;
pub mod registry;
pub mod skia;
pub mod webaudio;
pub mod xnnpack;
pub mod zlib;

pub use common::{Checked, KernelRun, Scale};
pub use dsl::DslKernel;
pub use registry::{all_kernels, selected_kernels, Kernel, KernelInfo, Library};
