//! zlib — `adler32` (weighted reduction) and `compare258` (longest-match
//! scan over multiple candidates via random-base loads + predication).

use crate::common::{check_exact, engine, gen_u8, tag_to_data, tree_halve, KernelRun, Scale};
use crate::registry::{Kernel, KernelInfo, Library};
use mve_core::dtype::DType;
use mve_core::isa::StrideMode;
use mve_coresim::neon::{NeonOpClass, NeonProfile};

const ADLER_MOD: u64 = 65521;

fn buf_len(scale: Scale) -> usize {
    match scale {
        Scale::Test => 8 * 1024,
        Scale::Paper => 128 * 1024,
    }
}

/// Adler-32 checksum. `s1 = 1 + Σ d[i]`, `s2 = n + Σ (n-i)·d[i]` — the
/// weighted sum vectorises with a precomputed weight vector and two tree
/// reductions; the modulo folds run on the scalar core.
pub struct Adler32;

impl Adler32 {
    /// Scalar reference.
    pub fn scalar_ref(data: &[u8]) -> u32 {
        let mut s1: u64 = 1;
        let mut s2: u64 = 0;
        for &b in data {
            s1 = (s1 + u64::from(b)) % ADLER_MOD;
            s2 = (s2 + s1) % ADLER_MOD;
        }
        ((s2 << 16) | s1) as u32
    }
}

impl Kernel for Adler32 {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "adler32",
            library: Library::Zlib,
            dims: 1,
            dtype_bits: 32,
            selected: false,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        let n = buf_len(scale);
        let data = gen_u8(0xB1, n);
        let want = vec![Self::scalar_ref(&data)];

        let mut e = engine();
        let da = e.mem_alloc_typed::<u8>(n);
        e.mem_fill(da, &data);
        // Weight vector w[i] = chunk-relative (chunk - i); built once by the
        // scalar core. Per-lane products stay within i32 (8192 x 255); the
        // partial sums are folded in-cache to 256 values and summed in u64
        // on the core (zlib's NMAX deferred-modulo trick, vector-sized).
        let lanes = e.lanes();
        let wa = e.mem_alloc_typed::<i32>(lanes);
        let weights: Vec<i32> = (0..lanes).map(|i| (lanes - i) as i32).collect();
        e.mem_fill(wa, &weights);
        e.scalar(2 * lanes as u64);

        // Process in full-lane chunks: for each chunk,
        //   s1 += Σ d[i];  s2 += chunk·s1_prev + Σ (chunk-i)·d[i].
        let mut s1: u64 = 1;
        let mut s2: u64 = 0;
        e.vsetdimc(1);
        let mut base = 0usize;
        while base < n {
            let chunk = lanes.min(n - base);
            assert!(chunk.is_power_of_two(), "chunk the tail on the CPU");
            e.vsetdiml(0, chunk);
            e.scalar(10);
            let d8 = e.vsld_ub(da + base as u64, &[StrideMode::One]);
            let d = e.vcvt(d8, DType::I32);
            e.free(d8);
            let w = e.vsld_dw(wa, &[StrideMode::One]);
            let wd = e.vmul_dw(d, w);
            e.free(w);
            let dsum_reg = e.vcpy_dw(d);
            e.free(d);
            let reduce_u64 = |e: &mut mve_core::engine::Engine, v, chunk: usize| -> u64 {
                let stop = chunk.min(256);
                let partials = tree_halve(e, v, chunk, stop);
                e.vsetdimc(1);
                e.vsetdiml(0, stop);
                let tmp = e.mem_alloc(stop as u64 * 4);
                e.store(partials, tmp, &[StrideMode::One]);
                e.free(partials);
                e.scalar(2 * stop as u64);
                (0..stop)
                    .map(|i| e.mem().read_raw(tmp + i as u64 * 4, 4))
                    .sum()
            };
            let dsum = reduce_u64(&mut e, dsum_reg, chunk);
            let wsum = reduce_u64(&mut e, wd, chunk);
            // Scalar folds (exactly the zlib NMAX deferred-modulo trick).
            s2 = (s2 + (chunk as u64 % ADLER_MOD) * (s1 % ADLER_MOD) + wsum) % ADLER_MOD;
            s1 = (s1 + dsum) % ADLER_MOD;
            e.scalar(12);
            base += chunk;
        }
        let got = vec![((s2 << 16) | s1) as u32];
        KernelRun {
            checked: check_exact(&got, &want),
            trace: e.take_trace(),
        }
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        let v = buf_len(scale) as u64 / 16;
        NeonProfile {
            ops: vec![
                (NeonOpClass::IntSimple, v * 3),
                (NeonOpClass::IntMul, v),
                (NeonOpClass::Reduce, v / 8),
            ],
            // zlib's NEON adler32 carries s1/s2 across every 16-byte step:
            // the accumulator chain serialises the whole buffer.
            chain_ops: vec![(NeonOpClass::IntSimple, v * 2)],
            loads: v,
            stores: 0,
            scalar_instrs: v * 3,
            touched_bytes: buf_len(scale) as u64,
            base_addr: 0x1F00_0000,
        }
    }
}

/// zlib's `compare258`: for a batch of match candidates (hash-chain hits),
/// count how many of up to 258 bytes match the current window. MVE loads
/// the candidates with random-base strided loads, compares, materialises
/// the per-lane match bits and lets the scalar core find each first
/// mismatch.
pub struct Compare258;

const MATCH_LEN: usize = 256; // power-of-two stand-in for zlib's 258
const CANDIDATES: usize = 24;

impl Compare258 {
    fn scalar_ref(window: &[u8], data: &[u8], cands: &[usize]) -> Vec<u32> {
        cands
            .iter()
            .map(|&c| {
                let mut len = 0u32;
                while (len as usize) < MATCH_LEN && window[len as usize] == data[c + len as usize] {
                    len += 1;
                }
                len
            })
            .collect()
    }
}

impl Kernel for Compare258 {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            name: "compare258",
            library: Library::Zlib,
            dims: 2,
            dtype_bits: 8,
            selected: false,
        }
    }

    fn run_mve(&self, scale: Scale) -> KernelRun {
        let n = buf_len(scale);
        let data = gen_u8(0xB2, n + MATCH_LEN);
        // The window partially matches candidate 0 to make lengths varied.
        let mut window = gen_u8(0xB3, MATCH_LEN);
        window[..40].copy_from_slice(&data[100..140]);
        let cands: Vec<usize> = (0..CANDIDATES)
            .map(|i| 100 + i * (n / CANDIDATES))
            .collect();
        let want = Self::scalar_ref(&window, &data, &cands);

        let mut e = engine();
        e.vsetwidth(8);
        let da = e.mem_alloc_typed::<u8>(n + MATCH_LEN);
        let wa = e.mem_alloc_typed::<u8>(MATCH_LEN);
        let fa = e.mem_alloc_typed::<u8>(CANDIDATES * MATCH_LEN);
        e.mem_fill(da, &data);
        e.mem_fill(wa, &window);
        // Candidate base pointers (computed by the scalar core's hash chain).
        let pa = e.mem_alloc_typed::<u64>(CANDIDATES);
        let ptrs: Vec<u64> = cands.iter().map(|&c| da + c as u64).collect();
        e.mem_fill(pa, &ptrs);
        e.scalar(6 * CANDIDATES as u64);

        // 2-D: [byte (dim0), candidate (dim1, random base)].
        e.vsetdimc(2);
        e.vsetdiml(0, MATCH_LEN);
        e.vsetdiml(1, CANDIDATES);
        let cand_bytes = e.vrld_ub(pa, &[StrideMode::One]);
        // Window replicated across candidates.
        let win = e.vsld_ub(wa, &[StrideMode::One, StrideMode::Zero]);
        e.veq_ub(cand_bytes, win);
        e.free(cand_bytes);
        e.free(win);
        let flags = tag_to_data(&mut e, DType::U8);
        e.vsst_ub(flags, fa, &[StrideMode::One, StrideMode::Seq]);
        e.free(flags);
        // Scalar scan for the first zero flag per candidate.
        e.scalar(8 * CANDIDATES as u64);
        let got: Vec<u32> = (0..CANDIDATES)
            .map(|c| {
                let mut len = 0u32;
                while (len as usize) < MATCH_LEN
                    && e.mem_read::<u8>(fa, c * MATCH_LEN + len as usize) == 1
                {
                    len += 1;
                }
                len
            })
            .collect();
        KernelRun {
            checked: check_exact(&got, &want),
            trace: e.take_trace(),
        }
    }

    fn neon_profile(&self, scale: Scale) -> NeonProfile {
        let _ = scale;
        let v = (CANDIDATES * MATCH_LEN / 16) as u64;
        NeonProfile {
            ops: vec![
                (NeonOpClass::IntSimple, v * 2),
                (NeonOpClass::Reduce, CANDIDATES as u64),
            ],
            chain_ops: vec![],
            loads: v * 2,
            stores: 0,
            scalar_instrs: v * 4,
            touched_bytes: (CANDIDATES * MATCH_LEN * 2) as u64,
            base_addr: 0x2000_0000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adler32_matches_reference() {
        assert!(Adler32.run_mve(Scale::Test).checked.ok());
    }

    #[test]
    fn adler32_reference_sanity() {
        // Known vector: adler32 of "Wikipedia" = 0x11E60398.
        assert_eq!(Adler32::scalar_ref(b"Wikipedia"), 0x11E6_0398);
    }

    #[test]
    fn compare258_matches_reference() {
        let run = Compare258.run_mve(Scale::Test);
        assert!(run.checked.ok(), "{:?}", run.checked);
    }

    #[test]
    fn compare258_finds_partial_match() {
        // The seeded window guarantees candidate 0 matches ≥ 40 bytes.
        let n = buf_len(Scale::Test);
        let data = gen_u8(0xB2, n + MATCH_LEN);
        let mut window = gen_u8(0xB3, MATCH_LEN);
        window[..40].copy_from_slice(&data[100..140]);
        let lens = Compare258::scalar_ref(&window, &data, &[100]);
        assert!(lens[0] >= 40);
    }
}
