//! LPDDR4X-class DRAM model — the Ramulator stand-in.
//!
//! Open-page bank/row model: each of `banks` banks tracks its open row and
//! the cycle at which it can next serve a command. A line access is a row
//! hit (CAS only), a row miss (PRE + ACT + CAS) or an empty-row activation
//! (ACT + CAS). Data transfer occupies the shared channel for
//! `burst_cycles`, which enforces the bandwidth ceiling.
//!
//! Default timings approximate LPDDR4X-3200 expressed in 2.8 GHz core
//! cycles: tRP ≈ 18 ns → 50, tRCD ≈ 18 ns → 50, tCL ≈ 18 ns → 50,
//! 64 B burst at ≈ 25.6 GB/s → 2.5 ns → 7 cycles.

/// DRAM timing/geometry parameters (all times in core cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of banks across all channels.
    pub banks: usize,
    /// Row (page) size in bytes.
    pub row_bytes: u64,
    /// Precharge latency.
    pub t_rp: u64,
    /// Activate (row open) latency.
    pub t_rcd: u64,
    /// CAS (column read) latency.
    pub t_cl: u64,
    /// Channel occupancy per 64 B line transfer.
    pub burst_cycles: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        Self {
            banks: 16,
            row_bytes: 2048,
            t_rp: 50,
            t_rcd: 50,
            t_cl: 50,
            burst_cycles: 7,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    ready_at: u64,
}

/// Statistics kept by the DRAM model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer misses (conflict: another row was open).
    pub row_misses: u64,
    /// Activations of idle banks.
    pub row_empty: u64,
    /// Total line transfers.
    pub accesses: u64,
}

/// The DRAM device model.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    banks: Vec<Bank>,
    channel_free_at: u64,
    stats: DramStats,
}

impl Dram {
    /// Creates a DRAM model with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero.
    pub fn new(cfg: DramConfig) -> Self {
        assert!(cfg.banks > 0, "DRAM must have at least one bank");
        Self {
            banks: vec![Bank::default(); cfg.banks],
            channel_free_at: 0,
            cfg,
            stats: DramStats::default(),
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Issues a 64 B line access at time `now`; returns the completion cycle.
    ///
    /// Bank interleaving: consecutive lines map to different banks (low-order
    /// line-address bits select the bank), which is what gives vector gathers
    /// their bank-level parallelism.
    pub fn access(&mut self, line_addr: u64, now: u64) -> u64 {
        let lines_per_row = self.cfg.row_bytes / crate::LINE_BYTES;
        let bank_idx = (line_addr % self.cfg.banks as u64) as usize;
        let row = line_addr / (self.cfg.banks as u64 * lines_per_row);

        let bank = &mut self.banks[bank_idx];
        let start = now.max(bank.ready_at);
        let array_latency = match bank.open_row {
            Some(open) if open == row => {
                self.stats.row_hits += 1;
                self.cfg.t_cl
            }
            Some(_) => {
                self.stats.row_misses += 1;
                self.cfg.t_rp + self.cfg.t_rcd + self.cfg.t_cl
            }
            None => {
                self.stats.row_empty += 1;
                self.cfg.t_rcd + self.cfg.t_cl
            }
        };
        bank.open_row = Some(row);
        let data_ready = start + array_latency;
        // The shared channel serialises bursts.
        let burst_start = data_ready.max(self.channel_free_at);
        let done = burst_start + self.cfg.burst_cycles;
        self.channel_free_at = done;
        bank.ready_at = data_ready;
        self.stats.accesses += 1;
        done
    }

    /// Peak sustainable bandwidth in bytes per core cycle (channel-limited).
    pub fn peak_bytes_per_cycle(&self) -> f64 {
        crate::LINE_BYTES as f64 / self.cfg.burst_cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_hit_is_faster_than_miss() {
        let mut d = Dram::new(DramConfig::default());
        let banks = d.config().banks as u64;
        let lines_per_row = d.config().row_bytes / crate::LINE_BYTES;
        let first = d.access(0, 0);
        // Same bank, same row (line `banks` maps to bank 0, row 0).
        let hit = d.access(banks, first) - first;
        // Same bank, different row.
        let far = banks * lines_per_row * 4;
        let t0 = d.access(far, 10_000);
        let miss = t0 - 10_000;
        assert!(hit < miss, "row hit {hit} must beat row miss {miss}");
        assert_eq!(d.stats().row_hits, 1);
        assert_eq!(d.stats().row_misses, 1);
    }

    #[test]
    fn banks_overlap_but_channel_serialises() {
        let cfg = DramConfig::default();
        let mut d = Dram::new(cfg);
        // 16 accesses to 16 different banks at t=0: array access overlaps,
        // bursts serialise on the channel.
        let mut last = 0;
        for i in 0..16u64 {
            last = d.access(i, 0);
        }
        let serial_all = 16 * (cfg.t_rcd + cfg.t_cl + cfg.burst_cycles);
        assert!(
            last < serial_all,
            "bank parallelism must help: {last} < {serial_all}"
        );
        let min_possible = cfg.t_rcd + cfg.t_cl + 16 * cfg.burst_cycles;
        assert!(
            last >= min_possible,
            "channel must serialise: {last} >= {min_possible}"
        );
    }

    #[test]
    fn stats_count_accesses() {
        let mut d = Dram::new(DramConfig::default());
        for i in 0..10 {
            d.access(i, 0);
        }
        assert_eq!(d.stats().accesses, 10);
    }

    #[test]
    fn bandwidth_ceiling() {
        let d = Dram::new(DramConfig::default());
        let bpc = d.peak_bytes_per_cycle();
        // ≈ 9.1 B/cycle ≈ 25.6 GB/s at 2.8 GHz.
        assert!((8.0..=10.0).contains(&bpc), "bytes/cycle {bpc}");
    }
}
