//! The full L1 → L2 → LLC → DRAM hierarchy with the two access paths of
//! Section V: scalar core accesses and MVE vector gathers/scatters.

use crate::cache::{CacheConfig, SetAssocCache};
use crate::dram::{Dram, DramConfig};
use crate::line_of;

/// Configuration of the whole hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Private L2 (the cache MVE repurposes half of).
    pub l2: CacheConfig,
    /// Shared last-level cache.
    pub llc: CacheConfig,
    /// DRAM timing.
    pub dram: DramConfig,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self {
            l1d: CacheConfig::l1d(),
            l2: CacheConfig::l2(),
            llc: CacheConfig::llc(),
            dram: DramConfig::default(),
        }
    }
}

/// Aggregate statistics across the hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Scalar-path L1 hits.
    pub l1_hits: u64,
    /// Scalar-path L1 misses.
    pub l1_misses: u64,
    /// L2 hits (both paths).
    pub l2_hits: u64,
    /// L2 misses (both paths).
    pub l2_misses: u64,
    /// LLC hits.
    pub llc_hits: u64,
    /// LLC misses.
    pub llc_misses: u64,
    /// DRAM line transfers (fills + writebacks).
    pub dram_accesses: u64,
    /// L1 lines evicted by the presence-bit coherence protocol (Section V-C).
    pub coherence_evictions: u64,
    /// Lines read by the vector path.
    pub vector_lines_read: u64,
    /// Lines written by the vector path.
    pub vector_lines_written: u64,
    /// Dirty lines flushed when switching the L2 into compute mode.
    pub mode_switch_flushes: u64,
}

/// Result of a batched vector access.
#[derive(Debug, Clone, Copy)]
pub struct BatchResult {
    /// Cycle at which the last line is available in the TMU / written back.
    pub done_at: u64,
    /// Number of distinct lines touched.
    pub lines: u64,
    /// L2 hits within the batch.
    pub l2_hits: u64,
    /// Lines served by DRAM.
    pub dram_lines: u64,
}

/// The memory hierarchy.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    cfg: HierarchyConfig,
    l1d: SetAssocCache,
    l2: SetAssocCache,
    llc: SetAssocCache,
    dram: Dram,
    stats: MemStats,
}

impl Default for Hierarchy {
    fn default() -> Self {
        Self::new(HierarchyConfig::default())
    }
}

impl Hierarchy {
    /// Builds an empty hierarchy.
    pub fn new(cfg: HierarchyConfig) -> Self {
        Self {
            l1d: SetAssocCache::new(cfg.l1d),
            l2: SetAssocCache::new(cfg.l2),
            llc: SetAssocCache::new(cfg.llc),
            dram: Dram::new(cfg.dram),
            cfg,
            stats: MemStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Clears the statistics (e.g. after a cache-warming pass).
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
    }

    /// Configuration in use.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Switches half of the L2 ways into compute mode, flushing dirty lines
    /// from the deactivated ways. Returns the switch cost in cycles: each
    /// flushed line needs an L2 read plus a DRAM burst slot (Section V-C).
    pub fn enable_compute_mode(&mut self) -> u64 {
        let keep = self.cfg.l2.ways / 2;
        let flushed = self.l2.restrict_ways(keep.max(1));
        self.stats.mode_switch_flushes += flushed;
        self.stats.dram_accesses += flushed;
        flushed * (self.cfg.l2.latency + self.cfg.dram.burst_cycles)
    }

    /// Restores the L2 to full-cache mode (a CR write; negligible cost).
    pub fn disable_compute_mode(&mut self) {
        let ways = self.cfg.l2.ways;
        self.l2.restrict_ways(ways);
    }

    /// Fill path below L1: returns added latency beyond the L1 lookup.
    fn fill_from_l2(&mut self, line: u64, write: bool, now: u64) -> u64 {
        let l2_out = self.l2.access(line, write);
        if let Some(victim) = l2_out.victim {
            // Inclusion: an L2 victim must leave L1 too.
            if self.l1d.invalidate(victim) || l2_out.writeback == Some(victim) {
                self.stats.dram_accesses += 1;
            }
        }
        if l2_out.hit {
            self.stats.l2_hits += 1;
            return self.cfg.l2.latency;
        }
        self.stats.l2_misses += 1;
        let llc_out = self.llc.access(line, write);
        if let Some(victim) = llc_out.victim {
            // Strict inclusion below as well.
            self.l1d.invalidate(victim);
            if self.l2.invalidate(victim) || llc_out.writeback == Some(victim) {
                self.stats.dram_accesses += 1;
            }
        }
        if llc_out.hit {
            self.stats.llc_hits += 1;
            self.cfg.l2.latency + self.cfg.llc.latency
        } else {
            self.stats.llc_misses += 1;
            self.stats.dram_accesses += 1;
            let t_issue = now + self.cfg.l2.latency + self.cfg.llc.latency;
            let done = self.dram.access(line, t_issue);
            done - now
        }
    }

    /// A scalar core load/store of `addr` at time `now`; returns its latency
    /// in cycles.
    pub fn core_access(&mut self, addr: u64, write: bool, now: u64) -> u64 {
        let line = line_of(addr);
        let l1_out = self.l1d.access(line, write);
        if let Some(victim) = l1_out.victim {
            self.l2.set_presence(victim, false);
        }
        if l1_out.hit {
            self.stats.l1_hits += 1;
            return self.cfg.l1d.latency;
        }
        self.stats.l1_misses += 1;
        let below = self.fill_from_l2(line, write, now + self.cfg.l1d.latency);
        self.l2.set_presence(line, true);
        self.cfg.l1d.latency + below
    }

    /// A batched vector gather/scatter issued by the MVE controller at time
    /// `now` over distinct cache `lines` (line addresses).
    ///
    /// The batch bypasses L1 but honours inclusive-presence-bit coherence:
    /// a hit on a line whose presence bit is set first evicts it from L1.
    /// Outstanding L2 misses are bounded by the L2 MSHR count; the L2 data
    /// half is multi-banked (4 storage ways), so four tag lookups proceed
    /// per cycle.
    pub fn vector_access(&mut self, lines: &[u64], write: bool, now: u64) -> BatchResult {
        const TAG_BANKS: u64 = 4;
        let mshrs = self.cfg.l2.mshrs;
        let mut outstanding: Vec<u64> = Vec::with_capacity(mshrs);
        let mut t = now;
        let mut done_at = now;
        let mut l2_hits = 0;
        let mut dram_lines = 0;

        for (idx, &line) in lines.iter().enumerate() {
            if (idx as u64).is_multiple_of(TAG_BANKS) {
                t += 1; // banked tag-port throughput
            }
            // Coherence check against L1 (Section V-C).
            let mut penalty = 0;
            if self.l2.presence(line) == Some(true) {
                self.l1d.invalidate(line);
                self.l2.set_presence(line, false);
                self.stats.coherence_evictions += 1;
                penalty = self.cfg.l1d.latency;
            }
            let out = self.l2.access(line, write);
            if let Some(victim) = out.victim {
                self.l1d.invalidate(victim);
                if out.writeback == Some(victim) {
                    self.stats.dram_accesses += 1;
                }
            }
            let completion = if out.hit {
                self.stats.l2_hits += 1;
                l2_hits += 1;
                t + self.cfg.l2.latency + penalty
            } else if write {
                // Full-line vector stores allocate without fetching (the
                // write-validate optimisation): the engine overwrites the
                // whole line, so no fill from below is needed. The dirty
                // line pays its DRAM writeback at eviction.
                self.stats.l2_misses += 1;
                t + self.cfg.l2.latency + penalty
            } else {
                self.stats.l2_misses += 1;
                // Block for a free MSHR.
                if outstanding.len() >= mshrs {
                    let earliest = *outstanding.iter().min().expect("nonempty");
                    t = t.max(earliest);
                    outstanding.retain(|&c| c > t);
                }
                let llc_out = self.llc.access(line, write);
                if let Some(victim) = llc_out.victim {
                    self.l1d.invalidate(victim);
                    if self.l2.invalidate(victim) || llc_out.writeback == Some(victim) {
                        self.stats.dram_accesses += 1;
                    }
                }
                let completion = if llc_out.hit {
                    self.stats.llc_hits += 1;
                    t + self.cfg.l2.latency + self.cfg.llc.latency + penalty
                } else {
                    self.stats.llc_misses += 1;
                    self.stats.dram_accesses += 1;
                    dram_lines += 1;
                    let t_issue = t + self.cfg.l2.latency + self.cfg.llc.latency;
                    self.dram.access(line, t_issue) + penalty
                };
                outstanding.push(completion);
                completion
            };
            done_at = done_at.max(completion);
        }

        if write {
            self.stats.vector_lines_written += lines.len() as u64;
        } else {
            self.stats.vector_lines_read += lines.len() as u64;
        }
        BatchResult {
            done_at,
            lines: lines.len() as u64,
            l2_hits,
            dram_lines,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_latencies_follow_table_iv() {
        let mut h = Hierarchy::default();
        // Cold: L1 miss, L2 miss, LLC miss → DRAM (≥ 4+12+31).
        let cold = h.core_access(0x1000, false, 0);
        assert!(cold > 4 + 12 + 31, "cold access {cold}");
        // Warm: L1 hit.
        let warm = h.core_access(0x1000, false, 100);
        assert_eq!(warm, 4);
    }

    #[test]
    fn l2_hit_latency_after_l1_eviction() {
        let mut h = Hierarchy::default();
        h.core_access(0x40, false, 0);
        // Evict from L1 by filling its set (L1: 256 sets → stride 256*64).
        for i in 1..=4u64 {
            h.core_access(0x40 + i * 256 * 64, false, i * 10);
        }
        let lat = h.core_access(0x40, false, 1000);
        assert_eq!(lat, 4 + 12, "should be L1 miss + L2 hit");
    }

    #[test]
    fn vector_batch_hits_are_fast() {
        let mut h = Hierarchy::default();
        let lines: Vec<u64> = (0..32).collect();
        // Warm the L2 through the vector path itself.
        h.vector_access(&lines, false, 0);
        let res = h.vector_access(&lines, false, 10_000);
        assert_eq!(res.l2_hits, 32);
        // 32 tag lookups + hit latency.
        assert!(res.done_at - 10_000 <= 32 + 12 + 4);
    }

    #[test]
    fn vector_misses_respect_mshr_bound() {
        let mut h = Hierarchy::default();
        // 200 distinct uncached lines: misses must wave through 46 MSHRs.
        let lines: Vec<u64> = (0..200).map(|i| 0x10_0000 + i * 7).collect();
        let res = h.vector_access(&lines, false, 0);
        assert_eq!(res.lines, 200);
        assert!(res.dram_lines > 0);
        // With only 46 outstanding misses the batch cannot complete in one
        // DRAM round trip.
        assert!(res.done_at > 200);
    }

    #[test]
    fn coherence_evicts_presence_lines() {
        let mut h = Hierarchy::default();
        h.core_access(0x2000, true, 0); // now in L1, presence set in L2
        let line = line_of(0x2000);
        let res = h.vector_access(&[line], false, 100);
        assert_eq!(h.stats().coherence_evictions, 1);
        assert!(res.done_at > 100);
        // A second vector access needs no eviction.
        h.vector_access(&[line], false, 200);
        assert_eq!(h.stats().coherence_evictions, 1);
    }

    #[test]
    fn compute_mode_flush_cost_scales_with_dirty_lines() {
        let mut h = Hierarchy::default();
        // Dirty enough lines (writes) to fill all 8 ways of every L2 set.
        for i in 0..8192u64 {
            h.core_access(i * 64, true, i);
        }
        let cost = h.enable_compute_mode();
        assert!(cost > 0, "dirty flush must cost cycles");
        assert!(h.stats().mode_switch_flushes > 0);
        h.disable_compute_mode();
        // Switching back is free (a CR write).
        let mut h2 = Hierarchy::default();
        let cost2 = h2.enable_compute_mode();
        assert_eq!(cost2, 0, "clean cache flushes nothing");
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn write_validate_skips_the_fill_path() {
        let mut h = Hierarchy::default();
        // A cold full-line vector store must not touch DRAM (write-validate).
        let lines: Vec<u64> = (0x4000..0x4040).collect();
        let res = h.vector_access(&lines, true, 0);
        assert_eq!(res.dram_lines, 0, "store misses must not fetch");
        assert_eq!(h.stats().dram_accesses, 0);
        // The same lines now hit.
        let res = h.vector_access(&lines, false, 10_000);
        assert_eq!(res.l2_hits as usize, lines.len());
    }

    #[test]
    fn dirty_write_validated_lines_writeback_on_eviction() {
        let mut h = Hierarchy::default();
        // Fill a single L2 set with dirty write-validated lines, then evict.
        // L2: 1024 sets, so stride by 1024 lines hits one set.
        let set_lines: Vec<u64> = (0..12).map(|i| 7 + i * 1024).collect();
        for &l in &set_lines {
            h.vector_access(&[l], true, 0);
        }
        // More lines than active ways (4 in compute mode: full 8 here):
        // evictions must have produced DRAM writebacks.
        assert!(
            h.stats().dram_accesses > 0,
            "dirty victims must write back: {:?}",
            h.stats()
        );
    }

    #[test]
    fn compute_mode_halves_usable_ways() {
        // Six lines mapping to one L2 set (1024 sets): the full cache holds
        // all six, the compute-mode cache only four.
        let set_lines: Vec<u64> = (0..6).map(|i| 3 + i * 1024).collect();

        let mut full = Hierarchy::default();
        full.vector_access(&set_lines, false, 0);
        full.vector_access(&set_lines, false, 10_000);
        assert_eq!(full.stats().l2_hits, 6, "all six fit in 8 ways");

        let mut half = Hierarchy::default();
        half.enable_compute_mode();
        half.vector_access(&set_lines, false, 0);
        let before = half.stats().l2_hits;
        // Re-touch the last four (the LRU survivors): they hit.
        half.vector_access(&set_lines[2..], false, 10_000);
        assert_eq!(half.stats().l2_hits - before, 4, "only 4 ways remain");
        // Restoring full mode re-enables all ways for future fills.
        half.disable_compute_mode();
        half.vector_access(&set_lines, false, 20_000);
        half.vector_access(&set_lines, false, 30_000);
        assert!(half.stats().l2_hits >= before + 4 + 6);
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut h = Hierarchy::default();
        h.core_access(0x100, false, 0);
        assert!(h.stats().l1_misses > 0);
        h.reset_stats();
        assert_eq!(h.stats().l1_misses, 0);
        assert_eq!(h.stats().dram_accesses, 0);
    }
}
