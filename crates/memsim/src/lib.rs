//! Memory-hierarchy substrate for the MVE reproduction.
//!
//! Models the Snapdragon-855-class hierarchy of Table IV:
//!
//! | Level | Size   | Ways | Latency | MSHRs |
//! |-------|--------|------|---------|-------|
//! | L1-D  | 64 KB  | 4    | 4 cyc   | 20    |
//! | L2    | 512 KB | 8    | 12 cyc  | 46    |
//! | LLC   | 2 MB   | 8    | 31 cyc  | 64/way|
//!
//! plus an LPDDR4X-class DRAM bank/row model standing in for Ramulator
//! (see `DESIGN.md`, substitution table).
//!
//! Two access paths exist, mirroring Section V of the paper:
//!
//! * [`Hierarchy::core_access`] — scalar loads/stores from the core, going
//!   through L1 → L2 → LLC → DRAM.
//! * [`Hierarchy::vector_access`] — gathers/scatters issued by the MVE
//!   controller directly against the *regular half* of the L2 (the in-cache
//!   engine bypasses L1). Inclusive-presence-bit coherence evicts lines from
//!   L1 when the vector engine touches them (Section V-C).
//!
//! All times are in scalar-core cycles at 2.8 GHz.

pub mod cache;
pub mod dram;
pub mod hierarchy;

pub use cache::{CacheConfig, SetAssocCache};
pub use dram::{Dram, DramConfig};
pub use hierarchy::{BatchResult, Hierarchy, HierarchyConfig, MemStats};

/// Cache line size used throughout the model (bytes).
pub const LINE_BYTES: u64 = 64;

/// Converts a byte address to its cache-line address.
pub fn line_of(addr: u64) -> u64 {
    addr / LINE_BYTES
}
