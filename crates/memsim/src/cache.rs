//! Set-associative cache model with LRU replacement, write-back/
//! write-allocate policy, and the inclusive presence bit the paper's
//! coherence scheme relies on (Section V-C).
//!
//! The model is tag-only: data contents live in the functional memory of
//! `mve-core`; this model answers *hit/miss* and *what was evicted*.

/// Static configuration of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Access (hit) latency in core cycles.
    pub latency: u64,
    /// Miss Status Holding Registers — bounds outstanding misses.
    pub mshrs: usize,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.size_bytes / self.line_bytes) as usize / self.ways
    }

    /// L1-D configuration from Table IV.
    pub fn l1d() -> Self {
        Self {
            size_bytes: 64 * 1024,
            ways: 4,
            line_bytes: 64,
            latency: 4,
            mshrs: 20,
        }
    }

    /// L2 configuration from Table IV (full 512 KB; when the compute half is
    /// active only 4 ways remain for storage — see [`SetAssocCache::restrict_ways`]).
    pub fn l2() -> Self {
        Self {
            size_bytes: 512 * 1024,
            ways: 8,
            line_bytes: 64,
            latency: 12,
            mshrs: 46,
        }
    }

    /// Shared LLC configuration from Table IV.
    pub fn llc() -> Self {
        Self {
            size_bytes: 2 * 1024 * 1024,
            ways: 8,
            line_bytes: 64,
            latency: 31,
            mshrs: 64,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct TagEntry {
    tag: u64,
    dirty: bool,
    /// Inclusive presence bit: line is also valid in the level above (L1).
    present_above: bool,
    lru: u64,
}

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was already resident.
    pub hit: bool,
    /// Dirty line address evicted by the fill, if any.
    pub writeback: Option<u64>,
    /// The victim (clean or dirty) line address, if any — needed to maintain
    /// inclusion in the level above.
    pub victim: Option<u64>,
    /// Presence bit of the accessed line *before* this access (hits only).
    pub was_present_above: bool,
}

/// A set-associative, write-back, write-allocate cache (tags only).
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    /// Ways usable for storage (reduced when the compute half is enabled).
    active_ways: usize,
    sets: Vec<Vec<TagEntry>>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration yields zero sets or zero ways.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.ways > 0 && cfg.sets() > 0, "degenerate cache geometry");
        Self {
            active_ways: cfg.ways,
            sets: vec![Vec::new(); cfg.sets()],
            clock: 0,
            cfg,
            hits: 0,
            misses: 0,
        }
    }

    /// Configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Restricts the usable ways (e.g. 8 → 4 when half the L2 becomes the
    /// compute engine, Section V-C). Lines in deactivated ways are dropped;
    /// the number of dirty lines that had to be flushed is returned so the
    /// mode-switch cost can be charged.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or exceeds the configured associativity.
    pub fn restrict_ways(&mut self, ways: usize) -> u64 {
        assert!(ways > 0 && ways <= self.cfg.ways, "invalid way restriction");
        let mut flushed = 0;
        if ways < self.active_ways {
            for set in &mut self.sets {
                while set.len() > ways {
                    // Evict LRU first.
                    let lru_idx = Self::lru_index(set);
                    if set[lru_idx].dirty {
                        flushed += 1;
                    }
                    set.remove(lru_idx);
                }
            }
        }
        self.active_ways = ways;
        flushed
    }

    /// Currently usable ways.
    pub fn active_ways(&self) -> usize {
        self.active_ways
    }

    /// Hit count since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn set_index(&self, line_addr: u64) -> usize {
        (line_addr % self.sets.len() as u64) as usize
    }

    fn lru_index(set: &[TagEntry]) -> usize {
        set.iter()
            .enumerate()
            .min_by_key(|(_, e)| e.lru)
            .map(|(i, _)| i)
            .expect("LRU of empty set")
    }

    /// Accesses `line_addr` (a line address, not a byte address), allocating
    /// on miss. `write` marks the line dirty.
    pub fn access(&mut self, line_addr: u64, write: bool) -> AccessOutcome {
        self.clock += 1;
        let set_idx = self.set_index(line_addr);
        let active_ways = self.active_ways;
        let clock = self.clock;
        let set = &mut self.sets[set_idx];

        if let Some(entry) = set.iter_mut().find(|e| e.tag == line_addr) {
            entry.lru = clock;
            entry.dirty |= write;
            self.hits += 1;
            return AccessOutcome {
                hit: true,
                writeback: None,
                victim: None,
                was_present_above: entry.present_above,
            };
        }

        self.misses += 1;
        let (writeback, victim) = if set.len() >= active_ways {
            let lru_idx = Self::lru_index(set);
            let v = set.remove(lru_idx);
            (v.dirty.then_some(v.tag), Some(v.tag))
        } else {
            (None, None)
        };
        set.push(TagEntry {
            tag: line_addr,
            dirty: write,
            present_above: false,
            lru: clock,
        });
        AccessOutcome {
            hit: false,
            writeback,
            victim,
            was_present_above: false,
        }
    }

    /// Probes without side effects: is the line resident?
    pub fn probe(&self, line_addr: u64) -> bool {
        let set = &self.sets[self.set_index(line_addr)];
        set.iter().any(|e| e.tag == line_addr)
    }

    /// Sets or clears the inclusive presence bit of a resident line.
    /// Returns `false` if the line is not resident.
    pub fn set_presence(&mut self, line_addr: u64, present: bool) -> bool {
        let set_idx = self.set_index(line_addr);
        if let Some(e) = self.sets[set_idx].iter_mut().find(|e| e.tag == line_addr) {
            e.present_above = present;
            true
        } else {
            false
        }
    }

    /// Reads the presence bit of a resident line.
    pub fn presence(&self, line_addr: u64) -> Option<bool> {
        let set = &self.sets[self.set_index(line_addr)];
        set.iter()
            .find(|e| e.tag == line_addr)
            .map(|e| e.present_above)
    }

    /// Invalidates a line; returns `true` if it was resident and dirty.
    pub fn invalidate(&mut self, line_addr: u64) -> bool {
        let set_idx = self.set_index(line_addr);
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|e| e.tag == line_addr) {
            set.remove(pos).dirty
        } else {
            false
        }
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Number of resident dirty lines (used for the mode-switch flush cost).
    pub fn dirty_lines(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.iter().filter(|e| e.dirty).count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_geometries() {
        assert_eq!(CacheConfig::l1d().sets(), 256);
        assert_eq!(CacheConfig::l2().sets(), 1024);
        assert_eq!(CacheConfig::llc().sets(), 4096);
    }

    #[test]
    fn hit_after_fill() {
        let mut c = SetAssocCache::new(CacheConfig::l1d());
        assert!(!c.access(42, false).hit);
        assert!(c.access(42, false).hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_eviction_and_dirty_writeback() {
        let cfg = CacheConfig {
            size_bytes: 4 * 64,
            ways: 2,
            line_bytes: 64,
            latency: 1,
            mshrs: 4,
        };
        let mut c = SetAssocCache::new(cfg); // 2 sets × 2 ways
                                             // Fill set 0 with lines 0 and 2, line 0 dirty.
        c.access(0, true);
        c.access(2, false);
        // Touch 0 so 2 becomes LRU.
        c.access(0, false);
        let out = c.access(4, false); // maps to set 0, evicts 2 (clean)
        assert_eq!(out.victim, Some(2));
        assert_eq!(out.writeback, None);
        let out = c.access(6, false); // evicts 0 (dirty)
        assert_eq!(out.writeback, Some(0));
    }

    #[test]
    fn presence_bit_tracks_l1_residency() {
        let mut c = SetAssocCache::new(CacheConfig::l2());
        c.access(7, false);
        assert_eq!(c.presence(7), Some(false));
        assert!(c.set_presence(7, true));
        assert_eq!(c.presence(7), Some(true));
        assert!(c.access(7, false).was_present_above);
        assert!(!c.set_presence(8, true)); // not resident
        assert_eq!(c.presence(8), None);
    }

    #[test]
    fn way_restriction_flushes_dirty_lines() {
        let cfg = CacheConfig {
            size_bytes: 8 * 64,
            ways: 4,
            line_bytes: 64,
            latency: 1,
            mshrs: 4,
        };
        let mut c = SetAssocCache::new(cfg); // 2 sets × 4 ways
        for line in 0..8u64 {
            c.access(line, line % 2 == 0); // even lines dirty
        }
        assert_eq!(c.resident_lines(), 8);
        assert_eq!(c.dirty_lines(), 4);
        let flushed = c.restrict_ways(2);
        assert_eq!(c.resident_lines(), 4);
        assert!(flushed >= 1, "some dirty lines must flush");
        assert_eq!(c.active_ways(), 2);
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = SetAssocCache::new(CacheConfig::l1d());
        c.access(1, true);
        c.access(2, false);
        assert!(c.invalidate(1));
        assert!(!c.invalidate(2));
        assert!(!c.invalidate(99));
        assert!(!c.probe(1));
    }
}
