//! Unified metrics registry and Prometheus text exposition.
//!
//! A [`MetricsRegistry`] is a *snapshot*, not a live store: the owner of
//! the real atomics (e.g. the serve daemon) rebuilds one per render, in a
//! single function that is the only place metrics are enumerated. Both
//! human-facing views (the `stats` JSON reply) and the machine-facing
//! `metrics` op (Prometheus text exposition format, [spec]) are derived
//! from the same registry, so a counter cannot exist in one and not the
//! other.
//!
//! Naming convention: short names (`requests`, `hits`) inside the
//! registry — identical to the historical `stats` JSON keys — and a
//! `<prefix>_` namespace (e.g. `mve_serve_requests`) applied only at
//! exposition time.
//!
//! [spec]: https://prometheus.io/docs/instrumenting/exposition_formats/

use std::fmt::Write as _;

/// One scalar metric value. `stats` JSON needs to distinguish integer
/// counters from float gauges to keep its historical byte format.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scalar {
    U64(u64),
    F64(f64),
}

impl Scalar {
    pub fn as_f64(self) -> f64 {
        match self {
            Scalar::U64(v) => v as f64,
            Scalar::F64(v) => v,
        }
    }
}

/// A log2-bucketed histogram snapshot: `counts[i]` holds samples whose
/// value `v` satisfies `v.max(1).ilog2() == i` (bucket 0 therefore covers
/// `0..=1`), exactly the serve-side latency histogram layout.
#[derive(Debug, Clone, Default)]
pub struct Log2Histogram {
    pub counts: Vec<u64>,
    pub count: u64,
    pub sum: u64,
}

impl Log2Histogram {
    /// Inclusive-upper `le` bound of bucket `i` in Prometheus terms:
    /// bucket `i` holds values `< 2^(i+1)`.
    pub fn le_bound(i: usize) -> f64 {
        (2u128 << i) as f64
    }
}

#[derive(Debug, Clone)]
enum Value {
    Scalar(Scalar),
    /// Rendered as a constant `1` gauge carrying its labels (the
    /// `*_info` idiom, e.g. `mve_serve_info{poller="epoll"} 1`).
    Info,
    Histogram(Log2Histogram),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
struct MetricSample {
    labels: Vec<(String, String)>,
    value: Value,
}

/// One metric family: a name, help text, a type, and one or more labeled
/// samples.
#[derive(Debug, Clone)]
pub struct Family {
    name: String,
    help: String,
    kind: Kind,
    samples: Vec<MetricSample>,
}

/// A point-in-time metrics snapshot. Insertion order is preserved in
/// every rendering, so the owner's build function fully determines both
/// the `stats` JSON member order and the exposition layout.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    families: Vec<Family>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    fn family_mut(&mut self, name: &str, help: &str, kind: Kind) -> &mut Family {
        if let Some(i) = self.families.iter().position(|f| f.name == name) {
            assert_eq!(
                self.families[i].kind, kind,
                "metric {name} re-registered with a different type"
            );
            &mut self.families[i]
        } else {
            self.families.push(Family {
                name: name.to_string(),
                help: help.to_string(),
                kind,
                samples: Vec::new(),
            });
            self.families.last_mut().unwrap()
        }
    }

    /// Registers a monotonically increasing counter.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.family_mut(name, help, Kind::Counter)
            .samples
            .push(MetricSample {
                labels: Vec::new(),
                value: Value::Scalar(Scalar::U64(value)),
            });
    }

    /// Registers an integer gauge (point-in-time level).
    pub fn gauge(&mut self, name: &str, help: &str, value: u64) {
        self.family_mut(name, help, Kind::Gauge)
            .samples
            .push(MetricSample {
                labels: Vec::new(),
                value: Value::Scalar(Scalar::U64(value)),
            });
    }

    /// Registers a float gauge.
    pub fn gauge_f(&mut self, name: &str, help: &str, value: f64) {
        self.family_mut(name, help, Kind::Gauge)
            .samples
            .push(MetricSample {
                labels: Vec::new(),
                value: Value::Scalar(Scalar::F64(value)),
            });
    }

    /// Registers one labeled float-gauge sample under family `name` — a
    /// gauge *family* (one sample per label set, e.g. a per-class
    /// measured cost). Labeled samples render in the exposition only;
    /// [`MetricsRegistry::scalars`] skips them, so adding a family never
    /// perturbs a stats-JSON layout derived from the unlabeled scalars.
    pub fn gauge_f_with(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.family_mut(name, help, Kind::Gauge)
            .samples
            .push(MetricSample {
                labels: labels
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
                value: Value::Scalar(Scalar::F64(value)),
            });
    }

    /// Registers an `*_info`-style constant gauge whose payload is its
    /// labels.
    pub fn info(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) {
        self.family_mut(name, help, Kind::Gauge)
            .samples
            .push(MetricSample {
                labels: labels
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
                value: Value::Info,
            });
    }

    /// Registers one labeled histogram sample under family `name`.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        snap: Log2Histogram,
    ) {
        self.family_mut(name, help, Kind::Histogram)
            .samples
            .push(MetricSample {
                labels: labels
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
                value: Value::Histogram(snap),
            });
    }

    /// Iterates unlabeled scalar metrics in insertion order as
    /// `(short_name, scalar)` — the `stats` JSON derivation.
    pub fn scalars(&self) -> impl Iterator<Item = (&str, Scalar)> {
        self.families.iter().flat_map(|f| {
            f.samples.iter().filter_map(|s| match s.value {
                Value::Scalar(v) if s.labels.is_empty() => Some((f.name.as_str(), v)),
                _ => None,
            })
        })
    }

    /// Looks up an unlabeled scalar by short name.
    pub fn scalar(&self, name: &str) -> Option<Scalar> {
        self.scalars().find(|(n, _)| *n == name).map(|(_, v)| v)
    }

    /// Returns the label value of an info metric, e.g.
    /// `label_of("info", "poller")`.
    pub fn label_of(&self, name: &str, key: &str) -> Option<&str> {
        let fam = self.families.iter().find(|f| f.name == name)?;
        fam.samples.iter().find_map(|s| {
            s.labels
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.as_str())
        })
    }

    /// Renders the registry in Prometheus text exposition format, with
    /// every family name prefixed by `<prefix>_`.
    pub fn render_prometheus(&self, prefix: &str) -> String {
        let mut out = String::with_capacity(4096);
        for fam in &self.families {
            let full = format!("{prefix}_{}", fam.name);
            debug_assert!(valid_metric_name(&full), "bad metric name {full}");
            let _ = writeln!(out, "# HELP {full} {}", fam.help);
            let _ = writeln!(out, "# TYPE {full} {}", fam.kind.name());
            for sample in &fam.samples {
                match &sample.value {
                    Value::Scalar(v) => {
                        let _ = writeln!(
                            out,
                            "{full}{} {}",
                            render_labels(&sample.labels),
                            fmt_value(v.as_f64())
                        );
                    }
                    Value::Info => {
                        let _ = writeln!(out, "{full}{} 1", render_labels(&sample.labels));
                    }
                    Value::Histogram(snap) => {
                        render_histogram(&mut out, &full, &sample.labels, snap)
                    }
                }
            }
        }
        out
    }
}

fn render_histogram(
    out: &mut String,
    full: &str,
    labels: &[(String, String)],
    snap: &Log2Histogram,
) {
    // Emit cumulative buckets up to the last non-empty one; the +Inf
    // bucket always closes the series at the total count.
    let last = snap
        .counts
        .iter()
        .rposition(|&c| c != 0)
        .map(|i| i + 1)
        .unwrap_or(0);
    let mut cumulative = 0u64;
    for (i, &c) in snap.counts.iter().take(last).enumerate() {
        cumulative += c;
        let le = fmt_value(Log2Histogram::le_bound(i));
        let _ = writeln!(
            out,
            "{full}_bucket{} {cumulative}",
            render_labels_with(labels, "le", &le)
        );
    }
    let _ = writeln!(
        out,
        "{full}_bucket{} {}",
        render_labels_with(labels, "le", "+Inf"),
        snap.count
    );
    let _ = writeln!(out, "{full}_sum{} {}", render_labels(labels), snap.sum);
    let _ = writeln!(out, "{full}_count{} {}", render_labels(labels), snap.count);
}

fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"");
        crate::log::escape_json(v, &mut out);
        out.push('"');
    }
    out.push('}');
    out
}

fn render_labels_with(labels: &[(String, String)], extra_key: &str, extra_val: &str) -> String {
    let mut all: Vec<(String, String)> = labels.to_vec();
    all.push((extra_key.to_string(), extra_val.to_string()));
    render_labels(&all)
}

/// Formats a float the way Prometheus expects: integers without a
/// fractional part, everything else via Rust's shortest-roundtrip `{}`.
fn fmt_value(v: f64) -> String {
    if v == f64::INFINITY {
        return "+Inf".to_string();
    }
    if v == f64::NEG_INFINITY {
        return "-Inf".to_string();
    }
    if v.is_nan() {
        return "NaN".to_string();
    }
    format!("{v}")
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

// ---------------------------------------------------------------------------
// Exposition parser (test / CI side)
// ---------------------------------------------------------------------------

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSample {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

/// A parsed exposition document.
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    /// `(family_name, type)` in document order.
    pub families: Vec<(String, String)>,
    pub samples: Vec<ParsedSample>,
}

impl Exposition {
    /// Value of the first sample matching `name` and all of `labels`.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| {
                s.name == name
                    && labels
                        .iter()
                        .all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
            })
            .map(|s| s.value)
    }

    pub fn family_type(&self, name: &str) -> Option<&str> {
        self.families
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t.as_str())
    }
}

/// Strictly parses a Prometheus text exposition document, validating:
///
/// * every sample belongs to a family announced by a preceding `# TYPE`
///   (histogram samples may use the `_bucket`/`_sum`/`_count` suffixes),
/// * metric and label names match the spec charset,
/// * `# TYPE` values are legal, families are not re-announced,
/// * histogram `le` buckets are cumulative (non-decreasing) and end in a
///   `+Inf` bucket equal to `_count`.
pub fn parse_exposition(text: &str) -> Result<Exposition, String> {
    let mut exp = Exposition::default();
    let mut current_family: Option<(String, String)> = None;

    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        let err = |msg: String| format!("line {}: {msg}", ln + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.splitn(2, ' ');
            let name = parts.next().unwrap_or("").to_string();
            let kind = parts
                .next()
                .ok_or_else(|| err("TYPE missing kind".into()))?
                .to_string();
            if !valid_metric_name(&name) {
                return Err(err(format!("invalid metric name {name:?}")));
            }
            if !matches!(
                kind.as_str(),
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(err(format!("invalid TYPE {kind:?}")));
            }
            if exp.families.iter().any(|(n, _)| *n == name) {
                return Err(err(format!("family {name} announced twice")));
            }
            exp.families.push((name.clone(), kind.clone()));
            current_family = Some((name, kind));
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or("");
            if !valid_metric_name(name) {
                return Err(err(format!("invalid metric name {name:?} in HELP")));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // plain comment
        }

        let sample = parse_sample_line(line).map_err(&err)?;
        let (fam_name, fam_kind) = current_family
            .as_ref()
            .ok_or_else(|| err(format!("sample {} before any # TYPE", sample.name)))?;
        let belongs = if fam_kind == "histogram" {
            sample.name == *fam_name
                || sample.name == format!("{fam_name}_bucket")
                || sample.name == format!("{fam_name}_sum")
                || sample.name == format!("{fam_name}_count")
        } else {
            sample.name == *fam_name
        };
        if !belongs {
            return Err(err(format!(
                "sample {} does not belong to current family {fam_name} ({fam_kind})",
                sample.name
            )));
        }
        exp.samples.push(sample);
    }

    validate_histograms(&exp)?;
    Ok(exp)
}

fn parse_sample_line(line: &str) -> Result<ParsedSample, String> {
    let (name_labels, value_str) = match line.rfind(' ') {
        Some(i) => (&line[..i], &line[i + 1..]),
        None => return Err(format!("sample line {line:?} has no value")),
    };
    let value = match value_str {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        s => s
            .parse::<f64>()
            .map_err(|_| format!("bad sample value {s:?}"))?,
    };
    let (name, labels) = match name_labels.find('{') {
        None => (name_labels.to_string(), Vec::new()),
        Some(open) => {
            if !name_labels.ends_with('}') {
                return Err(format!("unterminated label set in {name_labels:?}"));
            }
            let name = name_labels[..open].to_string();
            let body = &name_labels[open + 1..name_labels.len() - 1];
            (name, parse_labels(body)?)
        }
    };
    if !valid_metric_name(&name) {
        return Err(format!("invalid metric name {name:?}"));
    }
    Ok(ParsedSample {
        name,
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=' in {body:?}"))?;
        let key = rest[..eq].to_string();
        if !valid_label_name(&key) {
            return Err(format!("invalid label name {key:?}"));
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err(format!("label value not quoted in {body:?}"));
        }
        rest = &rest[1..];
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let mut consumed = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    other => return Err(format!("bad escape {other:?} in label value")),
                },
                '"' => {
                    consumed = Some(i + 1);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = consumed.ok_or_else(|| format!("unterminated label value in {body:?}"))?;
        labels.push((key, value));
        rest = &rest[end..];
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped;
        } else if !rest.is_empty() {
            return Err(format!("expected ',' between labels in {body:?}"));
        }
    }
    Ok(labels)
}

/// One histogram series during validation: the non-`le` label set and
/// its `(le, cumulative_count)` buckets in document order.
type BucketSeries = (Vec<(String, String)>, Vec<(f64, f64)>);

fn validate_histograms(exp: &Exposition) -> Result<(), String> {
    for (fam, kind) in &exp.families {
        if kind != "histogram" {
            continue;
        }
        let bucket_name = format!("{fam}_bucket");
        let count_name = format!("{fam}_count");
        // Group buckets by their non-`le` label set.
        let mut series: Vec<BucketSeries> = Vec::new();
        for s in exp.samples.iter().filter(|s| s.name == bucket_name) {
            let le = s
                .labels
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| match v.as_str() {
                    "+Inf" => Ok(f64::INFINITY),
                    v => v.parse::<f64>().map_err(|_| format!("bad le {v:?}")),
                })
                .ok_or_else(|| format!("{bucket_name} sample without le label"))??;
            let key: Vec<(String, String)> = s
                .labels
                .iter()
                .filter(|(k, _)| k != "le")
                .cloned()
                .collect();
            match series.iter_mut().find(|(k, _)| *k == key) {
                Some((_, buckets)) => buckets.push((le, s.value)),
                None => series.push((key, vec![(le, s.value)])),
            }
        }
        for (key, buckets) in &series {
            for pair in buckets.windows(2) {
                if pair[1].0 <= pair[0].0 {
                    return Err(format!("{bucket_name}{key:?}: le bounds not increasing"));
                }
                if pair[1].1 < pair[0].1 {
                    return Err(format!(
                        "{bucket_name}{key:?}: bucket counts not cumulative"
                    ));
                }
            }
            let last = buckets
                .last()
                .ok_or_else(|| format!("{bucket_name}: empty series"))?;
            if last.0 != f64::INFINITY {
                return Err(format!("{bucket_name}{key:?}: missing +Inf bucket"));
            }
            let count = exp
                .samples
                .iter()
                .find(|s| {
                    s.name == count_name
                        && key
                            .iter()
                            .all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
                })
                .ok_or_else(|| format!("{count_name}{key:?}: missing"))?;
            if count.value != last.1 {
                return Err(format!("{bucket_name}{key:?}: +Inf bucket != _count"));
            }
        }
    }
    Ok(())
}

/// Approximate quantile (`0.0..=1.0`) from raw log2 bucket counts, using
/// the geometric bucket midpoint — the client-side (`stats --watch`)
/// counterpart of the daemon's histogram percentiles.
pub fn quantile_from_log2_buckets(counts: &[u64], q: f64) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            let lo = if i == 0 { 1.0 } else { (1u128 << i) as f64 };
            let hi = (2u128 << i) as f64;
            return (lo * hi).sqrt();
        }
    }
    0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.counter("requests", "Total requests received.", 42);
        reg.counter("hits", "Cache hits.", 17);
        reg.gauge_f("hit_rate", "Hits over lookups.", 0.25);
        reg.info("info", "Daemon build/runtime info.", &[("poller", "epoll")]);
        let mut counts = vec![0u64; 64];
        counts[0] = 2; // two samples <= 1us
        counts[5] = 1; // one in [32,64)
        reg.histogram(
            "request_service_us",
            "Service time per op class.",
            &[("class", "artefact")],
            Log2Histogram {
                counts,
                count: 3,
                sum: 50,
            },
        );
        reg
    }

    #[test]
    fn render_parse_roundtrip() {
        let reg = sample_registry();
        let text = reg.render_prometheus("mve_serve");
        let exp = parse_exposition(&text).expect("well-formed exposition");
        assert_eq!(exp.family_type("mve_serve_requests"), Some("counter"));
        assert_eq!(exp.value("mve_serve_requests", &[]), Some(42.0));
        assert_eq!(exp.value("mve_serve_hit_rate", &[]), Some(0.25));
        assert_eq!(
            exp.value("mve_serve_info", &[("poller", "epoll")]),
            Some(1.0)
        );
        // Histogram: cumulative buckets, +Inf == count, sum/count present.
        assert_eq!(
            exp.value(
                "mve_serve_request_service_us_bucket",
                &[("class", "artefact"), ("le", "2")]
            ),
            Some(2.0)
        );
        assert_eq!(
            exp.value(
                "mve_serve_request_service_us_bucket",
                &[("class", "artefact"), ("le", "64")]
            ),
            Some(3.0)
        );
        assert_eq!(
            exp.value(
                "mve_serve_request_service_us_bucket",
                &[("class", "artefact"), ("le", "+Inf")]
            ),
            Some(3.0)
        );
        assert_eq!(
            exp.value("mve_serve_request_service_us_sum", &[("class", "artefact")]),
            Some(50.0)
        );
        assert_eq!(
            exp.value(
                "mve_serve_request_service_us_count",
                &[("class", "artefact")]
            ),
            Some(3.0)
        );
    }

    #[test]
    fn scalars_preserve_insertion_order() {
        let reg = sample_registry();
        let names: Vec<&str> = reg.scalars().map(|(n, _)| n).collect();
        assert_eq!(names, ["requests", "hits", "hit_rate"]);
        assert_eq!(reg.scalar("hits"), Some(Scalar::U64(17)));
        assert_eq!(reg.label_of("info", "poller"), Some("epoll"));
    }

    #[test]
    fn parser_rejects_malformed() {
        assert!(parse_exposition("mve_x 1").is_err(), "sample before TYPE");
        assert!(
            parse_exposition("# TYPE mve_x widget\nmve_x 1").is_err(),
            "bad kind"
        );
        assert!(
            parse_exposition("# TYPE mve_x counter\nmve_y 1").is_err(),
            "family mismatch"
        );
        assert!(
            parse_exposition("# TYPE mve_x counter\nmve_x{le=\"oops} 1").is_err(),
            "unterminated label"
        );
        assert!(
            parse_exposition("# TYPE 9bad counter\n9bad 1").is_err(),
            "invalid metric name"
        );
        // Histogram without +Inf bucket.
        let text = "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_sum 1\nh_count 1\n";
        assert!(parse_exposition(text).is_err());
    }

    #[test]
    fn quantiles_from_buckets() {
        let mut counts = vec![0u64; 64];
        assert_eq!(quantile_from_log2_buckets(&counts, 0.99), 0.0);
        counts[3] = 100; // all samples in [8,16)
        let p99 = quantile_from_log2_buckets(&counts, 0.99);
        assert!(p99 > 8.0 && p99 < 16.0, "p99={p99}");
    }

    #[test]
    fn quantile_single_occupied_bucket_is_its_geometric_midpoint() {
        let mut counts = vec![0u64; 64];
        counts[5] = 9; // every sample in (32, 64]
        let mid = (32.0f64 * 64.0).sqrt();
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(quantile_from_log2_buckets(&counts, q), mid, "q={q}");
        }
    }

    #[test]
    fn quantile_all_mass_in_last_bucket_stays_finite() {
        // Bucket 63's upper edge is 2^64: the u128 shift must not wrap,
        // and the interpolated value stays between the edges.
        let mut counts = vec![0u64; 64];
        counts[63] = 3;
        let v = quantile_from_log2_buckets(&counts, 0.99);
        assert!(v.is_finite(), "v={v}");
        assert!(v >= (1u128 << 63) as f64 && v <= (2u128 << 63) as f64);
    }

    #[test]
    fn quantile_over_merged_buckets_matches_the_union() {
        // Bucket-wise addition is exactly how per-class histograms merge
        // into one series; quantiles over the sum must equal quantiles
        // over the union of samples.
        let mut a = vec![0u64; 64];
        a[2] = 5;
        a[8] = 1;
        let mut b = vec![0u64; 64];
        b[2] = 2;
        b[4] = 7;
        let merged: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        // 15 samples: rank 8 lands in bucket 4, rank 15 in bucket 8.
        assert_eq!(
            quantile_from_log2_buckets(&merged, 0.5),
            (16.0f64 * 32.0).sqrt()
        );
        assert_eq!(
            quantile_from_log2_buckets(&merged, 0.99),
            (256.0f64 * 512.0).sqrt()
        );
    }
}
