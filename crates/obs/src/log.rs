//! Leveled structured logging: NDJSON events on stderr.
//!
//! One event is one JSON object on one line, e.g.
//!
//! ```text
//! {"ts_us":1723100000000000,"level":"info","event":"serve.request","id":42,"op":"artefact"}
//! ```
//!
//! The global level starts unset; the first gate check reads `MVE_LOG`
//! (`error`, `warn`, `info`, `debug`; anything else or unset disables
//! logging entirely). Binaries with a `--log-level` flag call
//! [`set_level`], which wins over the environment.
//!
//! The hot-path contract is that a *disabled* log site costs one relaxed
//! atomic load and one predictable branch: the [`logev!`](crate::logev)
//! macro checks [`enabled`] before evaluating any field expression. The
//! `log_gate_disabled` workload in `BENCH_engine.json` pins that cost.

use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity. Discriminants are the runtime gate values: a site fires
/// when the global level is `>=` its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    Error = 1,
    Warn = 2,
    Info = 3,
    Debug = 4,
}

impl Level {
    /// Parses a level name as accepted by `MVE_LOG` / `--log-level`.
    /// `off`/`none` explicitly disable; unknown strings are `None`.
    pub fn parse(s: &str) -> Option<Option<Level>> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(None),
            "error" => Some(Some(Level::Error)),
            "warn" | "warning" => Some(Some(Level::Warn)),
            "info" => Some(Some(Level::Info)),
            "debug" => Some(Some(Level::Debug)),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// Sentinel: level not yet resolved from the environment.
const UNINIT: u8 = 0xFF;
/// Logging disabled.
const OFF: u8 = 0;

static LEVEL: AtomicU8 = AtomicU8::new(UNINIT);

/// Resolves the global level, reading `MVE_LOG` on first use.
#[inline]
fn level_raw() -> u8 {
    let l = LEVEL.load(Ordering::Relaxed);
    if l == UNINIT {
        init_from_env()
    } else {
        l
    }
}

#[cold]
fn init_from_env() -> u8 {
    let resolved = std::env::var("MVE_LOG")
        .ok()
        .and_then(|v| Level::parse(&v))
        .flatten()
        .map(|l| l as u8)
        .unwrap_or(OFF);
    // A concurrent set_level() wins: only replace the UNINIT sentinel.
    match LEVEL.compare_exchange(UNINIT, resolved, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => resolved,
        Err(current) => current,
    }
}

/// Overrides the global level (e.g. from a `--log-level` flag). `None`
/// disables logging.
pub fn set_level(level: Option<Level>) {
    LEVEL.store(level.map(|l| l as u8).unwrap_or(OFF), Ordering::Relaxed);
}

/// Returns the currently effective level (after env resolution).
pub fn current_level() -> Option<Level> {
    match level_raw() {
        1 => Some(Level::Error),
        2 => Some(Level::Warn),
        3 => Some(Level::Info),
        4 => Some(Level::Debug),
        _ => None,
    }
}

/// The hot-path gate: true when a site at `level` should emit.
#[inline]
pub fn enabled(level: Level) -> bool {
    level_raw() >= level as u8
}

/// A field value in a structured event. `From` impls cover what call
/// sites need so the macro can write `key = expr` without ceremony.
#[derive(Debug, Clone)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

macro_rules! from_int {
    ($($t:ty => $variant:ident as $cast:ty),*) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> Self { FieldValue::$variant(v as $cast) }
        }
    )*};
}
from_int!(u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
          usize => U64 as u64, i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64,
          i64 => I64 as i64, isize => I64 as i64);

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<f32> for FieldValue {
    fn from(v: f32) -> Self {
        FieldValue::F64(v as f64)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// Escapes `s` as JSON string *contents* (no surrounding quotes).
pub fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders one event as a single NDJSON line (no trailing newline).
/// Split from [`emit`] so tests can pin the wire format.
pub fn format_event(
    ts_us: u64,
    level: Level,
    event: &str,
    fields: &[(&str, FieldValue)],
) -> String {
    let mut line = String::with_capacity(64 + fields.len() * 24);
    let _ = write!(
        line,
        "{{\"ts_us\":{ts_us},\"level\":\"{}\",\"event\":\"",
        level.name()
    );
    escape_json(event, &mut line);
    line.push('"');
    for (key, value) in fields {
        line.push_str(",\"");
        escape_json(key, &mut line);
        line.push_str("\":");
        match value {
            FieldValue::U64(v) => {
                let _ = write!(line, "{v}");
            }
            FieldValue::I64(v) => {
                let _ = write!(line, "{v}");
            }
            FieldValue::F64(v) if v.is_finite() => {
                let _ = write!(line, "{v}");
            }
            FieldValue::F64(_) => line.push_str("null"),
            FieldValue::Bool(v) => {
                let _ = write!(line, "{v}");
            }
            FieldValue::Str(v) => {
                line.push('"');
                escape_json(v, &mut line);
                line.push('"');
            }
        }
    }
    line.push('}');
    line
}

/// Microseconds since the unix epoch (wall clock, for log correlation).
pub fn wall_ts_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// Emits one event line to stderr. Callers normally go through
/// [`logev!`](crate::logev), which applies the level gate first.
pub fn emit(level: Level, event: &str, fields: &[(&str, FieldValue)]) {
    let mut line = format_event(wall_ts_us(), level, event, fields);
    line.push('\n');
    // One locked write per event so concurrent threads cannot interleave
    // partial lines.
    let stderr = std::io::stderr();
    let _ = stderr.lock().write_all(line.as_bytes());
}

/// Structured log event. Field expressions are evaluated only after the
/// level gate passes, so a disabled site costs one relaxed atomic load:
///
/// ```
/// use mve_obs::{logev, Level};
/// logev!(Level::Debug, "engine.run", kernel = "binop", lanes = 8192_u64);
/// ```
#[macro_export]
macro_rules! logev {
    ($lvl:expr, $event:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::log::enabled($lvl) {
            $crate::log::emit(
                $lvl,
                $event,
                &[$((stringify!($key), $crate::log::FieldValue::from($value))),*],
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing() {
        assert_eq!(Level::parse("debug"), Some(Some(Level::Debug)));
        assert_eq!(Level::parse("WARN"), Some(Some(Level::Warn)));
        assert_eq!(Level::parse("off"), Some(None));
        assert_eq!(Level::parse("bogus"), None);
    }

    #[test]
    fn format_is_one_json_object_per_line() {
        let line = format_event(
            7,
            Level::Info,
            "serve.request",
            &[
                ("id", FieldValue::U64(42)),
                ("op", FieldValue::Str("artefact".into())),
                ("ok", FieldValue::Bool(true)),
                ("note", FieldValue::Str("a\"b\nc".into())),
                ("nan", FieldValue::F64(f64::NAN)),
            ],
        );
        assert_eq!(
            line,
            "{\"ts_us\":7,\"level\":\"info\",\"event\":\"serve.request\",\
             \"id\":42,\"op\":\"artefact\",\"ok\":true,\"note\":\"a\\\"b\\nc\",\"nan\":null}"
        );
        assert!(!line.contains('\n'));
    }

    #[test]
    fn set_level_gates() {
        // Tests share one process-global level; drive it explicitly.
        set_level(Some(Level::Warn));
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        assert_eq!(current_level(), Some(Level::Warn));
        set_level(None);
        assert!(!enabled(Level::Error));
        assert_eq!(current_level(), None);
    }
}
