//! Chrome trace-event (catapult) JSON export.
//!
//! Produces the "JSON object format" understood by `chrome://tracing`
//! and Perfetto: `{"traceEvents": [...], "displayTimeUnit": "ms"}` where
//! each event carries `name`/`cat`/`ph`/`ts`/`pid`/`tid` and complete
//! events (`ph: "X"`) add `dur`. Timestamps and durations are in
//! microseconds per the spec.

use crate::log::{escape_json, FieldValue};
use std::fmt::Write as _;

#[derive(Debug, Default)]
pub struct ChromeTrace {
    events: Vec<String>,
}

impl ChromeTrace {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Names a track (`tid`) inside a process (`pid`) via the standard
    /// `thread_name` metadata event.
    pub fn name_thread(&mut self, pid: u64, tid: u64, name: &str) {
        let mut e = String::new();
        let _ = write!(
            e,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\""
        );
        escape_json(name, &mut e);
        e.push_str("\"}}");
        self.events.push(e);
    }

    /// Adds a complete event (`ph: "X"`): a slice from `ts_us` lasting
    /// `dur_us` on track `(pid, tid)`. The parameter list mirrors the
    /// trace-event field vocabulary one-to-one, wide as it is.
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &mut self,
        name: &str,
        cat: &str,
        ts_us: f64,
        dur_us: f64,
        pid: u64,
        tid: u64,
        args: &[(&str, FieldValue)],
    ) {
        self.events.push(Self::event(
            name,
            cat,
            "X",
            ts_us,
            Some(dur_us),
            pid,
            tid,
            args,
        ));
    }

    /// Adds an instant event (`ph: "i"`, thread scope).
    pub fn instant(
        &mut self,
        name: &str,
        cat: &str,
        ts_us: f64,
        pid: u64,
        tid: u64,
        args: &[(&str, FieldValue)],
    ) {
        self.events
            .push(Self::event(name, cat, "i", ts_us, None, pid, tid, args));
    }

    #[allow(clippy::too_many_arguments)]
    fn event(
        name: &str,
        cat: &str,
        ph: &str,
        ts_us: f64,
        dur_us: Option<f64>,
        pid: u64,
        tid: u64,
        args: &[(&str, FieldValue)],
    ) -> String {
        let mut e = String::with_capacity(96);
        e.push_str("{\"name\":\"");
        escape_json(name, &mut e);
        e.push_str("\",\"cat\":\"");
        escape_json(cat, &mut e);
        let _ = write!(e, "\",\"ph\":\"{ph}\",\"ts\":{ts_us}");
        if let Some(d) = dur_us {
            let _ = write!(e, ",\"dur\":{d}");
        }
        let _ = write!(e, ",\"pid\":{pid},\"tid\":{tid}");
        if ph == "i" {
            e.push_str(",\"s\":\"t\"");
        }
        if !args.is_empty() {
            e.push_str(",\"args\":{");
            for (i, (k, v)) in args.iter().enumerate() {
                if i > 0 {
                    e.push(',');
                }
                e.push('"');
                escape_json(k, &mut e);
                e.push_str("\":");
                match v {
                    FieldValue::U64(v) => {
                        let _ = write!(e, "{v}");
                    }
                    FieldValue::I64(v) => {
                        let _ = write!(e, "{v}");
                    }
                    FieldValue::F64(v) if v.is_finite() => {
                        let _ = write!(e, "{v}");
                    }
                    FieldValue::F64(_) => e.push_str("null"),
                    FieldValue::Bool(v) => {
                        let _ = write!(e, "{v}");
                    }
                    FieldValue::Str(s) => {
                        e.push('"');
                        escape_json(s, &mut e);
                        e.push('"');
                    }
                }
            }
            e.push('}');
        }
        e.push('}');
        e
    }

    /// Renders the full trace document.
    pub fn render(&self) -> String {
        let mut out =
            String::with_capacity(32 + self.events.iter().map(|e| e.len() + 1).sum::<usize>());
        out.push_str("{\"traceEvents\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(e);
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_complete_and_meta_events() {
        let mut t = ChromeTrace::new();
        t.name_thread(1, 2, "engine");
        t.complete(
            "compute",
            "mve",
            10.0,
            5.5,
            1,
            2,
            &[("lanes", FieldValue::U64(64))],
        );
        t.instant("cache\"hit", "serve", 16.0, 1, 2, &[]);
        let doc = t.render();
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.ends_with("],\"displayTimeUnit\":\"ms\"}"));
        assert!(doc.contains("\"ph\":\"X\",\"ts\":10,\"dur\":5.5,\"pid\":1,\"tid\":2"));
        assert!(doc.contains("\"args\":{\"lanes\":64}"));
        assert!(doc.contains("cache\\\"hit"));
        assert_eq!(t.len(), 3);
    }
}
