//! mve-obs: the workspace's observability plane.
//!
//! Everything here is std-only and dependency-free so every other crate
//! (core, lang, serve, bench) can sit on top of it without cycles:
//!
//! * [`log`] — leveled structured logging. Events are NDJSON objects on
//!   stderr, gated by `MVE_LOG=error|warn|info|debug` (or
//!   [`log::set_level`] from a `--log-level` flag). The [`logev!`] macro
//!   evaluates its field expressions only after the level gate passes, so
//!   a disabled log site costs one relaxed atomic load.
//! * [`metrics`] — a [`metrics::MetricsRegistry`] snapshot container that
//!   renders to Prometheus text exposition format, plus a strict parser
//!   for that format so tests and CI can validate live daemons without
//!   external tooling.
//! * [`chrome`] — a Chrome trace-event (catapult) JSON builder, so one
//!   kernel execution or one serve request can be opened as a timeline in
//!   `chrome://tracing` / Perfetto.

pub mod chrome;
pub mod log;
pub mod metrics;

pub use chrome::ChromeTrace;
pub use log::Level;
pub use metrics::MetricsRegistry;
