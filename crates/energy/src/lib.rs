//! Energy and area models for the MVE reproduction.
//!
//! Replaces the paper's measurement toolchain (CACTI for cache access
//! energy, Neural Cache's bit-serial op energy, Batterystats/Trepn for
//! CPU/GPU power, RTL synthesis + die-shot areas) with documented analytic
//! constants:
//!
//! * [`params::EnergyParams`] — per-event energies in pJ. Values are
//!   calibrated to the component ratios the paper reports (in-SRAM ops are
//!   an order of magnitude cheaper per lane than CPU SIMD ops; DRAM
//!   dominates per-byte costs) and flagged `CALIBRATED` where no public
//!   number exists.
//! * [`model`] — converts simulator event counters into the Figure 7(b)
//!   three-bucket breakdown (compute / data access / CPU).
//! * [`area`] — the Table V per-module area model, parameterised by the
//!   engine geometry so the ablation benches can sweep it.

pub mod area;
pub mod model;
pub mod params;

pub use area::{area_table, AreaRow};
pub use model::{mve_energy, neon_energy, EnergyBreakdown};
pub use params::EnergyParams;
