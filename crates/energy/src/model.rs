//! Event-count → energy conversion (Figure 7(b) buckets).

use crate::params::EnergyParams;
use mve_core::sim::SimReport;
use mve_coresim::neon::{NeonProfile, NeonResult};

/// Energy split into the paper's three buckets.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// In-SRAM compute (or SIMD-pipe compute for Neon).
    pub compute_pj: f64,
    /// Data movement: cache lines, DRAM, TMU.
    pub data_pj: f64,
    /// Scalar core: instruction fetch/retire and vector issue.
    pub cpu_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.compute_pj + self.data_pj + self.cpu_pj
    }
}

/// Energy of an MVE run from its simulator report.
pub fn mve_energy(report: &SimReport, p: &EnergyParams) -> EnergyBreakdown {
    let e = &report.energy;
    let m = &report.mem;
    let compute = e.array_active_cycles as f64 * p.e_array_cycle_pj;
    let l2_lines = (m.vector_lines_read + m.vector_lines_written) as f64;
    let data = e.tmu_element_transfers as f64 * p.e_tmu_element_pj
        + l2_lines * p.e_l2_line_pj
        + m.llc_hits as f64 * p.e_llc_line_pj
        + m.dram_accesses as f64 * p.e_dram_line_pj;
    let cpu = e.scalar_instrs as f64 * p.e_scalar_instr_pj
        + e.vector_instrs as f64 * p.e_vec_issue_pj
        + report.total_cycles as f64 * p.e_core_wait_pj_per_cycle;
    EnergyBreakdown {
        compute_pj: compute,
        data_pj: data,
        cpu_pj: cpu,
    }
}

/// Energy of a Neon run from its profile and result.
///
/// On the packed-SIMD baseline everything executes in the core, so compute
/// energy is the SIMD-pipe energy, data energy is the L1/L2/DRAM traffic,
/// and CPU energy is the scalar glue.
pub fn neon_energy(
    profile: &NeonProfile,
    result: &NeonResult,
    p: &EnergyParams,
) -> EnergyBreakdown {
    let ops: u64 = profile.ops.iter().map(|(_, c)| c).sum();
    let compute = ops as f64 * p.e_neon_op_pj;
    let lines = profile.touched_bytes as f64 / 64.0;
    // Streaming data is fetched from L2/DRAM once and then hit in L1.
    // CALIBRATED: charge each line one L2 access and one DRAM access per
    // cold byte (kernels in Table III stream their datasets).
    let data = (profile.loads + profile.stores) as f64 * p.e_neon_mem_pj
        + lines * (p.e_l2_line_pj + p.e_dram_line_pj * 0.5);
    let cpu = result.scalar_instrs as f64 * p.e_scalar_instr_pj
        + result.cycles as f64 * p.e_core_active_pj_per_cycle;
    EnergyBreakdown {
        compute_pj: compute,
        data_pj: data,
        cpu_pj: cpu,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mve_core::engine::Engine;
    use mve_core::isa::StrideMode;
    use mve_core::sim::{simulate, SimConfig};
    use mve_coresim::neon::{NeonModel, NeonOpClass};
    use mve_memsim::Hierarchy;

    fn mve_report(muls: usize) -> SimReport {
        let mut e = Engine::default_mobile();
        e.vsetdimc(1);
        e.vsetdiml(0, 8192);
        let a = e.mem_alloc_typed::<i32>(8192);
        let v = e.vsld_dw(a, &[StrideMode::One]);
        for _ in 0..muls {
            let r = e.vmul_dw(v, v);
            e.free(r);
        }
        e.vsst_dw(v, a, &[StrideMode::One]);
        simulate(&e.take_trace(), &SimConfig::default())
    }

    #[test]
    fn mve_buckets_are_populated() {
        let b = mve_energy(&mve_report(8), &EnergyParams::default());
        assert!(b.compute_pj > 0.0);
        assert!(b.data_pj > 0.0);
        assert!(b.cpu_pj > 0.0);
        assert!((b.total_pj() - (b.compute_pj + b.data_pj + b.cpu_pj)).abs() < 1e-9);
    }

    #[test]
    fn more_compute_means_more_compute_energy() {
        let p = EnergyParams::default();
        let small = mve_energy(&mve_report(2), &p);
        let big = mve_energy(&mve_report(32), &p);
        assert!(big.compute_pj > 4.0 * small.compute_pj);
    }

    #[test]
    fn neon_energy_scales_with_ops() {
        let p = EnergyParams::default();
        let model = NeonModel::default();
        let mut h = Hierarchy::default();
        let mk = |n: u64| NeonProfile {
            ops: vec![(NeonOpClass::IntSimple, n)],
            chain_ops: vec![],
            loads: n / 4,
            stores: n / 8,
            scalar_instrs: n / 2,
            touched_bytes: 1 << 16,
            base_addr: 0x10_0000,
        };
        let p1 = mk(1_000);
        let r1 = model.execute(&p1, &mut h, 0);
        let p2 = mk(10_000);
        let r2 = model.execute(&p2, &mut h, 0);
        let e1 = neon_energy(&p1, &r1, &p);
        let e2 = neon_energy(&p2, &r2, &p);
        assert!(e2.compute_pj > 9.0 * e1.compute_pj);
        assert!(e2.cpu_pj > e1.cpu_pj);
    }

    #[test]
    fn per_useful_op_mve_beats_neon() {
        // The core claim behind Figure 7(b): for the same logical work, MVE
        // spends less energy. Compare one 8192-lane i32 multiply against the
        // equivalent 2048 Neon 4-lane multiplies.
        let p = EnergyParams::default();
        let report = mve_report(1);
        let mve = mve_energy(&report, &p);

        let model = NeonModel::default();
        let mut h = Hierarchy::default();
        let profile = NeonProfile {
            ops: vec![(NeonOpClass::IntMul, 2048)],
            chain_ops: vec![],
            loads: 2048,
            stores: 2048,
            scalar_instrs: 3000,
            touched_bytes: 8192 * 4,
            base_addr: 0x10_0000,
        };
        let r = model.execute(&profile, &mut h, 0);
        let neon = neon_energy(&profile, &r, &p);
        // 32-bit multiply is bit-serial's *worst* case (O(n²) cycles), so
        // the margin here is modest; low-precision kernels in `mve-kernels`
        // exhibit the paper's large gaps.
        assert!(
            neon.total_pj() > 1.15 * mve.total_pj(),
            "neon {} vs mve {}",
            neon.total_pj(),
            mve.total_pj()
        );
    }
}
