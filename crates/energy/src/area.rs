//! The Table V area model (7 nm, mm²).
//!
//! Per-module areas are expressed as per-unit constants times the quantity
//! implied by the engine geometry, calibrated so that the paper's default
//! configuration (32 arrays, 8 CBs, 46 MSHRs) reproduces Table V exactly:
//!
//! | Module          | Paper source | Area (mm²) |
//! |-----------------|--------------|------------|
//! | Controller      | RTL          | 0.0043     |
//! | MSHR            | CACTI        | 0.0018     |
//! | TMU             | [31]         | 0.0053     |
//! | XB              | [35]         | 0.0039     |
//! | FSM             | [35]         | 0.0123     |
//! | Peripheral      | [35]         | 0.0063     |
//! | Address Decoder | RTL          | 0.0042     |
//! | **Total**       |              | **0.0382** |
//!
//! against a 1.07 mm² Cortex-A76-class scalar core, i.e. a 3.59% overhead —
//! versus 16.3% for the 2×128-bit Neon unit and 11.19 mm² for the Adreno
//! 640 GPU.

use mve_insram::scheme::EngineGeometry;

/// Scalar core area at 7 nm (Kirin 990 die shot, Table V heading).
pub const CORE_AREA_MM2: f64 = 1.07;
/// Arm Neon 2×128-bit unit area (Ara-derived estimate, Table V).
pub const NEON_AREA_MM2: f64 = 0.1741;
/// Adreno 640 GPU area (die shot, Table V).
pub const GPU_AREA_MM2: f64 = 11.1908;

/// One row of Table V.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaRow {
    /// Module name.
    pub module: &'static str,
    /// Where the paper took the number from.
    pub source: &'static str,
    /// Area in mm² at 7 nm.
    pub area_mm2: f64,
    /// Overhead relative to the scalar core, percent.
    pub overhead_pct: f64,
}

/// Per-unit area constants (mm², 7 nm), calibrated to Table V at the
/// default geometry.
mod unit {
    /// Controller: fixed block (instruction queue, CR file, sequencing).
    pub const CONTROLLER: f64 = 0.0043;
    /// Per MSHR entry (Table V: 46 entries → 0.0018).
    pub const MSHR_ENTRY: f64 = 0.0018 / 46.0;
    /// Per CB TMU (1024×32 8T cells; 8 CBs → 0.0053).
    pub const TMU_PER_CB: f64 = 0.0053 / 8.0;
    /// Per CB crossbar (8 CBs → 0.0039).
    pub const XB_PER_CB: f64 = 0.0039 / 8.0;
    /// Per CB FSM (8 FSMs → 0.0123).
    pub const FSM_PER_CB: f64 = 0.0123 / 8.0;
    /// Per compute-enabled array's bit-line peripheral (32 → 0.0063).
    pub const PERIPHERAL_PER_ARRAY: f64 = 0.0063 / 32.0;
    /// LSQ address decoder: fixed block.
    pub const ADDRESS_DECODER: f64 = 0.0042;
}

/// Builds the Table V rows for a given geometry and MSHR count.
pub fn area_table(geometry: &EngineGeometry, mshrs: usize) -> Vec<AreaRow> {
    let cbs = geometry.control_blocks() as f64;
    let arrays = geometry.arrays as f64;
    let rows = vec![
        ("Controller", "RTL", unit::CONTROLLER),
        ("MSHR", "CACTI", unit::MSHR_ENTRY * mshrs as f64),
        ("TMU", "[31]", unit::TMU_PER_CB * cbs),
        ("XB", "[35]", unit::XB_PER_CB * cbs),
        ("FSM", "[35]", unit::FSM_PER_CB * cbs),
        ("Peripheral", "[35]", unit::PERIPHERAL_PER_ARRAY * arrays),
        ("Address Decoder", "RTL", unit::ADDRESS_DECODER),
    ];
    rows.into_iter()
        .map(|(module, source, area_mm2)| AreaRow {
            module,
            source,
            area_mm2,
            overhead_pct: area_mm2 / CORE_AREA_MM2 * 100.0,
        })
        .collect()
}

/// Total MVE area for a geometry.
pub fn total_area_mm2(geometry: &EngineGeometry, mshrs: usize) -> f64 {
    area_table(geometry, mshrs).iter().map(|r| r.area_mm2).sum()
}

/// Total MVE overhead relative to the scalar core, percent.
pub fn total_overhead_pct(geometry: &EngineGeometry, mshrs: usize) -> f64 {
    total_area_mm2(geometry, mshrs) / CORE_AREA_MM2 * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_reproduces_table_v() {
        let g = EngineGeometry::default();
        let total = total_area_mm2(&g, 46);
        assert!((total - 0.0382).abs() < 5e-4, "total {total} ≠ 0.0382");
        let pct = total_overhead_pct(&g, 46);
        assert!((pct - 3.588).abs() < 0.05, "overhead {pct}% ≠ 3.588%");
    }

    #[test]
    fn rows_match_paper_values() {
        let rows = area_table(&EngineGeometry::default(), 46);
        let get = |m: &str| rows.iter().find(|r| r.module == m).expect("row").area_mm2;
        assert!((get("Controller") - 0.0043).abs() < 1e-6);
        assert!((get("MSHR") - 0.0018).abs() < 1e-6);
        assert!((get("TMU") - 0.0053).abs() < 1e-6);
        assert!((get("XB") - 0.0039).abs() < 1e-6);
        assert!((get("FSM") - 0.0123).abs() < 1e-6);
        assert!((get("Peripheral") - 0.0063).abs() < 1e-6);
        assert!((get("Address Decoder") - 0.0042).abs() < 1e-6);
    }

    #[test]
    fn area_scales_with_geometry() {
        let small = total_area_mm2(&EngineGeometry::with_arrays(8), 46);
        let big = total_area_mm2(&EngineGeometry::with_arrays(64), 46);
        assert!(big > small);
        // Fixed blocks (controller, address decoder) do not scale.
        assert!(big < 4.0 * small);
    }

    #[test]
    fn mve_is_far_cheaper_than_neon_and_gpu() {
        let mve = total_area_mm2(&EngineGeometry::default(), 46);
        assert!(NEON_AREA_MM2 > 4.0 * mve);
        assert!(GPU_AREA_MM2 > 100.0 * mve);
    }
}
