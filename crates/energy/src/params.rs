//! Per-event energy constants (7 nm, picojoules).
//!
//! Sources and calibration:
//!
//! * In-SRAM op energy follows Neural Cache's observation that a bit-serial
//!   op cycle costs roughly one array access (two word-line activations +
//!   bit-line swing on 256 columns). CACTI-class numbers for an 8 KB array
//!   at 7 nm put one access around 4–8 pJ; we use 6 pJ per active array per
//!   engine cycle (`CALIBRATED`).
//! * Cache line energies are CACTI-6.0-style values scaled to 7 nm with the
//!   Stillmaker–Baas equations the paper also uses: ~25 pJ per 64 B L2 line,
//!   ~60 pJ LLC, ~2.5 nJ per 64 B of LPDDR4X (≈ 40 pJ/bit including PHY).
//! * CPU energies target an A76-class core at 2.8 GHz burning ~0.75 W at
//!   IPC 3: ~90 pJ per scalar instruction including its share of fetch/
//!   decode/bypass. A 128-bit Neon µop costs ~2.2× a scalar op
//!   (`CALIBRATED` to reproduce the Figure 7(b) 8.8× average gap together
//!   with the instruction-count reduction).

/// Per-event energies in picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// One active SRAM array for one engine cycle (bit-serial op slice).
    pub e_array_cycle_pj: f64,
    /// One element moved through TMU + crossbar.
    pub e_tmu_element_pj: f64,
    /// One 64 B line read/written in the L2 (regular half).
    pub e_l2_line_pj: f64,
    /// One 64 B line from the LLC.
    pub e_llc_line_pj: f64,
    /// One 64 B line from DRAM.
    pub e_dram_line_pj: f64,
    /// One retired scalar instruction.
    pub e_scalar_instr_pj: f64,
    /// Issuing one MVE instruction core→controller.
    pub e_vec_issue_pj: f64,
    /// One 128-bit Neon compute µop.
    pub e_neon_op_pj: f64,
    /// One 128-bit Neon load/store (L1 access included).
    pub e_neon_mem_pj: f64,
    /// Background core power while actively running SIMD code, pJ/cycle
    /// (≈0.7 W at 2.8 GHz: clock tree, fetch, rename, L1 activity — what
    /// Batterystats attributes to the busy core).
    pub e_core_active_pj_per_cycle: f64,
    /// Background core power while the core mostly waits on the in-cache
    /// engine (issue loop + MVE controller), pJ/cycle.
    pub e_core_wait_pj_per_cycle: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self {
            e_array_cycle_pj: 6.0,
            e_tmu_element_pj: 1.2,
            e_l2_line_pj: 25.0,
            e_llc_line_pj: 60.0,
            e_dram_line_pj: 2500.0,
            e_scalar_instr_pj: 90.0,
            e_vec_issue_pj: 30.0,
            e_neon_op_pj: 200.0,
            e_neon_mem_pj: 140.0,
            e_core_active_pj_per_cycle: 250.0,
            e_core_wait_pj_per_cycle: 60.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_of_magnitudes() {
        let p = EnergyParams::default();
        // DRAM per line dwarfs SRAM per line.
        assert!(p.e_dram_line_pj > 10.0 * p.e_llc_line_pj);
        assert!(p.e_llc_line_pj > p.e_l2_line_pj);
        // A Neon op costs more than a scalar op; an in-SRAM array-cycle is
        // far cheaper per lane (6 pJ / 256 lanes vs 200 pJ / 4 lanes).
        assert!(p.e_neon_op_pj > p.e_scalar_instr_pj);
        let per_lane_insram = p.e_array_cycle_pj / 256.0;
        let per_lane_neon = p.e_neon_op_pj / 4.0;
        assert!(per_lane_neon > 100.0 * per_lane_insram);
    }
}
