//! Control-Block FSM: decodes MVE compute instructions into the µops that
//! drive the row decoders and bit-line peripherals (Section V-B, Figure 6).
//!
//! Each Control Block has one FSM shared by its four SRAM arrays. A compute
//! instruction arriving from the MVE controller is expanded into a µop
//! sequence; one µop issues per engine cycle, so **the length of the decoded
//! sequence is exactly the Table II latency** — a property the tests pin
//! against [`crate::latency::LatencyModel::BitSerial`] for every operation
//! and width.
//!
//! Operand word-line layout follows Section III-B: an `n`-bit physical
//! register occupies `n` consecutive word-lines, bit `k` of the register at
//! word-line `base + k`.

use crate::latency::AluOp;

/// One micro-operation controlling the array for one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Uop {
    /// Dual word-line activation: sense `AND`/`NOR` of two rows, run the
    /// peripheral full adder with the Carry latch, write the sum row.
    AddSlice {
        /// Bit-slice of operand A.
        a: u16,
        /// Bit-slice of operand B.
        b: u16,
        /// Destination bit-slice.
        dst: u16,
    },
    /// Like [`Uop::AddSlice`] but the B slice is inverted on the way in
    /// (subtraction's second pass uses carry-in 1).
    AddSliceNegB {
        /// Bit-slice of operand A.
        a: u16,
        /// Bit-slice of operand B (inverted by the peripheral).
        b: u16,
        /// Destination bit-slice.
        dst: u16,
    },
    /// Invert a slice into the peripheral (subtraction's first pass).
    NegSlice {
        /// Source bit-slice.
        src: u16,
    },
    /// Dual activation computing a logic function into `dst`.
    LogicSlice {
        /// Bit-slice of operand A.
        a: u16,
        /// Bit-slice of operand B.
        b: u16,
        /// Destination bit-slice.
        dst: u16,
    },
    /// Copy one bit-slice to another row (constant shift / copy step).
    MoveSlice {
        /// Source bit-slice (`None` writes zero fill).
        src: Option<u16>,
        /// Destination bit-slice.
        dst: u16,
    },
    /// Load the Tag latch from a row (multiplier bit, predicate).
    LatchTag {
        /// Source bit-slice.
        src: u16,
    },
    /// Compare step: update the per-bit-line decided/result latches from a
    /// bit-slice pair (MSB-first scan).
    CmpSlice {
        /// Bit-slice of operand A.
        a: u16,
        /// Bit-slice of operand B.
        b: u16,
    },
    /// Conditionally (under Tag) add A into the destination, one slice.
    CondAddSlice {
        /// Bit-slice of operand A.
        a: u16,
        /// Destination bit-slice.
        dst: u16,
    },
    /// Broadcast a constant bit into a slice via the bit-line drivers.
    DriveSlice {
        /// Destination bit-slice.
        dst: u16,
        /// The driven bit.
        bit: bool,
    },
    /// Peripheral housekeeping (carry init, write-enable setup) — the "+5n"
    /// overhead cycles of the multiplication formula.
    Housekeeping,
}

/// Decodes one compute instruction into its µop sequence.
///
/// `a`, `b`, `dst` are word-line bases of the operand registers; `n` is the
/// element width in bits. The sequence length equals the bit-serial latency
/// of `(op, n)`.
///
/// # Panics
///
/// Panics for float ALU classes — the FSM lowers float ops to integer
/// primitive sequences before decode (as Duality Cache does), so only
/// integer classes reach this level.
pub fn decode(op: AluOp, n: u16, a: u16, b: u16, dst: u16) -> Vec<Uop> {
    let mut uops = Vec::new();
    match op {
        AluOp::Logic => {
            for k in 0..n {
                uops.push(Uop::LogicSlice {
                    a: a + k,
                    b: b + k,
                    dst: dst + k,
                });
            }
        }
        AluOp::Add => {
            for k in 0..n {
                uops.push(Uop::AddSlice {
                    a: a + k,
                    b: b + k,
                    dst: dst + k,
                });
            }
        }
        AluOp::Sub => {
            // Pass 1: negate B; pass 2: add with carry-in 1.
            for k in 0..n {
                uops.push(Uop::NegSlice { src: b + k });
            }
            for k in 0..n {
                uops.push(Uop::AddSliceNegB {
                    a: a + k,
                    b: b + k,
                    dst: dst + k,
                });
            }
        }
        AluOp::Mul => {
            // Shift-and-add: per multiplier bit, latch Tag, add the
            // multiplicand conditionally across all n slices, plus four
            // housekeeping cycles (carry clear, enable setup, tag reset,
            // partial-product bookkeeping) — n·(1 + n + 4) = n² + 5n.
            for i in 0..n {
                uops.push(Uop::LatchTag { src: b + i });
                for k in 0..n {
                    uops.push(Uop::CondAddSlice {
                        a: a + k,
                        dst: dst + k,
                    });
                }
                for _ in 0..4 {
                    uops.push(Uop::Housekeeping);
                }
            }
        }
        AluOp::MinMax => {
            // Compare (n) + Tag-masked copy (n).
            for k in (0..n).rev() {
                uops.push(Uop::CmpSlice { a: a + k, b: b + k });
            }
            for k in 0..n {
                uops.push(Uop::MoveSlice {
                    src: Some(b + k),
                    dst: dst + k,
                });
            }
        }
        AluOp::Cmp => {
            for k in (0..n).rev() {
                uops.push(Uop::CmpSlice { a: a + k, b: b + k });
            }
        }
        AluOp::ShiftImm | AluOp::Copy | AluOp::Convert => {
            // One read+write slice move per bit (shift offsets the source).
            for k in 0..n {
                uops.push(Uop::MoveSlice {
                    src: Some(a + k),
                    dst: dst + k,
                });
            }
        }
        AluOp::SetDup => {
            for k in 0..n {
                uops.push(Uop::DriveSlice {
                    dst: dst + k,
                    bit: false,
                });
            }
        }
        AluOp::ShiftReg => {
            // O(n log n): per stage s, latch bit s of the shift amount then
            // conditionally move every slice by 2^s.
            let stages = u16::try_from(64 - (u64::from(n.max(2)) - 1).leading_zeros())
                .expect("stage count fits");
            for s in 0..stages {
                uops.push(Uop::LatchTag { src: b + s });
                for k in 0..n.saturating_sub(1) {
                    uops.push(Uop::MoveSlice {
                        src: Some(a + k),
                        dst: dst + k,
                    });
                }
            }
        }
        AluOp::FAdd | AluOp::FMul | AluOp::FCmp => {
            panic!("float ops are lowered to integer primitives before FSM decode")
        }
    }
    uops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyModel;

    /// The central invariant: µop count == Table II bit-serial latency, for
    /// every integer op class and width.
    #[test]
    fn uop_counts_equal_bit_serial_latencies() {
        let lm = LatencyModel::BitSerial;
        let ops = [
            AluOp::Logic,
            AluOp::Add,
            AluOp::Sub,
            AluOp::Mul,
            AluOp::MinMax,
            AluOp::Cmp,
            AluOp::ShiftImm,
            AluOp::SetDup,
            AluOp::Copy,
            AluOp::Convert,
        ];
        for op in ops {
            for n in [8u16, 16, 32, 64] {
                let uops = decode(op, n, 0, 64, 128);
                assert_eq!(
                    uops.len() as u64,
                    lm.op_latency(op, u32::from(n)),
                    "{op:?} at {n} bits"
                );
            }
        }
    }

    #[test]
    fn shift_reg_uop_count_matches_nlogn() {
        let lm = LatencyModel::BitSerial;
        for n in [8u16, 16, 32, 64] {
            let uops = decode(AluOp::ShiftReg, n, 0, 64, 128);
            // Stage structure: log n stages of (1 latch + n-1 moves) = n·log n.
            assert_eq!(
                uops.len() as u64,
                lm.op_latency(AluOp::ShiftReg, u32::from(n))
            );
        }
    }

    #[test]
    fn mul_decomposes_into_tagged_conditional_adds() {
        let uops = decode(AluOp::Mul, 8, 0, 8, 16);
        let tags = uops
            .iter()
            .filter(|u| matches!(u, Uop::LatchTag { .. }))
            .count();
        let conds = uops
            .iter()
            .filter(|u| matches!(u, Uop::CondAddSlice { .. }))
            .count();
        let house = uops
            .iter()
            .filter(|u| matches!(u, Uop::Housekeeping))
            .count();
        assert_eq!(tags, 8); // one Tag latch per multiplier bit
        assert_eq!(conds, 64); // n adds per bit
        assert_eq!(house, 32); // 4 per bit
        assert_eq!(tags + conds + house, 8 * 8 + 5 * 8);
    }

    #[test]
    fn sub_is_negate_then_add() {
        let uops = decode(AluOp::Sub, 16, 0, 16, 32);
        assert!(matches!(uops[0], Uop::NegSlice { .. }));
        assert!(matches!(uops[16], Uop::AddSliceNegB { .. }));
        assert_eq!(uops.len(), 32);
    }

    #[test]
    fn cmp_scans_msb_first() {
        let uops = decode(AluOp::Cmp, 8, 0, 8, 0);
        // First µop touches the MSB slice (bit 7).
        assert_eq!(uops[0], Uop::CmpSlice { a: 7, b: 15 });
        assert_eq!(uops[7], Uop::CmpSlice { a: 0, b: 8 });
    }

    #[test]
    #[should_panic(expected = "lowered to integer primitives")]
    fn float_ops_rejected_at_fsm_level() {
        decode(AluOp::FAdd, 32, 0, 32, 64);
    }

    #[test]
    fn uop_slices_stay_within_operand_ranges() {
        for op in [AluOp::Add, AluOp::Sub, AluOp::Mul, AluOp::ShiftImm] {
            for uop in decode(op, 32, 0, 32, 64) {
                let ok = match uop {
                    Uop::AddSlice { a, b, dst }
                    | Uop::AddSliceNegB { a, b, dst }
                    | Uop::LogicSlice { a, b, dst } => {
                        a < 32 && (32..64).contains(&b) && (64..96).contains(&dst)
                    }
                    Uop::NegSlice { src } => (32..64).contains(&src),
                    Uop::MoveSlice { src, dst } => {
                        src.is_none_or(|s| s < 32) && (64..96).contains(&dst)
                    }
                    Uop::LatchTag { src } => (32..64).contains(&src),
                    Uop::CondAddSlice { a, dst } => a < 32 && (64..96).contains(&dst),
                    Uop::CmpSlice { a, b } => a < 32 && (32..64).contains(&b),
                    Uop::DriveSlice { dst, .. } => (64..96).contains(&dst),
                    Uop::Housekeeping => true,
                };
                assert!(ok, "µop {uop:?} out of range for {op:?}");
            }
        }
    }
}
