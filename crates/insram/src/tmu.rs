//! Transpose Memory Unit (TMU) model.
//!
//! Section V-B: gathered data words arrive from the MSHRs in the horizontal
//! (memory) layout and must be rotated into the vertical (bit-line) layout
//! before they can be written into the compute arrays. The TMU is built from
//! 8T transpose bit-cells that are readable/writable in both directions; one
//! TMU is sized to hold a physical register's worth of data for one Control
//! Block (1024 elements by default). A crossbar (XB) routes each incoming
//! word to its bit-line column.
//!
//! The functional model is an actual bidirectional bit matrix so the
//! transpose path is executable and testable; the timing model counts the
//! cycles to stream data through it.

/// A transpose memory unit for one Control Block.
#[derive(Debug, Clone)]
pub struct TransposeMemoryUnit {
    /// Elements (columns) the TMU holds — one per CB bit-line.
    elements: usize,
    /// Maximum element width in bits (rows of the transpose cell matrix).
    width: usize,
    /// Bit matrix: `bits[row][col]` = bit `row` of element `col`.
    bits: Vec<Vec<bool>>,
}

impl TransposeMemoryUnit {
    /// Creates a TMU for `elements` elements of up to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(elements: usize, width: usize) -> Self {
        assert!(elements > 0 && width > 0, "TMU dimensions must be nonzero");
        Self {
            elements,
            width,
            bits: vec![vec![false; elements]; width],
        }
    }

    /// Number of element columns.
    pub fn elements(&self) -> usize {
        self.elements
    }

    /// Writes element `col` horizontally (as a memory word arriving through
    /// the crossbar). Truncates to the TMU width.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn write_horizontal(&mut self, col: usize, value: u64, bits: usize) {
        assert!(col < self.elements, "TMU column out of range");
        let bits = bits.min(self.width);
        for (row, row_bits) in self.bits.iter_mut().enumerate().take(bits) {
            row_bits[col] = (value >> row) & 1 == 1;
        }
    }

    /// Reads element `col` horizontally.
    pub fn read_horizontal(&self, col: usize, bits: usize) -> u64 {
        assert!(col < self.elements, "TMU column out of range");
        let bits = bits.min(self.width);
        let mut v = 0u64;
        for row in 0..bits {
            if self.bits[row][col] {
                v |= 1 << row;
            }
        }
        v
    }

    /// Reads bit-slice `row` vertically — the side facing the SRAM arrays.
    /// Returns one bit per element.
    pub fn read_vertical(&self, row: usize) -> Vec<bool> {
        assert!(row < self.width, "TMU row out of range");
        self.bits[row].clone()
    }

    /// Writes bit-slice `row` vertically.
    ///
    /// # Panics
    ///
    /// Panics if the slice length differs from the element count.
    pub fn write_vertical(&mut self, row: usize, slice: &[bool]) {
        assert!(row < self.width, "TMU row out of range");
        assert_eq!(slice.len(), self.elements, "slice length mismatch");
        self.bits[row].copy_from_slice(slice);
    }

    /// Cycles to fill the TMU with `elements` words of `bits` width through
    /// the crossbar and drain it into the arrays as bit-slices.
    ///
    /// Fill: the XB routes `xb_words_per_cycle` words per cycle; drain: one
    /// bit-slice (word-line write) per cycle, `bits` slices total.
    pub fn transfer_cycles(elements: usize, bits: usize, xb_words_per_cycle: usize) -> u64 {
        let fill = elements.div_ceil(xb_words_per_cycle.max(1)) as u64;
        let drain = bits as u64;
        fill + drain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_roundtrip() {
        let mut tmu = TransposeMemoryUnit::new(8, 16);
        let values = [1u64, 2, 3, 0xFFFF, 0x8000, 42, 0, 999];
        for (col, &v) in values.iter().enumerate() {
            tmu.write_horizontal(col, v, 16);
        }
        // Vertical view of bit 0 should be the LSBs of the values.
        let lsbs = tmu.read_vertical(0);
        let expect: Vec<bool> = values.iter().map(|v| v & 1 == 1).collect();
        assert_eq!(lsbs, expect);
        // Horizontal read-back is exact.
        for (col, &v) in values.iter().enumerate() {
            assert_eq!(tmu.read_horizontal(col, 16), v);
        }
    }

    #[test]
    fn vertical_writes_visible_horizontally() {
        let mut tmu = TransposeMemoryUnit::new(4, 8);
        tmu.write_vertical(3, &[true, false, true, false]);
        assert_eq!(tmu.read_horizontal(0, 8), 0b1000);
        assert_eq!(tmu.read_horizontal(1, 8), 0);
        assert_eq!(tmu.read_horizontal(2, 8), 0b1000);
    }

    #[test]
    fn transfer_cycle_model() {
        // 1024 elements, 32-bit, 8 words/cycle crossbar: 128 fill + 32 drain.
        assert_eq!(TransposeMemoryUnit::transfer_cycles(1024, 32, 8), 160);
        // Narrower data drains faster.
        assert!(
            TransposeMemoryUnit::transfer_cycles(1024, 8, 8)
                < TransposeMemoryUnit::transfer_cycles(1024, 32, 8)
        );
    }

    #[test]
    #[should_panic(expected = "column out of range")]
    fn horizontal_oob_panics() {
        let tmu = TransposeMemoryUnit::new(4, 8);
        tmu.read_horizontal(4, 8);
    }
}
