//! In-SRAM computing scheme descriptors.
//!
//! A [`Scheme`] bundles the latency model, the lane arithmetic and the
//! frequency derate of one of the four in-SRAM computing proposals the paper
//! compares in Figure 13. The geometric configuration (array count, bit-lines
//! per array) lives in [`EngineGeometry`], which Section VI fixes at 32
//! arrays of 256×256 for the Snapdragon-855-class L2.

use crate::latency::{AluOp, LatencyModel};

/// Geometry of the in-cache engine: how many compute-enabled SRAM arrays and
/// how they are grouped into Control Blocks (CBs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineGeometry {
    /// Compute-enabled SRAM arrays (paper default: 32 = half of a 512 KB L2).
    pub arrays: usize,
    /// Bit-lines per array (256).
    pub bitlines_per_array: usize,
    /// Word-lines per array (256); bounds live register bits.
    pub wordlines: usize,
    /// SRAM arrays sharing one FSM, i.e. one Control Block (paper: 4).
    pub arrays_per_cb: usize,
}

impl Default for EngineGeometry {
    fn default() -> Self {
        Self {
            arrays: 32,
            bitlines_per_array: 256,
            wordlines: 256,
            arrays_per_cb: 4,
        }
    }
}

impl EngineGeometry {
    /// Geometry with a custom array count (Figure 12(b) scalability sweep).
    pub fn with_arrays(arrays: usize) -> Self {
        Self {
            arrays,
            ..Self::default()
        }
    }

    /// Total bit-lines = bit-serial SIMD lanes (8192 by default).
    pub fn total_bitlines(&self) -> usize {
        self.arrays * self.bitlines_per_array
    }

    /// Number of Control Blocks (8 by default).
    pub fn control_blocks(&self) -> usize {
        self.arrays.div_ceil(self.arrays_per_cb)
    }

    /// Bit-lines managed by one CB (1024 by default).
    pub fn bitlines_per_cb(&self) -> usize {
        self.arrays_per_cb * self.bitlines_per_array
    }
}

/// One of the four in-SRAM computing schemes of Section II-B / Figure 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Bit-serial (Neural Cache) — maximum lanes, highest op latency.
    BitSerial,
    /// Bit-hybrid (EVE) — `p`-bit segments; latency and lanes both ÷ `p`.
    BitHybrid,
    /// Bit-parallel (VRAM) — minimum latency, lanes ÷ element width.
    BitParallel,
    /// Associative computing (CAPE) — O(1) logic, slow carry arithmetic.
    Associative,
}

impl Scheme {
    /// All schemes, in the order Figure 13 plots them.
    pub const ALL: [Scheme; 4] = [
        Scheme::BitSerial,
        Scheme::BitHybrid,
        Scheme::BitParallel,
        Scheme::Associative,
    ];

    /// Short name as used in the paper's figures.
    pub fn short_name(&self) -> &'static str {
        match self {
            Scheme::BitSerial => "BS",
            Scheme::BitHybrid => "BH",
            Scheme::BitParallel => "BP",
            Scheme::Associative => "AC",
        }
    }

    /// The latency model for this scheme (BH uses 8-bit segments, the upper
    /// end of EVE's design space, matching the paper's configuration of a
    /// balanced design).
    pub fn latency_model(&self) -> LatencyModel {
        match self {
            Scheme::BitSerial => LatencyModel::BitSerial,
            Scheme::BitHybrid => LatencyModel::BitHybrid { segment_bits: 8 },
            Scheme::BitParallel => LatencyModel::BitParallel,
            Scheme::Associative => LatencyModel::Associative,
        }
    }

    /// SIMD lanes available for `bits`-wide elements under this scheme.
    pub fn lanes(&self, geometry: &EngineGeometry, bits: u32) -> usize {
        geometry.total_bitlines() / self.latency_model().lane_divisor(bits) as usize
    }

    /// Frequency derate relative to the scalar core clock.
    ///
    /// BP/BH need inter-bit-line carry communication, which "incurs area and
    /// frequency overheads" (Section II-B(b)). CALIBRATED: 10% (BP) and 5%
    /// (BH) derates; BS and AC run peripherals at core frequency as in
    /// Neural Cache / CAPE.
    pub fn frequency_scale(&self) -> f64 {
        match self {
            Scheme::BitSerial | Scheme::Associative => 1.0,
            Scheme::BitHybrid => 0.95,
            Scheme::BitParallel => 0.90,
        }
    }

    /// Convenience: op latency in engine cycles.
    pub fn op_latency(&self, op: AluOp, bits: u32) -> u64 {
        self.latency_model().op_latency(op, bits)
    }

    /// Bit-slices the TMU must drain into the arrays per element on a load
    /// (and read back on a store).
    ///
    /// Bit-serial needs the full vertical transpose (`bits` word-line
    /// writes); bit-hybrid transposes only within its 8-bit segments;
    /// bit-parallel and associative computing keep data horizontal
    /// (Figure 1 / Section II-B), so a single word-line write suffices.
    pub fn tmu_drain_slices(&self, bits: u32) -> usize {
        match self {
            Scheme::BitSerial => bits as usize,
            Scheme::BitHybrid => bits.min(8) as usize,
            Scheme::BitParallel | Scheme::Associative => 1,
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_matches_table_iv() {
        let g = EngineGeometry::default();
        assert_eq!(g.total_bitlines(), 8192);
        assert_eq!(g.control_blocks(), 8);
        assert_eq!(g.bitlines_per_cb(), 1024);
    }

    #[test]
    fn scalability_geometries() {
        for (arrays, lanes) in [(8, 2048), (16, 4096), (32, 8192), (64, 16384)] {
            let g = EngineGeometry::with_arrays(arrays);
            assert_eq!(g.total_bitlines(), lanes);
        }
    }

    #[test]
    fn lane_counts_per_scheme() {
        let g = EngineGeometry::default();
        assert_eq!(Scheme::BitSerial.lanes(&g, 32), 8192);
        assert_eq!(Scheme::BitParallel.lanes(&g, 32), 256);
        assert_eq!(Scheme::BitHybrid.lanes(&g, 32), 1024);
        assert_eq!(Scheme::Associative.lanes(&g, 32), 8192);
    }

    #[test]
    fn display_matches_paper_names() {
        let names: Vec<&str> = Scheme::ALL.iter().map(|s| s.short_name()).collect();
        assert_eq!(names, ["BS", "BH", "BP", "AC"]);
    }

    #[test]
    fn throughput_ordering_for_wide_ops() {
        // For 32-bit adds, BS has the best throughput-per-engine thanks to
        // lane count; BP has the best latency. Sanity-check the trade-off
        // that drives Figure 13.
        let g = EngineGeometry::default();
        let tp = |s: Scheme| {
            s.lanes(&g, 32) as f64 / s.op_latency(AluOp::Add, 32) as f64 * s.frequency_scale()
        };
        assert!(tp(Scheme::BitSerial) > tp(Scheme::BitParallel));
        assert!(
            Scheme::BitParallel.op_latency(AluOp::Add, 32)
                < Scheme::BitSerial.op_latency(AluOp::Add, 32)
        );
    }
}
