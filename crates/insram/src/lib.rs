//! In-SRAM computing substrate for the MVE reproduction.
//!
//! This crate models the compute-capable SRAM arrays that the paper
//! (Section II-B, Figure 1) builds its in-cache vector engine from:
//!
//! * [`array::SramArray`] — a bit-level functional model of a 256×256 SRAM
//!   array with a second row decoder. Activating two word-lines produces the
//!   logical `AND` and `NOR` of the two rows on the bit-line sense amplifiers,
//!   exactly as in Neural Cache / Compute Caches.
//! * [`bitserial`] — bit-serial arithmetic algorithms (add, subtract,
//!   multiply, shift, compare) built only from word-line activations and the
//!   per-bit-line peripheral latches (Carry `C` and Tag `T`). These validate
//!   the word-level fast path used by the full-speed simulator in `mve-core`.
//! * [`latency`] — cycle-latency models for the four in-SRAM computing
//!   schemes the paper evaluates (Figure 13): bit-serial (BS), bit-hybrid
//!   (BH), bit-parallel (BP) and associative computing (AC).
//! * [`scheme`] — the scheme descriptor tying lane counts, frequency
//!   derating, and latency together.
//! * [`tmu`] — the Transpose Memory Unit that converts between horizontal
//!   (memory) and vertical (bit-line) data layouts.
//!
//! # Example
//!
//! ```
//! use mve_insram::array::SramArray;
//! use mve_insram::bitserial::BitSerialAlu;
//!
//! let mut array = SramArray::new();
//! let mut alu = BitSerialAlu::new(&mut array);
//! // Store 8-bit operands vertically: element `i` lives in bit-line `i`.
//! alu.write_vertical(0, 8, &[3, 250, 17, 96]);
//! alu.write_vertical(8, 8, &[5, 10, 40, 200]);
//! let cycles = alu.add(0, 8, 16, 8);
//! assert_eq!(cycles, 8); // n-cycle bit-serial addition
//! assert_eq!(alu.read_vertical(16, 8, 4), vec![8, 4, 57, 40]); // wrapping
//! ```

pub mod array;
pub mod bitserial;
pub mod fsm;
pub mod latency;
pub mod scheme;
pub mod tmu;

pub use latency::{AluOp, LatencyModel};
pub use scheme::Scheme;
