//! Bit-level functional model of a compute-capable SRAM array.
//!
//! The paper's in-cache engine (Figure 1(b)) augments a standard 256×256
//! 6T SRAM array with a second row decoder. Activating two word-lines at once
//! discharges each bit-line pair such that the sense amplifiers observe the
//! logical `AND` (on `BL`) and `NOR` (on `BLB`) of the two stored bits, for
//! all 256 bit-lines in parallel. Everything else (XOR, sum, carry) is
//! produced by the small peripheral logic modelled in
//! [`crate::bitserial::BitSerialAlu`].
//!
//! This model is deliberately *slow but faithful*: it is used by tests and by
//! the validation suite to check the word-level fast path of the main
//! simulator, not on the hot path of full benchmark runs.

/// Number of word-lines (rows) in one SRAM array.
pub const WORDLINES: usize = 256;
/// Number of bit-lines (columns) in one SRAM array; equals the SIMD lanes
/// contributed by the array under the bit-serial scheme.
pub const BITLINES: usize = 256;
/// `u64` words needed to store one 256-bit row.
const ROW_WORDS: usize = BITLINES / 64;

/// Result of activating two word-lines simultaneously: the per-bit-line
/// `AND`/`NOR` observed by the sense amplifiers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DualAccess {
    /// `A & B` per bit-line.
    pub and: RowBits,
    /// `!(A | B)` per bit-line.
    pub nor: RowBits,
}

/// A 256-bit row (one bit per bit-line).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RowBits {
    words: [u64; ROW_WORDS],
}

impl RowBits {
    /// Creates an all-zero row.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Creates an all-one row.
    pub fn ones() -> Self {
        Self {
            words: [u64::MAX; ROW_WORDS],
        }
    }

    /// Returns the bit for `bitline`.
    ///
    /// # Panics
    ///
    /// Panics if `bitline >= 256`.
    pub fn bit(&self, bitline: usize) -> bool {
        assert!(bitline < BITLINES, "bit-line index out of range");
        (self.words[bitline / 64] >> (bitline % 64)) & 1 == 1
    }

    /// Sets the bit for `bitline` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `bitline >= 256`.
    pub fn set_bit(&mut self, bitline: usize, value: bool) {
        assert!(bitline < BITLINES, "bit-line index out of range");
        let mask = 1u64 << (bitline % 64);
        if value {
            self.words[bitline / 64] |= mask;
        } else {
            self.words[bitline / 64] &= !mask;
        }
    }

    /// Per-bit-line AND.
    pub fn and(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a & b)
    }

    /// Per-bit-line OR.
    pub fn or(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a | b)
    }

    /// Per-bit-line XOR.
    pub fn xor(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a ^ b)
    }

    /// Per-bit-line NOT.
    pub fn not(&self) -> Self {
        let mut out = *self;
        for w in &mut out.words {
            *w = !*w;
        }
        out
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    fn zip(&self, other: &Self, f: impl Fn(u64, u64) -> u64) -> Self {
        let mut out = Self::zero();
        for i in 0..ROW_WORDS {
            out.words[i] = f(self.words[i], other.words[i]);
        }
        out
    }
}

/// A compute-capable 256×256 SRAM array with dual row decoders.
///
/// Data is addressed as `(wordline, bitline)`. The vertical (transposed)
/// element layout used by the bit-serial scheme stores bit `k` of element
/// `i` at `(base_wordline + k, i)`.
#[derive(Debug, Clone)]
pub struct SramArray {
    rows: Vec<RowBits>,
}

impl Default for SramArray {
    fn default() -> Self {
        Self::new()
    }
}

impl SramArray {
    /// Creates a zero-initialised array.
    pub fn new() -> Self {
        Self {
            rows: vec![RowBits::zero(); WORDLINES],
        }
    }

    /// Reads a full row (single word-line activation).
    ///
    /// # Panics
    ///
    /// Panics if `wordline >= 256`.
    pub fn read_row(&self, wordline: usize) -> RowBits {
        assert!(wordline < WORDLINES, "word-line index out of range");
        self.rows[wordline]
    }

    /// Writes a full row.
    ///
    /// # Panics
    ///
    /// Panics if `wordline >= 256`.
    pub fn write_row(&mut self, wordline: usize, bits: RowBits) {
        assert!(wordline < WORDLINES, "word-line index out of range");
        self.rows[wordline] = bits;
    }

    /// Writes a row only on bit-lines where `enable` is set, emulating the
    /// per-bit-line write drivers gated by the Tag latch (`T`).
    pub fn write_row_masked(&mut self, wordline: usize, bits: RowBits, enable: RowBits) {
        assert!(wordline < WORDLINES, "word-line index out of range");
        let old = self.rows[wordline];
        self.rows[wordline] = bits.and(&enable).or(&old.and(&enable.not()));
    }

    /// Activates two word-lines simultaneously (Figure 1(b)): the sense
    /// amplifiers observe `AND` on `BL` and `NOR` on `BLB`.
    ///
    /// # Panics
    ///
    /// Panics if the word-lines are equal (a dual activation of the same row
    /// would short the cell) or out of range.
    pub fn dual_access(&self, wl_a: usize, wl_b: usize) -> DualAccess {
        assert!(
            wl_a < WORDLINES && wl_b < WORDLINES,
            "word-line out of range"
        );
        assert_ne!(wl_a, wl_b, "dual activation requires distinct word-lines");
        let a = self.rows[wl_a];
        let b = self.rows[wl_b];
        DualAccess {
            and: a.and(&b),
            nor: a.or(&b).not(),
        }
    }

    /// Reads bit `(wordline, bitline)`.
    pub fn bit(&self, wordline: usize, bitline: usize) -> bool {
        self.read_row(wordline).bit(bitline)
    }

    /// Sets bit `(wordline, bitline)`.
    pub fn set_bit(&mut self, wordline: usize, bitline: usize, value: bool) {
        assert!(wordline < WORDLINES, "word-line index out of range");
        self.rows[wordline].set_bit(bitline, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rowbits_bit_roundtrip() {
        let mut row = RowBits::zero();
        for i in [0usize, 1, 63, 64, 127, 200, 255] {
            assert!(!row.bit(i));
            row.set_bit(i, true);
            assert!(row.bit(i));
        }
        assert_eq!(row.count_ones(), 7);
        row.set_bit(63, false);
        assert!(!row.bit(63));
        assert_eq!(row.count_ones(), 6);
    }

    #[test]
    fn rowbits_logic_identities() {
        let mut a = RowBits::zero();
        let mut b = RowBits::zero();
        a.set_bit(3, true);
        a.set_bit(100, true);
        b.set_bit(100, true);
        b.set_bit(200, true);
        assert_eq!(a.and(&b).count_ones(), 1);
        assert_eq!(a.or(&b).count_ones(), 3);
        assert_eq!(a.xor(&b).count_ones(), 2);
        assert_eq!(a.not().count_ones(), BITLINES - 2);
        assert_eq!(RowBits::ones().count_ones(), BITLINES);
    }

    #[test]
    fn dual_access_computes_and_nor() {
        let mut array = SramArray::new();
        let mut ra = RowBits::zero();
        let mut rb = RowBits::zero();
        ra.set_bit(0, true); // A=1,B=0 -> and 0, nor 0
        ra.set_bit(1, true); // A=1,B=1 -> and 1, nor 0
        rb.set_bit(1, true);
        rb.set_bit(2, true); // A=0,B=1 -> and 0, nor 0
                             // bit-line 3: A=0,B=0 -> and 0, nor 1
        array.write_row(10, ra);
        array.write_row(20, rb);
        let out = array.dual_access(10, 20);
        assert!(!out.and.bit(0) && !out.nor.bit(0));
        assert!(out.and.bit(1) && !out.nor.bit(1));
        assert!(!out.and.bit(2) && !out.nor.bit(2));
        assert!(!out.and.bit(3) && out.nor.bit(3));
    }

    #[test]
    #[should_panic(expected = "distinct word-lines")]
    fn dual_access_same_row_panics() {
        let array = SramArray::new();
        let _ = array.dual_access(5, 5);
    }

    #[test]
    fn masked_write_only_touches_enabled_bitlines() {
        let mut array = SramArray::new();
        let mut initial = RowBits::zero();
        initial.set_bit(0, true);
        initial.set_bit(1, true);
        array.write_row(0, initial);

        let mut enable = RowBits::zero();
        enable.set_bit(1, true);
        enable.set_bit(2, true);
        array.write_row_masked(0, RowBits::ones(), enable);

        assert!(array.bit(0, 0)); // untouched (disabled)
        assert!(array.bit(0, 1)); // rewritten to 1
        assert!(array.bit(0, 2)); // newly written
        assert!(!array.bit(0, 3)); // untouched
    }
}
