//! Cycle-latency models for the four in-SRAM computing schemes.
//!
//! The bit-serial (BS) numbers are the paper's Table II; bit-parallel (BP),
//! bit-hybrid (BH) and associative-computing (AC) numbers follow the scaling
//! rules of Section II-B:
//!
//! * **BP** (VRAM): data laid horizontally; latency improves by a factor of
//!   `n` at the cost of `n`× fewer lanes.
//! * **BH** (EVE): `n`-bit data split into `p`-bit segments; intra-segment
//!   arithmetic is bit-parallel (Manchester carry chain), inter-segment
//!   carries propagate bit-serially. Latency ≈ BS/`p`, lanes ÷ `p`.
//! * **AC** (CAPE): no peripheral ALU; logic ops are O(1) truth-table
//!   search/update passes, but carry propagation makes an `n`-bit
//!   addition/subtraction cost `8n + 2` cycles, and multiplication is
//!   decomposed into conditional additions.
//!
//! Floating-point latencies are derived from the integer primitives the way
//! Duality Cache composes them: a float add needs two variable shifts
//! (mantissa alignment + normalisation), a mantissa add and an exponent
//! subtract; a float multiply needs a mantissa multiply and an exponent add.
//! The derivations are spelled out in [`LatencyModel::op_latency`].

/// An ALU operation class, the unit at which latency is modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Bit-wise logic (AND/OR/XOR/NOT).
    Logic,
    /// Integer addition (also accumulate steps of reductions).
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Min/max selection (compare + masked copy).
    MinMax,
    /// Comparison producing a Tag predicate.
    Cmp,
    /// Constant (immediate) shift or rotate.
    ShiftImm,
    /// Variable (per-lane register) shift.
    ShiftReg,
    /// Broadcast an immediate/scalar into all lanes.
    SetDup,
    /// Register-to-register copy.
    Copy,
    /// Precision/type conversion.
    Convert,
    /// Floating-point addition/subtraction.
    FAdd,
    /// Floating-point multiplication.
    FMul,
    /// Floating-point min/max/compare.
    FCmp,
}

impl AluOp {
    /// All operation classes, for exhaustive table printing.
    pub const ALL: [AluOp; 14] = [
        AluOp::Logic,
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::MinMax,
        AluOp::Cmp,
        AluOp::ShiftImm,
        AluOp::ShiftReg,
        AluOp::SetDup,
        AluOp::Copy,
        AluOp::Convert,
        AluOp::FAdd,
        AluOp::FMul,
        AluOp::FCmp,
    ];
}

/// A latency model mapping `(operation, element bits)` to engine cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyModel {
    /// Bit-serial (Neural Cache / Duality Cache): Table II formulas.
    BitSerial,
    /// Bit-parallel (VRAM): BS latency divided by the element width.
    BitParallel,
    /// Bit-hybrid (EVE) with `segment_bits`-wide bit-parallel segments.
    BitHybrid {
        /// Segment width `p` in bits (EVE uses 4–8; we default to 8).
        segment_bits: u32,
    },
    /// Associative computing (CAPE).
    Associative,
}

impl LatencyModel {
    fn ceil_log2(n: u64) -> u64 {
        debug_assert!(n > 0);
        64 - (n - 1).leading_zeros() as u64
    }

    /// Bit-serial latency for integer primitives (Table II).
    fn bs_int(op: AluOp, n: u64) -> u64 {
        match op {
            AluOp::Logic => n,
            AluOp::Add => n,
            AluOp::Sub => 2 * n,
            AluOp::Mul => n * n + 5 * n,
            AluOp::MinMax => 2 * n,
            AluOp::Cmp => n,
            AluOp::ShiftImm => n,
            AluOp::ShiftReg => n * Self::ceil_log2(n.max(2)),
            AluOp::SetDup => n,
            AluOp::Copy => n,
            AluOp::Convert => n,
            // Float ops are resolved by `bs_float` before reaching here.
            AluOp::FAdd | AluOp::FMul | AluOp::FCmp => unreachable!("float handled separately"),
        }
    }

    /// Mantissa and exponent widths (including the hidden bit) for the two
    /// supported float widths.
    fn float_fields(n: u64) -> (u64, u64) {
        match n {
            16 => (11, 5),
            32 => (24, 8),
            other => panic!("unsupported float width: {other} bits"),
        }
    }

    /// Bit-serial float latency, composed from integer primitives the way
    /// Duality Cache does:
    ///
    /// * `FAdd`: exponent subtract (2e) + variable mantissa alignment shift
    ///   (m·⌈log₂m⌉) + mantissa add (m) + normalisation shift (m·⌈log₂m⌉) +
    ///   exponent adjust (e).
    /// * `FMul`: mantissa multiply (m²+5m) + exponent add (e) +
    ///   1-bit normalise (m).
    /// * `FCmp`: sign/exponent/mantissa lexicographic compare (n).
    fn bs_float(op: AluOp, n: u64) -> u64 {
        let (m, e) = Self::float_fields(n);
        let varshift = m * Self::ceil_log2(m);
        match op {
            AluOp::FAdd => 2 * e + varshift + m + varshift + e,
            AluOp::FMul => (m * m + 5 * m) + e + m,
            AluOp::FCmp => n,
            _ => unreachable!("integer handled separately"),
        }
    }

    /// Latency in engine cycles of `op` on `bits`-wide elements.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not one of 8/16/32/64 (integer ops) or 16/32
    /// (float ops).
    pub fn op_latency(&self, op: AluOp, bits: u32) -> u64 {
        let n = bits as u64;
        let is_float = matches!(op, AluOp::FAdd | AluOp::FMul | AluOp::FCmp);
        let bs = if is_float {
            Self::bs_float(op, n)
        } else {
            assert!(
                matches!(bits, 8 | 16 | 32 | 64),
                "unsupported integer width: {bits} bits"
            );
            Self::bs_int(op, n)
        };
        match *self {
            LatencyModel::BitSerial => bs,
            // BP: latency improves by a factor of n (Section II-B(b)); the
            // carry chain still costs a couple of cycles.
            LatencyModel::BitParallel => (bs / n).max(1) + 1,
            // BH: intra-segment parallel, inter-segment serial.
            LatencyModel::BitHybrid { segment_bits } => {
                let p = u64::from(segment_bits).clamp(1, n);
                (bs / p).max(1) + (n / p).max(1)
            }
            // AC: logic is O(1) search/update; add/sub cost 8n+2; everything
            // else decomposes into additions (Section II-B(c)).
            LatencyModel::Associative => match op {
                AluOp::Logic => 4, // one search+update pass per truth-table row
                AluOp::Add | AluOp::Sub => 8 * n + 2,
                AluOp::Cmp => 2 * n,
                AluOp::MinMax => (8 * n + 2) + 2 * n,
                AluOp::ShiftImm => 2 * n,
                AluOp::ShiftReg => 2 * n * Self::ceil_log2(n.max(2)),
                AluOp::SetDup | AluOp::Copy | AluOp::Convert => 2 * n,
                // Shift-and-add with an 8n+2-cycle adder per multiplier bit.
                AluOp::Mul => n * (8 * n + 2),
                AluOp::FAdd => {
                    let (m, e) = Self::float_fields(n);
                    let varshift = 2 * m * Self::ceil_log2(m);
                    2 * (8 * e + 2) + varshift + (8 * m + 2) + varshift + (8 * e + 2)
                }
                AluOp::FMul => {
                    let (m, e) = Self::float_fields(n);
                    m * (8 * m + 2) + (8 * e + 2) + 2 * m
                }
                AluOp::FCmp => 2 * n,
            },
        }
    }

    /// The factor by which this scheme divides the engine's SIMD lane count
    /// relative to bit-serial, for `bits`-wide elements.
    ///
    /// BS keeps all lanes; BP needs `n` bit-lines per element; BH needs `p`.
    /// AC keeps full parallelism (bit-slices are spread over arrays).
    pub fn lane_divisor(&self, bits: u32) -> u32 {
        match *self {
            LatencyModel::BitSerial | LatencyModel::Associative => 1,
            LatencyModel::BitParallel => bits,
            LatencyModel::BitHybrid { segment_bits } => segment_bits.min(bits).max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_bit_serial_formulas() {
        let m = LatencyModel::BitSerial;
        for n in [8u32, 16, 32, 64] {
            let n64 = n as u64;
            assert_eq!(m.op_latency(AluOp::Add, n), n64);
            assert_eq!(m.op_latency(AluOp::Sub, n), 2 * n64);
            assert_eq!(m.op_latency(AluOp::Mul, n), n64 * n64 + 5 * n64);
            assert_eq!(m.op_latency(AluOp::MinMax, n), 2 * n64);
            assert_eq!(m.op_latency(AluOp::Cmp, n), n64);
            assert_eq!(m.op_latency(AluOp::ShiftImm, n), n64);
        }
        // n log n for variable shift: 32 * 5 = 160.
        assert_eq!(m.op_latency(AluOp::ShiftReg, 32), 160);
    }

    #[test]
    fn bit_parallel_divides_latency_and_lanes() {
        let bs = LatencyModel::BitSerial;
        let bp = LatencyModel::BitParallel;
        assert!(bp.op_latency(AluOp::Add, 32) <= bs.op_latency(AluOp::Add, 32) / 16);
        assert_eq!(bp.lane_divisor(32), 32);
        assert_eq!(bs.lane_divisor(32), 1);
    }

    #[test]
    fn bit_hybrid_sits_between_serial_and_parallel() {
        let bs = LatencyModel::BitSerial;
        let bh = LatencyModel::BitHybrid { segment_bits: 8 };
        let bp = LatencyModel::BitParallel;
        for op in [AluOp::Add, AluOp::Mul, AluOp::Cmp] {
            let (s, h, p) = (
                bs.op_latency(op, 32),
                bh.op_latency(op, 32),
                bp.op_latency(op, 32),
            );
            assert!(p <= h && h <= s, "{op:?}: {p} <= {h} <= {s} violated");
        }
        assert_eq!(bh.lane_divisor(32), 8);
    }

    #[test]
    fn associative_add_is_8n_plus_2() {
        let ac = LatencyModel::Associative;
        assert_eq!(ac.op_latency(AluOp::Add, 32), 8 * 32 + 2);
        assert_eq!(ac.op_latency(AluOp::Logic, 32), 4);
        // AC arithmetic is 4-8x slower than BS (Section VII-C).
        let bs = LatencyModel::BitSerial;
        let ratio = ac.op_latency(AluOp::Add, 32) as f64 / bs.op_latency(AluOp::Add, 32) as f64;
        assert!((4.0..=9.0).contains(&ratio), "AC/BS add ratio {ratio}");
    }

    #[test]
    fn float_latencies_exceed_int() {
        let bs = LatencyModel::BitSerial;
        assert!(bs.op_latency(AluOp::FAdd, 32) > bs.op_latency(AluOp::Add, 32));
        assert!(bs.op_latency(AluOp::FMul, 32) > bs.op_latency(AluOp::FAdd, 32));
        assert!(bs.op_latency(AluOp::FAdd, 16) < bs.op_latency(AluOp::FAdd, 32));
    }

    #[test]
    #[should_panic(expected = "unsupported float width")]
    fn float64_unsupported() {
        LatencyModel::BitSerial.op_latency(AluOp::FAdd, 64);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn bit_hybrid_segment_width_trades_latency_for_lanes() {
        let narrow = LatencyModel::BitHybrid { segment_bits: 4 };
        let wide = LatencyModel::BitHybrid { segment_bits: 16 };
        // Wider segments: faster ops, fewer lanes.
        assert!(wide.op_latency(AluOp::Mul, 32) < narrow.op_latency(AluOp::Mul, 32));
        assert!(wide.lane_divisor(32) > narrow.lane_divisor(32));
    }

    #[test]
    fn shift_reg_log_factor() {
        let m = LatencyModel::BitSerial;
        // n·⌈log₂ n⌉: 8→24, 16→64, 64→384.
        assert_eq!(m.op_latency(AluOp::ShiftReg, 8), 24);
        assert_eq!(m.op_latency(AluOp::ShiftReg, 16), 64);
        assert_eq!(m.op_latency(AluOp::ShiftReg, 64), 384);
    }

    #[test]
    fn f16_ops_cheaper_than_f32_by_mantissa_ratio() {
        let m = LatencyModel::BitSerial;
        let r = m.op_latency(AluOp::FMul, 32) as f64 / m.op_latency(AluOp::FMul, 16) as f64;
        // Mantissa 24 vs 11: roughly quadratic in the multiply.
        assert!(r > 3.0 && r < 6.0, "f32/f16 fmul ratio {r}");
    }

    #[test]
    fn associative_logic_is_constant_time() {
        let ac = LatencyModel::Associative;
        assert_eq!(
            ac.op_latency(AluOp::Logic, 8),
            ac.op_latency(AluOp::Logic, 64)
        );
    }
}
