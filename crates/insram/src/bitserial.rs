//! Bit-serial arithmetic built from word-line activations and peripheral
//! latches, following Neural Cache (Section II-B(a) of the paper).
//!
//! Operands use the *vertical* layout: an `n`-bit element `i` occupies
//! bit-line `i`, with bit `k` (LSB = 0) stored at word-line `base + k`.
//! Every operation below touches the array only through
//! [`SramArray::dual_access`], [`SramArray::read_row`] and (masked) row
//! writes, plus the two peripheral latches the paper describes:
//!
//! * the Carry latch `C`, which holds the per-bit-line carry between cycles;
//! * the Tag latch `T`, which gates the per-bit-line write drivers (used by
//!   multiplication and predication).
//!
//! The returned cycle counts follow Table II of the paper (`n` for addition,
//! `2n` for subtraction, `n² + 5n` for multiplication, …); the slow loops in
//! this module exist to prove functional equivalence with the word-level
//! fast path in `mve-core`, not to model time.

use crate::array::{RowBits, SramArray};

/// A bit-serial ALU: one [`SramArray`] plus its bit-line peripheral latches.
#[derive(Debug)]
pub struct BitSerialAlu<'a> {
    array: &'a mut SramArray,
    /// Carry latch `C`, one bit per bit-line.
    carry: RowBits,
    /// Tag latch `T`, one bit per bit-line; gates write drivers when engaged.
    tag: RowBits,
}

impl<'a> BitSerialAlu<'a> {
    /// Wraps an array together with cleared peripheral latches.
    pub fn new(array: &'a mut SramArray) -> Self {
        Self {
            array,
            carry: RowBits::zero(),
            tag: RowBits::ones(),
        }
    }

    /// Stores `values` vertically: bit `k` of `values[i]` goes to word-line
    /// `base + k`, bit-line `i`. Values are truncated to `n` bits.
    ///
    /// # Panics
    ///
    /// Panics if more values than bit-lines are given or the word-line range
    /// overflows the array.
    pub fn write_vertical(&mut self, base: usize, n: usize, values: &[u64]) {
        assert!(values.len() <= crate::array::BITLINES, "too many elements");
        for k in 0..n {
            let mut row = self.array.read_row(base + k);
            for (i, &v) in values.iter().enumerate() {
                row.set_bit(i, (v >> k) & 1 == 1);
            }
            self.array.write_row(base + k, row);
        }
    }

    /// Reads `count` vertical `n`-bit elements starting at word-line `base`.
    pub fn read_vertical(&self, base: usize, n: usize, count: usize) -> Vec<u64> {
        let mut out = vec![0u64; count];
        for k in 0..n {
            let row = self.array.read_row(base + k);
            for (i, v) in out.iter_mut().enumerate() {
                if row.bit(i) {
                    *v |= 1 << k;
                }
            }
        }
        out
    }

    /// Returns the current Tag latch contents.
    pub fn tag(&self) -> RowBits {
        self.tag
    }

    /// Loads the Tag latch from a word-line (1 cycle in hardware).
    pub fn load_tag(&mut self, wordline: usize) {
        self.tag = self.array.read_row(wordline);
    }

    /// Resets the Tag latch to all-enabled.
    pub fn clear_tag(&mut self) {
        self.tag = RowBits::ones();
    }

    /// `dst = a + b` over `n`-bit vertical operands (wrapping).
    /// Returns the cycle count: `n`.
    pub fn add(&mut self, a: usize, b: usize, dst: usize, n: usize) -> u64 {
        self.carry = RowBits::zero();
        self.add_inner(a, b, dst, n, false);
        n as u64
    }

    /// `dst = a - b` over `n`-bit vertical operands (two's-complement,
    /// wrapping). Returns the cycle count: `2n` (negate pass + add pass).
    pub fn sub(&mut self, a: usize, b: usize, dst: usize, n: usize) -> u64 {
        self.carry = RowBits::ones(); // carry-in = 1 for two's complement
        self.add_inner(a, b, dst, n, true);
        2 * n as u64
    }

    /// One addition pass. When `negate_b` is set the `B` bit-slice is
    /// inverted by the peripheral before entering the full adder (the
    /// hardware spends a separate `n`-cycle pass for this, reflected in the
    /// caller's cycle count).
    fn add_inner(&mut self, a: usize, b: usize, dst: usize, n: usize, negate_b: bool) {
        for k in 0..n {
            let bits_a = self.array.read_row(a + k);
            let bits_b = if negate_b {
                self.array.read_row(b + k).not()
            } else {
                self.array.read_row(b + k)
            };
            // What the sense amps + peripheral see on a dual activation:
            let and = bits_a.and(&bits_b);
            let xor = bits_a.xor(&bits_b);
            let sum = xor.xor(&self.carry);
            let carry_out = and.or(&xor.and(&self.carry));
            self.array.write_row_masked(dst + k, sum, self.tag);
            self.carry = carry_out;
        }
    }

    /// `dst = a * b` over `n`-bit vertical operands (wrapping, low `n` bits).
    ///
    /// Implements the shift-and-add algorithm of Section II-B(a): bit `i` of
    /// the multiplier is loaded into the Tag latch, then the multiplicand is
    /// conditionally added to the result starting from bit `i`. Returns the
    /// paper's cycle count `n² + 5n`.
    ///
    /// `dst` must not overlap `a` or `b`.
    pub fn mul(&mut self, a: usize, b: usize, dst: usize, n: usize) -> u64 {
        // Zero the destination.
        let saved_tag = self.tag;
        self.tag = RowBits::ones();
        for k in 0..n {
            self.array.write_row(dst + k, RowBits::zero());
        }
        for i in 0..n {
            // T <- bit i of the multiplier b.
            self.tag = self.array.read_row(b + i).and(&saved_tag);
            // dst[i..n] += a[0..n-i], conditionally on T.
            self.carry = RowBits::zero();
            for k in 0..(n - i) {
                let bits_a = self.array.read_row(a + k);
                let bits_d = self.array.read_row(dst + i + k);
                let and = bits_a.and(&bits_d);
                let xor = bits_a.xor(&bits_d);
                let sum = xor.xor(&self.carry);
                self.carry = and.or(&xor.and(&self.carry));
                self.array.write_row_masked(dst + i + k, sum, self.tag);
            }
        }
        self.tag = saved_tag;
        (n * n + 5 * n) as u64
    }

    /// `dst = a << shift` (constant shift, zero fill, wrapping to `n` bits).
    /// Returns the cycle count: `n`.
    pub fn shift_left(&mut self, a: usize, dst: usize, n: usize, shift: usize) -> u64 {
        let slices: Vec<RowBits> = (0..n).map(|k| self.array.read_row(a + k)).collect();
        for k in 0..n {
            let bits = if k >= shift {
                slices[k - shift]
            } else {
                RowBits::zero()
            };
            self.array.write_row_masked(dst + k, bits, self.tag);
        }
        n as u64
    }

    /// `dst = a >> shift` (constant logical shift, zero fill).
    /// Returns the cycle count: `n`.
    pub fn shift_right(&mut self, a: usize, dst: usize, n: usize, shift: usize) -> u64 {
        let slices: Vec<RowBits> = (0..n).map(|k| self.array.read_row(a + k)).collect();
        for k in 0..n {
            let bits = if k + shift < n {
                slices[k + shift]
            } else {
                RowBits::zero()
            };
            self.array.write_row_masked(dst + k, bits, self.tag);
        }
        n as u64
    }

    /// `dst = a ^ b` bit-wise. Returns the cycle count: `n`.
    pub fn xor(&mut self, a: usize, b: usize, dst: usize, n: usize) -> u64 {
        for k in 0..n {
            let acc = self.array.dual_access(a + k, b + k);
            // XOR = !(AND | NOR): derived by the extra peripheral gates.
            let xor = acc.and.or(&acc.nor).not();
            self.array.write_row_masked(dst + k, xor, self.tag);
        }
        n as u64
    }

    /// Unsigned greater-than comparison: sets the Tag latch to `a > b` per
    /// bit-line. Returns the cycle count: `n`.
    ///
    /// Scans from the MSB down, latching the first differing bit — this is
    /// the "comparison result stored in the Tag latch" flow of Section III-E.
    pub fn cmp_gt(&mut self, a: usize, b: usize, n: usize) -> u64 {
        let mut decided = RowBits::zero();
        let mut result = RowBits::zero();
        for k in (0..n).rev() {
            let bits_a = self.array.read_row(a + k);
            let bits_b = self.array.read_row(b + k);
            let diff = bits_a.xor(&bits_b);
            let newly = diff.and(&decided.not());
            result = result.or(&newly.and(&bits_a));
            decided = decided.or(&diff);
        }
        self.tag = result;
        n as u64
    }

    /// Equality comparison: sets the Tag latch to `a == b` per bit-line.
    /// Returns the cycle count: `n`.
    pub fn cmp_eq(&mut self, a: usize, b: usize, n: usize) -> u64 {
        let mut equal = RowBits::ones();
        for k in 0..n {
            let acc = self.array.dual_access(a + k, b + k);
            let xor = acc.and.or(&acc.nor).not();
            equal = equal.and(&xor.not());
        }
        self.tag = equal;
        n as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn with_alu(f: impl FnOnce(&mut BitSerialAlu<'_>)) {
        let mut array = SramArray::new();
        let mut alu = BitSerialAlu::new(&mut array);
        f(&mut alu);
    }

    #[test]
    fn vertical_roundtrip() {
        with_alu(|alu| {
            let vals = [0u64, 1, 127, 128, 255];
            alu.write_vertical(0, 8, &vals);
            assert_eq!(alu.read_vertical(0, 8, 5), vals.to_vec());
        });
    }

    #[test]
    fn add_wraps_at_width() {
        with_alu(|alu| {
            alu.write_vertical(0, 8, &[200, 255]);
            alu.write_vertical(8, 8, &[100, 1]);
            let cycles = alu.add(0, 8, 16, 8);
            assert_eq!(cycles, 8);
            assert_eq!(alu.read_vertical(16, 8, 2), vec![44, 0]);
        });
    }

    #[test]
    fn sub_twos_complement() {
        with_alu(|alu| {
            alu.write_vertical(0, 16, &[5, 1000, 0]);
            alu.write_vertical(16, 16, &[7, 999, 0]);
            let cycles = alu.sub(0, 16, 32, 16);
            assert_eq!(cycles, 32);
            assert_eq!(
                alu.read_vertical(32, 16, 3),
                vec![(5u64.wrapping_sub(7)) & 0xFFFF, 1, 0]
            );
        });
    }

    #[test]
    fn mul_matches_formula_cycles() {
        with_alu(|alu| {
            alu.write_vertical(0, 8, &[3, 16, 255]);
            alu.write_vertical(8, 8, &[5, 16, 255]);
            let cycles = alu.mul(0, 8, 16, 8);
            assert_eq!(cycles, 8 * 8 + 5 * 8);
            assert_eq!(alu.read_vertical(16, 8, 3), vec![15, 0, 1]);
        });
    }

    #[test]
    fn shifts_zero_fill() {
        with_alu(|alu| {
            alu.write_vertical(0, 8, &[0b1011_0001]);
            alu.shift_left(0, 8, 8, 3);
            assert_eq!(alu.read_vertical(8, 8, 1), vec![0b1000_1000]);
            alu.shift_right(0, 16, 8, 3);
            assert_eq!(alu.read_vertical(16, 8, 1), vec![0b0001_0110]);
        });
    }

    #[test]
    fn compare_sets_tag_per_lane() {
        with_alu(|alu| {
            alu.write_vertical(0, 8, &[5, 9, 7, 7]);
            alu.write_vertical(8, 8, &[9, 5, 7, 6]);
            alu.cmp_gt(0, 8, 8);
            let tag = alu.tag();
            assert!(!tag.bit(0) && tag.bit(1) && !tag.bit(2) && tag.bit(3));
            alu.cmp_eq(0, 8, 8);
            let tag = alu.tag();
            assert!(!tag.bit(0) && !tag.bit(1) && tag.bit(2) && !tag.bit(3));
        });
    }

    #[test]
    fn tag_gates_writes_during_add() {
        with_alu(|alu| {
            alu.write_vertical(0, 8, &[1, 1]);
            alu.write_vertical(8, 8, &[2, 2]);
            alu.write_vertical(16, 8, &[99, 99]);
            // Enable only bit-line 1 by loading a tag row with lane 1 set.
            alu.write_vertical(24, 1, &[0, 1]);
            alu.load_tag(24);
            alu.add(0, 8, 16, 8);
            assert_eq!(alu.read_vertical(16, 8, 2), vec![99, 3]);
            alu.clear_tag();
        });
    }

    proptest! {
        #[test]
        fn prop_add_sub_match_wrapping(
            a in proptest::collection::vec(any::<u16>(), 1..64),
            b in proptest::collection::vec(any::<u16>(), 1..64),
        ) {
            let len = a.len().min(b.len());
            let a64: Vec<u64> = a[..len].iter().map(|&v| v as u64).collect();
            let b64: Vec<u64> = b[..len].iter().map(|&v| v as u64).collect();
            let mut array = SramArray::new();
            let mut alu = BitSerialAlu::new(&mut array);
            alu.write_vertical(0, 16, &a64);
            alu.write_vertical(16, 16, &b64);
            alu.add(0, 16, 32, 16);
            let sums = alu.read_vertical(32, 16, len);
            alu.sub(0, 16, 48, 16);
            let diffs = alu.read_vertical(48, 16, len);
            for i in 0..len {
                prop_assert_eq!(sums[i], (a64[i].wrapping_add(b64[i])) & 0xFFFF);
                prop_assert_eq!(diffs[i], (a64[i].wrapping_sub(b64[i])) & 0xFFFF);
            }
        }

        #[test]
        fn prop_mul_matches_wrapping(
            a in proptest::collection::vec(any::<u8>(), 1..32),
            b in proptest::collection::vec(any::<u8>(), 1..32),
        ) {
            let len = a.len().min(b.len());
            let a64: Vec<u64> = a[..len].iter().map(|&v| v as u64).collect();
            let b64: Vec<u64> = b[..len].iter().map(|&v| v as u64).collect();
            let mut array = SramArray::new();
            let mut alu = BitSerialAlu::new(&mut array);
            alu.write_vertical(0, 8, &a64);
            alu.write_vertical(8, 8, &b64);
            alu.mul(0, 8, 16, 8);
            let prods = alu.read_vertical(16, 8, len);
            for i in 0..len {
                prop_assert_eq!(prods[i], (a64[i].wrapping_mul(b64[i])) & 0xFF);
            }
        }

        #[test]
        fn prop_compare_matches_scalar(
            a in proptest::collection::vec(any::<u32>(), 1..32),
            b in proptest::collection::vec(any::<u32>(), 1..32),
        ) {
            let len = a.len().min(b.len());
            let a64: Vec<u64> = a[..len].iter().map(|&v| v as u64).collect();
            let b64: Vec<u64> = b[..len].iter().map(|&v| v as u64).collect();
            let mut array = SramArray::new();
            let mut alu = BitSerialAlu::new(&mut array);
            alu.write_vertical(0, 32, &a64);
            alu.write_vertical(32, 32, &b64);
            alu.cmp_gt(0, 32, 32);
            let tag = alu.tag();
            for i in 0..len {
                prop_assert_eq!(tag.bit(i), a64[i] > b64[i]);
            }
        }
    }
}
