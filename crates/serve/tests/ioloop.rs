//! Event-loop I/O core suite: admission parking without worker pinning,
//! slow-reader backpressure and the write-stall reaper, many-connections
//! correctness on a small worker pool, per-class latency histograms, and
//! the open-loop throughput driver. Runs against whichever poller backend
//! `MVE_SERVE_POLLER` selects, so CI exercises both epoll and poll(2).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mve_kernels::Scale;
use mve_serve::client::{open_loop, Client};
use mve_serve::json::Json;
use mve_serve::protocol::scale_name;
use mve_serve::server::{ArtefactFn, ArtefactRegistry, ServeOptions, Server};
use mve_serve::{CostModel, Request};

fn registry(renders: Arc<AtomicU64>) -> ArtefactRegistry {
    let alpha: ArtefactFn = {
        let renders = Arc::clone(&renders);
        Arc::new(move |scale| {
            renders.fetch_add(1, Ordering::SeqCst);
            format!("alpha at {} scale\n", scale_name(scale))
        })
    };
    let slow: ArtefactFn = {
        let renders = Arc::clone(&renders);
        Arc::new(move |scale| {
            renders.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(600));
            format!("slow at {} scale\n", scale_name(scale))
        })
    };
    // ~1 MiB of payload per reply: enough to overwhelm kernel socket
    // buffers within a few replies and make write backpressure real.
    let big: ArtefactFn = Arc::new(move |_scale| "x".repeat(1 << 20));
    ArtefactRegistry::new(vec![("alpha", alpha), ("big", big), ("slow", slow)])
}

fn boot(
    opts: ServeOptions,
    renders: Arc<AtomicU64>,
) -> (
    u16,
    mve_serve::ShutdownHandle,
    std::thread::JoinHandle<Json>,
) {
    let server = Server::bind(&opts, registry(renders)).expect("bind ephemeral port");
    let port = server.port();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (port, handle, join)
}

fn stat(stats: &Json, key: &str) -> u64 {
    stats
        .get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats lack `{key}`: {stats:?}"))
}

/// The PR 7 non-claim, closed: with ONE worker and a budget that fits one
/// request, an admission-queued request parks in the event loop — the
/// control plane keeps answering and the queued request is finally served,
/// not shed. Under the old design the queued request occupied the only
/// worker while it waited, so nothing else could be served at all.
#[test]
fn parked_requests_do_not_hold_the_only_worker() {
    let model = CostModel::committed();
    let renders = Arc::new(AtomicU64::new(0));
    let (port, _handle, join) = boot(
        ServeOptions {
            workers: 1,
            cost_budget: model.artefact_cost(Scale::Test),
            queue_deadline: Duration::from_secs(3),
            ..ServeOptions::default()
        },
        Arc::clone(&renders),
    );

    std::thread::scope(|s| {
        // A: holds the whole budget on the only worker for ~600 ms.
        let a = s.spawn(move || {
            let mut c = Client::connect(("127.0.0.1", port)).expect("connect A");
            c.artefact("slow", Scale::Test).expect("slow artefact")
        });
        std::thread::sleep(Duration::from_millis(150));
        // B: over budget → parked in the event loop (nowhere else to be:
        // the one worker is busy with A).
        let b = s.spawn(move || {
            let mut c = Client::connect(("127.0.0.1", port)).expect("connect B");
            c.artefact("alpha", Scale::Test).expect("parked artefact")
        });
        std::thread::sleep(Duration::from_millis(150));

        // C: control plane must answer promptly while A executes and B is
        // parked — the regression this test pins down.
        let mut c = Client::connect(("127.0.0.1", port)).expect("connect C");
        c.set_request_timeout(Some(Duration::from_secs(2)))
            .expect("deadline");
        let t0 = Instant::now();
        let stats = c.stats().expect("stats while the pool is saturated");
        let est = c
            .estimate(&Request::Artefact {
                name: "alpha".to_owned(),
                scale: Scale::Test,
            })
            .expect("estimate while the pool is saturated");
        assert!(
            t0.elapsed() < Duration::from_millis(400),
            "control plane stalled behind a parked request: {:?}",
            t0.elapsed()
        );
        assert_eq!(stat(&stats, "queue_depth"), 1, "B is parked: {stats:?}");
        assert_eq!(stat(&stats, "executing_requests"), 1, "A is executing");
        assert_eq!(
            est.get("admit_now").and_then(Json::as_bool),
            Some(false),
            "budget is fully held"
        );

        assert_eq!(a.join().expect("A"), "slow at test scale\n");
        assert_eq!(b.join().expect("B"), "alpha at test scale\n");
    });

    let mut c = Client::connect(("127.0.0.1", port)).expect("connect");
    let stats = c.stats().expect("stats");
    assert_eq!(stat(&stats, "queued"), 1, "{stats:?}");
    assert_eq!(stat(&stats, "sheds"), 0, "nothing shed: {stats:?}");
    assert_eq!(stat(&stats, "errors"), 0);
    c.shutdown().expect("shutdown");
    join.join().expect("server thread");
}

/// Slow-reader backpressure: a client floods artefact requests and never
/// reads replies. Daemon memory stays bounded — once the write buffer
/// crosses the high-water mark the loop stops consuming that connection's
/// requests — and the write-stall timer reaps the peer with
/// `stalled_writes` accounting. The daemon stays healthy throughout.
#[test]
fn slow_readers_are_bounded_and_reaped_by_the_write_stall_timer() {
    use std::io::Write;
    const FLOOD: usize = 64;
    let renders = Arc::new(AtomicU64::new(0));
    let (port, handle, join) = boot(
        ServeOptions {
            workers: 2,
            write_stall_timeout: Duration::from_millis(300),
            ..ServeOptions::default()
        },
        renders,
    );

    // Pipeline 64 requests for a ~1 MiB artefact (64 MiB of replies) and
    // then stop participating entirely.
    let mut greedy = std::net::TcpStream::connect(("127.0.0.1", port)).expect("connect");
    let line = r#"{"op":"artefact","name":"big","scale":"test"}"#;
    for _ in 0..FLOOD {
        greedy
            .write_all(format!("{line}\n").as_bytes())
            .expect("pipelined send");
    }
    greedy.flush().expect("flush");

    // Wait out the stall window (plus slack for the timer tick).
    std::thread::sleep(Duration::from_millis(900));

    let mut c = Client::connect(("127.0.0.1", port)).expect("daemon still accepts");
    let stats = c.stats().expect("daemon still answers");
    assert_eq!(
        stat(&stats, "stalled_writes"),
        1,
        "the unread connection must be reaped as a write stall: {stats:?}"
    );
    let served = stat(&stats, "artefact_requests");
    assert!(
        served < FLOOD as u64 / 2,
        "backpressure must stop consuming a slow reader's pipeline well \
         short of the flood ({served} of {FLOOD} served)"
    );
    // The daemon survived a 64 MiB reply obligation with a ~2 MiB bound;
    // it still serves a well-behaved client.
    let text = c.artefact("alpha", Scale::Test).expect("healthy");
    assert_eq!(text, "alpha at test scale\n");

    handle.shutdown();
    join.join().expect("server thread");
}

/// 64 concurrent connections on a 4-worker pool: every request is served
/// correctly — connections beyond the pool size wait as poller-tracked
/// sockets, not threads — and the gauges drain back to zero.
#[test]
fn sixty_four_connections_on_four_workers_all_serve_correctly() {
    const CONNS: usize = 64;
    let renders = Arc::new(AtomicU64::new(0));
    let (port, handle, join) = boot(
        ServeOptions {
            workers: 4,
            ..ServeOptions::default()
        },
        Arc::clone(&renders),
    );

    std::thread::scope(|s| {
        for i in 0..CONNS {
            s.spawn(move || {
                let mut c = Client::connect(("127.0.0.1", port)).expect("connect");
                for _ in 0..3 {
                    let text = c.artefact("alpha", Scale::Test).expect("artefact");
                    assert_eq!(text, "alpha at test scale\n");
                }
                if i % 8 == 0 {
                    c.stats().expect("interleaved stats");
                }
            });
        }
    });

    let mut c = Client::connect(("127.0.0.1", port)).expect("connect");
    let stats = c.stats().expect("stats");
    assert_eq!(stat(&stats, "artefact_requests"), CONNS as u64 * 3);
    assert_eq!(stat(&stats, "errors"), 0);
    assert_eq!(stat(&stats, "executing_requests"), 0, "gauge drains");
    assert_eq!(
        stat(&stats, "open_connections"),
        1,
        "only this stats client remains: {stats:?}"
    );
    assert_eq!(renders.load(Ordering::SeqCst), 1, "single-flight held");

    handle.shutdown();
    join.join().expect("server thread");
}

/// The `stats` reply exposes per-op-class service-time and queue-wait
/// histograms with ordered percentiles, and inline control-plane ops
/// record zero queue wait.
#[test]
fn stats_reply_carries_per_class_latency_histograms() {
    let renders = Arc::new(AtomicU64::new(0));
    let (port, handle, join) = boot(ServeOptions::default(), renders);
    let mut c = Client::connect(("127.0.0.1", port)).expect("connect");

    for _ in 0..5 {
        c.artefact("alpha", Scale::Test).expect("artefact");
    }
    c.stats().expect("a stats sample");
    let stats = c.stats().expect("stats");

    let latency = stats.get("latency").expect("stats carry `latency`");
    let artefact = latency.get("artefact").expect("artefact class");
    let service = artefact.get("service").expect("service histogram");
    assert_eq!(service.get("count").and_then(Json::as_u64), Some(5));
    let p50 = service.get("p50_us").and_then(Json::as_u64).expect("p50");
    let p99 = service.get("p99_us").and_then(Json::as_u64).expect("p99");
    let max = service.get("max_us").and_then(Json::as_u64).expect("max");
    assert!(p50 <= p99 && p99 <= max, "{service:?}");
    let wait = artefact.get("queue_wait").expect("queue_wait histogram");
    assert_eq!(wait.get("count").and_then(Json::as_u64), Some(5));

    // Inline ops are measured too, with zero queue wait by construction.
    let stats_class = latency.get("stats").expect("stats class");
    assert!(
        stats_class
            .get("service")
            .and_then(|s| s.get("count"))
            .and_then(Json::as_u64)
            .is_some_and(|n| n >= 1),
        "{stats_class:?}"
    );
    assert_eq!(
        stats_class
            .get("queue_wait")
            .and_then(|s| s.get("max_us"))
            .and_then(Json::as_u64),
        Some(0),
        "inline ops never wait in the job queue"
    );
    // The serve-metrics line still renders (CI greps its prefix fields).
    let line = mve_serve::server::metrics_line(&stats);
    assert!(line.starts_with("serve-metrics requests="), "{line}");

    handle.shutdown();
    join.join().expect("server thread");
}

/// The shared open-loop driver against a live daemon: every request gets
/// a typed reply (zero lost), throughput and percentiles are populated.
#[test]
fn open_loop_driver_loses_nothing_at_32_connections() {
    let renders = Arc::new(AtomicU64::new(0));
    let (port, handle, join) = boot(
        ServeOptions {
            workers: 4,
            ..ServeOptions::default()
        },
        renders,
    );

    let report = open_loop(
        ("127.0.0.1", port),
        32,
        Duration::from_millis(300),
        |_conn, _seq| Request::Artefact {
            name: "alpha".to_owned(),
            scale: Scale::Test,
        },
    )
    .expect("open loop");
    assert_eq!(report.connections, 32);
    assert_eq!(report.lost, 0, "no request may go unanswered: {report:?}");
    assert!(report.ok > 0, "{report:?}");
    assert_eq!(report.ok + report.overloaded, report.requests);
    assert!(report.req_per_s() > 0.0);
    assert!(report.latency.p50_us <= report.latency.p99_us);
    let doc = report.to_json();
    assert_eq!(doc.get("lost").and_then(Json::as_u64), Some(0));
    assert!(doc.encode().contains("\"req_per_s\":"));

    handle.shutdown();
    join.join().expect("server thread");
}

/// Asserts the lifecycle invariants every completed trace record must
/// satisfy: phases monotone in wire order, `queue_wait_us` exactly
/// `dispatched_us - admitted_us`, `total_us` exactly
/// `flushed_us - received_us`.
fn assert_trace_invariants(t: &Json) {
    let us = |key: &str| {
        t.get(key)
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("trace record lacks `{key}`: {t:?}"))
    };
    let phases = [
        us("received_us"),
        us("parsed_us"),
        us("admitted_us"),
        us("dispatched_us"),
        us("executed_us"),
        us("flushed_us"),
    ];
    assert!(
        phases.windows(2).all(|w| w[0] <= w[1]),
        "phases not monotone: {t:?}"
    );
    assert_eq!(
        us("queue_wait_us"),
        us("dispatched_us") - us("admitted_us"),
        "queue_wait must equal dispatched - admitted: {t:?}"
    );
    assert_eq!(
        us("total_us"),
        us("flushed_us") - us("received_us"),
        "total must equal flushed - received: {t:?}"
    );
}

/// The `metrics` op's Prometheus exposition round-trips through the
/// strict `mve_obs` parser, and its counters agree with the `stats` reply
/// fetched immediately after on the same connection. `requests` itself
/// differs by exactly one (the stats request), because the counter
/// increments before the reply body is built.
#[test]
fn metrics_exposition_parses_and_cross_checks_stats() {
    let renders = Arc::new(AtomicU64::new(0));
    let (port, handle, join) = boot(ServeOptions::default(), renders);
    let mut c = Client::connect(("127.0.0.1", port)).expect("connect");

    for _ in 0..3 {
        c.artefact("alpha", Scale::Test).expect("artefact");
    }
    let text = c.metrics().expect("metrics");
    let exp = mve_obs::metrics::parse_exposition(&text)
        .unwrap_or_else(|e| panic!("exposition must parse: {e}\n{text}"));
    let stats = c.stats().expect("stats");

    // Counters no control-plane op touches must agree exactly.
    for key in [
        "artefact_requests",
        "sim_requests",
        "compile_requests",
        "hits",
        "misses",
        "evictions",
        "admitted",
        "sheds",
    ] {
        let exposed = exp
            .value(&format!("mve_serve_{key}"), &[])
            .unwrap_or_else(|| panic!("exposition lacks mve_serve_{key}:\n{text}"));
        assert_eq!(exposed, stat(&stats, key) as f64, "counter {key} drifted");
    }
    // One hit path sanity check: 3 identical renders = 1 miss + 2 hits.
    assert_eq!(exp.value("mve_serve_hits", &[]), Some(2.0));
    assert_eq!(exp.value("mve_serve_misses", &[]), Some(1.0));
    // `requests` advances with every op; the later stats reply counts the
    // exposition's own request plus itself.
    assert_eq!(
        stat(&stats, "requests") as f64,
        exp.value("mve_serve_requests", &[]).expect("requests") + 1.0
    );

    // The latency histograms render as real Prometheus histograms with
    // per-class labels and cumulative buckets capped by +Inf == _count.
    assert_eq!(
        exp.family_type("mve_serve_request_service_us"),
        Some("histogram")
    );
    let count = exp
        .value(
            "mve_serve_request_service_us_count",
            &[("class", "artefact")],
        )
        .expect("artefact service count");
    assert_eq!(count, 3.0);
    let inf = exp
        .value(
            "mve_serve_request_service_us_bucket",
            &[("class", "artefact"), ("le", "+Inf")],
        )
        .expect("+Inf bucket");
    assert_eq!(inf, count, "+Inf bucket must equal _count");

    handle.shutdown();
    join.join().expect("server thread");
}

/// Every served request — chargeable and control-plane alike — leaves a
/// complete, invariant-satisfying record in the trace ring, with ids
/// strictly increasing and cache hit/miss attribution on artefact ops.
#[test]
fn trace_ring_records_complete_lifecycles_for_served_requests() {
    let renders = Arc::new(AtomicU64::new(0));
    let (port, handle, join) = boot(ServeOptions::default(), renders);
    let mut c = Client::connect(("127.0.0.1", port)).expect("connect");

    c.artefact("alpha", Scale::Test).expect("miss render");
    c.artefact("alpha", Scale::Test).expect("hit render");
    c.stats().expect("stats");
    let traces = c.trace().expect("trace");

    // The three completed requests above are all flushed before the
    // `trace` request was even received, so all three must be present.
    assert!(traces.len() >= 3, "expected >= 3 records, got {traces:?}");
    for t in &traces {
        assert_trace_invariants(t);
        assert_eq!(t.get("outcome").and_then(Json::as_str), Some("ok"));
    }
    let op = |t: &Json| t.get("op").and_then(Json::as_str).map(str::to_owned);
    let cache = |t: &Json| t.get("cache").and_then(Json::as_str).map(str::to_owned);
    let artefacts: Vec<&Json> = traces
        .iter()
        .filter(|t| op(t).as_deref() == Some("artefact"))
        .collect();
    assert_eq!(artefacts.len(), 2, "{traces:?}");
    assert_eq!(cache(artefacts[0]).as_deref(), Some("miss"));
    assert_eq!(cache(artefacts[1]).as_deref(), Some("hit"));
    assert!(
        traces.iter().any(|t| op(t).as_deref() == Some("stats")
            && t.get("queue_wait_us").and_then(Json::as_u64) == Some(0)),
        "inline stats op must trace with zero queue wait: {traces:?}"
    );
    let ids: Vec<u64> = traces
        .iter()
        .filter_map(|t| t.get("id").and_then(Json::as_u64))
        .collect();
    assert!(
        ids.windows(2).all(|w| w[0] < w[1]),
        "ids must be strictly increasing: {ids:?}"
    );

    handle.shutdown();
    join.join().expect("server thread");
}
