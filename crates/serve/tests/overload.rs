//! Synthetic-overload and fault-injection suite: a real server with a
//! tiny admission budget, burst traffic at 4x that budget, and an armed
//! [`FaultPlan`] forcing worker panics, stalls and reservation
//! abandonment — proving the overload invariants:
//!
//! * every request receives exactly one *typed* reply (result, error, or
//!   `overloaded` with `retry_after_ms`) — nothing is lost, nothing hangs;
//! * exactly-once computation survives injected panics (a replacement
//!   worker recomputes, concurrent waiters still get one result);
//! * the daemon stays live while shedding: control-plane ops (`estimate`,
//!   `stats`) answer during full budget occupancy, and fresh work is
//!   served after the burst (no worker is permanently pinned);
//! * the metrics line reports sheds, queue depth and budget occupancy,
//!   and the cache exactly-once counters still balance;
//! * shutdown is clean with traffic in flight.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

use mve_kernels::Scale;
use mve_serve::client::{Client, ClientError};
use mve_serve::json::Json;
use mve_serve::protocol::scale_name;
use mve_serve::server::{ArtefactFn, ArtefactRegistry, ServeOptions, Server};
use mve_serve::{CostModel, FaultPlan, Request};

/// Distinct artefact names for the burst: each is a unique cache key, so
/// cache accounting is exact (no same-key coalescing in phase one).
const BURST_NAMES: [&str; 10] = ["b0", "b1", "b2", "b3", "b4", "b5", "b6", "b7", "b8", "b9"];

/// A registry where every artefact render sleeps `hold_ms` (so budget
/// occupancy is observable) and bumps the shared render counter.
fn slow_registry(renders: Arc<AtomicU64>, hold_ms: u64) -> ArtefactRegistry {
    let mut entries: Vec<(&'static str, ArtefactFn)> = Vec::new();
    for name in BURST_NAMES {
        let renders = Arc::clone(&renders);
        entries.push((
            name,
            Arc::new(move |scale| {
                renders.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(hold_ms));
                format!("{name} at {} scale\n", scale_name(scale))
            }),
        ));
    }
    ArtefactRegistry::new(entries)
}

fn boot(
    opts: ServeOptions,
    registry: ArtefactRegistry,
) -> (
    u16,
    mve_serve::ShutdownHandle,
    std::thread::JoinHandle<Json>,
) {
    let server = Server::bind(&opts, registry).expect("bind ephemeral port");
    let port = server.port();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (port, handle, join)
}

fn stat(stats: &Json, key: &str) -> u64 {
    stats
        .get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats lack `{key}`: {stats:?}"))
}

fn artefact_req(name: &str) -> Request {
    Request::Artefact {
        name: name.to_owned(),
        scale: Scale::Test,
    }
}

/// The tentpole scenario: a burst of 4x the budget with injected panics
/// and stalls. Every request gets exactly one typed reply, sheds flow
/// while the daemon stays live, cache counters balance, shutdown is
/// clean.
#[test]
fn burst_at_4x_budget_with_faults_sheds_but_loses_nothing() {
    let model = CostModel::committed();
    let unit_cost = model.artefact_cost(Scale::Test);
    // Budget fits 2 concurrent artefacts; the 10-request burst asks for
    // 10 units — 5x the in-flight capacity, 4x+ the budget either way.
    let budget = 2 * unit_cost;
    let faults = FaultPlan::new();
    // The first compute stalls then panics; the second panics outright.
    faults.panic_next(2);
    faults.stall_next(1, Duration::from_millis(30));
    let renders = Arc::new(AtomicU64::new(0));
    let (port, _handle, join) = boot(
        ServeOptions {
            workers: BURST_NAMES.len() + 2,
            cost_budget: budget,
            queue_cap: 2,
            queue_deadline: Duration::from_millis(100),
            faults: faults.clone(),
            ..ServeOptions::default()
        },
        slow_registry(Arc::clone(&renders), 80),
    );

    // Phase 1: the burst. One request per connection, all released
    // together; classify every outcome.
    let ok_names = Mutex::new(Vec::new());
    let (mut ok, mut errors, mut sheds) = (0u64, 0u64, 0u64);
    let start = Barrier::new(BURST_NAMES.len());
    let outcomes: Vec<&str> = std::thread::scope(|s| {
        let handles: Vec<_> = BURST_NAMES
            .iter()
            .map(|name| {
                let (start, ok_names) = (&start, &ok_names);
                s.spawn(move || {
                    let mut client = Client::connect(("127.0.0.1", port)).expect("connect");
                    start.wait();
                    match client.request(&artefact_req(name)) {
                        Ok(_) => {
                            ok_names.lock().unwrap().push(*name);
                            "ok"
                        }
                        Err(ClientError::Overloaded { retry_after_ms, .. }) => {
                            assert!(retry_after_ms >= 1, "hint must be actionable");
                            "overloaded"
                        }
                        Err(ClientError::Server(msg)) => {
                            assert!(msg.contains("failed"), "only injected faults error: {msg}");
                            "error"
                        }
                        Err(other) => panic!("request lost (untyped outcome): {other}"),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("thread"))
            .collect()
    });
    for outcome in &outcomes {
        match *outcome {
            "ok" => ok += 1,
            "error" => errors += 1,
            "overloaded" => sheds += 1,
            other => unreachable!("{other}"),
        }
    }
    // Exactly one typed reply per request — the no-request-lost invariant.
    assert_eq!(ok + errors + sheds, BURST_NAMES.len() as u64);
    assert_eq!(errors, 2, "both injected panics surfaced as typed errors");
    assert!(sheds >= 1, "a 4x burst must shed: {outcomes:?}");
    assert!(ok >= 2, "the budget admits work throughout: {outcomes:?}");
    let (panics, stalls, abandons) = faults.injected();
    assert_eq!((panics, stalls, abandons), (2, 1, 0));

    // The daemon is live after the burst: fresh work and control-plane
    // ops are served (no worker permanently pinned by stalls or panics).
    let mut client = Client::connect(("127.0.0.1", port)).expect("connect post-burst");
    let stats = client.stats().expect("stats answers");
    assert_eq!(stat(&stats, "sheds"), sheds, "metrics agree with replies");
    assert_eq!(
        stat(&stats, "sheds"),
        stat(&stats, "shed_oversize")
            + stat(&stats, "shed_queue_full")
            + stat(&stats, "shed_deadline")
            + stat(&stats, "shed_closed")
    );
    assert_eq!(stat(&stats, "budget"), budget);
    assert_eq!(stat(&stats, "in_flight"), 0, "burst fully drained");
    assert_eq!(stat(&stats, "queue_depth"), 0, "no parked waiters");
    assert!(stat(&stats, "peak_in_flight") >= unit_cost);
    assert_eq!(stat(&stats, "faults_injected"), 3);
    assert_eq!(stat(&stats, "admitted"), ok + errors);

    // Cache accounting: distinct names, so phase 1 had no coalescing —
    // every admitted request took a reservation (ok renders plus the two
    // panicked attempts), nothing hit or waited.
    assert_eq!(stat(&stats, "misses"), ok + errors);
    assert_eq!(stat(&stats, "hits"), 0);
    assert_eq!(stat(&stats, "waits"), 0);
    assert_eq!(renders.load(Ordering::SeqCst), ok, "one render per ok");

    // Phase 2: repeating the successful names is pure cache hits —
    // misses do not move, proving each unique request computed once.
    let succeeded = ok_names.into_inner().unwrap();
    for name in &succeeded {
        client.request(&artefact_req(name)).expect("cached");
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stat(&stats, "misses"), ok + errors, "no recomputation");
    assert_eq!(stat(&stats, "hits"), succeeded.len() as u64);
    assert_eq!(renders.load(Ordering::SeqCst), ok);

    // Clean shutdown with the connection still open.
    client.shutdown().expect("shutdown");
    let final_stats = join.join().expect("server thread joins");
    assert_eq!(stat(&final_stats, "queue_depth"), 0);
    assert_eq!(stat(&final_stats, "in_flight"), 0);
}

/// Exactly-once computation under an injected panic with same-key
/// concurrency: the first worker stalls (so waiters pile up) and dies;
/// one waiter takes over, computes once, and everyone else gets its
/// result.
#[test]
fn injected_panic_hands_computation_to_a_waiter_exactly_once() {
    const CLIENTS: usize = 6;
    let faults = FaultPlan::new();
    faults.stall_next(1, Duration::from_millis(80));
    faults.panic_next(1);
    let renders = Arc::new(AtomicU64::new(0));
    let (port, handle, join) = boot(
        ServeOptions {
            workers: CLIENTS + 1,
            faults: faults.clone(),
            ..ServeOptions::default()
        },
        slow_registry(Arc::clone(&renders), 30),
    );

    let start = Barrier::new(CLIENTS);
    let outcomes: Vec<Result<String, String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let start = &start;
                s.spawn(move || {
                    let mut client = Client::connect(("127.0.0.1", port)).expect("connect");
                    start.wait();
                    match client.request(&artefact_req("b0")) {
                        Ok(doc) => Ok(doc
                            .get("bytes")
                            .and_then(Json::as_str)
                            .expect("bytes")
                            .to_owned()),
                        Err(ClientError::Server(msg)) => Err(msg),
                        Err(other) => panic!("untyped outcome: {other}"),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("thread"))
            .collect()
    });

    let failed: Vec<_> = outcomes.iter().filter_map(|o| o.as_ref().err()).collect();
    let served: Vec<_> = outcomes.iter().filter_map(|o| o.as_ref().ok()).collect();
    assert_eq!(failed.len(), 1, "exactly the panicked leader errors");
    assert!(failed[0].contains("injected fault"), "{}", failed[0]);
    assert_eq!(served.len(), CLIENTS - 1);
    assert!(served.iter().all(|text| *text == served[0]), "one result");
    assert_eq!(
        renders.load(Ordering::SeqCst),
        1,
        "the successful render ran exactly once despite the panic"
    );

    let mut client = Client::connect(("127.0.0.1", port)).expect("connect");
    let stats = client.stats().expect("stats");
    // Two reservations (panicked leader + recovering waiter); the other
    // clients waited or hit, never computed.
    assert_eq!(stat(&stats, "misses"), 2);
    assert_eq!(
        stat(&stats, "waits") + stat(&stats, "hits"),
        CLIENTS as u64 - 1
    );

    handle.shutdown();
    join.join().expect("server thread");
}

/// Injected reservation abandonment (a worker dying between reserving a
/// key and computing it) fails the one request with a typed error and
/// leaves the cache healthy: the retry recomputes normally.
#[test]
fn injected_abandonment_fails_once_and_recovers() {
    let faults = FaultPlan::new();
    faults.abandon_next(1);
    let renders = Arc::new(AtomicU64::new(0));
    let (port, handle, join) = boot(
        ServeOptions {
            faults: faults.clone(),
            ..ServeOptions::default()
        },
        slow_registry(Arc::clone(&renders), 5),
    );

    let mut client = Client::connect(("127.0.0.1", port)).expect("connect");
    let err = client
        .request(&artefact_req("b3"))
        .expect_err("armed abandonment");
    match err {
        ClientError::Server(msg) => assert!(msg.contains("injected abandonment"), "{msg}"),
        other => panic!("untyped outcome: {other}"),
    }
    assert_eq!(
        renders.load(Ordering::SeqCst),
        0,
        "abandoned before compute"
    );

    // The same request now computes normally — the abandoned reservation
    // did not wedge the key.
    let doc = client.request(&artefact_req("b3")).expect("retry");
    assert!(doc
        .get("bytes")
        .and_then(Json::as_str)
        .unwrap()
        .contains("b3"));
    assert_eq!(renders.load(Ordering::SeqCst), 1);
    assert_eq!(faults.injected(), (0, 0, 1));

    let stats = client.stats().expect("stats");
    assert_eq!(stat(&stats, "misses"), 2, "both attempts reserved");
    assert_eq!(stat(&stats, "faults_injected"), 1);

    handle.shutdown();
    join.join().expect("server thread");
}

/// Backoff end-to-end at budget capacity one: a held budget sheds the
/// second client immediately (queue capacity zero), the `estimate` op
/// still answers during full occupancy with `admit_now == false`, and
/// `request_with_backoff` honors `retry_after_ms` until capacity frees.
#[test]
fn backoff_client_retries_through_overload_to_success() {
    let model = CostModel::committed();
    let unit_cost = model.artefact_cost(Scale::Test);
    let renders = Arc::new(AtomicU64::new(0));
    let (port, handle, join) = boot(
        ServeOptions {
            workers: 4,
            cost_budget: unit_cost, // one artefact at a time
            queue_cap: 0,           // shed immediately, never queue
            faults: FaultPlan::new(),
            ..ServeOptions::default()
        },
        slow_registry(Arc::clone(&renders), 200),
    );

    std::thread::scope(|s| {
        // Holder: occupies the whole budget for ~200 ms.
        s.spawn(|| {
            let mut holder = Client::connect(("127.0.0.1", port)).expect("connect");
            holder.request(&artefact_req("b7")).expect("holder served");
        });
        std::thread::sleep(Duration::from_millis(60));

        let mut client = Client::connect(("127.0.0.1", port)).expect("connect");
        // Control plane during full occupancy: estimate answers, matches
        // the committed table, and reports the request would not admit.
        let est = client.estimate(&artefact_req("b8")).expect("estimate");
        assert_eq!(est.get("cost").and_then(Json::as_u64), Some(unit_cost));
        assert_eq!(
            est.get("admit_now").and_then(Json::as_bool),
            Some(false),
            "budget is fully occupied: {est:?}"
        );

        // A plain request sheds with a typed, actionable hint...
        match client.request(&artefact_req("b8")) {
            Err(ClientError::Overloaded { retry_after_ms, .. }) => {
                assert!(retry_after_ms >= 1)
            }
            other => panic!("expected a shed, got {other:?}"),
        }
        // ...and the backoff loop rides the hint to eventual success.
        let doc = client
            .request_with_backoff(&artefact_req("b8"), 20)
            .expect("admitted once the holder drains");
        assert!(doc.get("bytes").is_some());
    });

    let mut client = Client::connect(("127.0.0.1", port)).expect("connect");
    let stats = client.stats().expect("stats");
    assert!(stat(&stats, "sheds") >= 2, "{stats:?}");
    assert_eq!(stat(&stats, "shed_queue_full"), stat(&stats, "sheds"));
    assert_eq!(renders.load(Ordering::SeqCst), 2);

    handle.shutdown();
    join.join().expect("server thread");
}

/// ISSUE-9 trace completeness under overload: the shed (queue-deadline
/// expired), the truncated teardown (a partial line on a connection the
/// idle reaper closes — EOF would instead serve the tail), and the
/// served occupier all leave complete records in the trace ring, each
/// satisfying the lifecycle invariants — monotone phases and
/// `queue_wait_us == dispatched_us - admitted_us`.
#[test]
fn overload_and_truncation_leave_complete_trace_records() {
    use std::time::Instant;

    let model = CostModel::committed();
    let budget = model.artefact_cost(Scale::Test); // fits exactly one
    let renders = Arc::new(AtomicU64::new(0));
    let (port, handle, join) = boot(
        ServeOptions {
            workers: 2,
            cost_budget: budget,
            queue_cap: 4,
            queue_deadline: Duration::from_millis(80),
            // Short enough to reap the mid-line connection while the
            // test runs; executing and parked connections cancel their
            // idle timer, so the occupier is safe.
            idle_timeout: Duration::from_millis(200),
            ..ServeOptions::default()
        },
        slow_registry(Arc::clone(&renders), 500),
    );

    // Conn A occupies the whole budget for ~500 ms.
    let occupier = std::thread::spawn(move || {
        let mut a = Client::connect(("127.0.0.1", port)).expect("connect A");
        a.request(&artefact_req(BURST_NAMES[0])).expect("A serves")
    });
    std::thread::sleep(Duration::from_millis(120)); // A admitted, executing

    // Conn B parks in the admission queue, then sheds at the deadline.
    let mut b = Client::connect(("127.0.0.1", port)).expect("connect B");
    match b.request(&artefact_req(BURST_NAMES[1])) {
        Err(ClientError::Overloaded { retry_after_ms, .. }) => {
            assert!(retry_after_ms >= 1, "hint must be actionable")
        }
        other => panic!("B must shed at the queue deadline: {other:?}"),
    }

    // Conn C sends a partial request (no newline) and then just sits
    // there holding the socket open: the idle reaper closes it mid-line,
    // which must synthesize a complete `truncated` record. (Closing the
    // socket ourselves would send EOF, and the daemon deliberately serves
    // a final unterminated request at EOF instead of discarding it.)
    let mut c = std::net::TcpStream::connect(("127.0.0.1", port)).expect("connect C");
    {
        use std::io::Write;
        c.write_all(b"{\"op\":\"sta").expect("partial line");
    }

    occupier.join().expect("occupier thread");

    // The truncated record lands asynchronously when the event loop reaps
    // conn C; poll the ring until all three outcomes are present.
    let mut t = Client::connect(("127.0.0.1", port)).expect("connect");
    let deadline = Instant::now() + Duration::from_secs(5);
    let traces = loop {
        let traces = t.trace().expect("trace");
        let has = |outcome: &str| {
            traces
                .iter()
                .any(|r| r.get("outcome").and_then(Json::as_str) == Some(outcome))
        };
        if has("ok") && has("overloaded") && has("truncated") {
            break traces;
        }
        assert!(
            Instant::now() < deadline,
            "missing expected outcomes in {traces:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    };

    let us = |r: &Json, key: &str| {
        r.get(key)
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("trace record lacks `{key}`: {r:?}"))
    };
    for r in &traces {
        let phases = [
            us(r, "received_us"),
            us(r, "parsed_us"),
            us(r, "admitted_us"),
            us(r, "dispatched_us"),
            us(r, "executed_us"),
            us(r, "flushed_us"),
        ];
        assert!(phases.windows(2).all(|w| w[0] <= w[1]), "{r:?}");
        assert_eq!(
            us(r, "queue_wait_us"),
            us(r, "dispatched_us") - us(r, "admitted_us"),
            "{r:?}"
        );
    }
    fn outcome(r: &Json) -> &str {
        r.get("outcome").and_then(Json::as_str).unwrap_or("")
    }
    let shed = traces
        .iter()
        .find(|r| outcome(r) == "overloaded")
        .expect("shed record");
    assert_eq!(shed.get("op").and_then(Json::as_str), Some("artefact"));
    // The shed collapses at the shed instant, after the ~80 ms park.
    assert_eq!(us(shed, "queue_wait_us"), 0);
    assert!(
        us(shed, "admitted_us") - us(shed, "parsed_us") >= 40_000,
        "the deadline park must be visible between parsed and the shed \
         instant: {shed:?}"
    );
    let truncated = traces
        .iter()
        .find(|r| outcome(r) == "truncated")
        .expect("truncated record");
    assert_eq!(truncated.get("op").and_then(Json::as_str), Some("unknown"));
    assert_eq!(us(truncated, "queue_wait_us"), 0);
    let served = traces
        .iter()
        .find(|r| outcome(r) == "ok" && r.get("op").and_then(Json::as_str) == Some("artefact"))
        .expect("served record");
    assert_eq!(served.get("cache").and_then(Json::as_str), Some("miss"));
    // A real execution: the worker phase has nonzero width.
    assert!(
        us(served, "executed_us") > us(served, "dispatched_us"),
        "{served:?}"
    );

    drop(c); // the reaper beat us to it; this is just cleanup
    handle.shutdown();
    join.join().expect("server thread");
}
