//! Property suites over the cost model (deterministic vendored proptest):
//!
//! * **Monotonicity** — for every op class, the estimated cost never
//!   decreases when a load parameter grows (test→paper scale, more
//!   arrays, wider sweeps, longer sources), at the *committed*
//!   coefficients and at arbitrary valid coefficient tables alike. A
//!   bigger request estimating cheaper than a smaller one would invert
//!   admission control's whole premise.
//! * **Estimate/charge agreement** — the `estimate` reply and the
//!   admission controller's internal charge come from the same
//!   [`CostModel::charge`]; these properties pin that the public
//!   per-class formulas and `charge` can never drift apart for any
//!   request shape.

use mve_kernels::Scale;
use mve_serve::cost::{CostModel, OpClass, DEFAULT_ARRAYS};
use mve_serve::protocol::{Request, SimSpec, MAX_ARRAYS, MAX_COMPILE_SOURCE_BYTES};
use proptest::prelude::*;

/// A valid coefficient table derived from a seed: finite, non-negative,
/// `scale_paper_mult ≥ 1` — exactly the class `CostModel::from_json`
/// admits. Spans several orders of magnitude so degenerate corners
/// (zero slopes, huge multipliers) are exercised.
fn arb_model(seed: u64) -> CostModel {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    // Map a word onto [0, 10^(k-4)) with a 1-in-8 chance of exactly zero.
    let mut coeff = |k: u32| {
        let word = next();
        if word % 8 == 0 {
            0.0
        } else {
            (word % 1_000_000) as f64 / 10f64.powi(4 - k as i32) / 1_000_000.0
        }
    };
    CostModel {
        artefact_test_us: coeff(6),
        scale_paper_mult: 1.0 + coeff(3),
        sim_exec_test_us: coeff(6),
        sweep_per_config_us: coeff(5),
        arrays_slope_per_array: coeff(1),
        compile_base_us: coeff(4),
        compile_per_byte_us: coeff(1),
    }
}

fn models(seed: u64) -> [CostModel; 2] {
    [CostModel::committed().clone(), arb_model(seed)]
}

proptest! {
    /// Artefact cost is monotone in scale, for the committed table and
    /// arbitrary valid tables.
    #[test]
    fn artefact_cost_is_monotone_in_scale(seed in 0u64..u64::MAX) {
        for m in models(seed) {
            prop_assert!(m.artefact_cost(Scale::Paper) >= m.artefact_cost(Scale::Test));
        }
    }

    /// Sim/sweep cost is monotone in scale, arrays, and sweep width.
    #[test]
    fn sweep_cost_is_monotone_in_every_load_parameter(
        seed in 0u64..u64::MAX,
        arrays_lo in 1usize..=MAX_ARRAYS,
        arrays_hi in 1usize..=MAX_ARRAYS,
        width_lo in 1usize..=512,
        width_hi in 1usize..=512,
    ) {
        let (a_lo, a_hi) = (arrays_lo.min(arrays_hi), arrays_lo.max(arrays_hi));
        let (w_lo, w_hi) = (width_lo.min(width_hi), width_lo.max(width_hi));
        for m in models(seed) {
            prop_assert!(m.sim_cost(Scale::Paper, a_lo) >= m.sim_cost(Scale::Test, a_lo));
            prop_assert!(
                m.sweep_cost(Scale::Test, a_hi, w_lo) >= m.sweep_cost(Scale::Test, a_lo, w_lo),
                "arrays {a_lo}->{a_hi} must not cheapen the walk"
            );
            prop_assert!(
                m.sweep_cost(Scale::Test, a_lo, w_hi) >= m.sweep_cost(Scale::Test, a_lo, w_lo),
                "width {w_lo}->{w_hi} must not cheapen the sweep"
            );
            // A sim request is exactly the width-1 sweep.
            prop_assert_eq!(m.sim_cost(Scale::Test, a_lo), m.sweep_cost(Scale::Test, a_lo, 1));
        }
    }

    /// Compile cost is monotone in source length.
    #[test]
    fn compile_cost_is_monotone_in_source_length(
        seed in 0u64..u64::MAX,
        len_lo in 0usize..=MAX_COMPILE_SOURCE_BYTES,
        len_hi in 0usize..=MAX_COMPILE_SOURCE_BYTES,
    ) {
        let (lo, hi) = (len_lo.min(len_hi), len_lo.max(len_hi));
        for m in models(seed) {
            prop_assert!(m.compile_cost(hi) >= m.compile_cost(lo));
        }
    }

    /// `charge` — the number the admission controller levies and the
    /// `estimate` op replies with — agrees with the public per-class
    /// formulas for every request shape, and every charge is ≥ 1 (a
    /// zero-cost request would be invisible to the budget).
    #[test]
    fn charge_agrees_with_the_public_formulas(
        seed in 0u64..u64::MAX,
        paper in any::<bool>(),
        arrays_raw in 0usize..=MAX_ARRAYS,
        source_len in 0usize..=4096,
    ) {
        let scale = if paper { Scale::Paper } else { Scale::Test };
        // 0 stands in for "no override" (the protocol default).
        let arrays = (arrays_raw > 0).then_some(arrays_raw);
        let spec = SimSpec { arrays, ..SimSpec::default() };
        let artefact = Request::Artefact { name: "fig10".to_owned(), scale };
        let sim = Request::Sim { kernel: "gemm".to_owned(), scale, spec: spec.clone() };
        let compile = Request::Compile { source: "k".repeat(source_len), spec };
        for m in models(seed) {
            let est = m.charge(&artefact).expect("artefact is chargeable");
            prop_assert_eq!(est.class, OpClass::Artefact);
            prop_assert_eq!(est.cost, m.artefact_cost(scale));
            let est = m.charge(&sim).expect("sim is chargeable");
            prop_assert_eq!(est.class, OpClass::Sim);
            prop_assert_eq!(est.cost, m.sim_cost(scale, arrays.unwrap_or(DEFAULT_ARRAYS)));
            let est = m.charge(&compile).expect("compile is chargeable");
            prop_assert_eq!(est.class, OpClass::Compile);
            prop_assert_eq!(est.cost, m.compile_cost(source_len));
            for req in [&artefact, &sim, &compile] {
                let est = m.charge(req).expect("chargeable");
                prop_assert!(est.cost >= 1, "charges are never invisible: {est:?}");
                // The estimate op wraps the same request; pricing the
                // wrapper is a category error and must yield no charge.
                prop_assert!(m.charge(&Request::Estimate(Box::new(req.clone()))).is_none());
            }
        }
    }

    /// Coefficient tables survive the serialize/parse round trip with
    /// at most the documented 3-decimal rounding, so `calibrate --write`
    /// followed by a drift check compares like with like.
    #[test]
    fn tables_round_trip_within_rounding(seed in 0u64..u64::MAX) {
        let model = arb_model(seed);
        let parsed = CostModel::from_json(&model.to_json())
            .unwrap_or_else(|e| panic!("round trip failed: {e}"));
        for (a, b) in [
            (model.artefact_test_us, parsed.artefact_test_us),
            (model.scale_paper_mult, parsed.scale_paper_mult),
            (model.sim_exec_test_us, parsed.sim_exec_test_us),
            (model.sweep_per_config_us, parsed.sweep_per_config_us),
            (model.arrays_slope_per_array, parsed.arrays_slope_per_array),
            (model.compile_base_us, parsed.compile_base_us),
            (model.compile_per_byte_us, parsed.compile_per_byte_us),
        ] {
            prop_assert!((a - b).abs() <= 0.0005 + 1e-9, "{a} vs {b}");
        }
    }
}
