//! Loopback integration tests: a real server on an ephemeral port, real
//! TCP clients, a rigged artefact registry (so timing is controllable) and
//! real kernel simulations.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mve_core::sim::simulate;
use mve_insram::Scheme;
use mve_kernels::registry::kernel_by_name;
use mve_kernels::Scale;
use mve_serve::client::Client;
use mve_serve::json::Json;
use mve_serve::protocol::{report_to_json, scale_name, SimSpec};
use mve_serve::server::{ArtefactFn, ArtefactRegistry, ServeOptions, Server};

/// A registry of two deterministic artefacts; `renders` counts invocations
/// so tests can prove the exactly-once property independently of the
/// counters.
fn rigged_registry(renders: Arc<AtomicU64>) -> ArtefactRegistry {
    let alpha: ArtefactFn = {
        let renders = Arc::clone(&renders);
        Arc::new(move |scale| {
            renders.fetch_add(1, Ordering::SeqCst);
            format!(
                "alpha artefact at {} scale\nsecond line ≥µ\n",
                scale_name(scale)
            )
        })
    };
    let slow: ArtefactFn = {
        let renders = Arc::clone(&renders);
        Arc::new(move |scale| {
            renders.fetch_add(1, Ordering::SeqCst);
            // Long enough that concurrent requesters pile onto the
            // in-flight slot instead of each rendering.
            std::thread::sleep(std::time::Duration::from_millis(30));
            format!("slow artefact at {} scale\n", scale_name(scale))
        })
    };
    ArtefactRegistry::new(vec![("alpha", alpha), ("slow", slow)])
}

fn boot(
    workers: usize,
    cache_cap: usize,
    renders: Arc<AtomicU64>,
) -> (
    u16,
    mve_serve::ShutdownHandle,
    std::thread::JoinHandle<Json>,
) {
    let server = Server::bind(
        &ServeOptions {
            port: 0,
            workers,
            cache_cap,
            ..ServeOptions::default()
        },
        rigged_registry(renders),
    )
    .expect("bind ephemeral port");
    let port = server.port();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (port, handle, join)
}

fn stat(stats: &Json, key: &str) -> u64 {
    stats
        .get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats lack `{key}`: {stats:?}"))
}

/// N concurrent clients with overlapping artefact and sim request sets:
/// every response is byte-identical to the direct computation and every
/// unique (request, config) is computed exactly once.
#[test]
fn concurrent_overlapping_clients_share_one_computation_per_unique_request() {
    const CLIENTS: u64 = 6;
    let renders = Arc::new(AtomicU64::new(0));
    let (port, _handle, join) = boot(4, 256, Arc::clone(&renders));

    // Direct ground truth for the sim responses: same kernel, two configs.
    let specs = [
        SimSpec::default(),
        SimSpec {
            scheme: Scheme::BitParallel,
            ooo_dispatch: true,
            ..SimSpec::default()
        },
    ];
    let expected_reports: Vec<String> = specs
        .iter()
        .map(|spec| {
            let run = kernel_by_name("csum")
                .expect("csum exists")
                .run_mve(Scale::Test);
            assert!(run.checked.ok());
            report_to_json(&simulate(&run.trace, &spec.to_config())).encode()
        })
        .collect();

    std::thread::scope(|s| {
        for _ in 0..CLIENTS {
            let expected_reports = expected_reports.clone();
            let specs = specs.clone();
            s.spawn(move || {
                let mut client = Client::connect(("127.0.0.1", port)).expect("connect");
                // Overlapping artefact set, both scales of one name.
                for _ in 0..2 {
                    let text = client.artefact("slow", Scale::Test).expect("slow");
                    assert_eq!(text, "slow artefact at test scale\n");
                    let text = client.artefact("alpha", Scale::Test).expect("alpha");
                    assert_eq!(text, "alpha artefact at test scale\nsecond line ≥µ\n");
                    let text = client.artefact("alpha", Scale::Paper).expect("alpha paper");
                    assert_eq!(text, "alpha artefact at paper scale\nsecond line ≥µ\n");
                }
                // Overlapping sims: same kernel, two configs.
                for (spec, want) in specs.iter().zip(&expected_reports) {
                    let report = client.sim("csum", Scale::Test, spec.clone()).expect("sim");
                    assert_eq!(report.encode(), *want, "server must match direct simulate");
                }
            });
        }
    });

    // 4 unique keys: slow@test, alpha@test, alpha@paper, 2 sim configs = 5.
    assert_eq!(
        renders.load(Ordering::SeqCst),
        3,
        "each unique artefact rendered exactly once"
    );
    let mut client = Client::connect(("127.0.0.1", port)).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(
        stat(&stats, "misses"),
        5,
        "5 unique keys computed once each"
    );
    let total_cacheable = CLIENTS * (6 + 2); // 6 artefact + 2 sim requests each
    assert_eq!(
        stat(&stats, "hits") + stat(&stats, "waits"),
        total_cacheable - 5,
        "everything else was served from cache or by waiting"
    );
    assert_eq!(stat(&stats, "errors"), 0);
    assert_eq!(stat(&stats, "artefact_requests"), CLIENTS * 6);
    assert_eq!(stat(&stats, "sim_requests"), CLIENTS * 2);

    client.shutdown().expect("shutdown");
    let final_stats = join.join().expect("server thread");
    assert!(stat(&final_stats, "requests") >= total_cacheable);
}

/// Error replies are typed, keep the connection open, and quote the shared
/// sorted vocabularies.
#[test]
fn typed_error_replies_keep_the_connection_usable() {
    let renders = Arc::new(AtomicU64::new(0));
    let (port, handle, join) = boot(2, 16, Arc::clone(&renders));
    let mut client = Client::connect(("127.0.0.1", port)).expect("connect");

    // Unknown artefact: sorted vocabulary.
    let err = client.artefact("beta", Scale::Test).expect_err("unknown");
    let msg = err.to_string();
    assert!(msg.contains("unknown artefact `beta`"), "{msg}");
    assert!(msg.contains("alpha, slow"), "{msg}");

    // Unknown kernel: the registry's message, sorted.
    let err = client
        .sim("gemmm", Scale::Test, SimSpec::default())
        .expect_err("typo");
    let msg = err.to_string();
    assert!(msg.contains("unknown kernel `gemmm`"), "{msg}");
    assert!(msg.contains("adler32"), "{msg}");
    let pos_csum = msg.find("csum").expect("csum listed");
    let pos_gemm = msg.find("gemm,").expect("gemm listed");
    assert!(pos_csum < pos_gemm, "sorted vocabulary");

    // Malformed JSON and unknown ops are errors, not disconnects.
    for (bad, needle) in [
        ("{not json", "invalid JSON"),
        (r#"{"op":"simulate"}"#, "unknown op"),
        (r#"{"kernel":"x"}"#, "`op`"),
    ] {
        let msg = expect_error_reply(port, bad);
        assert!(msg.contains(needle), "{bad}: {msg}");
    }

    // The same connection still serves good requests afterwards.
    let text = client.artefact("alpha", Scale::Test).expect("still usable");
    assert!(text.starts_with("alpha artefact"));
    let stats = client.stats().expect("stats");
    assert!(stat(&stats, "errors") >= 5);

    handle.shutdown();
    join.join().expect("server thread");
}

/// Sends one raw line on a fresh connection; the server must answer with a
/// typed error reply (not a disconnect) whose message is returned.
fn expect_error_reply(port: u16, line: &str) -> String {
    use std::io::{BufRead, BufReader, Write};
    let mut stream = std::net::TcpStream::connect(("127.0.0.1", port)).expect("connect");
    stream
        .write_all(format!("{line}\n").as_bytes())
        .expect("send");
    let mut reply = String::new();
    let n = BufReader::new(stream).read_line(&mut reply).expect("read");
    assert!(n > 0, "server closed the connection on: {line}");
    match mve_serve::protocol::parse_response(reply.trim_end()) {
        Ok(doc) => panic!("expected an error reply for {line}, got {doc:?}"),
        Err(msg) => msg,
    }
}

/// The LRU cap bounds resident results; evicted artefacts re-render.
#[test]
fn cache_cap_evicts_and_recomputes() {
    let renders = Arc::new(AtomicU64::new(0));
    let (port, handle, join) = boot(2, 1, Arc::clone(&renders));
    let mut client = Client::connect(("127.0.0.1", port)).expect("connect");

    client.artefact("alpha", Scale::Test).expect("alpha");
    client
        .artefact("slow", Scale::Test)
        .expect("slow evicts alpha");
    client.artefact("alpha", Scale::Test).expect("alpha again");
    assert_eq!(
        renders.load(Ordering::SeqCst),
        3,
        "cap 1 forces a re-render of the evicted artefact"
    );
    let stats = client.stats().expect("stats");
    assert!(stat(&stats, "evictions") >= 1);

    handle.shutdown();
    join.join().expect("server thread");
}

/// An idle connection is closed at the idle deadline, freeing its worker
/// for other clients instead of pinning it forever.
#[test]
fn idle_connections_are_released_at_the_deadline() {
    use std::io::Read;
    let renders = Arc::new(AtomicU64::new(0));
    let server = Server::bind(
        &ServeOptions {
            port: 0,
            workers: 1, // a single worker: an unpinned pool is observable
            cache_cap: 16,
            idle_timeout: std::time::Duration::from_millis(200),
            ..ServeOptions::default()
        },
        rigged_registry(Arc::clone(&renders)),
    )
    .expect("bind");
    let port = server.port();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());

    // A silent connection occupies the only worker...
    let mut silent = std::net::TcpStream::connect(("127.0.0.1", port)).expect("connect");
    // ...until the deadline passes and the server closes it (EOF on read).
    let mut buf = [0u8; 8];
    silent
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .expect("timeout");
    assert_eq!(silent.read(&mut buf).expect("closed cleanly"), 0);

    // The freed worker now serves a real client.
    let mut client = Client::connect(("127.0.0.1", port)).expect("connect");
    let text = client.artefact("alpha", Scale::Test).expect("served");
    assert!(text.starts_with("alpha artefact"));

    handle.shutdown();
    join.join().expect("server thread");
}

/// The shutdown handle (the SIGTERM/stdin-EOF path) stops a server that
/// has live idle connections.
#[test]
fn shutdown_handle_stops_a_server_with_idle_connections() {
    let renders = Arc::new(AtomicU64::new(0));
    let (port, handle, join) = boot(2, 16, renders);
    let mut idle = Client::connect(("127.0.0.1", port)).expect("connect");
    idle.artefact("alpha", Scale::Test).expect("alpha");
    // Leave the connection open and idle; shutdown must still complete.
    handle.shutdown();
    let stats = join.join().expect("server thread joins despite idle conn");
    assert_eq!(stat(&stats, "artefact_requests"), 1);
}

/// The `compile` op end-to-end: a client ships DSL source, the daemon
/// parses/lowers/executes/times it behind the single-flight cache keyed on
/// source digest + config, and diagnostics come back typed with line/col.
#[test]
fn compile_op_caches_by_source_digest_and_config() {
    let renders = Arc::new(AtomicU64::new(0));
    let (port, handle, join) = boot(2, 64, renders);
    let addr = ("127.0.0.1", port);
    let mut client = Client::connect(addr).expect("connect");

    let source = r#"
kernel scale3(x: buf<i32>[512], out: mut buf<i32>[512]) {
    shape [512];
    let v = load x [1];
    store v * 3 -> out [1];
}
"#;
    let first = client.compile(source, SimSpec::default()).expect("compile");
    assert!(first.contains("mvel kernel `scale3`"), "{first}");
    assert!(first.contains("mismatches=0"), "{first}");

    // Same source + same config: a cache hit with identical bytes.
    let again = client.compile(source, SimSpec::default()).expect("hit");
    assert_eq!(again, first);

    // Same source, different scheme: a distinct computation.
    let bp = client
        .compile(
            source,
            SimSpec {
                scheme: Scheme::BitParallel,
                ..SimSpec::default()
            },
        )
        .expect("BP compile");
    assert_ne!(bp, first);
    assert!(bp.contains("scheme=BP"), "{bp}");

    // And the local render is byte-identical to the daemon's (one shared
    // render function, like the artefact registry).
    let local = mve_lang::compile_and_render(source, &SimSpec::default().to_config())
        .expect("local render");
    assert_eq!(local, first);

    // A parse error carries its position as typed members, and the
    // connection stays usable afterwards.
    let broken = "kernel b(o: mut buf<i32>[4]) {\n    store z -> o [1];\n}";
    let err = client
        .compile(broken, SimSpec::default())
        .expect_err("unknown value");
    let msg = err.to_string();
    assert!(msg.contains("2:"), "diag must carry line 2: {msg}");
    assert!(msg.contains("unknown value `z`"), "{msg}");

    let stats = client.stats().expect("stats");
    assert_eq!(stat(&stats, "compile_requests"), 4);
    assert_eq!(stat(&stats, "errors"), 1);
    // 2 unique compile computations + 1 abandoned error reservation = 3
    // misses; the repeat was the 1 hit.
    assert_eq!(stat(&stats, "misses"), 3);
    assert_eq!(stat(&stats, "hits"), 1);

    handle.shutdown();
    join.join().expect("server thread");
}

/// A newline-less byte stream larger than the request-line cap is cut off
/// *while being read* — connection buffers stay bounded, the connection
/// drops, and the daemon keeps serving others.
#[test]
fn oversized_request_lines_are_rejected_while_reading() {
    use std::io::{Read, Write};
    let renders = Arc::new(AtomicU64::new(0));
    let (port, handle, join) = boot(2, 16, renders);
    let addr = ("127.0.0.1", port);

    let mut hostile = std::net::TcpStream::connect(addr).expect("connect");
    let chunk = vec![b'x'; 1 << 20];
    let mut dropped = false;
    for _ in 0..12 {
        if hostile.write_all(&chunk).is_err() {
            dropped = true; // server closed mid-send: limit enforced
            break;
        }
    }
    if !dropped {
        // Server consumed up to the cap then closed; the read side must
        // see the (best-effort) error reply or EOF/reset, never a hang.
        hostile
            .set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .expect("timeout");
        let mut buf = [0u8; 256];
        match hostile.read(&mut buf) {
            Ok(0) | Err(_) => {}
            Ok(n) => {
                let reply = String::from_utf8_lossy(&buf[..n]);
                assert!(reply.contains("size limit"), "{reply}");
            }
        }
    }
    drop(hostile);

    // The daemon is still healthy for well-behaved clients.
    let mut client = Client::connect(addr).expect("connect after hostile peer");
    let text = client.artefact("alpha", Scale::Test).expect("artefact");
    assert!(text.contains("alpha artefact"));

    handle.shutdown();
    join.join().expect("server thread");
}

/// A partial request line pending at shutdown is discarded — but no
/// longer silently: the `truncated_requests` counter records it.
#[test]
fn partial_line_at_shutdown_is_counted_not_silently_dropped() {
    use std::io::Write;
    let renders = Arc::new(AtomicU64::new(0));
    let (port, handle, join) = boot(2, 16, renders);

    // A healthy request first, so the worker is demonstrably serving this
    // connection when the partial line arrives.
    let mut client = Client::connect(("127.0.0.1", port)).expect("connect");
    client.artefact("alpha", Scale::Test).expect("alpha");

    // Half a request, no newline — then shutdown while the server is
    // mid-line. The teardown must account for the discarded partial.
    let mut raw = std::net::TcpStream::connect(("127.0.0.1", port)).expect("connect raw");
    raw.write_all(br#"{"op":"artefact","name":"al"#)
        .expect("send partial");
    raw.flush().expect("flush");
    std::thread::sleep(std::time::Duration::from_millis(150));
    handle.shutdown();
    let stats = join.join().expect("server thread");
    assert_eq!(
        stat(&stats, "truncated_requests"),
        1,
        "the discarded partial line must be counted: {stats:?}"
    );
    // It was never parsed, so it is not a request or an error.
    assert_eq!(stat(&stats, "requests"), 1, "only the artefact request");
    assert_eq!(stat(&stats, "errors"), 0);
}

/// The client-side request deadline: a daemon that accepts but never
/// replies produces a typed `TimedOut`, not an eternal block.
#[test]
fn client_request_timeout_is_typed() {
    use std::time::Duration;
    // A listener that accepts and then ignores the socket entirely.
    let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).expect("bind");
    let port = listener.local_addr().expect("addr").port();
    let hold = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        std::thread::sleep(Duration::from_secs(2));
        drop(stream);
    });

    let mut client = Client::connect_with_timeout(("127.0.0.1", port), Duration::from_millis(200))
        .expect("connect");
    let err = client
        .request(&mve_serve::Request::Stats)
        .expect_err("no reply is coming");
    match err {
        mve_serve::ClientError::TimedOut { after } => {
            assert_eq!(after, Duration::from_millis(200));
        }
        other => panic!("expected TimedOut, got {other}"),
    }
    hold.join().expect("holder thread");
}

/// The `estimate` op prices without executing: the render counter stays
/// at zero, the reported cost matches the committed table, and the real
/// request is then admitted and served.
#[test]
fn estimate_op_prices_without_executing() {
    let renders = Arc::new(AtomicU64::new(0));
    let (port, handle, join) = boot(2, 16, Arc::clone(&renders));
    let mut client = Client::connect(("127.0.0.1", port)).expect("connect");

    let req = mve_serve::Request::Artefact {
        name: "slow".to_owned(),
        scale: Scale::Paper,
    };
    let est = client.estimate(&req).expect("estimate");
    assert_eq!(est.get("class").and_then(Json::as_str), Some("artefact"));
    let model = mve_serve::CostModel::committed();
    assert_eq!(
        est.get("cost").and_then(Json::as_u64),
        Some(model.artefact_cost(Scale::Paper)),
        "estimate reply must match the committed cost table"
    );
    assert_eq!(
        est.get("admit_now").and_then(Json::as_bool),
        Some(true),
        "an idle default-budget daemon admits anything"
    );
    assert_eq!(
        renders.load(Ordering::SeqCst),
        0,
        "estimate must not execute"
    );

    // Sim estimates price the spec'd geometry, also without executing.
    let sim = mve_serve::Request::Sim {
        kernel: "csum".to_owned(),
        scale: Scale::Test,
        spec: SimSpec {
            arrays: Some(64),
            ..SimSpec::default()
        },
    };
    let est = client.estimate(&sim).expect("sim estimate");
    assert_eq!(
        est.get("cost").and_then(Json::as_u64),
        Some(model.sim_cost(Scale::Test, 64))
    );

    let stats = client.stats().expect("stats");
    assert_eq!(stat(&stats, "estimate_requests"), 2);
    assert_eq!(stat(&stats, "sim_requests"), 0);
    assert_eq!(stat(&stats, "artefact_requests"), 0);

    // The priced request then actually runs.
    let text = client.artefact("slow", Scale::Paper).expect("artefact");
    assert!(text.contains("slow artefact"));
    assert_eq!(renders.load(Ordering::SeqCst), 1);

    handle.shutdown();
    join.join().expect("server thread");
}

/// A fresh daemon has made zero cache fetches; `hit_rate` must still be a
/// finite JSON number (the 0/0 case is clamped to 0.0, never NaN→null),
/// and must move to the exact expected ratio once traffic arrives.
#[test]
fn fresh_daemon_hit_rate_is_finite_and_tracks_traffic() {
    let renders = Arc::new(AtomicU64::new(0));
    let (port, handle, join) = boot(2, 64, Arc::clone(&renders));

    let mut client = Client::connect(("127.0.0.1", port)).expect("connect");
    let stats = client.stats().expect("stats");
    let rate = stats
        .get("hit_rate")
        .and_then(Json::as_f64)
        .expect("hit_rate is a number even before any fetch");
    assert!(rate.is_finite(), "hit_rate must never be NaN/Inf: {rate}");
    assert_eq!(rate, 0.0, "no fetches yet → rate clamps to zero");
    // The wire encoding is a numeric literal, not null.
    assert!(
        !stats.encode().contains("\"hit_rate\":null"),
        "hit_rate must encode as a number: {}",
        stats.encode()
    );

    // One miss then one hit: rate becomes exactly 1/2.
    for _ in 0..2 {
        client.artefact("alpha", Scale::Test).expect("artefact");
    }
    let stats = client.stats().expect("stats");
    let rate = stats
        .get("hit_rate")
        .and_then(Json::as_f64)
        .expect("hit_rate present");
    assert_eq!(rate, 0.5, "1 hit of 2 fetches: {stats:?}");

    handle.shutdown();
    join.join().expect("server thread");
}
