//! # mve-serve — the concurrent simulation service
//!
//! Every prior entry point was a one-shot CLI: each invocation rebuilt
//! hierarchies, re-executed kernels and exited. This crate turns the
//! reproduction into a long-running daemon serving many
//! `(kernel × SimConfig)` and artefact requests with massive overlap —
//! the workload shape of the paper's evaluation and its companion Swan
//! benchmark study — over a std-only, JSON-lines-over-TCP protocol (the
//! workspace vendors no crates.io dependencies; see DESIGN.md).
//!
//! Layers (bottom-up):
//!
//! * [`json`] — a hand-rolled minimal JSON reader/writer with exact
//!   integer round-tripping and deterministic output.
//! * [`protocol`] — request/response documents, typed error replies, and
//!   the content-addressed key scheme built on
//!   [`mve_core::sim::SimConfig::canonical_bytes`].
//! * [`cache`] — the single-flight LRU result cache: every unique request
//!   is computed exactly once, concurrent duplicates block for the result.
//! * [`scheduler`] — the batching scheduler: concurrent sim requests that
//!   share a kernel execute it once; their configurations fan out over one
//!   trace walk (`mve_core::sim::simulate_sweep`).
//! * [`server`] — the TCP daemon: accept loop, sharded worker pool,
//!   request handlers, counters, graceful shutdown.
//! * [`client`] — the blocking client and the smoke-set replay driver.
//!
//! The `serve` and `mve-client` binaries live in `mve-bench`, which owns
//! the artefact render functions and injects them via
//! [`server::ArtefactRegistry`] (dependency direction: bench → serve, so
//! the service hot paths stay benchmarkable from `mve_bench::perf`).

pub mod cache;
pub mod client;
pub mod digest;
pub mod json;
pub mod protocol;
pub mod scheduler;
pub mod server;

pub use cache::{CacheStats, ResultCache};
pub use client::{Client, ClientError};
pub use json::Json;
pub use protocol::{Request, SimSpec};
pub use server::{ArtefactFn, ArtefactRegistry, ServeOptions, Server, ShutdownHandle};
