//! Lock-free log2-bucketed latency histograms for the service layer.
//!
//! [`Histogram`] spreads microsecond samples over 64 power-of-two buckets
//! (bucket *i* holds values in `[2^i, 2^(i+1))`, with 0 and 1 µs folded
//! into bucket 0). Recording is three relaxed atomic adds and one atomic
//! max — cheap enough to sit on every request — and percentile extraction
//! walks the cumulative bucket counts, reporting each bucket by its
//! geometric midpoint clamped to the true maximum. The scheme trades
//! precision for a fixed 640-byte footprint: any quantile is exact to
//! within its bucket (a factor of √2 around the midpoint), which is the
//! right resolution for spotting queueing collapse, not for timing
//! kernels (the criterion-style harness in `mve-bench` does that).
//!
//! [`LatencyMetrics`] groups two histograms (service time and queue wait)
//! per op class and serializes them into the `stats` reply.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::json::Json;

const BUCKETS: usize = 64;

/// A concurrent log2-bucketed histogram of microsecond values.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample, in microseconds.
    pub fn record(&self, value_us: u64) {
        let idx = value_us.max(1).ilog2() as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value_us, Ordering::Relaxed);
        self.max.fetch_max(value_us, Ordering::Relaxed);
    }

    /// Record a duration as microseconds (saturating).
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values, µs.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value, µs.
    pub fn max_us(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Raw per-bucket counts (bucket `i` holds `v.max(1).ilog2() == i`),
    /// the layout the Prometheus exposition emits verbatim.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Folds another histogram's samples into this one (bucket-wise add;
    /// max takes the larger). Used to merge per-class series into one.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n != 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Zeroes every bucket and aggregate. Not atomic with respect to
    /// concurrent recorders (a racing sample may survive or vanish), which
    /// is fine for its test/tooling uses.
    pub fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// Extract count, mean, percentiles, and max.
    pub fn snapshot(&self) -> HistogramStats {
        let mut buckets = [0u64; BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        // Concurrent recorders can make `count` and the bucket sum differ
        // transiently; rank against the bucket sum we actually walk.
        let count: u64 = buckets.iter().sum();
        let sum = self.sum.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        HistogramStats {
            count,
            mean_us: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            p50_us: percentile(&buckets, count, max, 0.50),
            p90_us: percentile(&buckets, count, max, 0.90),
            p99_us: percentile(&buckets, count, max, 0.99),
            max_us: max,
        }
    }
}

/// The value reported for bucket `idx`: its geometric midpoint, clamped
/// to the largest value actually recorded.
fn bucket_value(idx: usize, max: u64) -> u64 {
    let lo = 1u64 << idx;
    lo.saturating_add(lo / 2).min(max.max(1))
}

fn percentile(buckets: &[u64; BUCKETS], count: u64, max: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for (idx, &n) in buckets.iter().enumerate() {
        seen += n;
        if seen >= rank {
            return bucket_value(idx, max);
        }
    }
    max
}

/// One histogram snapshot: sample count, mean, p50/p90/p99, max, all µs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramStats {
    /// Samples recorded.
    pub count: u64,
    /// Arithmetic mean, µs.
    pub mean_us: f64,
    /// Median, µs (bucket-resolution).
    pub p50_us: u64,
    /// 90th percentile, µs.
    pub p90_us: u64,
    /// 99th percentile, µs.
    pub p99_us: u64,
    /// Exact maximum, µs.
    pub max_us: u64,
}

impl HistogramStats {
    /// Serialize for the `stats` reply.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::U64(self.count)),
            ("mean_us".into(), Json::F64(self.mean_us)),
            ("p50_us".into(), Json::U64(self.p50_us)),
            ("p90_us".into(), Json::U64(self.p90_us)),
            ("p99_us".into(), Json::U64(self.p99_us)),
            ("max_us".into(), Json::U64(self.max_us)),
        ])
    }
}

/// The op classes latency is tracked for: the three chargeable classes
/// plus the two inline control-plane ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricClass {
    /// Registry artefact render.
    Artefact,
    /// Kernel execution + timing walk(s).
    Sim,
    /// DSL compile + execution + timing walk.
    Compile,
    /// Cost estimate (served inline by the event loop).
    Estimate,
    /// Stats snapshot (served inline by the event loop).
    Stats,
    /// Prometheus exposition render (served inline by the event loop).
    Metrics,
    /// Request-trace ring snapshot (served inline by the event loop).
    Trace,
    /// DSL compile + marked execution + per-line attribution.
    /// Appended after the original seven: `ALL`'s order is the
    /// serialization order CI and the stats members pin.
    Profile,
}

impl MetricClass {
    /// Every class, in the order they serialize.
    pub const ALL: [MetricClass; 8] = [
        MetricClass::Artefact,
        MetricClass::Sim,
        MetricClass::Compile,
        MetricClass::Estimate,
        MetricClass::Stats,
        MetricClass::Metrics,
        MetricClass::Trace,
        MetricClass::Profile,
    ];

    /// Wire name of the class.
    pub fn name(self) -> &'static str {
        match self {
            MetricClass::Artefact => "artefact",
            MetricClass::Sim => "sim",
            MetricClass::Compile => "compile",
            MetricClass::Estimate => "estimate",
            MetricClass::Stats => "stats",
            MetricClass::Metrics => "metrics",
            MetricClass::Trace => "trace",
            MetricClass::Profile => "profile",
        }
    }

    fn idx(self) -> usize {
        match self {
            MetricClass::Artefact => 0,
            MetricClass::Sim => 1,
            MetricClass::Compile => 2,
            MetricClass::Estimate => 3,
            MetricClass::Stats => 4,
            MetricClass::Metrics => 5,
            MetricClass::Trace => 6,
            MetricClass::Profile => 7,
        }
    }
}

impl From<crate::cost::OpClass> for MetricClass {
    fn from(class: crate::cost::OpClass) -> MetricClass {
        match class {
            crate::cost::OpClass::Artefact => MetricClass::Artefact,
            crate::cost::OpClass::Sim => MetricClass::Sim,
            crate::cost::OpClass::Compile => MetricClass::Compile,
            crate::cost::OpClass::Profile => MetricClass::Profile,
        }
    }
}

#[derive(Debug, Default)]
struct ClassLatency {
    service: Histogram,
    queue_wait: Histogram,
}

/// Per-op-class service-time and queue-wait histograms.
///
/// *Service time* is time on a worker (or inline in the event loop for
/// control-plane ops); *queue wait* is the gap between a request becoming
/// runnable and a worker picking it up — inline ops record zero, so a
/// growing inter-class spread is pure scheduling pressure.
#[derive(Debug, Default)]
pub struct LatencyMetrics {
    classes: [ClassLatency; 8],
}

impl LatencyMetrics {
    /// Empty metrics.
    pub fn new() -> LatencyMetrics {
        LatencyMetrics::default()
    }

    /// Record worker/inline execution time for `class`.
    pub fn record_service(&self, class: MetricClass, d: Duration) {
        self.classes[class.idx()].service.record_duration(d);
    }

    /// Record runnable-to-picked-up wait for `class`.
    pub fn record_queue_wait(&self, class: MetricClass, d: Duration) {
        self.classes[class.idx()].queue_wait.record_duration(d);
    }

    /// Measured mean service time for `class`, µs (0 with no samples) —
    /// the read-only feedback the `estimate` reply reports next to the
    /// static cost model's charge.
    pub fn mean_service_us(&self, class: MetricClass) -> f64 {
        let service = &self.classes[class.idx()].service;
        let count = service.count();
        if count == 0 {
            0.0
        } else {
            service.sum() as f64 / count as f64
        }
    }

    /// The `(service, queue_wait)` histograms for `class` — the registry
    /// reads raw buckets from here for the Prometheus exposition.
    pub fn class_histograms(&self, class: MetricClass) -> (&Histogram, &Histogram) {
        let slot = &self.classes[class.idx()];
        (&slot.service, &slot.queue_wait)
    }

    /// Serialize every class as `{"<class>": {"service": .., "queue_wait": ..}}`.
    pub fn to_json(&self) -> Json {
        Json::Obj(
            MetricClass::ALL
                .iter()
                .map(|&class| {
                    let slot = &self.classes[class.idx()];
                    (
                        class.name().to_string(),
                        Json::Obj(vec![
                            ("service".into(), slot.service.snapshot().to_json()),
                            ("queue_wait".into(), slot.queue_wait.snapshot().to_json()),
                        ]),
                    )
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_snapshots_to_zeros() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_us, 0.0);
        assert_eq!(s.p50_us, 0);
        assert_eq!(s.p99_us, 0);
        assert_eq!(s.max_us, 0);
    }

    #[test]
    fn percentiles_are_bucket_accurate_and_ordered() {
        let h = Histogram::new();
        // 90 fast samples at ~10µs, 9 at ~1ms, 1 at 100ms.
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..9 {
            h.record(1000);
        }
        h.record(100_000);
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.max_us, 100_000);
        // p50 lands in the [8,16) bucket, p99 in the [512,1024)+ region.
        assert!((8..16).contains(&s.p50_us), "p50={}", s.p50_us);
        assert!(s.p90_us <= s.p99_us, "p90={} p99={}", s.p90_us, s.p99_us);
        assert!(s.p50_us <= s.p90_us);
        assert!((512..2048).contains(&s.p99_us), "p99={}", s.p99_us);
        assert!(s.p99_us <= s.max_us);
        let expected_mean = (90.0 * 10.0 + 9.0 * 1000.0 + 100_000.0) / 100.0;
        assert!((s.mean_us - expected_mean).abs() < 1e-9);
    }

    #[test]
    fn zero_and_one_fold_into_the_first_bucket() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.max_us, 1);
        // Bucket midpoint clamps to the true max.
        assert_eq!(s.p99_us, 1);
    }

    #[test]
    fn single_sample_reports_itself_at_every_percentile() {
        let h = Histogram::new();
        h.record(777);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.p50_us, s.p99_us);
        assert!(s.p99_us <= 777 && s.p99_us >= 512, "p99={}", s.p99_us);
        assert_eq!(s.max_us, 777);
    }

    #[test]
    fn saturating_top_bucket_holds_huge_samples() {
        let h = Histogram::new();
        h.record(u64::MAX); // ilog2 == 63: lands in (and stays in) the top bucket
        h.record(1u64 << 63);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.max_us, u64::MAX);
        // Midpoint of the top bucket saturates instead of wrapping: it
        // reports inside [2^63, max], never a wrapped-around tiny value.
        assert!(s.p99_us >= 1u64 << 63, "p99={}", s.p99_us);
        assert!(s.p99_us <= s.max_us);
        let counts = h.bucket_counts();
        assert_eq!(counts[63], 2);
        assert_eq!(counts.iter().sum::<u64>(), 2);
    }

    #[test]
    fn single_occupied_bucket_reports_one_value_for_every_quantile() {
        // All samples in one bucket: p50/p90/p99 collapse to the bucket's
        // geometric midpoint, clamped to the recorded max when the max
        // sits below it.
        let clamped = Histogram::new();
        for _ in 0..5 {
            clamped.record(40); // bucket [32,64), midpoint 48 > max 40
        }
        let s = clamped.snapshot();
        assert_eq!((s.p50_us, s.p90_us, s.p99_us, s.max_us), (40, 40, 40, 40));

        let unclamped = Histogram::new();
        for _ in 0..5 {
            unclamped.record(60); // same bucket, midpoint 48 < max 60
        }
        let s = unclamped.snapshot();
        assert_eq!((s.p50_us, s.p90_us, s.p99_us, s.max_us), (48, 48, 48, 60));
    }

    #[test]
    fn all_mass_in_the_top_bucket_clamps_to_the_recorded_max() {
        // The top bucket's midpoint (2^63 + 2^62) exceeds every value
        // recorded here, so the clamp — not the midpoint — is reported.
        let h = Histogram::new();
        for _ in 0..10 {
            h.record(1u64 << 63);
        }
        let s = h.snapshot();
        assert_eq!(s.p50_us, 1u64 << 63);
        assert_eq!(s.p99_us, 1u64 << 63);
        assert_eq!(s.max_us, 1u64 << 63);
    }

    #[test]
    fn merge_then_quantile_matches_one_histogram_with_all_samples() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in [3, 10, 100, 5000] {
            a.record(v);
            all.record(v);
        }
        for v in [7, 70, 700, 70_000, 1_000_000] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        // count and sum fold exactly, so every snapshot field — mean
        // included — is identical to the single-histogram run.
        assert_eq!(a.snapshot(), all.snapshot());
    }

    #[test]
    fn merge_folds_buckets_count_sum_and_max() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        a.record(20);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 1030);
        assert_eq!(a.max_us(), 1000);
        let s = a.snapshot();
        assert_eq!(s.count, 3);
        assert!((512..=1000).contains(&s.p99_us), "p99={}", s.p99_us);
        // Merging an empty histogram is a no-op.
        a.merge(&Histogram::new());
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn reset_returns_to_empty() {
        let h = Histogram::new();
        h.record(42);
        h.record(7);
        assert_eq!(h.count(), 2);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.max_us(), 0);
        let s = h.snapshot();
        assert_eq!(s, Histogram::new().snapshot());
    }

    #[test]
    fn mean_service_feedback_per_class() {
        let m = LatencyMetrics::new();
        assert_eq!(m.mean_service_us(MetricClass::Sim), 0.0);
        m.record_service(MetricClass::Sim, Duration::from_micros(100));
        m.record_service(MetricClass::Sim, Duration::from_micros(300));
        assert!((m.mean_service_us(MetricClass::Sim) - 200.0).abs() < 1e-9);
        assert_eq!(m.mean_service_us(MetricClass::Artefact), 0.0);
        let (service, wait) = m.class_histograms(MetricClass::Sim);
        assert_eq!(service.count(), 2);
        assert_eq!(wait.count(), 0);
    }

    #[test]
    fn latency_metrics_serialize_every_class() {
        let m = LatencyMetrics::new();
        m.record_service(MetricClass::Artefact, Duration::from_micros(250));
        m.record_queue_wait(MetricClass::Artefact, Duration::ZERO);
        let json = m.to_json();
        let text = json.encode();
        for class in MetricClass::ALL {
            assert!(text.contains(class.name()), "missing {}", class.name());
        }
        let artefact = json.get("artefact").expect("artefact class");
        let service = artefact.get("service").expect("service histogram");
        assert_eq!(service.get("count").and_then(Json::as_u64), Some(1));
        let wait = artefact.get("queue_wait").expect("queue_wait histogram");
        assert_eq!(wait.get("count").and_then(Json::as_u64), Some(1));
    }
}
