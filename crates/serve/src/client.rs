//! The client side of the wire protocol: a blocking connection (with an
//! optional request deadline and overload-aware capped exponential
//! backoff), the smoke-set replay driver used by `mve-client` and CI, and
//! the open-loop throughput driver shared by `mve-client --flood
//! --duration-ms` and the `serve_throughput` perf harness.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use mve_kernels::Scale;

use crate::histogram::{Histogram, HistogramStats};
use crate::json::Json;
use crate::protocol::{encode_request, parse_overloaded, parse_response, Request, SimSpec};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server sent a typed error reply.
    Server(String),
    /// The server's reply was not what the request called for.
    Protocol(String),
    /// The request deadline elapsed without a reply (or the connect
    /// timeout elapsed without a connection). The connection must be
    /// considered dead afterwards: a late reply would desynchronize the
    /// request/reply pairing, so reconnect before reusing.
    TimedOut {
        /// The deadline that elapsed.
        after: Duration,
    },
    /// The server shed the request with a typed `overloaded` reply —
    /// back off and retry ([`Client::request_with_backoff`] does).
    Overloaded {
        /// The server's backoff hint, in milliseconds.
        retry_after_ms: u64,
        /// The reply's prose.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::TimedOut { after } => {
                write!(f, "timed out after {} ms", after.as_millis())
            }
            ClientError::Overloaded {
                retry_after_ms,
                message,
            } => write!(f, "{message} (retry_after_ms={retry_after_ms})"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Ceiling on one backoff sleep in [`Client::request_with_backoff`].
const BACKOFF_CAP_MS: u64 = 2_000;

/// One blocking connection to a server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    request_timeout: Option<Duration>,
}

impl Client {
    /// Connects to `addr` (e.g. `("127.0.0.1", 7878)`).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        Self::from_stream(TcpStream::connect(addr)?)
    }

    /// Connects with a bound on the connect itself, so a dead or
    /// firewalled address fails in `timeout` rather than the OS default
    /// (minutes). The timeout also becomes the request deadline, as if
    /// [`Client::set_request_timeout`] had been called.
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        timeout: Duration,
    ) -> Result<Self, ClientError> {
        let mut last: Option<std::io::Error> = None;
        for resolved in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&resolved, timeout) {
                Ok(stream) => {
                    let mut client = Self::from_stream(stream)?;
                    client.set_request_timeout(Some(timeout))?;
                    return Ok(client);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(match last {
            Some(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                ClientError::TimedOut { after: timeout }
            }
            Some(e) => ClientError::Io(e),
            None => ClientError::Protocol("address resolved to nothing".to_owned()),
        })
    }

    fn from_stream(stream: TcpStream) -> Result<Self, ClientError> {
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
            request_timeout: None,
        })
    }

    /// Bounds every subsequent [`Client::request`]: a reply that has not
    /// fully arrived within `timeout` fails with
    /// [`ClientError::TimedOut`] instead of blocking forever on a hung
    /// daemon. `None` restores unbounded blocking.
    pub fn set_request_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        self.request_timeout = timeout;
        Ok(())
    }

    /// Sends one request and decodes its reply document.
    pub fn request(&mut self, req: &Request) -> Result<Json, ClientError> {
        let line = encode_request(req);
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = match self.reader.read_line(&mut reply) {
            Ok(n) => n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                return Err(ClientError::TimedOut {
                    after: self.request_timeout.unwrap_or_default(),
                })
            }
            Err(e) => return Err(e.into()),
        };
        if n == 0 {
            return Err(ClientError::Protocol(
                "connection closed before a reply arrived".to_owned(),
            ));
        }
        let trimmed = reply.trim_end();
        // Surface a typed shed before the generic ok/error decode, so
        // callers can branch on `Overloaded` rather than parse prose.
        if let Ok(doc) = Json::parse(trimmed) {
            if let Some(retry_after_ms) = parse_overloaded(&doc) {
                return Err(ClientError::Overloaded {
                    retry_after_ms,
                    message: doc
                        .get("error")
                        .and_then(Json::as_str)
                        .unwrap_or("overloaded")
                        .to_owned(),
                });
            }
        }
        parse_response(trimmed).map_err(ClientError::Server)
    }

    /// [`Client::request`] with capped exponential backoff over
    /// `overloaded` replies: each retry sleeps the server's
    /// `retry_after_ms` hint or the doubling client floor, whichever is
    /// larger, capped at 2 s. Gives up after `max_retries` retries with
    /// the final [`ClientError::Overloaded`]. All other outcomes pass
    /// through immediately.
    pub fn request_with_backoff(
        &mut self,
        req: &Request,
        max_retries: u32,
    ) -> Result<Json, ClientError> {
        let mut attempt = 0u32;
        loop {
            match self.request(req) {
                Err(ClientError::Overloaded {
                    retry_after_ms,
                    message,
                }) => {
                    if attempt >= max_retries {
                        return Err(ClientError::Overloaded {
                            retry_after_ms,
                            message,
                        });
                    }
                    let floor = 10u64.saturating_mul(1 << attempt.min(20));
                    std::thread::sleep(Duration::from_millis(
                        retry_after_ms.max(floor).min(BACKOFF_CAP_MS),
                    ));
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    /// Prices a chargeable request against the server's cost model
    /// without executing it, returning the `estimate` object
    /// (`class`/`cost`/`admit_now`).
    pub fn estimate(&mut self, req: &Request) -> Result<Json, ClientError> {
        let doc = self.request(&Request::Estimate(Box::new(req.clone())))?;
        doc.get("estimate")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("estimate reply lacks `estimate`".to_owned()))
    }

    /// Renders one artefact, returning its exact text.
    pub fn artefact(&mut self, name: &str, scale: Scale) -> Result<String, ClientError> {
        let doc = self.request(&Request::Artefact {
            name: name.to_owned(),
            scale,
        })?;
        doc.get("bytes")
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| ClientError::Protocol("artefact reply lacks `bytes`".to_owned()))
    }

    /// Times one kernel, returning the `report` object.
    pub fn sim(&mut self, kernel: &str, scale: Scale, spec: SimSpec) -> Result<Json, ClientError> {
        let doc = self.request(&Request::Sim {
            kernel: kernel.to_owned(),
            scale,
            spec,
        })?;
        doc.get("report")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("sim reply lacks `report`".to_owned()))
    }

    /// Compiles and runs a `.mvel` kernel server-side, returning the
    /// rendered compile artefact. A parse/type error comes back as
    /// [`ClientError::Server`] with a `line:col:` prefix.
    pub fn compile(&mut self, source: &str, spec: SimSpec) -> Result<String, ClientError> {
        if spec.arrays.is_some() {
            // The wire encoding would silently drop the override; surface
            // the same rejection the server gives raw-JSON clients.
            return Err(ClientError::Protocol(
                "`arrays` is not supported for compile: DSL kernels execute on the \
                 default 32-array geometry"
                    .to_owned(),
            ));
        }
        let doc = self.request(&Request::Compile {
            source: source.to_owned(),
            spec,
        })?;
        doc.get("bytes")
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| ClientError::Protocol("compile reply lacks `bytes`".to_owned()))
    }

    /// Compiles, runs, and per-line-profiles a `.mvel` kernel
    /// server-side, returning the `profile` reply object: `text` (the
    /// annotated source), `lines` (per-line attribution rows), `kernel`,
    /// `digest`, and `total_cycles`. A parse/type error comes back as
    /// [`ClientError::Server`] with a `line:col:` prefix.
    pub fn profile(&mut self, source: &str, spec: SimSpec) -> Result<Json, ClientError> {
        if spec.arrays.is_some() {
            return Err(ClientError::Protocol(
                "`arrays` is not supported for profile: DSL kernels execute on the \
                 default 32-array geometry"
                    .to_owned(),
            ));
        }
        let doc = self.request(&Request::Profile {
            source: source.to_owned(),
            spec,
        })?;
        doc.get("profile")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("profile reply lacks `profile`".to_owned()))
    }

    /// Fetches the counter snapshot.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        let doc = self.request(&Request::Stats)?;
        doc.get("stats")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("stats reply lacks `stats`".to_owned()))
    }

    /// Fetches the Prometheus text exposition.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let doc = self.request(&Request::Metrics)?;
        doc.get("metrics")
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| ClientError::Protocol("metrics reply lacks `metrics`".to_owned()))
    }

    /// Fetches the recent-request trace ring (oldest first).
    pub fn trace(&mut self) -> Result<Vec<Json>, ClientError> {
        let doc = self.request(&Request::Trace)?;
        match doc.get("traces") {
            Some(Json::Arr(items)) => Ok(items.clone()),
            _ => Err(ClientError::Protocol(
                "trace reply lacks `traces`".to_owned(),
            )),
        }
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request(&Request::Shutdown).map(|_| ())
    }
}

/// Drives `names` through a running server and writes each artefact to
/// `out_dir/<name>.txt` — the replay path CI diffs byte-for-byte against
/// `reproduce --smoke`. Returns `(name, bytes written)` per artefact.
pub fn replay_artefacts(
    addr: impl ToSocketAddrs,
    names: &[&str],
    scale: Scale,
    out_dir: &Path,
) -> Result<Vec<(String, usize)>, ClientError> {
    std::fs::create_dir_all(out_dir)?;
    let mut client = Client::connect(addr)?;
    let mut written = Vec::with_capacity(names.len());
    for name in names {
        let text = client.artefact(name, scale)?;
        std::fs::write(out_dir.join(format!("{name}.txt")), text.as_bytes())?;
        written.push(((*name).to_owned(), text.len()));
    }
    Ok(written)
}

/// The result of one [`open_loop`] run.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// Concurrent connections driven.
    pub connections: usize,
    /// Measured wall time (send of the first request to the last reply).
    pub elapsed: Duration,
    /// Requests sent.
    pub requests: u64,
    /// `ok` replies.
    pub ok: u64,
    /// Typed `overloaded` sheds (a correct reply, not a failure).
    pub overloaded: u64,
    /// Typed `error` replies.
    pub server_errors: u64,
    /// Requests sent with no reply of any kind (transport error, timeout,
    /// or premature close) — the correctness headline: it must be zero.
    pub lost: u64,
    /// Request-to-reply latency over every answered request.
    pub latency: HistogramStats,
}

impl OpenLoopReport {
    /// Answered (typed-reply) requests per second.
    pub fn req_per_s(&self) -> f64 {
        let answered = (self.ok + self.overloaded + self.server_errors) as f64;
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            answered / secs
        } else {
            0.0
        }
    }

    /// One flat JSON object — the `mve-client` open-loop output line.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("connections".into(), Json::U64(self.connections as u64)),
            (
                "duration_ms".into(),
                Json::U64(self.elapsed.as_millis().min(u64::MAX as u128) as u64),
            ),
            ("requests".into(), Json::U64(self.requests)),
            ("ok".into(), Json::U64(self.ok)),
            ("overloaded".into(), Json::U64(self.overloaded)),
            ("server_errors".into(), Json::U64(self.server_errors)),
            ("lost".into(), Json::U64(self.lost)),
            ("req_per_s".into(), Json::F64(self.req_per_s())),
            ("p50_us".into(), Json::U64(self.latency.p50_us)),
            ("p90_us".into(), Json::U64(self.latency.p90_us)),
            ("p99_us".into(), Json::U64(self.latency.p99_us)),
            ("max_us".into(), Json::U64(self.latency.max_us)),
        ])
    }
}

/// Drives `connections` concurrent connections against `addr`, each
/// sending `make_request(conn, seq)` back-to-back (open loop: the next
/// request goes out as soon as the previous reply lands) until `duration`
/// elapses. Every reply is classified — ok, typed overload, typed error —
/// and timed into one shared histogram; a request that gets no reply at
/// all counts as `lost` and ends that connection's run early.
pub fn open_loop(
    addr: impl ToSocketAddrs,
    connections: usize,
    duration: Duration,
    make_request: impl Fn(usize, u64) -> Request + Sync,
) -> Result<OpenLoopReport, ClientError> {
    let connections = connections.max(1);
    let addr: SocketAddr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| ClientError::Protocol("address resolved to nothing".to_owned()))?;
    let requests = AtomicU64::new(0);
    let ok = AtomicU64::new(0);
    let overloaded = AtomicU64::new(0);
    let server_errors = AtomicU64::new(0);
    let lost = AtomicU64::new(0);
    let latency = Histogram::new();
    let make_request = &make_request;
    let started = Instant::now();
    let deadline = started + duration;
    std::thread::scope(|s| {
        for conn in 0..connections {
            let (requests, ok, overloaded, server_errors, lost, latency) =
                (&requests, &ok, &overloaded, &server_errors, &lost, &latency);
            s.spawn(move || {
                // A dead daemon must not hang the harness: bound every
                // read at the run length plus a margin.
                let Ok(mut client) =
                    Client::connect_with_timeout(addr, duration + Duration::from_secs(5))
                else {
                    return;
                };
                let mut seq = 0u64;
                while Instant::now() < deadline {
                    let req = make_request(conn, seq);
                    seq += 1;
                    requests.fetch_add(1, Ordering::Relaxed);
                    let t0 = Instant::now();
                    match client.request(&req) {
                        Ok(_) => {
                            latency.record_duration(t0.elapsed());
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ClientError::Overloaded { .. }) => {
                            latency.record_duration(t0.elapsed());
                            overloaded.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ClientError::Server(_)) => {
                            latency.record_duration(t0.elapsed());
                            server_errors.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            lost.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            });
        }
    });
    Ok(OpenLoopReport {
        connections,
        elapsed: started.elapsed(),
        requests: requests.into_inner(),
        ok: ok.into_inner(),
        overloaded: overloaded.into_inner(),
        server_errors: server_errors.into_inner(),
        lost: lost.into_inner(),
        latency: latency.snapshot(),
    })
}
