//! The client side of the wire protocol: a blocking connection plus the
//! smoke-set replay driver used by `mve-client` and CI.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::Path;

use mve_kernels::Scale;

use crate::json::Json;
use crate::protocol::{encode_request, parse_response, Request, SimSpec};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server sent a typed error reply.
    Server(String),
    /// The server's reply was not what the request called for.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One blocking connection to a server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr` (e.g. `("127.0.0.1", 7878)`).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request and decodes its reply document.
    pub fn request(&mut self, req: &Request) -> Result<Json, ClientError> {
        let line = encode_request(req);
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ClientError::Protocol(
                "connection closed before a reply arrived".to_owned(),
            ));
        }
        parse_response(reply.trim_end()).map_err(ClientError::Server)
    }

    /// Renders one artefact, returning its exact text.
    pub fn artefact(&mut self, name: &str, scale: Scale) -> Result<String, ClientError> {
        let doc = self.request(&Request::Artefact {
            name: name.to_owned(),
            scale,
        })?;
        doc.get("bytes")
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| ClientError::Protocol("artefact reply lacks `bytes`".to_owned()))
    }

    /// Times one kernel, returning the `report` object.
    pub fn sim(&mut self, kernel: &str, scale: Scale, spec: SimSpec) -> Result<Json, ClientError> {
        let doc = self.request(&Request::Sim {
            kernel: kernel.to_owned(),
            scale,
            spec,
        })?;
        doc.get("report")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("sim reply lacks `report`".to_owned()))
    }

    /// Compiles and runs a `.mvel` kernel server-side, returning the
    /// rendered compile artefact. A parse/type error comes back as
    /// [`ClientError::Server`] with a `line:col:` prefix.
    pub fn compile(&mut self, source: &str, spec: SimSpec) -> Result<String, ClientError> {
        if spec.arrays.is_some() {
            // The wire encoding would silently drop the override; surface
            // the same rejection the server gives raw-JSON clients.
            return Err(ClientError::Protocol(
                "`arrays` is not supported for compile: DSL kernels execute on the \
                 default 32-array geometry"
                    .to_owned(),
            ));
        }
        let doc = self.request(&Request::Compile {
            source: source.to_owned(),
            spec,
        })?;
        doc.get("bytes")
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| ClientError::Protocol("compile reply lacks `bytes`".to_owned()))
    }

    /// Fetches the counter snapshot.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        let doc = self.request(&Request::Stats)?;
        doc.get("stats")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("stats reply lacks `stats`".to_owned()))
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request(&Request::Shutdown).map(|_| ())
    }
}

/// Drives `names` through a running server and writes each artefact to
/// `out_dir/<name>.txt` — the replay path CI diffs byte-for-byte against
/// `reproduce --smoke`. Returns `(name, bytes written)` per artefact.
pub fn replay_artefacts(
    addr: impl ToSocketAddrs,
    names: &[&str],
    scale: Scale,
    out_dir: &Path,
) -> Result<Vec<(String, usize)>, ClientError> {
    std::fs::create_dir_all(out_dir)?;
    let mut client = Client::connect(addr)?;
    let mut written = Vec::with_capacity(names.len());
    for name in names {
        let text = client.artefact(name, scale)?;
        std::fs::write(out_dir.join(format!("{name}.txt")), text.as_bytes())?;
        written.push(((*name).to_owned(), text.len()));
    }
    Ok(written)
}
