//! A hashed timer wheel for the event-loop I/O core.
//!
//! The loop owns three kinds of deadlines — idle reaping, admission-queue
//! parking, and write-stall detection — all coarse (tens of milliseconds
//! to minutes) and all frequently cancelled before they fire. A hashed
//! wheel fits exactly: insert and cancel are O(1), expiry scans only the
//! slots the clock actually crossed, and precision is one tick (5 ms at
//! the server's configuration), which is far finer than any deadline the
//! protocol promises. Cancellation is lazy — a cancelled id sits in its
//! slot until its tick drains by, which is cheaper than searching the
//! slot and keeps the common arm/cancel-per-request path allocation-free
//! after warm-up.

use std::collections::HashSet;
use std::time::{Duration, Instant};

/// Opaque handle returned by [`TimerWheel::insert`], used to cancel and
/// to discriminate stale expirations from re-armed timers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

#[derive(Debug)]
struct Entry<T> {
    id: u64,
    /// Absolute tick index at which the entry fires.
    expires: u64,
    payload: T,
}

/// Hashed timer wheel; `T` is the payload handed back on expiry.
#[derive(Debug)]
pub struct TimerWheel<T> {
    tick: Duration,
    slots: Vec<Vec<Entry<T>>>,
    start: Instant,
    /// Last tick index that has been drained.
    current: u64,
    /// Entries inserted and neither fired nor cancelled.
    live: usize,
    cancelled: HashSet<u64>,
    next_id: u64,
}

impl<T: Copy> TimerWheel<T> {
    /// A wheel with `slots` buckets of `tick` granularity, anchored at
    /// `now`.
    pub fn new(now: Instant, tick: Duration, slots: usize) -> TimerWheel<T> {
        assert!(!tick.is_zero() && slots > 0);
        TimerWheel {
            tick,
            slots: (0..slots).map(|_| Vec::new()).collect(),
            start: now,
            current: 0,
            live: 0,
            cancelled: HashSet::new(),
            next_id: 0,
        }
    }

    fn tick_of(&self, at: Instant) -> u64 {
        let elapsed = at.saturating_duration_since(self.start);
        (elapsed.as_nanos() / self.tick.as_nanos()) as u64
    }

    /// Arm a timer to fire `after` from `now`. Never fires earlier than
    /// one tick from now.
    pub fn insert(&mut self, now: Instant, after: Duration, payload: T) -> TimerId {
        let id = self.next_id;
        self.next_id += 1;
        // Round the deadline up to a tick boundary and past the already-
        // drained tick so the entry cannot be skipped.
        let deadline = self.tick_of(now + after).max(self.current) + 1;
        let slot = (deadline % self.slots.len() as u64) as usize;
        self.slots[slot].push(Entry {
            id,
            expires: deadline,
            payload,
        });
        self.live += 1;
        TimerId(id)
    }

    /// Cancel a timer. Cancelling an already-fired or already-cancelled
    /// id is a no-op.
    pub fn cancel(&mut self, id: TimerId) {
        if self.cancelled.insert(id.0) {
            self.live = self.live.saturating_sub(1);
        }
    }

    /// Number of armed, uncancelled timers.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Time until the earliest live deadline, or `None` when nothing is
    /// armed. O(total entries) — fine at event-loop scale (one to three
    /// timers per connection).
    pub fn next_deadline(&self, now: Instant) -> Option<Duration> {
        let mut earliest: Option<u64> = None;
        for slot in &self.slots {
            for entry in slot {
                if self.cancelled.contains(&entry.id) {
                    continue;
                }
                earliest = Some(earliest.map_or(entry.expires, |e| e.min(entry.expires)));
            }
        }
        let expires = earliest?;
        let deadline = self.start + self.tick * (expires as u32);
        Some(deadline.saturating_duration_since(now))
    }

    /// Drain every timer whose deadline has passed by `now` into `out`
    /// as `(id, payload)` pairs, in tick order.
    pub fn poll_expired(&mut self, now: Instant, out: &mut Vec<(TimerId, T)>) {
        out.clear();
        let target = self.tick_of(now);
        while self.current < target {
            self.current += 1;
            let slot = (self.current % self.slots.len() as u64) as usize;
            let current = self.current;
            self.slots[slot].retain(|entry| {
                if entry.expires > current {
                    return true;
                }
                if self.cancelled.remove(&entry.id) {
                    return false;
                }
                self.live -= 1;
                out.push((TimerId(entry.id), entry.payload));
                false
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: Duration = Duration::from_millis(5);

    #[test]
    fn timers_fire_after_their_deadline_not_before() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0, TICK, 8);
        wheel.insert(t0, Duration::from_millis(20), 1u32);
        let mut out = Vec::new();

        wheel.poll_expired(t0 + Duration::from_millis(10), &mut out);
        assert!(out.is_empty(), "fired early: {out:?}");

        wheel.poll_expired(t0 + Duration::from_millis(40), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1, 1);
        assert_eq!(wheel.live(), 0);
    }

    #[test]
    fn cancelled_timers_never_fire() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0, TICK, 8);
        let a = wheel.insert(t0, Duration::from_millis(10), 'a');
        let _b = wheel.insert(t0, Duration::from_millis(10), 'b');
        wheel.cancel(a);
        assert_eq!(wheel.live(), 1);
        let mut out = Vec::new();
        wheel.poll_expired(t0 + Duration::from_millis(60), &mut out);
        assert_eq!(out.iter().map(|&(_, p)| p).collect::<Vec<_>>(), ['b']);
        // Double-cancel and cancel-after-fire are no-ops.
        wheel.cancel(a);
        assert_eq!(wheel.live(), 0);
    }

    #[test]
    fn deadlines_beyond_one_rotation_wait_their_round() {
        let t0 = Instant::now();
        // 4 slots x 5ms: a 60ms deadline wraps the wheel multiple times.
        let mut wheel = TimerWheel::new(t0, TICK, 4);
        wheel.insert(t0, Duration::from_millis(60), 9u8);
        let mut out = Vec::new();
        wheel.poll_expired(t0 + Duration::from_millis(30), &mut out);
        assert!(out.is_empty(), "fired a rotation early");
        wheel.poll_expired(t0 + Duration::from_millis(80), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn next_deadline_tracks_the_earliest_live_timer() {
        let t0 = Instant::now();
        let mut wheel: TimerWheel<u32> = TimerWheel::new(t0, TICK, 8);
        assert_eq!(wheel.next_deadline(t0), None);
        let near = wheel.insert(t0, Duration::from_millis(10), 1);
        wheel.insert(t0, Duration::from_millis(200), 2);
        let d = wheel.next_deadline(t0).unwrap();
        assert!(d <= Duration::from_millis(15), "{d:?}");
        wheel.cancel(near);
        let d = wheel.next_deadline(t0).unwrap();
        assert!(d >= Duration::from_millis(100), "{d:?}");
    }

    #[test]
    fn many_interleaved_arms_and_cancels_stay_consistent() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0, TICK, 16);
        let mut ids = Vec::new();
        for i in 0..100u32 {
            ids.push(wheel.insert(t0, Duration::from_millis(5 + (i as u64 % 7) * 10), i));
        }
        for id in ids.iter().step_by(2) {
            wheel.cancel(*id);
        }
        assert_eq!(wheel.live(), 50);
        let mut out = Vec::new();
        wheel.poll_expired(t0 + Duration::from_millis(500), &mut out);
        assert_eq!(out.len(), 50);
        assert!(out.iter().all(|&(_, p)| p % 2 == 1));
        assert_eq!(wheel.live(), 0);
        assert_eq!(wheel.next_deadline(t0 + Duration::from_millis(500)), None);
    }
}
