//! Test-only fault injection for the overload-resilience suite.
//!
//! A [`FaultPlan`] rides into the server through `ServeOptions` and can
//! force, at chosen points on the request path:
//!
//! * **worker panics** — the next N compute closures (artefact render,
//!   kernel execution, DSL compile) panic before doing work, exercising
//!   the `catch_unwind` + reservation-abandon recovery path;
//! * **slow-request stalls** — the next N compute closures sleep for a
//!   configured duration first, pinning a worker the way a pathological
//!   request would;
//! * **reservation abandonment** — the next N cache misses abandon their
//!   just-taken reservation and fail, simulating a worker dying between
//!   reserving a key and computing it (waiters must retry and recover).
//!
//! The default plan is inert: every hook is a relaxed atomic load of
//! zero, so production paths pay one predictable branch per request.
//! Plans are `Clone` (shared interior), so a test keeps a handle to the
//! plan it injected and can arm faults while the server runs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug, Default)]
struct Inner {
    panic_remaining: AtomicU64,
    stall_remaining: AtomicU64,
    stall_ms: AtomicU64,
    abandon_remaining: AtomicU64,
    injected_panics: AtomicU64,
    injected_stalls: AtomicU64,
    injected_abandons: AtomicU64,
}

/// A shared, clonable fault-injection plan (inert by default).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    inner: Arc<Inner>,
}

/// Consumes one charge from `counter` if any remain.
fn take(counter: &AtomicU64) -> bool {
    counter
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
        .is_ok()
}

impl FaultPlan {
    /// An inert plan (the production default).
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms the next `n` compute closures to panic.
    pub fn panic_next(&self, n: u64) {
        self.inner.panic_remaining.fetch_add(n, Ordering::SeqCst);
    }

    /// Arms the next `n` compute closures to stall for `delay` first.
    pub fn stall_next(&self, n: u64, delay: Duration) {
        self.inner
            .stall_ms
            .store(delay.as_millis() as u64, Ordering::SeqCst);
        self.inner.stall_remaining.fetch_add(n, Ordering::SeqCst);
    }

    /// Arms the next `n` cache misses to abandon their reservation.
    pub fn abandon_next(&self, n: u64) {
        self.inner.abandon_remaining.fetch_add(n, Ordering::SeqCst);
    }

    /// Compute-path hook, called at the top of every artefact render,
    /// kernel execution and DSL compile. Applies an armed stall, then an
    /// armed panic (a closure can be told to do both: stall, then die).
    ///
    /// # Panics
    ///
    /// Panics when a panic fault is armed — that is its job; the server's
    /// `catch_unwind` must contain it.
    pub fn on_compute(&self) {
        if take(&self.inner.stall_remaining) {
            self.inner.injected_stalls.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(
                self.inner.stall_ms.load(Ordering::SeqCst),
            ));
        }
        if take(&self.inner.panic_remaining) {
            self.inner.injected_panics.fetch_add(1, Ordering::SeqCst);
            panic!("injected fault: worker panic");
        }
    }

    /// Reservation-path hook, called right after a cache miss reserves a
    /// key. Returns `true` when the caller must abandon the reservation
    /// and fail the request (the simulated mid-flight death).
    pub fn should_abandon_reservation(&self) -> bool {
        if take(&self.inner.abandon_remaining) {
            self.inner.injected_abandons.fetch_add(1, Ordering::SeqCst);
            return true;
        }
        false
    }

    /// `(panics, stalls, abandons)` actually injected so far.
    pub fn injected(&self) -> (u64, u64, u64) {
        (
            self.inner.injected_panics.load(Ordering::SeqCst),
            self.inner.injected_stalls.load(Ordering::SeqCst),
            self.inner.injected_abandons.load(Ordering::SeqCst),
        )
    }

    /// Total faults injected (the metrics-line figure).
    pub fn injected_total(&self) -> u64 {
        let (p, s, a) = self.injected();
        p + s + a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_never_fires() {
        let plan = FaultPlan::new();
        for _ in 0..100 {
            plan.on_compute();
            assert!(!plan.should_abandon_reservation());
        }
        assert_eq!(plan.injected(), (0, 0, 0));
    }

    #[test]
    fn armed_faults_fire_exactly_n_times_across_threads() {
        let plan = FaultPlan::new();
        plan.panic_next(3);
        plan.abandon_next(2);
        let panics = std::sync::atomic::AtomicU64::new(0);
        let abandons = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..4 {
                        if std::panic::catch_unwind(|| plan.on_compute()).is_err() {
                            panics.fetch_add(1, Ordering::SeqCst);
                        }
                        if plan.should_abandon_reservation() {
                            abandons.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(panics.load(Ordering::SeqCst), 3);
        assert_eq!(abandons.load(Ordering::SeqCst), 2);
        assert_eq!(plan.injected(), (3, 0, 2));
        assert_eq!(plan.injected_total(), 5);
    }

    #[test]
    fn stalls_delay_then_clear() {
        let plan = FaultPlan::new();
        plan.stall_next(1, Duration::from_millis(20));
        let t = std::time::Instant::now();
        plan.on_compute();
        assert!(t.elapsed() >= Duration::from_millis(20));
        let t = std::time::Instant::now();
        plan.on_compute(); // disarmed: no delay
        assert!(t.elapsed() < Duration::from_millis(20));
        assert_eq!(plan.injected(), (0, 1, 0));
    }
}
