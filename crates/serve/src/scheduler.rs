//! Batching scheduler: coalesces simulation requests that share a kernel
//! into one engine execution fanned out across their configurations.
//!
//! The expensive half of a simulation request is the functional kernel
//! execution that produces the event trace; the per-configuration timing
//! walk is cheap and `mve_core::sim::simulate_sweep` already broadcasts one
//! trace into N sims. The [`Batcher`] exploits that split: the first worker
//! to need a `(kernel, scale)` group becomes the **leader** and runs the
//! kernel; every worker that arrives for the same group *while the leader
//! is executing* registers its `(config, cache key)` pair instead of
//! re-running the kernel. When the leader finishes it closes the group,
//! sweeps the trace across every registered configuration in one walk, and
//! publishes all results through the shared [`ResultCache`] — the batch
//! window is exactly the kernel's own execution time, so coalescing needs
//! no timers and adds no latency.
//!
//! The scheduler is generic over what the leader produces (the server
//! passes a kernel run; tests pass rigged producers), so it stays free of
//! kernel-registry and protocol dependencies.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use mve_core::sim::SimConfig;

use crate::cache::{Fetch, ResultCache};

/// One registered request: the configuration to simulate and the cache key
/// its serialized result must be published under.
#[derive(Debug, Clone)]
pub struct BatchEntry {
    /// The timing configuration.
    pub cfg: SimConfig,
    /// The content-addressed key the requester reserved.
    pub key: u64,
}

#[derive(Default)]
struct Group {
    /// Entries joined while the leader executes (including the leader's).
    pending: Vec<BatchEntry>,
}

/// Monotonic scheduler counters.
#[derive(Debug, Default)]
pub struct BatchStats {
    /// Kernel executions (= batches closed).
    pub batches: AtomicU64,
    /// Configurations simulated across all batches (Σ batch sizes).
    pub batched_sims: AtomicU64,
    /// Entries that joined an in-flight leader instead of executing.
    pub joined: AtomicU64,
}

impl BatchStats {
    /// `(batches, batched_sims, joined)` snapshot.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.batches.load(Ordering::SeqCst),
            self.batched_sims.load(Ordering::SeqCst),
            self.joined.load(Ordering::SeqCst),
        )
    }
}

/// The per-group batching scheduler. Group keys are opaque strings (the
/// server uses `"<kernel>@<scale>"`).
#[derive(Default)]
pub struct Batcher {
    groups: Mutex<HashMap<String, Group>>,
    /// Counters; shared with the server's metrics line.
    pub stats: BatchStats,
}

impl Batcher {
    /// A fresh scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<String, Group>> {
        self.groups.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Submits one request whose `entry.key` the caller has already
    /// reserved in `cache` (a [`Fetch::Miss`]). Exactly one caller per
    /// group executes `produce`; `sweep` then serializes every registered
    /// configuration's result from the produced trace in one walk. Returns
    /// the caller's published bytes.
    ///
    /// If the leader's `produce` or `sweep` panics, every registered
    /// reservation is abandoned (waiters retry and elect a new leader) and
    /// the panic propagates to the leader's caller.
    pub fn submit<T>(
        &self,
        group: &str,
        entry: BatchEntry,
        cache: &ResultCache,
        produce: impl FnOnce() -> T,
        sweep: impl FnOnce(&T, &[BatchEntry]) -> Vec<Vec<u8>>,
    ) -> Arc<Vec<u8>> {
        let my_key = entry.key;
        loop {
            let is_leader = {
                let mut groups = self.lock();
                match groups.get_mut(group) {
                    Some(open) => {
                        open.pending.push(entry.clone());
                        false
                    }
                    None => {
                        groups.insert(
                            group.to_owned(),
                            Group {
                                pending: vec![entry.clone()],
                            },
                        );
                        true
                    }
                }
            };
            if !is_leader {
                self.stats.joined.fetch_add(1, Ordering::SeqCst);
                if let Some(bytes) = cache.wait_ready(my_key) {
                    return bytes;
                }
                // The leader died before publishing our key. Re-reserve and
                // retry; if someone else published meanwhile, that's a hit.
                match cache.fetch(my_key) {
                    Fetch::Hit(bytes) => return bytes,
                    Fetch::Miss => continue,
                }
            }

            // Leader path. The guard abandons every registered key if
            // produce/sweep unwinds, so joiners never hang.
            let mut guard = LeaderGuard {
                batcher: self,
                cache,
                group,
                taken: None,
                disarmed: false,
            };
            let produced = produce();
            // Close the group: entries registered from now on start a new
            // batch. Everything registered during `produce` is swept here.
            let batch = {
                let mut groups = self.lock();
                groups.remove(group).map(|g| g.pending).unwrap_or_default()
            };
            guard.taken = Some(batch.iter().map(|e| e.key).collect());
            let results = sweep(&produced, &batch);
            assert_eq!(
                results.len(),
                batch.len(),
                "sweep must serialize one result per registered entry"
            );
            let mut mine = None;
            for (entry, bytes) in batch.iter().zip(results) {
                let published = cache.fulfill(entry.key, bytes);
                if entry.key == my_key {
                    mine = Some(published);
                }
            }
            guard.disarmed = true;
            self.stats.batches.fetch_add(1, Ordering::SeqCst);
            self.stats
                .batched_sims
                .fetch_add(batch.len() as u64, Ordering::SeqCst);
            return mine.expect("leader's own entry is in the batch");
        }
    }
}

/// Panic-safety for the leader: on unwind, close the group (or, once the
/// batch has been taken out of the map, use the recorded keys — a
/// successor group opened meanwhile belongs to its own leader) and abandon
/// every registered reservation so joiners retry instead of hanging.
struct LeaderGuard<'a> {
    batcher: &'a Batcher,
    cache: &'a ResultCache,
    group: &'a str,
    /// `Some(keys)` once the batch was removed from the map.
    taken: Option<Vec<u64>>,
    disarmed: bool,
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if self.disarmed {
            return;
        }
        let keys = match self.taken.take() {
            Some(keys) => keys,
            None => {
                let mut groups = self.batcher.lock();
                groups
                    .remove(self.group)
                    .map(|g| g.pending.iter().map(|e| e.key).collect())
                    .unwrap_or_default()
            }
        };
        for key in keys {
            self.cache.abandon(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Fetch;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;

    fn cfg_with_gap(gap: u64) -> SimConfig {
        SimConfig {
            issue_gap_cycles: gap,
            ..SimConfig::default()
        }
    }

    /// Joiners that arrive while the leader's producer runs are swept in
    /// the leader's single batch: one produce call, N results.
    #[test]
    fn concurrent_requests_for_one_kernel_form_one_batch() {
        let batcher = Arc::new(Batcher::new());
        let cache = Arc::new(ResultCache::new(64));
        let produces = Arc::new(AtomicUsize::new(0));
        let (leader_running_tx, leader_running_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();

        std::thread::scope(|s| {
            // Leader: producer blocks until both joiners have registered.
            let handle = {
                let (batcher, cache, produces) = (
                    Arc::clone(&batcher),
                    Arc::clone(&cache),
                    Arc::clone(&produces),
                );
                s.spawn(move || {
                    let cfg = cfg_with_gap(1);
                    let key = cfg.cache_key();
                    assert!(matches!(cache.fetch(key), Fetch::Miss));
                    batcher.submit(
                        "kern@test",
                        BatchEntry { cfg, key },
                        &cache,
                        move || {
                            produces.fetch_add(1, Ordering::SeqCst);
                            leader_running_tx.send(()).unwrap();
                            release_rx.recv().unwrap();
                            b"trace".to_vec()
                        },
                        |trace, entries| {
                            assert_eq!(trace, b"trace");
                            entries
                                .iter()
                                .map(|e| e.cfg.issue_gap_cycles.to_le_bytes().to_vec())
                                .collect()
                        },
                    )
                })
            };
            leader_running_rx.recv().unwrap();

            // Two joiners with distinct configs register while the leader's
            // producer is blocked.
            let joiners: Vec<_> = [2u64, 3]
                .into_iter()
                .map(|gap| {
                    let (batcher, cache) = (Arc::clone(&batcher), Arc::clone(&cache));
                    s.spawn(move || {
                        let cfg = cfg_with_gap(gap);
                        let key = cfg.cache_key();
                        assert!(matches!(cache.fetch(key), Fetch::Miss));
                        batcher.submit(
                            "kern@test",
                            BatchEntry { cfg, key },
                            &cache,
                            || panic!("joiners must not produce"),
                            |_, _| panic!("joiners must not sweep"),
                        )
                    })
                })
                .collect();
            // Let the joiners reach their registration, then release.
            std::thread::sleep(std::time::Duration::from_millis(20));
            release_tx.send(()).unwrap();

            assert_eq!(&**handle.join().unwrap(), &1u64.to_le_bytes());
            for (joiner, gap) in joiners.into_iter().zip([2u64, 3]) {
                assert_eq!(&**joiner.join().unwrap(), &gap.to_le_bytes());
            }
        });

        assert_eq!(produces.load(Ordering::SeqCst), 1, "one kernel execution");
        let (batches, sims, joined) = batcher.stats.snapshot();
        assert_eq!(batches, 1);
        assert_eq!(sims, 3);
        assert_eq!(joined, 2);
        assert_eq!(cache.stats().misses, 3, "each unique config computed once");
    }

    /// A panicking leader abandons every registered key; a joiner takes
    /// over as the next leader and the system converges.
    #[test]
    fn leader_panic_hands_the_batch_to_a_joiner() {
        let batcher = Arc::new(Batcher::new());
        let cache = Arc::new(ResultCache::new(64));
        let (running_tx, running_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();

        std::thread::scope(|s| {
            let doomed = {
                let (batcher, cache) = (Arc::clone(&batcher), Arc::clone(&cache));
                s.spawn(move || {
                    let cfg = cfg_with_gap(1);
                    let key = cfg.cache_key();
                    assert!(matches!(cache.fetch(key), Fetch::Miss));
                    batcher.submit(
                        "kern@test",
                        BatchEntry { cfg, key },
                        &cache,
                        move || {
                            running_tx.send(()).unwrap();
                            release_rx.recv().unwrap();
                            panic!("kernel blew up");
                        },
                        |_: &Vec<u8>, _| unreachable!(),
                    )
                })
            };
            running_rx.recv().unwrap();
            let survivor = {
                let (batcher, cache) = (Arc::clone(&batcher), Arc::clone(&cache));
                s.spawn(move || {
                    let cfg = cfg_with_gap(2);
                    let key = cfg.cache_key();
                    assert!(matches!(cache.fetch(key), Fetch::Miss));
                    batcher.submit(
                        "kern@test",
                        BatchEntry { cfg, key },
                        &cache,
                        || b"retry-trace".to_vec(),
                        |_, entries| entries.iter().map(|_| b"ok".to_vec()).collect(),
                    )
                })
            };
            std::thread::sleep(std::time::Duration::from_millis(20));
            release_tx.send(()).unwrap();
            assert!(doomed.join().is_err(), "leader panic propagates");
            assert_eq!(&**survivor.join().unwrap(), b"ok");
        });
        let (batches, _, _) = batcher.stats.snapshot();
        assert_eq!(batches, 1, "only the survivor's batch completed");
    }

    /// Sequential submissions (no concurrency) each form their own batch
    /// and publish through the cache.
    #[test]
    fn sequential_submissions_run_alone() {
        let batcher = Batcher::new();
        let cache = ResultCache::new(64);
        for gap in [1u64, 2] {
            let cfg = cfg_with_gap(gap);
            let key = cfg.cache_key();
            assert!(matches!(cache.fetch(key), Fetch::Miss));
            let got = batcher.submit(
                "kern@test",
                BatchEntry { cfg, key },
                &cache,
                || gap,
                |g, entries| entries.iter().map(|_| g.to_le_bytes().to_vec()).collect(),
            );
            assert_eq!(&**got, &gap.to_le_bytes());
        }
        let (batches, sims, joined) = batcher.stats.snapshot();
        assert_eq!((batches, sims, joined), (2, 2, 0));
    }
}
