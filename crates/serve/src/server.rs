//! The simulation daemon: a TCP listener, a sharded worker pool, and the
//! request handlers that tie the protocol to the cache and the batching
//! scheduler.
//!
//! Concurrency model (the PR 3 `--jobs` work-queue pattern, lifted to
//! connections): the accept loop pushes each connection onto a shared
//! queue; `workers` threads pop connections and serve them synchronously,
//! one request line at a time. Cross-connection coordination happens in
//! exactly two places — the content-addressed [`ResultCache`] (single
//! flight: every unique `(kernel, config)` or `(artefact, scale)` is
//! computed exactly once, concurrent duplicates block for the result) and
//! the [`Batcher`] (concurrent sim requests sharing a kernel execute it
//! once and fan their configurations out over one trace walk).
//!
//! Shutdown is cooperative: a flag checked by the accept loop and by every
//! worker between requests (reads carry a 100 ms timeout so no thread
//! blocks past it). The `serve` binary trips the flag on SIGTERM, on stdin
//! EOF, and on the protocol's `shutdown` op.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

use mve_core::sim::simulate_sweep;
use mve_kernels::registry::kernel_by_name;
use mve_kernels::Scale;

use crate::admission::{AdmissionController, AdmissionOptions, ShedReason, UNLIMITED_BUDGET};
use crate::cache::{Fetch, ResultCache};
use crate::cost::CostModel;
use crate::fault::FaultPlan;
use crate::json::Json;
use crate::protocol::{
    artefact_key, compile_key, error_reply, error_reply_at, ok_artefact, ok_compile, ok_estimate,
    ok_shutdown, ok_sim, ok_stats, overloaded_reply, parse_request, report_to_json, scale_name,
    sim_key, Request, SimSpec,
};
use crate::scheduler::{BatchEntry, Batcher};

/// An artefact renderer: scale in, the artefact's exact text out.
pub type ArtefactFn = Arc<dyn Fn(Scale) -> String + Send + Sync>;

/// The artefact vocabulary the server can render, injected by the binary
/// (the harness crate owns the render functions; the service stays
/// protocol-only and the two cannot cyclically depend).
#[derive(Clone, Default)]
pub struct ArtefactRegistry {
    entries: Vec<(&'static str, ArtefactFn)>,
    index: HashMap<&'static str, usize>,
}

impl ArtefactRegistry {
    /// A registry over `entries`; names must be unique.
    pub fn new(entries: Vec<(&'static str, ArtefactFn)>) -> Self {
        let index = entries
            .iter()
            .enumerate()
            .map(|(i, (name, _))| (*name, i))
            .collect::<HashMap<_, _>>();
        assert_eq!(index.len(), entries.len(), "duplicate artefact names");
        Self { entries, index }
    }

    /// The renderer registered under `name`.
    pub fn get(&self, name: &str) -> Option<&ArtefactFn> {
        self.index.get(name).map(|&i| &self.entries[i].1)
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|(n, _)| *n).collect()
    }

    /// Registered names, sorted — the unknown-artefact help vocabulary.
    pub fn names_sorted(&self) -> Vec<&'static str> {
        let mut names = self.names();
        names.sort_unstable();
        names
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen port (0 = ephemeral, query via [`Server::port`]).
    pub port: u16,
    /// Worker threads serving connections.
    pub workers: usize,
    /// LRU bound on completed cache entries.
    pub cache_cap: usize,
    /// A connection that sends no request for this long is closed, so
    /// idle connections cannot pin workers indefinitely (the deadline
    /// applies only while *waiting* for a request — a worker computing a
    /// slow render is busy, not idle).
    pub idle_timeout: Duration,
    /// Admission-control cost budget in cost units (calibrated
    /// microseconds of worker compute; see [`crate::cost`]). The default
    /// is effectively unlimited — admission control is opt-in via
    /// `serve --budget-units`.
    pub cost_budget: u64,
    /// Bounded-FIFO admission queue capacity.
    pub queue_cap: usize,
    /// How long an over-budget request may wait in the admission queue
    /// before it is shed.
    pub queue_deadline: Duration,
    /// Fraction of the budget one connection may hold in flight.
    pub fair_share: f64,
    /// Fault-injection plan (inert by default; tests arm it).
    pub faults: FaultPlan,
}

impl Default for ServeOptions {
    fn default() -> Self {
        let adm = AdmissionOptions::default();
        Self {
            port: 0,
            workers: 4,
            cache_cap: 256,
            idle_timeout: Duration::from_secs(60),
            cost_budget: UNLIMITED_BUDGET,
            queue_cap: adm.queue_cap,
            queue_deadline: adm.queue_deadline,
            fair_share: adm.fair_share,
            faults: FaultPlan::new(),
        }
    }
}

/// Request/error counters (cache and batch counters live with their
/// structures).
#[derive(Debug, Default)]
pub struct Counters {
    /// Request lines received.
    pub requests: AtomicU64,
    /// Artefact requests.
    pub artefact_requests: AtomicU64,
    /// Simulation requests.
    pub sim_requests: AtomicU64,
    /// DSL compile requests.
    pub compile_requests: AtomicU64,
    /// Error replies sent (excluding typed `overloaded` sheds, which the
    /// admission counters track).
    pub errors: AtomicU64,
    /// Connections served.
    pub connections: AtomicU64,
    /// `estimate` requests (priced, never executed).
    pub estimate_requests: AtomicU64,
    /// Connection teardowns that discarded a partially-received request
    /// line (read error or shutdown mid-line) — previously a silent drop.
    pub truncated_requests: AtomicU64,
}

/// Shared server state.
pub struct ServerState {
    cache: ResultCache,
    batcher: Batcher,
    artefacts: ArtefactRegistry,
    counters: Counters,
    admission: AdmissionController,
    faults: FaultPlan,
    shutdown: AtomicBool,
    idle_timeout: Duration,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
}

impl ServerState {
    /// Trips the shutdown flag and wakes every worker — including any
    /// request parked in the admission queue, which sheds as `closed`.
    pub fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.admission.close();
        self.queue_cv.notify_all();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Flat counter snapshot — the `stats` reply and the metrics line.
    pub fn stats_json(&self) -> Json {
        let c = &self.counters;
        let cache = self.cache.stats();
        let (batches, batched_sims, joined) = self.batcher.stats.snapshot();
        let adm = self.admission.snapshot();
        // New members are appended after the pre-admission fields: CI and
        // downstream tooling pattern-match the serialized prefix.
        Json::Obj(vec![
            (
                "requests".to_owned(),
                Json::U64(c.requests.load(Ordering::SeqCst)),
            ),
            (
                "artefact_requests".to_owned(),
                Json::U64(c.artefact_requests.load(Ordering::SeqCst)),
            ),
            (
                "sim_requests".to_owned(),
                Json::U64(c.sim_requests.load(Ordering::SeqCst)),
            ),
            (
                "compile_requests".to_owned(),
                Json::U64(c.compile_requests.load(Ordering::SeqCst)),
            ),
            (
                "errors".to_owned(),
                Json::U64(c.errors.load(Ordering::SeqCst)),
            ),
            (
                "connections".to_owned(),
                Json::U64(c.connections.load(Ordering::SeqCst)),
            ),
            ("batches".to_owned(), Json::U64(batches)),
            ("batched_sims".to_owned(), Json::U64(batched_sims)),
            ("joined".to_owned(), Json::U64(joined)),
            ("hits".to_owned(), Json::U64(cache.hits)),
            ("waits".to_owned(), Json::U64(cache.waits)),
            ("misses".to_owned(), Json::U64(cache.misses)),
            ("evictions".to_owned(), Json::U64(cache.evictions)),
            ("hit_rate".to_owned(), Json::F64(cache.hit_rate())),
            (
                "estimate_requests".to_owned(),
                Json::U64(c.estimate_requests.load(Ordering::SeqCst)),
            ),
            (
                "truncated_requests".to_owned(),
                Json::U64(c.truncated_requests.load(Ordering::SeqCst)),
            ),
            ("budget".to_owned(), Json::U64(adm.budget)),
            ("in_flight".to_owned(), Json::U64(adm.in_flight)),
            ("peak_in_flight".to_owned(), Json::U64(adm.peak_in_flight)),
            ("admitted".to_owned(), Json::U64(adm.admitted)),
            ("queued".to_owned(), Json::U64(adm.queued)),
            ("queue_depth".to_owned(), Json::U64(adm.queue_depth)),
            ("sheds".to_owned(), Json::U64(adm.sheds)),
            ("shed_oversize".to_owned(), Json::U64(adm.shed_oversize)),
            ("shed_queue_full".to_owned(), Json::U64(adm.shed_queue_full)),
            ("shed_deadline".to_owned(), Json::U64(adm.shed_deadline)),
            ("shed_closed".to_owned(), Json::U64(adm.shed_closed)),
            (
                "faults_injected".to_owned(),
                Json::U64(self.faults.injected_total()),
            ),
        ])
    }

    /// One-line human/CI-readable metrics summary of the current state.
    pub fn metrics_line(&self) -> String {
        metrics_line(&self.stats_json())
    }
}

/// Renders a stats snapshot (from [`ServerState::stats_json`] or a final
/// [`Server::run`] result) as the one-line `serve-metrics k=v …` summary —
/// the single formatter behind the line CI greps for and uploads.
pub fn metrics_line(stats: &Json) -> String {
    let fields: Vec<String> = match stats {
        Json::Obj(members) => members
            .iter()
            .map(|(k, v)| format!("{k}={}", v.encode()))
            .collect(),
        _ => Vec::new(),
    };
    format!("serve-metrics {}", fields.join(" "))
        .trim_end()
        .to_owned()
}

/// A handle that can stop a running server from another thread.
#[derive(Clone)]
pub struct ShutdownHandle {
    state: Arc<ServerState>,
}

impl ShutdownHandle {
    /// Requests a graceful shutdown.
    pub fn shutdown(&self) {
        self.state.trigger_shutdown();
    }
}

/// A bound (not yet running) server.
pub struct Server {
    listener: TcpListener,
    workers: usize,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds `127.0.0.1:port` and prepares the shared state.
    pub fn bind(opts: &ServeOptions, artefacts: ArtefactRegistry) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", opts.port))?;
        listener.set_nonblocking(true)?;
        Ok(Self {
            listener,
            workers: opts.workers.max(1),
            state: Arc::new(ServerState {
                cache: ResultCache::new(opts.cache_cap),
                batcher: Batcher::new(),
                artefacts,
                counters: Counters::default(),
                admission: AdmissionController::new(AdmissionOptions {
                    budget: opts.cost_budget,
                    queue_cap: opts.queue_cap,
                    queue_deadline: opts.queue_deadline,
                    fair_share: opts.fair_share,
                }),
                faults: opts.faults.clone(),
                shutdown: AtomicBool::new(false),
                idle_timeout: opts.idle_timeout,
                queue: Mutex::new(VecDeque::new()),
                queue_cv: Condvar::new(),
            }),
        })
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.listener.local_addr().map(|a| a.port()).unwrap_or(0)
    }

    /// A shutdown handle usable from other threads.
    pub fn handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Runs accept loop + worker pool until shutdown; returns the final
    /// counter snapshot.
    pub fn run(self) -> Json {
        let state = &self.state;
        std::thread::scope(|s| {
            for _ in 0..self.workers {
                s.spawn(move || worker_loop(state));
            }
            loop {
                if state.is_shutting_down() {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        let mut queue = state.queue.lock().unwrap_or_else(PoisonError::into_inner);
                        queue.push_back(stream);
                        drop(queue);
                        state.queue_cv.notify_one();
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            }
            state.queue_cv.notify_all();
        });
        self.state.stats_json()
    }
}

fn worker_loop(state: &ServerState) {
    loop {
        let stream = {
            let mut queue = state.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if state.is_shutting_down() {
                    break None;
                }
                let (guard, _timeout) = state
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(100))
                    .unwrap_or_else(PoisonError::into_inner);
                queue = guard;
            }
        };
        let Some(stream) = stream else { return };
        // The connection ordinal doubles as the fairness-accounting id.
        let conn_id = state.counters.connections.fetch_add(1, Ordering::SeqCst);
        serve_connection(state, conn_id, stream);
    }
}

/// Hard cap on one buffered request line. The largest legitimate request
/// is a `compile` op (1 MiB of source, ≤ 6× inflation under JSON `\uXXXX`
/// escaping); beyond this the connection is dropped *while reading*, so a
/// newline-less byte stream cannot balloon daemon memory before the
/// protocol-layer checks ever run.
const MAX_REQUEST_LINE_BYTES: usize = 8 << 20;

/// Serves one connection until EOF, error, idle deadline, oversized
/// request, or shutdown.
fn serve_connection(state: &ServerState, conn_id: u64, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    if stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .is_err()
    {
        return;
    }
    let mut reader = BufReader::new(stream);
    let mut writer = write_half;
    let mut line: Vec<u8> = Vec::new();
    loop {
        line.clear();
        // Accumulate one full line; timeouts poll the shutdown flag and
        // the idle deadline (read_until appends partial reads to `line`,
        // so resuming after a timeout never loses bytes). The deadline
        // resets per request, so a silent connection releases its worker
        // instead of pinning it forever.
        let idle_since = std::time::Instant::now();
        let saw_newline = loop {
            // `read_until` only returns on delimiter/EOF/error, so an
            // unbounded reader would happily buffer a newline-less
            // gigabyte stream inside ONE call; the `take` budget forces a
            // return at the cap so the limit is enforced *while reading*.
            let budget = (MAX_REQUEST_LINE_BYTES + 1).saturating_sub(line.len()) as u64;
            match (&mut reader).take(budget).read_until(b'\n', &mut line) {
                Ok(_) if line.len() > MAX_REQUEST_LINE_BYTES && !line.ends_with(b"\n") => {
                    // Reply (best effort) and drop the connection: the
                    // sender is either broken or hostile.
                    let _ = writer
                        .write_all(error_reply("request line exceeds the size limit").as_bytes())
                        .and_then(|()| writer.write_all(b"\n"));
                    return;
                }
                Ok(0) => break false,
                Ok(_) if line.ends_with(b"\n") => break true,
                Ok(_) => {} // mid-line wakeup; keep reading
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    if state.is_shutting_down() {
                        // Shutdown mid-line discards a partial request —
                        // account for it instead of dropping it silently.
                        if !line.is_empty() {
                            state
                                .counters
                                .truncated_requests
                                .fetch_add(1, Ordering::SeqCst);
                        }
                        return;
                    }
                    if line.is_empty() && idle_since.elapsed() >= state.idle_timeout {
                        return; // idle connection: free the worker
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    // A read error (e.g. connection reset) mid-line also
                    // discards a partial request.
                    if !line.is_empty() {
                        state
                            .counters
                            .truncated_requests
                            .fetch_add(1, Ordering::SeqCst);
                    }
                    return;
                }
            }
        };
        let text = String::from_utf8_lossy(&line);
        let text = text.trim();
        if text.is_empty() {
            if saw_newline {
                continue;
            }
            return; // clean EOF
        }
        state.counters.requests.fetch_add(1, Ordering::SeqCst);
        let (reply, shutdown) = handle_request(state, conn_id, text);
        if writer
            .write_all(reply.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
        if shutdown {
            state.trigger_shutdown();
            return;
        }
        if !saw_newline {
            return; // EOF followed the final (unterminated) request
        }
    }
}

/// Prose for the typed `overloaded` reply.
fn shed_reason_text(reason: ShedReason) -> &'static str {
    match reason {
        ShedReason::Oversize => "request cost exceeds the admission budget",
        ShedReason::QueueFull => "admission queue full",
        ShedReason::Deadline => "admission queue deadline expired",
        ShedReason::Closed => "server shutting down",
    }
}

/// Dispatches one request line; returns the reply and whether this request
/// asked for shutdown.
fn handle_request(state: &ServerState, conn_id: u64, line: &str) -> (String, bool) {
    let fail = |msg: &str| {
        state.counters.errors.fetch_add(1, Ordering::SeqCst);
        (error_reply(msg), false)
    };
    let req = match parse_request(line) {
        Ok(req) => req,
        Err(msg) => return fail(&msg),
    };
    match req {
        Request::Stats => (ok_stats(state.stats_json()), false),
        Request::Shutdown => (ok_shutdown(), true),
        Request::Estimate(inner) => {
            state
                .counters
                .estimate_requests
                .fetch_add(1, Ordering::SeqCst);
            // The parser only admits chargeable inner requests, and the
            // reply uses the same `charge` the controller levies — the
            // estimate and the eventual admission charge cannot diverge.
            let est = CostModel::committed()
                .charge(&inner)
                .expect("estimate inner request is chargeable");
            (
                ok_estimate(
                    est.class.name(),
                    est.cost,
                    state.admission.would_admit(conn_id, est.cost),
                ),
                false,
            )
        }
        chargeable => {
            let est = CostModel::committed()
                .charge(&chargeable)
                .expect("artefact/sim/compile are chargeable");
            // Admission happens before any compute: a shed request costs
            // the daemon one formula evaluation, nothing more. The permit
            // is held (RAII) until the reply is built, covering cache
            // waits and batched execution alike.
            let _permit = match state.admission.admit(conn_id, est.cost) {
                Ok(permit) => permit,
                Err(shed) => {
                    return (
                        overloaded_reply(shed_reason_text(shed.reason), shed.retry_after_ms),
                        false,
                    )
                }
            };
            match chargeable {
                Request::Artefact { name, scale } => {
                    state
                        .counters
                        .artefact_requests
                        .fetch_add(1, Ordering::SeqCst);
                    match serve_artefact(state, &name, scale) {
                        Ok(bytes) => match std::str::from_utf8(&bytes) {
                            Ok(text) => (ok_artefact(&name, text), false),
                            Err(_) => fail("artefact bytes are not UTF-8"),
                        },
                        Err(msg) => fail(&msg),
                    }
                }
                Request::Compile { source, spec } => {
                    state
                        .counters
                        .compile_requests
                        .fetch_add(1, Ordering::SeqCst);
                    match serve_compile(state, &source, &spec) {
                        Ok(bytes) => match std::str::from_utf8(&bytes) {
                            Ok(text) => (ok_compile(text), false),
                            Err(_) => fail("compile bytes are not UTF-8"),
                        },
                        Err((msg, line, col)) => {
                            state.counters.errors.fetch_add(1, Ordering::SeqCst);
                            (error_reply_at(&msg, line, col), false)
                        }
                    }
                }
                Request::Sim {
                    kernel,
                    scale,
                    spec,
                } => {
                    state.counters.sim_requests.fetch_add(1, Ordering::SeqCst);
                    match serve_sim(state, &kernel, scale, &spec) {
                        Ok(bytes) => match std::str::from_utf8(&bytes) {
                            Ok(fragment) => (ok_sim(&kernel, fragment), false),
                            Err(_) => fail("report bytes are not UTF-8"),
                        },
                        Err(msg) => fail(&msg),
                    }
                }
                Request::Estimate(_) | Request::Stats | Request::Shutdown => {
                    unreachable!("control-plane ops are handled before admission")
                }
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "worker panicked".to_owned())
}

fn serve_artefact(state: &ServerState, name: &str, scale: Scale) -> Result<Arc<Vec<u8>>, String> {
    let Some(render) = state.artefacts.get(name) else {
        let names = state.artefacts.names_sorted();
        let suggestion = mve_kernels::registry::did_you_mean(name, &names)
            .map(|s| format!(" did you mean `{s}`?"))
            .unwrap_or_default();
        return Err(format!(
            "unknown artefact `{name}`;{suggestion} valid artefacts: {}",
            names.join(", ")
        ));
    };
    match state.cache.fetch(artefact_key(name, scale)) {
        Fetch::Hit(bytes) => Ok(bytes),
        Fetch::Miss => {
            let key = artefact_key(name, scale);
            if state.faults.should_abandon_reservation() {
                state.cache.abandon(key);
                return Err(format!("artefact `{name}` failed: injected abandonment"));
            }
            match catch_unwind(AssertUnwindSafe(|| {
                state.faults.on_compute();
                render(scale)
            })) {
                Ok(text) => Ok(state.cache.fulfill(key, text.into_bytes())),
                Err(payload) => {
                    state.cache.abandon(key);
                    Err(format!(
                        "artefact `{name}` failed: {}",
                        panic_message(&*payload)
                    ))
                }
            }
        }
    }
}

/// Compiles, executes, checks and times a client-submitted kernel behind
/// the single-flight cache, keyed on the source digest plus the canonical
/// configuration encoding. Diagnostics come back with their source
/// position (`line`/`col`) for the typed error reply.
fn serve_compile(
    state: &ServerState,
    source: &str,
    spec: &SimSpec,
) -> Result<Arc<Vec<u8>>, (String, u32, u32)> {
    let cfg = spec.to_config();
    let key = compile_key(source, &cfg);
    match state.cache.fetch(key) {
        Fetch::Hit(bytes) => Ok(bytes),
        Fetch::Miss => {
            if state.faults.should_abandon_reservation() {
                state.cache.abandon(key);
                return Err(("compile failed: injected abandonment".to_owned(), 0, 0));
            }
            let result = catch_unwind(AssertUnwindSafe(|| {
                state.faults.on_compute();
                mve_lang::compile_and_render(source, &cfg)
            }));
            match result {
                Ok(Ok(text)) => Ok(state.cache.fulfill(key, text.into_bytes())),
                Ok(Err(diag)) => {
                    state.cache.abandon(key);
                    Err((diag.message.clone(), diag.span.line, diag.span.col))
                }
                Err(payload) => {
                    state.cache.abandon(key);
                    Err((
                        format!("compile failed: {}", panic_message(&*payload)),
                        0,
                        0,
                    ))
                }
            }
        }
    }
}

fn serve_sim(
    state: &ServerState,
    kernel: &str,
    scale: Scale,
    spec: &SimSpec,
) -> Result<Arc<Vec<u8>>, String> {
    // Resolve the name first: the unknown-kernel reply is the registry's
    // own sorted-vocabulary message, shared with the CLI front-ends.
    let kernel_impl = kernel_by_name(kernel).map_err(|e| e.to_string())?;
    let cfg = spec.to_config();
    let key = sim_key(kernel, scale, &cfg);
    match state.cache.fetch(key) {
        Fetch::Hit(bytes) => Ok(bytes),
        Fetch::Miss => {
            if state.faults.should_abandon_reservation() {
                state.cache.abandon(key);
                return Err(format!("sim `{kernel}` failed: injected abandonment"));
            }
            // The batch group is the functional execution identity: kernel,
            // scale, and the engine geometry the kernel must run under (an
            // `arrays` override changes the trace itself, exactly as in the
            // Figure 12(b) sweep — such requests get their own group).
            let arrays = cfg.geometry.arrays;
            let group = format!("{kernel}@{}@{arrays}", scale_name(scale));
            let faults = state.faults.clone();
            let result = catch_unwind(AssertUnwindSafe(|| {
                state.batcher.submit(
                    &group,
                    BatchEntry { cfg, key },
                    &state.cache,
                    move || {
                        faults.on_compute();
                        // Guard, not set/restore: a panicking kernel must
                        // not leave the worker's thread-local poisoned for
                        // later requests on the same thread.
                        let _arrays = mve_kernels::common::EngineArraysGuard::new(arrays);
                        let run = kernel_impl.run_mve(scale);
                        assert!(
                            run.checked.ok(),
                            "{kernel}: functional check failed {:?}",
                            run.checked
                        );
                        run.trace
                    },
                    |trace, entries| {
                        let cfgs: Vec<_> = entries.iter().map(|e| e.cfg.clone()).collect();
                        simulate_sweep(trace, &cfgs)
                            .iter()
                            .map(|report| report_to_json(report).encode().into_bytes())
                            .collect()
                    },
                )
            }));
            result.map_err(|payload| {
                // The batcher's leader guard has already abandoned every
                // registered reservation.
                format!("sim `{kernel}` failed: {}", panic_message(&*payload))
            })
        }
    }
}
