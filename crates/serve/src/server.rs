//! The simulation daemon: a nonblocking event loop owning every
//! connection, a fixed worker pool that only ever holds *executing*
//! requests, and the request handlers that tie the protocol to the cache
//! and the batching scheduler.
//!
//! Concurrency model (the PR 8 I/O core): one event-loop thread drives a
//! [`Poller`] (epoll on Linux, `poll(2)` fallback) over the listener, a
//! self-pipe, and every connection. Connections are per-fd state machines
//! with bounded read and write buffers — a peer that drains slowly stops
//! being *read from* once its write buffer crosses the high-water mark
//! (explicit backpressure), and a peer that stops draining entirely is
//! reaped by a write-stall timer. Requests parse on the loop; control
//! plane ops (`stats`, `estimate`, `shutdown`) execute inline, chargeable
//! ops are priced and admitted *on the loop* — admission-queued requests
//! park in the loop under a [`crate::timer::TimerWheel`] deadline without
//! holding a worker — and only admitted requests travel (with their
//! admission [`Charge`]) to the worker pool. Workers push completions and
//! wake the loop through the pipe.
//!
//! Cross-connection coordination happens in exactly two places — the
//! content-addressed [`ResultCache`] (single flight: every unique
//! `(kernel, config)` or `(artefact, scale)` is computed exactly once,
//! concurrent duplicates block for the result) and the [`Batcher`]
//! (concurrent sim requests sharing a kernel execute it once and fan
//! their configurations out over one trace walk).
//!
//! Shutdown is cooperative: the flag plus a wake byte stop the loop from
//! accepting, shed parked requests as typed `closed` overloads, let
//! in-flight executions finish, flush what can be flushed, and account
//! for any partially-received request lines.

use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use mve_core::sim::simulate_sweep;
use mve_kernels::registry::kernel_by_name;
use mve_kernels::Scale;
use mve_lang::CompilePhases;
use mve_obs::logev;
use mve_obs::metrics::{Log2Histogram, MetricsRegistry, Scalar};
use mve_obs::Level;

use crate::admission::{
    AdmissionController, AdmissionOptions, Charge, HeadClaim, ShedReason, Ticket, TryAdmit,
    UNLIMITED_BUDGET,
};
use crate::cache::{Fetch, ResultCache};
use crate::cost::{CostModel, OpClass};
use crate::fault::FaultPlan;
use crate::histogram::{Histogram, LatencyMetrics, MetricClass};
use crate::json::Json;
use crate::poller::{wake_pipe, Event, Interest, Poller, PollerBackend, WakeRx, WakeTx};
use crate::protocol::{
    artefact_key, compile_key, error_reply, error_reply_at, ok_artefact, ok_compile, ok_estimate,
    ok_metrics, ok_profile, ok_shutdown, ok_sim, ok_stats, ok_traces, op_name, overloaded_reply,
    parse_request, profile_key, profile_payload, report_to_json, scale_name, sim_key, Request,
    SimSpec,
};
use crate::scheduler::{BatchEntry, Batcher};
use crate::timer::{TimerId, TimerWheel};
use crate::trace::{PendingTrace, TraceRing};

/// An artefact renderer: scale in, the artefact's exact text out.
pub type ArtefactFn = Arc<dyn Fn(Scale) -> String + Send + Sync>;

/// The artefact vocabulary the server can render, injected by the binary
/// (the harness crate owns the render functions; the service stays
/// protocol-only and the two cannot cyclically depend).
#[derive(Clone, Default)]
pub struct ArtefactRegistry {
    entries: Vec<(&'static str, ArtefactFn)>,
    index: HashMap<&'static str, usize>,
}

impl ArtefactRegistry {
    /// A registry over `entries`; names must be unique.
    pub fn new(entries: Vec<(&'static str, ArtefactFn)>) -> Self {
        let index = entries
            .iter()
            .enumerate()
            .map(|(i, (name, _))| (*name, i))
            .collect::<HashMap<_, _>>();
        assert_eq!(index.len(), entries.len(), "duplicate artefact names");
        Self { entries, index }
    }

    /// The renderer registered under `name`.
    pub fn get(&self, name: &str) -> Option<&ArtefactFn> {
        self.index.get(name).map(|&i| &self.entries[i].1)
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|(n, _)| *n).collect()
    }

    /// Registered names, sorted — the unknown-artefact help vocabulary.
    pub fn names_sorted(&self) -> Vec<&'static str> {
        let mut names = self.names();
        names.sort_unstable();
        names
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen port (0 = ephemeral, query via [`Server::port`]).
    pub port: u16,
    /// Worker threads executing admitted requests.
    pub workers: usize,
    /// LRU bound on completed cache entries.
    pub cache_cap: usize,
    /// A connection that completes no request for this long is closed by
    /// the event loop's timer wheel, so idle connections cannot pin
    /// daemon resources indefinitely (the deadline applies only while
    /// *waiting* for a request — an executing or parked request is busy,
    /// not idle).
    pub idle_timeout: Duration,
    /// A connection whose peer accepts no reply bytes for this long is
    /// closed and counted under `stalled_writes` — the write-side twin of
    /// `idle_timeout`.
    pub write_stall_timeout: Duration,
    /// Admission-control cost budget in cost units (calibrated
    /// microseconds of worker compute; see [`crate::cost`]). The default
    /// is effectively unlimited — admission control is opt-in via
    /// `serve --budget-units`.
    pub cost_budget: u64,
    /// Bounded-FIFO admission queue capacity.
    pub queue_cap: usize,
    /// How long an over-budget request may wait (parked in the event
    /// loop) before it is shed.
    pub queue_deadline: Duration,
    /// Fraction of the budget one connection may hold in flight.
    pub fair_share: f64,
    /// Readiness backend; `Auto` consults `MVE_SERVE_POLLER`.
    pub poller: PollerBackend,
    /// Fault-injection plan (inert by default; tests arm it).
    pub faults: FaultPlan,
    /// Completed-request trace ring capacity (`serve --trace-ring`;
    /// validated to 16..=65536 by the CLI, clamped to ≥ 1 here).
    pub trace_ring: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        let adm = AdmissionOptions::default();
        Self {
            port: 0,
            workers: 4,
            cache_cap: 256,
            idle_timeout: Duration::from_secs(60),
            write_stall_timeout: Duration::from_secs(10),
            cost_budget: UNLIMITED_BUDGET,
            queue_cap: adm.queue_cap,
            queue_deadline: adm.queue_deadline,
            fair_share: adm.fair_share,
            poller: PollerBackend::Auto,
            faults: FaultPlan::new(),
            trace_ring: crate::trace::TRACE_RING_CAPACITY,
        }
    }
}

/// Request/error counters (cache and batch counters live with their
/// structures).
#[derive(Debug, Default)]
pub struct Counters {
    /// Request lines received.
    pub requests: AtomicU64,
    /// Artefact requests.
    pub artefact_requests: AtomicU64,
    /// Simulation requests.
    pub sim_requests: AtomicU64,
    /// DSL compile requests.
    pub compile_requests: AtomicU64,
    /// Error replies sent (excluding typed `overloaded` sheds, which the
    /// admission counters track).
    pub errors: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// `estimate` requests (priced, never executed).
    pub estimate_requests: AtomicU64,
    /// Connection teardowns that discarded a partially-received request
    /// line (read error, reaping, or shutdown mid-line) — previously a
    /// silent drop.
    pub truncated_requests: AtomicU64,
    /// Connections reaped because the peer stopped draining replies past
    /// the write-stall deadline.
    pub stalled_writes: AtomicU64,
    /// Gauge: connections currently open.
    pub open_connections: AtomicU64,
    /// Gauge: requests currently executing on a worker.
    pub executing_requests: AtomicU64,
    /// `metrics` requests (Prometheus exposition renders).
    pub metrics_requests: AtomicU64,
    /// `trace` requests (trace-ring snapshots).
    pub trace_requests: AtomicU64,
    /// DSL per-line profile requests.
    pub profile_requests: AtomicU64,
}

/// An admitted request in transit to the worker pool. Only *executing*
/// work ever reaches this queue — parked/queued requests stay in the
/// event loop.
struct Job {
    token: u64,
    request: Request,
    charge: Charge,
    class: OpClass,
    ready_at: Instant,
    trace: PendingTrace,
}

/// A finished execution headed back to the event loop.
struct Completion {
    token: u64,
    reply: String,
    trace: PendingTrace,
}

/// Shared server state.
pub struct ServerState {
    cache: ResultCache,
    batcher: Batcher,
    artefacts: ArtefactRegistry,
    counters: Counters,
    admission: AdmissionController,
    faults: FaultPlan,
    shutdown: AtomicBool,
    latency: LatencyMetrics,
    poller_backend: &'static str,
    /// Daemon start instant — the zero point of every trace timestamp.
    epoch: Instant,
    /// Monotonic request-id source.
    next_request_id: AtomicU64,
    /// Completed-request traces (bounded ring; the `trace` op snapshot).
    traces: TraceRing,
    jobs: Mutex<VecDeque<Job>>,
    jobs_cv: Condvar,
    completions: Mutex<Vec<Completion>>,
    wake: WakeTx,
}

impl ServerState {
    /// Trips the shutdown flag and wakes everything: the event loop (via
    /// the self-pipe), the workers, and any admission-queue waiter, which
    /// sheds as `closed`.
    pub fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.admission.close();
        self.jobs_cv.notify_all();
        self.wake.wake();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// The unified metrics snapshot: the single place every counter,
    /// gauge, and histogram is enumerated. Both the `stats` JSON reply
    /// (via [`ServerState::stats_json`], which preserves the historical
    /// member order CI greps) and the `metrics` op's Prometheus text
    /// exposition render from this registry, so the two views cannot
    /// drift apart.
    pub fn registry(&self) -> MetricsRegistry {
        let c = &self.counters;
        let cache = self.cache.stats();
        let (batches, batched_sims, joined) = self.batcher.stats.snapshot();
        let adm = self.admission.snapshot();
        let load = |a: &AtomicU64| a.load(Ordering::SeqCst);
        let mut reg = MetricsRegistry::new();
        // Scalar insertion order here IS the `stats` JSON member order —
        // append new metrics at the end of the scalars, never in the
        // middle (downstream tooling pattern-matches serialized runs).
        reg.counter("requests", "Request lines received.", load(&c.requests));
        reg.counter(
            "artefact_requests",
            "Artefact render requests executed.",
            load(&c.artefact_requests),
        );
        reg.counter(
            "sim_requests",
            "Simulation requests executed.",
            load(&c.sim_requests),
        );
        reg.counter(
            "compile_requests",
            "DSL compile requests executed.",
            load(&c.compile_requests),
        );
        reg.counter(
            "errors",
            "Error replies sent (excluding typed overload sheds).",
            load(&c.errors),
        );
        reg.counter("connections", "Connections accepted.", load(&c.connections));
        reg.counter(
            "batches",
            "Batched sim executions (one kernel run each).",
            batches,
        );
        reg.counter(
            "batched_sims",
            "Sim requests served through a batch.",
            batched_sims,
        );
        reg.counter("joined", "Requests that joined an existing batch.", joined);
        reg.counter("hits", "Result-cache hits.", cache.hits);
        reg.counter("waits", "Result-cache single-flight waits.", cache.waits);
        reg.counter(
            "misses",
            "Result-cache misses (unique computations).",
            cache.misses,
        );
        reg.counter("evictions", "Result-cache LRU evictions.", cache.evictions);
        reg.gauge_f("hit_rate", "Cache hits over lookups.", cache.hit_rate());
        reg.counter(
            "estimate_requests",
            "Estimate requests (priced, never executed).",
            load(&c.estimate_requests),
        );
        reg.counter(
            "truncated_requests",
            "Teardowns that discarded a partial request line.",
            load(&c.truncated_requests),
        );
        reg.gauge("budget", "Admission cost budget, cost units.", adm.budget);
        reg.gauge(
            "in_flight",
            "Admitted cost currently in flight.",
            adm.in_flight,
        );
        reg.gauge(
            "peak_in_flight",
            "Peak admitted cost in flight.",
            adm.peak_in_flight,
        );
        reg.counter(
            "admitted",
            "Requests admitted by the controller.",
            adm.admitted,
        );
        reg.counter(
            "queued",
            "Requests that waited in the admission queue.",
            adm.queued,
        );
        reg.gauge(
            "queue_depth",
            "Requests parked in the admission queue.",
            adm.queue_depth,
        );
        reg.counter(
            "sheds",
            "Requests shed with typed overload replies.",
            adm.sheds,
        );
        reg.counter(
            "shed_oversize",
            "Sheds: cost exceeds the whole budget.",
            adm.shed_oversize,
        );
        reg.counter(
            "shed_queue_full",
            "Sheds: admission queue full.",
            adm.shed_queue_full,
        );
        reg.counter(
            "shed_deadline",
            "Sheds: queue deadline expired.",
            adm.shed_deadline,
        );
        reg.counter(
            "shed_closed",
            "Sheds: server shutting down.",
            adm.shed_closed,
        );
        reg.counter(
            "faults_injected",
            "Injected faults (test-only fault plan).",
            self.faults.injected_total(),
        );
        reg.counter(
            "stalled_writes",
            "Connections reaped for not draining replies.",
            load(&c.stalled_writes),
        );
        reg.gauge(
            "open_connections",
            "Connections currently open.",
            load(&c.open_connections),
        );
        reg.gauge(
            "executing_requests",
            "Requests currently executing on a worker.",
            load(&c.executing_requests),
        );
        reg.counter(
            "metrics_requests",
            "Metrics (Prometheus exposition) requests.",
            load(&c.metrics_requests),
        );
        reg.counter(
            "trace_requests",
            "Trace-ring snapshot requests.",
            load(&c.trace_requests),
        );
        reg.counter(
            "traces_recorded",
            "Completed request traces recorded.",
            self.traces.recorded(),
        );
        reg.counter(
            "profile_requests",
            "DSL per-line profile requests executed.",
            load(&c.profile_requests),
        );
        reg.info(
            "info",
            "Daemon runtime info.",
            &[("poller", self.poller_backend)],
        );
        for class in MetricClass::ALL {
            // The measured-cost EWMA the `estimate` op reports as
            // `measured_cost_us`, exposed as a per-class gauge family so
            // scrapers see model-vs-observed drift without a request.
            reg.gauge_f_with(
                "measured_cost_us",
                "Observed mean service time per op class, µs (EWMA).",
                &[("class", class.name())],
                self.latency.mean_service_us(class),
            );
            let (service, queue_wait) = self.latency.class_histograms(class);
            let labels = [("class", class.name())];
            reg.histogram(
                "request_service_us",
                "Request service time per op class, µs (log2 buckets).",
                &labels,
                log2_snapshot(service),
            );
            reg.histogram(
                "request_queue_wait_us",
                "Runnable-to-picked-up wait per op class, µs (log2 buckets).",
                &labels,
                log2_snapshot(queue_wait),
            );
        }
        reg
    }

    /// Flat counter snapshot — the `stats` reply and the metrics line.
    /// Derived from [`ServerState::registry`]: scalars in registry order,
    /// then the `poller` string and the nested `latency` object, exactly
    /// the historical layout.
    pub fn stats_json(&self) -> Json {
        let reg = self.registry();
        let mut members: Vec<(String, Json)> = reg
            .scalars()
            .map(|(name, v)| {
                let value = match v {
                    Scalar::U64(n) => Json::U64(n),
                    Scalar::F64(f) => Json::F64(f),
                };
                (name.to_owned(), value)
            })
            .collect();
        members.push((
            "poller".to_owned(),
            Json::Str(self.poller_backend.to_owned()),
        ));
        members.push(("latency".to_owned(), self.latency.to_json()));
        Json::Obj(members)
    }

    /// The `metrics` op body: the registry rendered as Prometheus text
    /// exposition under the `mve_serve` namespace.
    pub fn prometheus_text(&self) -> String {
        self.registry().render_prometheus("mve_serve")
    }

    fn next_request_id(&self) -> u64 {
        self.next_request_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Finalizes a trace at reply-flush time: records it in the ring and
    /// emits the structured `serve.request` log event.
    fn finish_trace(&self, trace: PendingTrace, flushed: Instant) {
        let record = trace.finish(flushed, self.epoch);
        let level = if record.outcome == "ok" {
            Level::Debug
        } else {
            Level::Info
        };
        logev!(
            level,
            "serve.request",
            id = record.id,
            conn = record.conn,
            op = record.op,
            outcome = record.outcome,
            cache = record.cache,
            queue_wait_us = record.queue_wait_us(),
            service_us = record.executed_us - record.dispatched_us,
            total_us = record.flushed_us - record.received_us,
        );
        self.traces.push(record);
    }

    /// One-line human/CI-readable metrics summary of the current state.
    pub fn metrics_line(&self) -> String {
        metrics_line(&self.stats_json())
    }
}

/// Snapshot a serve histogram into the registry's raw-bucket form.
fn log2_snapshot(h: &Histogram) -> Log2Histogram {
    Log2Histogram {
        counts: h.bucket_counts().to_vec(),
        count: h.count(),
        sum: h.sum(),
    }
}

/// Renders a stats snapshot (from [`ServerState::stats_json`] or a final
/// [`Server::run`] result) as the one-line `serve-metrics k=v …` summary —
/// the single formatter behind the line CI greps for and uploads.
pub fn metrics_line(stats: &Json) -> String {
    let fields: Vec<String> = match stats {
        Json::Obj(members) => members
            .iter()
            .map(|(k, v)| format!("{k}={}", v.encode()))
            .collect(),
        _ => Vec::new(),
    };
    format!("serve-metrics {}", fields.join(" "))
        .trim_end()
        .to_owned()
}

/// A handle that can stop a running server from another thread.
#[derive(Clone)]
pub struct ShutdownHandle {
    state: Arc<ServerState>,
}

impl ShutdownHandle {
    /// Requests a graceful shutdown.
    pub fn shutdown(&self) {
        self.state.trigger_shutdown();
    }
}

/// Event-loop timing knobs carried from [`ServeOptions`] into the loop.
#[derive(Debug, Clone, Copy)]
struct LoopConfig {
    idle_timeout: Duration,
    write_stall: Duration,
    queue_deadline: Duration,
}

/// A bound (not yet running) server.
pub struct Server {
    listener: TcpListener,
    workers: usize,
    state: Arc<ServerState>,
    poller: Poller,
    wake_rx: WakeRx,
    cfg: LoopConfig,
}

impl Server {
    /// Binds `127.0.0.1:port`, opens the poller and self-pipe, and
    /// prepares the shared state.
    pub fn bind(opts: &ServeOptions, artefacts: ArtefactRegistry) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", opts.port))?;
        listener.set_nonblocking(true)?;
        let poller = Poller::new(opts.poller)?;
        let (wake_tx, wake_rx) = wake_pipe()?;
        let poller_backend = poller.backend();
        Ok(Self {
            listener,
            workers: opts.workers.max(1),
            state: Arc::new(ServerState {
                cache: ResultCache::new(opts.cache_cap),
                batcher: Batcher::new(),
                artefacts,
                counters: Counters::default(),
                admission: AdmissionController::new(AdmissionOptions {
                    budget: opts.cost_budget,
                    queue_cap: opts.queue_cap,
                    queue_deadline: opts.queue_deadline,
                    fair_share: opts.fair_share,
                }),
                faults: opts.faults.clone(),
                shutdown: AtomicBool::new(false),
                latency: LatencyMetrics::new(),
                poller_backend,
                epoch: Instant::now(),
                next_request_id: AtomicU64::new(0),
                traces: TraceRing::new(opts.trace_ring),
                jobs: Mutex::new(VecDeque::new()),
                jobs_cv: Condvar::new(),
                completions: Mutex::new(Vec::new()),
                wake: wake_tx,
            }),
            poller,
            wake_rx,
            cfg: LoopConfig {
                idle_timeout: opts.idle_timeout,
                write_stall: opts.write_stall_timeout,
                queue_deadline: opts.queue_deadline,
            },
        })
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.listener.local_addr().map(|a| a.port()).unwrap_or(0)
    }

    /// A shutdown handle usable from other threads.
    pub fn handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Runs the event loop (on the calling thread) plus the worker pool
    /// until shutdown; returns the final counter snapshot.
    pub fn run(self) -> Json {
        let Server {
            listener,
            workers,
            state,
            poller,
            wake_rx,
            cfg,
        } = self;
        let state_ref: &ServerState = &state;
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(move || worker_loop(state_ref));
            }
            let mut el = EventLoop {
                state: state_ref,
                listener: &listener,
                poller,
                wake_rx,
                cfg,
                conns: HashMap::new(),
                parked: HashMap::new(),
                timers: TimerWheel::new(Instant::now(), TIMER_TICK, TIMER_SLOTS),
                outstanding: 0,
                events: Vec::new(),
                fired: Vec::new(),
                shutdown_at: None,
            };
            el.run();
            // Normally a no-op; on a fatal poller error it releases the
            // workers so the scope can join.
            state_ref.trigger_shutdown();
        });
        state.stats_json()
    }
}

fn worker_loop(state: &ServerState) {
    loop {
        let job = {
            let mut jobs = state.jobs.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(job) = jobs.pop_front() {
                    break Some(job);
                }
                if state.is_shutting_down() {
                    break None;
                }
                let (guard, _timeout) = state
                    .jobs_cv
                    .wait_timeout(jobs, Duration::from_millis(100))
                    .unwrap_or_else(PoisonError::into_inner);
                jobs = guard;
            }
        };
        let Some(mut job) = job else { return };
        let started = Instant::now();
        job.trace.mark_dispatched(started);
        state
            .latency
            .record_queue_wait(job.class.into(), started.duration_since(job.ready_at));
        state
            .counters
            .executing_requests
            .fetch_add(1, Ordering::SeqCst);
        let (reply, cache_outcome, ok) = {
            // Re-attach the charge as an RAII permit here, at the point of
            // execution: a panicking handler releases budget on unwind.
            let _permit = state.admission.resume(job.charge);
            match catch_unwind(AssertUnwindSafe(|| execute_chargeable(state, &job.request))) {
                Ok(done) => done,
                Err(payload) => {
                    state.counters.errors.fetch_add(1, Ordering::SeqCst);
                    let reply =
                        error_reply(&format!("request failed: {}", panic_message(&*payload)));
                    (reply, "none", false)
                }
            }
        };
        job.trace.mark_executed(Instant::now());
        job.trace.cache = cache_outcome;
        if !ok {
            job.trace.outcome = "error";
        }
        state
            .counters
            .executing_requests
            .fetch_sub(1, Ordering::SeqCst);
        state
            .latency
            .record_service(job.class.into(), started.elapsed());
        state
            .completions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Completion {
                token: job.token,
                reply,
                trace: job.trace,
            });
        state.wake.wake();
    }
}

/// Hard cap on one buffered request line. The largest legitimate request
/// is a `compile` op (1 MiB of source, ≤ 6× inflation under JSON `\uXXXX`
/// escaping); beyond this the connection is dropped, so a newline-less
/// byte stream cannot balloon daemon memory before the protocol-layer
/// checks ever run. The same constant bounds a connection's read buffer.
const MAX_REQUEST_LINE_BYTES: usize = 8 << 20;

/// Write-buffer high-water mark: above this the event loop stops
/// consuming requests from (and stops reading) the connection until the
/// peer drains replies. One reply larger than the mark is still buffered
/// whole, so the true per-connection write bound is the high-water mark
/// plus the largest single reply.
const WRITE_HIGH_WATER: usize = 1 << 20;

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;
const READ_CHUNK: usize = 16 * 1024;
const TIMER_TICK: Duration = Duration::from_millis(5);
const TIMER_SLOTS: usize = 256;
/// After shutdown, stuck flushes are abandoned past this grace window.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(5);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TimerKind {
    Idle,
    WriteStall,
    ParkDeadline,
}

/// What a connection is doing. At most one request per connection is in
/// flight at a time; pipelined requests wait as bytes in the bounded
/// read buffer. `Parked` is deliberately fat (the pending request rides
/// in it) — there is exactly one `ConnPhase` per connection, not a
/// collection of them, so boxing would buy nothing.
#[allow(clippy::large_enum_variant)]
enum ConnPhase {
    /// Parsing lines / waiting for bytes.
    Ready,
    /// One request is executing on a worker.
    Executing,
    /// One request is parked in the admission queue — in the event loop,
    /// not on a worker thread.
    Parked {
        ticket: Ticket,
        request: Request,
        class: OpClass,
        ready_at: Instant,
        timer: TimerId,
        trace: PendingTrace,
    },
}

struct Conn {
    stream: TcpStream,
    /// Fairness-accounting id (the accept ordinal).
    conn_id: u64,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    phase: ConnPhase,
    idle_timer: Option<TimerId>,
    stall_timer: Option<TimerId>,
    /// Peer sent FIN; serve any final unterminated request, then close.
    eof: bool,
    /// Close once the write buffer drains (oversize line, EOF tail).
    close_after_flush: bool,
    interest: Interest,
    /// Traces whose reply bytes are queued in `write_buf` but not yet
    /// drained to the peer — finalized (flushed-stamped) when the buffer
    /// empties, or at teardown.
    unflushed: Vec<PendingTrace>,
}

impl Conn {
    fn pending_write(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }
}

struct EventLoop<'a> {
    state: &'a ServerState,
    listener: &'a TcpListener,
    poller: Poller,
    wake_rx: WakeRx,
    cfg: LoopConfig,
    conns: HashMap<u64, Conn>,
    /// ticket.raw() → token for requests parked in the admission queue.
    parked: HashMap<u64, u64>,
    timers: TimerWheel<(u64, TimerKind)>,
    /// Jobs dispatched to workers and not yet completed.
    outstanding: usize,
    events: Vec<Event>,
    fired: Vec<(TimerId, (u64, TimerKind))>,
    shutdown_at: Option<Instant>,
}

impl EventLoop<'_> {
    fn run(&mut self) {
        if self
            .poller
            .register(self.listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)
            .is_err()
        {
            return;
        }
        if self
            .poller
            .register(self.wake_rx.fd(), TOKEN_WAKE, Interest::READ)
            .is_err()
        {
            return;
        }
        loop {
            let now = Instant::now();
            let mut timeout = self
                .timers
                .next_deadline(now)
                .unwrap_or(Duration::from_millis(500))
                .min(Duration::from_millis(500));
            if self.shutdown_at.is_some() {
                timeout = timeout.min(Duration::from_millis(50));
            }
            if self.poller.wait(&mut self.events, Some(timeout)).is_err() {
                break;
            }
            for i in 0..self.events.len() {
                let ev = self.events[i];
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => self.wake_rx.drain(),
                    token => self.conn_event(token, ev),
                }
            }
            self.drain_completions();
            self.expire_timers(Instant::now());
            self.advance_parked();
            if self.state.is_shutting_down() {
                if self.shutdown_at.is_none() {
                    self.shutdown_at = Some(Instant::now());
                    self.begin_shutdown();
                }
                self.shutdown_sweep();
                let grace_over = self
                    .shutdown_at
                    .is_some_and(|t| t.elapsed() > SHUTDOWN_GRACE);
                if (self.outstanding == 0 && self.conns.is_empty()) || grace_over {
                    break;
                }
            }
        }
        self.finish();
    }

    fn accept_ready(&mut self) {
        loop {
            if self.state.is_shutting_down() {
                return;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    // The accept ordinal doubles as the fairness id.
                    let conn_id = self
                        .state
                        .counters
                        .connections
                        .fetch_add(1, Ordering::SeqCst);
                    let token = FIRST_CONN_TOKEN + conn_id;
                    if self
                        .poller
                        .register(stream.as_raw_fd(), token, Interest::READ)
                        .is_err()
                    {
                        continue;
                    }
                    self.state
                        .counters
                        .open_connections
                        .fetch_add(1, Ordering::SeqCst);
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            conn_id,
                            read_buf: Vec::new(),
                            write_buf: Vec::new(),
                            write_pos: 0,
                            phase: ConnPhase::Ready,
                            idle_timer: None,
                            stall_timer: None,
                            eof: false,
                            close_after_flush: false,
                            interest: Interest::READ,
                            unflushed: Vec::new(),
                        },
                    );
                    logev!(Level::Debug, "serve.accept", conn = conn_id);
                    self.rearm_idle(token);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    fn conn_event(&mut self, token: u64, ev: Event) {
        if !self.conns.contains_key(&token) {
            return;
        }
        if ev.error {
            self.close_conn(token, true);
            return;
        }
        if ev.writable {
            self.flush_writes(token);
        }
        if ev.readable {
            self.read_ready(token);
        }
        self.after_io(token);
    }

    fn want_read(&self, conn: &Conn) -> bool {
        !conn.eof
            && !conn.close_after_flush
            && !self.state.is_shutting_down()
            && conn.pending_write() < WRITE_HIGH_WATER
            && conn.read_buf.len() <= MAX_REQUEST_LINE_BYTES
    }

    fn read_ready(&mut self, token: u64) {
        let mut failed = false;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.eof
                || conn.close_after_flush
                || conn.pending_write() >= WRITE_HIGH_WATER
                || conn.read_buf.len() > MAX_REQUEST_LINE_BYTES
            {
                return;
            }
            let mut chunk = [0u8; READ_CHUNK];
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.read_buf.extend_from_slice(&chunk[..n]);
                        if n < chunk.len() || conn.read_buf.len() > MAX_REQUEST_LINE_BYTES {
                            break;
                        }
                    }
                    Err(ref e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(ref e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
        }
        if failed {
            self.close_conn(token, true);
        }
    }

    /// Parse and dispatch as many buffered requests as backpressure and
    /// the one-in-flight rule allow.
    fn process_conn(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if !matches!(conn.phase, ConnPhase::Ready) || conn.close_after_flush {
                return;
            }
            if conn.pending_write() >= WRITE_HIGH_WATER {
                return; // backpressure: the peer must drain replies first
            }
            let nl = conn.read_buf.iter().position(|&b| b == b'\n');
            let line: Vec<u8> = match nl {
                Some(pos) => {
                    let mut line: Vec<u8> = conn.read_buf.drain(..=pos).collect();
                    line.pop();
                    line
                }
                None if conn.read_buf.len() > MAX_REQUEST_LINE_BYTES => {
                    // Reply (best effort) and drop the connection: the
                    // sender is either broken or hostile.
                    conn.read_buf.clear();
                    conn.close_after_flush = true;
                    self.push_reply(token, error_reply("request line exceeds the size limit"));
                    return;
                }
                None if conn.eof && !conn.read_buf.is_empty() => {
                    // EOF followed a final (unterminated) request: serve
                    // it, then close.
                    conn.close_after_flush = true;
                    std::mem::take(&mut conn.read_buf)
                }
                None => return,
            };
            let text = String::from_utf8_lossy(&line);
            let text = text.trim();
            if text.is_empty() {
                if self.conns.get(&token).is_some_and(|c| c.close_after_flush) {
                    // The EOF tail was pure whitespace: a clean EOF.
                    self.close_conn(token, false);
                    return;
                }
                continue;
            }
            let text = text.to_owned();
            self.handle_line(token, &text);
        }
    }

    /// One parsed request line: control plane executes inline, chargeable
    /// ops are priced + admitted here and executed on a worker.
    fn handle_line(&mut self, token: u64, line: &str) {
        let state = self.state;
        state.counters.requests.fetch_add(1, Ordering::SeqCst);
        let t0 = Instant::now();
        let conn_id = self.conns.get(&token).map_or(0, |c| c.conn_id);
        let mut trace = PendingTrace::new(state.next_request_id(), conn_id, t0);
        let req = match parse_request(line) {
            Ok(req) => req,
            Err(msg) => {
                state.counters.errors.fetch_add(1, Ordering::SeqCst);
                trace.outcome = "error";
                trace.collapse_remaining(Instant::now());
                self.push_reply_traced(token, error_reply(&msg), trace);
                return;
            }
        };
        trace.op = op_name(&req);
        trace.mark_parsed(Instant::now());
        // Inline (control-plane) ops never queue or execute on a worker:
        // their remaining phases collapse to the reply instant.
        let inline_reply = |state: &ServerState, class: MetricClass, reply: String| {
            state.latency.record_queue_wait(class, Duration::ZERO);
            state.latency.record_service(class, t0.elapsed());
            reply
        };
        match req {
            Request::Stats => {
                let reply = inline_reply(state, MetricClass::Stats, ok_stats(state.stats_json()));
                trace.collapse_remaining(Instant::now());
                self.push_reply_traced(token, reply, trace);
            }
            Request::Metrics => {
                state
                    .counters
                    .metrics_requests
                    .fetch_add(1, Ordering::SeqCst);
                let reply = inline_reply(
                    state,
                    MetricClass::Metrics,
                    ok_metrics(&state.prometheus_text()),
                );
                trace.collapse_remaining(Instant::now());
                self.push_reply_traced(token, reply, trace);
            }
            Request::Trace => {
                state.counters.trace_requests.fetch_add(1, Ordering::SeqCst);
                let reply =
                    inline_reply(state, MetricClass::Trace, ok_traces(state.traces.to_json()));
                trace.collapse_remaining(Instant::now());
                self.push_reply_traced(token, reply, trace);
            }
            Request::Shutdown => {
                trace.collapse_remaining(Instant::now());
                self.push_reply_traced(token, ok_shutdown(), trace);
                logev!(Level::Info, "serve.shutdown", conn = conn_id);
                state.trigger_shutdown();
            }
            Request::Estimate(inner) => {
                state
                    .counters
                    .estimate_requests
                    .fetch_add(1, Ordering::SeqCst);
                // The parser only admits chargeable inner requests, and
                // the reply uses the same `charge` the controller levies —
                // the estimate and the eventual admission charge cannot
                // diverge.
                let est = CostModel::committed()
                    .charge(&inner)
                    .expect("estimate inner request is chargeable");
                let reply = ok_estimate(
                    est.class.name(),
                    est.cost,
                    state.admission.would_admit(conn_id, est.cost),
                    state.latency.mean_service_us(est.class.into()),
                );
                let reply = inline_reply(state, MetricClass::Estimate, reply);
                trace.collapse_remaining(Instant::now());
                self.push_reply_traced(token, reply, trace);
            }
            chargeable => self.dispatch_chargeable(token, chargeable, t0, trace),
        }
    }

    fn dispatch_chargeable(
        &mut self,
        token: u64,
        req: Request,
        ready_at: Instant,
        mut trace: PendingTrace,
    ) {
        // Admission happens before any compute: a shed request costs the
        // daemon one formula evaluation, nothing more.
        let est = CostModel::committed()
            .charge(&req)
            .expect("artefact/sim/compile are chargeable");
        let Some(conn_id) = self.conns.get(&token).map(|c| c.conn_id) else {
            return;
        };
        match self.state.admission.try_admit(conn_id, est.cost) {
            TryAdmit::Admitted(permit) => {
                trace.mark_admitted(Instant::now());
                let charge = permit.into_charge();
                self.dispatch_job(token, req, charge, est.class, ready_at, trace);
            }
            TryAdmit::Queued(ticket) => {
                // Park in the event loop: no worker thread is held while
                // this request waits for budget. The admission decision is
                // stamped when the queue head is eventually claimed (or
                // the request sheds), so park time shows up between
                // `parsed` and `admitted`.
                let timer = self.timers.insert(
                    Instant::now(),
                    self.cfg.queue_deadline,
                    (token, TimerKind::ParkDeadline),
                );
                let conn = self.conns.get_mut(&token).expect("checked above");
                if let Some(id) = conn.idle_timer.take() {
                    self.timers.cancel(id);
                }
                conn.phase = ConnPhase::Parked {
                    ticket,
                    request: req,
                    class: est.class,
                    ready_at,
                    timer,
                    trace,
                };
                self.parked.insert(ticket.raw(), token);
            }
            TryAdmit::Shed(shed) => {
                self.shed_reply(token, trace, shed.reason, shed.retry_after_ms);
            }
        }
    }

    /// The typed overload reply plus its complete trace record: a shed
    /// request's remaining phases collapse to the shed instant.
    fn shed_reply(
        &mut self,
        token: u64,
        mut trace: PendingTrace,
        reason: ShedReason,
        retry_after_ms: u64,
    ) {
        trace.outcome = "overloaded";
        trace.collapse_remaining(Instant::now());
        logev!(
            Level::Info,
            "serve.shed",
            id = trace.id,
            conn = trace.conn,
            op = trace.op,
            reason = shed_reason_text(reason),
            retry_after_ms = retry_after_ms,
        );
        self.push_reply_traced(
            token,
            overloaded_reply(shed_reason_text(reason), retry_after_ms),
            trace,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn dispatch_job(
        &mut self,
        token: u64,
        request: Request,
        charge: Charge,
        class: OpClass,
        ready_at: Instant,
        trace: PendingTrace,
    ) {
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.phase = ConnPhase::Executing;
            if let Some(id) = conn.idle_timer.take() {
                self.timers.cancel(id);
            }
        }
        self.outstanding += 1;
        let mut jobs = self
            .state
            .jobs
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        jobs.push_back(Job {
            token,
            request,
            charge,
            class,
            ready_at,
            trace,
        });
        drop(jobs);
        self.state.jobs_cv.notify_one();
    }

    fn drain_completions(&mut self) {
        let done: Vec<Completion> = {
            let mut guard = self
                .state
                .completions
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            std::mem::take(&mut *guard)
        };
        for c in done {
            self.outstanding -= 1;
            let Some(conn) = self.conns.get_mut(&c.token) else {
                // Connection died while its request executed: the reply is
                // undeliverable but the trace record still completes.
                let mut trace = c.trace;
                trace.outcome = "closed";
                self.state.finish_trace(trace, Instant::now());
                continue;
            };
            if matches!(conn.phase, ConnPhase::Executing) {
                conn.phase = ConnPhase::Ready;
            }
            self.push_reply_traced(c.token, c.reply, c.trace);
            self.after_io(c.token);
        }
    }

    /// Queue the reply bytes and flush opportunistically.
    fn push_reply(&mut self, token: u64, reply: String) {
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            conn.write_buf.extend_from_slice(reply.as_bytes());
            conn.write_buf.push(b'\n');
        }
        self.flush_writes(token);
        self.rearm_idle(token);
    }

    /// [`Self::push_reply`], plus the request's trace: the trace finishes
    /// when the reply bytes fully drain to the socket — immediately if
    /// this flush empties the write buffer, otherwise from a later
    /// [`Self::flush_writes`] (or connection teardown).
    fn push_reply_traced(&mut self, token: u64, reply: String, trace: PendingTrace) {
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                self.state.finish_trace(trace, Instant::now());
                return;
            };
            conn.write_buf.extend_from_slice(reply.as_bytes());
            conn.write_buf.push(b'\n');
            conn.unflushed.push(trace);
        }
        self.flush_writes(token);
        self.rearm_idle(token);
    }

    fn flush_writes(&mut self, token: u64) {
        let mut failed = false;
        let mut progressed = false;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            while conn.write_pos < conn.write_buf.len() {
                match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                    Ok(0) => {
                        failed = true;
                        break;
                    }
                    Ok(n) => {
                        conn.write_pos += n;
                        progressed = true;
                    }
                    Err(ref e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(ref e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
        }
        if failed {
            self.close_conn(token, true);
            return;
        }
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.write_pos == conn.write_buf.len() {
            conn.write_buf.clear();
            conn.write_pos = 0;
            if !conn.unflushed.is_empty() {
                let now = Instant::now();
                for trace in conn.unflushed.drain(..) {
                    self.state.finish_trace(trace, now);
                }
            }
            if let Some(id) = conn.stall_timer.take() {
                self.timers.cancel(id);
            }
        } else if progressed || conn.stall_timer.is_none() {
            // (Re)arm the stall clock on first residue and on progress, so
            // only a peer making *no* progress for the full window is
            // reaped.
            if let Some(id) = conn.stall_timer.take() {
                self.timers.cancel(id);
            }
            let id = self.timers.insert(
                Instant::now(),
                self.cfg.write_stall,
                (token, TimerKind::WriteStall),
            );
            conn.stall_timer = Some(id);
        }
    }

    /// Post-I/O bookkeeping: parse what arrived, close what is due,
    /// resync poller interest.
    fn after_io(&mut self, token: u64) {
        self.process_conn(token);
        self.finalize_conn(token);
    }

    fn finalize_conn(&mut self, token: u64) {
        let close_now = {
            let Some(conn) = self.conns.get(&token) else {
                return;
            };
            let flushed = conn.pending_write() == 0;
            let ready = matches!(conn.phase, ConnPhase::Ready);
            // Two clean-close cases, neither discarding anything: a due
            // close whose reply has drained, or flushed EOF with no tail.
            let due = conn.close_after_flush || (conn.eof && conn.read_buf.is_empty());
            if due && flushed && ready {
                Some(false)
            } else {
                None
            }
        };
        if let Some(count_partial) = close_now {
            self.close_conn(token, count_partial);
            return;
        }
        self.update_interest(token);
    }

    fn update_interest(&mut self, token: u64) {
        let Some(conn) = self.conns.get(&token) else {
            return;
        };
        let want = Interest {
            read: self.want_read(conn),
            write: conn.pending_write() > 0,
        };
        if want != conn.interest {
            let fd = conn.stream.as_raw_fd();
            if self.poller.update(fd, token, want).is_ok() {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.interest = want;
                }
            }
        }
    }

    /// Reset the idle deadline — called at accept and after every
    /// completed request, never on partial bytes, so a trickling sender
    /// cannot dodge the reaper.
    fn rearm_idle(&mut self, token: u64) {
        let now = Instant::now();
        let idle = self.cfg.idle_timeout;
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if !matches!(conn.phase, ConnPhase::Ready) || conn.close_after_flush {
            return;
        }
        if let Some(id) = conn.idle_timer.take() {
            self.timers.cancel(id);
        }
        conn.idle_timer = Some(self.timers.insert(now, idle, (token, TimerKind::Idle)));
    }

    fn expire_timers(&mut self, now: Instant) {
        let mut fired = std::mem::take(&mut self.fired);
        self.timers.poll_expired(now, &mut fired);
        for &(id, (token, kind)) in &fired {
            match kind {
                TimerKind::Idle => {
                    // Guard against stale ids: the timer must still be the
                    // connection's current one.
                    if self
                        .conns
                        .get(&token)
                        .is_some_and(|c| c.idle_timer == Some(id))
                    {
                        self.close_conn(token, true);
                    }
                }
                TimerKind::WriteStall => {
                    if self
                        .conns
                        .get(&token)
                        .is_some_and(|c| c.stall_timer == Some(id))
                    {
                        self.state
                            .counters
                            .stalled_writes
                            .fetch_add(1, Ordering::SeqCst);
                        self.close_conn(token, true);
                    }
                }
                TimerKind::ParkDeadline => self.park_deadline(token, id),
            }
        }
        self.fired = fired;
    }

    fn park_deadline(&mut self, token: u64, id: TimerId) {
        let (ticket, trace) = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let matches_timer =
                matches!(&conn.phase, ConnPhase::Parked { timer, .. } if *timer == id);
            if !matches_timer {
                return;
            }
            let ConnPhase::Parked { ticket, trace, .. } =
                std::mem::replace(&mut conn.phase, ConnPhase::Ready)
            else {
                unreachable!("checked parked above");
            };
            (ticket, trace)
        };
        self.parked.remove(&ticket.raw());
        if let Some(shed) = self.state.admission.shed_ticket(ticket) {
            self.shed_reply(token, trace, shed.reason, shed.retry_after_ms);
        } else {
            // Cannot race with claim_head (same thread); defensive only.
            self.state.finish_trace(trace, Instant::now());
            self.rearm_idle(token);
        }
        self.after_io(token);
    }

    /// Admit parked requests from the queue head while budget allows —
    /// the event-loop counterpart of the blocking waiter wake-up.
    fn advance_parked(&mut self) {
        loop {
            match self.state.admission.claim_head() {
                HeadClaim::Empty | HeadClaim::Pending => return,
                HeadClaim::Admitted { ticket, permit } => {
                    let Some(token) = self.parked.remove(&ticket.raw()) else {
                        drop(permit); // releases the charge
                        continue;
                    };
                    let Some(conn) = self.conns.get_mut(&token) else {
                        drop(permit);
                        continue;
                    };
                    let phase = std::mem::replace(&mut conn.phase, ConnPhase::Executing);
                    let ConnPhase::Parked {
                        request,
                        class,
                        ready_at,
                        timer,
                        mut trace,
                        ..
                    } = phase
                    else {
                        unreachable!("parked map points at a non-parked conn");
                    };
                    self.timers.cancel(timer);
                    trace.mark_admitted(Instant::now());
                    self.dispatch_job(token, request, permit.into_charge(), class, ready_at, trace);
                }
                HeadClaim::Shed { ticket, shed } => {
                    let Some(token) = self.parked.remove(&ticket.raw()) else {
                        continue;
                    };
                    let Some(conn) = self.conns.get_mut(&token) else {
                        continue;
                    };
                    let phase = std::mem::replace(&mut conn.phase, ConnPhase::Ready);
                    let ConnPhase::Parked { timer, trace, .. } = phase else {
                        unreachable!("parked map points at a non-parked conn");
                    };
                    self.timers.cancel(timer);
                    self.shed_reply(token, trace, shed.reason, shed.retry_after_ms);
                    self.after_io(token);
                }
            }
        }
    }

    fn begin_shutdown(&mut self) {
        let _ = self.poller.deregister(self.listener.as_raw_fd());
        // Admission is closed: every parked request sheds as `closed`
        // with a typed reply before its connection is swept.
        self.advance_parked();
    }

    /// Close every connection that has nothing left to do: reply flushed,
    /// no request in flight. Buffered complete lines are still served
    /// (chargeable ones shed as `closed`); a partial tail counts as
    /// truncated.
    fn shutdown_sweep(&mut self) {
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.process_conn(token);
            let done = self
                .conns
                .get(&token)
                .is_some_and(|c| matches!(c.phase, ConnPhase::Ready) && c.pending_write() == 0);
            if done {
                self.close_conn(token, true);
            }
        }
    }

    /// Final teardown: best-effort blocking flush with a short timeout,
    /// then close and account for discarded partial lines.
    fn finish(&mut self) {
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            if let Some(conn) = self.conns.get_mut(&token) {
                if conn.pending_write() > 0 {
                    let pending = conn.write_buf[conn.write_pos..].to_vec();
                    let _ = conn.stream.set_nonblocking(false);
                    let _ = conn
                        .stream
                        .set_write_timeout(Some(Duration::from_millis(250)));
                    let _ = conn.stream.write_all(&pending);
                    conn.write_pos = conn.write_buf.len();
                }
            }
            self.close_conn(token, true);
        }
    }

    fn close_conn(&mut self, token: u64, count_partial: bool) {
        let Some(conn) = self.conns.remove(&token) else {
            return;
        };
        let now = Instant::now();
        if let Some(id) = conn.idle_timer {
            self.timers.cancel(id);
        }
        if let Some(id) = conn.stall_timer {
            self.timers.cancel(id);
        }
        // Replies whose bytes never fully drained still complete their
        // trace records at teardown.
        for trace in conn.unflushed {
            self.state.finish_trace(trace, now);
        }
        if let ConnPhase::Parked {
            ticket,
            timer,
            mut trace,
            ..
        } = conn.phase
        {
            self.timers.cancel(timer);
            self.parked.remove(&ticket.raw());
            // The connection died while parked: nobody to answer, so no
            // shed accounting either.
            self.state.admission.forget_ticket(ticket);
            trace.outcome = "closed";
            trace.collapse_remaining(now);
            self.state.finish_trace(trace, now);
        }
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        if count_partial && !conn.read_buf.is_empty() {
            self.state
                .counters
                .truncated_requests
                .fetch_add(1, Ordering::SeqCst);
            // A partial line never reached `handle_line`, so synthesize
            // its complete trace record here.
            let mut trace = PendingTrace::new(self.state.next_request_id(), conn.conn_id, now);
            trace.outcome = "truncated";
            trace.collapse_remaining(now);
            self.state.finish_trace(trace, now);
        }
        logev!(Level::Debug, "serve.close", conn = conn.conn_id);
        self.state
            .counters
            .open_connections
            .fetch_sub(1, Ordering::SeqCst);
    }
}

/// Prose for the typed `overloaded` reply.
fn shed_reason_text(reason: ShedReason) -> &'static str {
    match reason {
        ShedReason::Oversize => "request cost exceeds the admission budget",
        ShedReason::QueueFull => "admission queue full",
        ShedReason::Deadline => "admission queue deadline expired",
        ShedReason::Closed => "server shutting down",
    }
}

/// Executes one admitted chargeable request on a worker thread. The
/// admission permit is held by the caller ([`worker_loop`]) across this
/// call, covering cache waits and batched execution alike. Returns the
/// reply line plus the trace attribution: cache outcome
/// (`"hit"`/`"miss"`/`"none"`) and whether the request succeeded.
fn execute_chargeable(state: &ServerState, req: &Request) -> (String, &'static str, bool) {
    let fail = |msg: &str| {
        state.counters.errors.fetch_add(1, Ordering::SeqCst);
        (error_reply(msg), "none", false)
    };
    let cache_name = |hit: bool| if hit { "hit" } else { "miss" };
    match req {
        Request::Artefact { name, scale } => {
            state
                .counters
                .artefact_requests
                .fetch_add(1, Ordering::SeqCst);
            match serve_artefact(state, name, *scale) {
                Ok((bytes, hit)) => match std::str::from_utf8(&bytes) {
                    Ok(text) => (ok_artefact(name, text), cache_name(hit), true),
                    Err(_) => fail("artefact bytes are not UTF-8"),
                },
                Err(msg) => fail(&msg),
            }
        }
        Request::Compile { source, spec } => {
            state
                .counters
                .compile_requests
                .fetch_add(1, Ordering::SeqCst);
            match serve_compile(state, source, spec) {
                Ok((bytes, phases)) => match std::str::from_utf8(&bytes) {
                    Ok(text) => (
                        ok_compile(text, phases.as_ref()),
                        cache_name(phases.is_none()),
                        true,
                    ),
                    Err(_) => fail("compile bytes are not UTF-8"),
                },
                Err((msg, line, col)) => {
                    state.counters.errors.fetch_add(1, Ordering::SeqCst);
                    (error_reply_at(&msg, line, col), "none", false)
                }
            }
        }
        Request::Profile { source, spec } => {
            state
                .counters
                .profile_requests
                .fetch_add(1, Ordering::SeqCst);
            match serve_profile(state, source, spec) {
                Ok((bytes, hit)) => match std::str::from_utf8(&bytes) {
                    Ok(fragment) => (ok_profile(fragment), cache_name(hit), true),
                    Err(_) => fail("profile bytes are not UTF-8"),
                },
                Err((msg, line, col)) => {
                    state.counters.errors.fetch_add(1, Ordering::SeqCst);
                    (error_reply_at(&msg, line, col), "none", false)
                }
            }
        }
        Request::Sim {
            kernel,
            scale,
            spec,
        } => {
            state.counters.sim_requests.fetch_add(1, Ordering::SeqCst);
            match serve_sim(state, kernel, *scale, spec) {
                Ok((bytes, hit)) => match std::str::from_utf8(&bytes) {
                    Ok(fragment) => (ok_sim(kernel, fragment), cache_name(hit), true),
                    Err(_) => fail("report bytes are not UTF-8"),
                },
                Err(msg) => fail(&msg),
            }
        }
        Request::Estimate(_)
        | Request::Stats
        | Request::Metrics
        | Request::Trace
        | Request::Shutdown => {
            unreachable!("control-plane ops are served inline by the event loop")
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "worker panicked".to_owned())
}

fn serve_artefact(
    state: &ServerState,
    name: &str,
    scale: Scale,
) -> Result<(Arc<Vec<u8>>, bool), String> {
    let Some(render) = state.artefacts.get(name) else {
        let names = state.artefacts.names_sorted();
        let suggestion = mve_kernels::registry::did_you_mean(name, &names)
            .map(|s| format!(" did you mean `{s}`?"))
            .unwrap_or_default();
        return Err(format!(
            "unknown artefact `{name}`;{suggestion} valid artefacts: {}",
            names.join(", ")
        ));
    };
    match state.cache.fetch(artefact_key(name, scale)) {
        Fetch::Hit(bytes) => Ok((bytes, true)),
        Fetch::Miss => {
            let key = artefact_key(name, scale);
            if state.faults.should_abandon_reservation() {
                state.cache.abandon(key);
                return Err(format!("artefact `{name}` failed: injected abandonment"));
            }
            match catch_unwind(AssertUnwindSafe(|| {
                state.faults.on_compute();
                render(scale)
            })) {
                Ok(text) => Ok((state.cache.fulfill(key, text.into_bytes()), false)),
                Err(payload) => {
                    state.cache.abandon(key);
                    Err(format!(
                        "artefact `{name}` failed: {}",
                        panic_message(&*payload)
                    ))
                }
            }
        }
    }
}

/// Compiles, executes, checks and times a client-submitted kernel behind
/// the single-flight cache, keyed on the source digest plus the canonical
/// configuration encoding. Diagnostics come back with their source
/// position (`line`/`col`) for the typed error reply. A cache miss also
/// returns the per-phase compile timings (the cached bytes stay exactly
/// the golden render, so hits carry no timings).
type CompileOutcome = Result<(Arc<Vec<u8>>, Option<CompilePhases>), (String, u32, u32)>;
/// A served `profile` fragment plus the cache-hit flag, or a positioned
/// diagnostic.
type ProfileOutcome = Result<(Arc<Vec<u8>>, bool), (String, u32, u32)>;

fn serve_compile(state: &ServerState, source: &str, spec: &SimSpec) -> CompileOutcome {
    let cfg = spec.to_config();
    let key = compile_key(source, &cfg);
    match state.cache.fetch(key) {
        Fetch::Hit(bytes) => Ok((bytes, None)),
        Fetch::Miss => {
            if state.faults.should_abandon_reservation() {
                state.cache.abandon(key);
                return Err(("compile failed: injected abandonment".to_owned(), 0, 0));
            }
            let result = catch_unwind(AssertUnwindSafe(|| {
                state.faults.on_compute();
                mve_lang::compile_and_render_timed(source, &cfg)
            }));
            match result {
                Ok(Ok((text, phases))) => {
                    Ok((state.cache.fulfill(key, text.into_bytes()), Some(phases)))
                }
                Ok(Err(diag)) => {
                    state.cache.abandon(key);
                    Err((diag.message.clone(), diag.span.line, diag.span.col))
                }
                Err(payload) => {
                    state.cache.abandon(key);
                    Err((
                        format!("compile failed: {}", panic_message(&*payload)),
                        0,
                        0,
                    ))
                }
            }
        }
    }
}

/// Serves one `profile` request behind the single-flight cache. The
/// cached bytes are the serialized [`profile_payload`] fragment —
/// annotated text plus the per-line attribution rows — keyed by
/// [`profile_key`] (a domain distinct from `compile`, so the two ops
/// never alias). Returns the fragment plus the hit flag; diagnostics
/// carry their source position like `compile`'s.
fn serve_profile(state: &ServerState, source: &str, spec: &SimSpec) -> ProfileOutcome {
    let cfg = spec.to_config();
    let key = profile_key(source, &cfg);
    match state.cache.fetch(key) {
        Fetch::Hit(bytes) => Ok((bytes, true)),
        Fetch::Miss => {
            if state.faults.should_abandon_reservation() {
                state.cache.abandon(key);
                return Err(("profile failed: injected abandonment".to_owned(), 0, 0));
            }
            let result = catch_unwind(AssertUnwindSafe(|| {
                state.faults.on_compute();
                mve_lang::profile_and_render(source, &cfg)
            }));
            match result {
                Ok(Ok((text, report))) => {
                    let fragment = profile_payload(&text, &report);
                    Ok((state.cache.fulfill(key, fragment.into_bytes()), false))
                }
                Ok(Err(diag)) => {
                    state.cache.abandon(key);
                    Err((diag.message.clone(), diag.span.line, diag.span.col))
                }
                Err(payload) => {
                    state.cache.abandon(key);
                    Err((
                        format!("profile failed: {}", panic_message(&*payload)),
                        0,
                        0,
                    ))
                }
            }
        }
    }
}

fn serve_sim(
    state: &ServerState,
    kernel: &str,
    scale: Scale,
    spec: &SimSpec,
) -> Result<(Arc<Vec<u8>>, bool), String> {
    // Resolve the name first: the unknown-kernel reply is the registry's
    // own sorted-vocabulary message, shared with the CLI front-ends.
    let kernel_impl = kernel_by_name(kernel).map_err(|e| e.to_string())?;
    let cfg = spec.to_config();
    let key = sim_key(kernel, scale, &cfg);
    match state.cache.fetch(key) {
        Fetch::Hit(bytes) => Ok((bytes, true)),
        Fetch::Miss => {
            if state.faults.should_abandon_reservation() {
                state.cache.abandon(key);
                return Err(format!("sim `{kernel}` failed: injected abandonment"));
            }
            // The batch group is the functional execution identity: kernel,
            // scale, and the engine geometry the kernel must run under (an
            // `arrays` override changes the trace itself, exactly as in the
            // Figure 12(b) sweep — such requests get their own group).
            let arrays = cfg.geometry.arrays;
            let group = format!("{kernel}@{}@{arrays}", scale_name(scale));
            let faults = state.faults.clone();
            let result = catch_unwind(AssertUnwindSafe(|| {
                state.batcher.submit(
                    &group,
                    BatchEntry { cfg, key },
                    &state.cache,
                    move || {
                        faults.on_compute();
                        // Guard, not set/restore: a panicking kernel must
                        // not leave the worker's thread-local poisoned for
                        // later requests on the same thread.
                        let _arrays = mve_kernels::common::EngineArraysGuard::new(arrays);
                        let run = kernel_impl.run_mve(scale);
                        assert!(
                            run.checked.ok(),
                            "{kernel}: functional check failed {:?}",
                            run.checked
                        );
                        run.trace
                    },
                    |trace, entries| {
                        let cfgs: Vec<_> = entries.iter().map(|e| e.cfg.clone()).collect();
                        simulate_sweep(trace, &cfgs)
                            .iter()
                            .map(|report| report_to_json(report).encode().into_bytes())
                            .collect()
                    },
                )
            }));
            result.map(|bytes| (bytes, false)).map_err(|payload| {
                // The batcher's leader guard has already abandoned every
                // registered reservation.
                format!("sim `{kernel}` failed: {}", panic_message(&*payload))
            })
        }
    }
}
