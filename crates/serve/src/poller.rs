//! Raw-fd readiness polling for the event-loop I/O core.
//!
//! The workspace is std-only, so this module declares the handful of libc
//! entry points it needs directly (the same idiom as the SIGTERM binding in
//! the `serve` binary) instead of pulling in `mio`/`libc`. Two backends are
//! provided behind one `Poller` facade:
//!
//! * **epoll** (Linux): `epoll_create1`/`epoll_ctl`/`epoll_wait`, used
//!   level-triggered. The O(1) kernel-side interest list is what makes a
//!   64-connection daemon with 4 workers cheap.
//! * **poll(2)** (portable fallback): the interest set lives in a
//!   `HashMap` and a `pollfd` array is rebuilt per wait. O(n) per call but
//!   dependency-free on every unix.
//!
//! The backend is chosen by [`PollerBackend`]: `Auto` consults the
//! `MVE_SERVE_POLLER` environment variable (`"epoll"` or `"poll"`) and
//! otherwise picks epoll on Linux and poll(2) elsewhere. CI exercises the
//! serve suites under both values.
//!
//! The module also owns the self-pipe wake mechanism ([`wake_pipe`]):
//! worker threads finishing a job, and `ShutdownHandle::shutdown`, write a
//! byte into the pipe to interrupt a blocked wait.

use std::collections::HashMap;
use std::io;
use std::time::Duration;

#[cfg(unix)]
use std::os::unix::io::RawFd;
#[cfg(not(unix))]
type RawFd = i32;

/// Which readiness events a registration cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub read: bool,
    /// Wake when the fd is writable.
    pub write: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };

    /// No interest: stay registered but deliver nothing. Used while a
    /// connection is backpressured with an empty write buffer pending a
    /// worker completion.
    pub const NONE: Interest = Interest {
        read: false,
        write: false,
    };
}

/// One readiness event delivered by [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Readable (includes peer hang-up so reads can observe EOF).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error condition on the fd; the owner should tear it down.
    pub error: bool,
}

/// Backend selection for [`Poller::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PollerBackend {
    /// Consult `MVE_SERVE_POLLER` (`"epoll"`/`"poll"`), else the platform
    /// default: epoll on Linux, poll(2) elsewhere.
    #[default]
    Auto,
    /// Force the Linux epoll backend.
    Epoll,
    /// Force the portable poll(2) backend.
    Poll,
}

impl PollerBackend {
    /// Resolve `Auto` against the environment and platform.
    fn resolve(self) -> PollerBackend {
        match self {
            PollerBackend::Auto => match std::env::var("MVE_SERVE_POLLER").as_deref() {
                Ok("poll") => PollerBackend::Poll,
                Ok("epoll") => PollerBackend::Epoll,
                _ => {
                    if cfg!(target_os = "linux") {
                        PollerBackend::Epoll
                    } else {
                        PollerBackend::Poll
                    }
                }
            },
            other => other,
        }
    }
}

#[cfg(unix)]
mod ffi {
    //! The minimal libc surface: poll(2), pipes, fcntl, close.
    #![allow(non_camel_case_types)]

    pub type nfds_t = std::os::raw::c_ulong;

    /// `struct pollfd` from `<poll.h>`; identical layout on every unix.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct pollfd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x1;
    pub const POLLOUT: i16 = 0x4;
    pub const POLLERR: i16 = 0x8;
    pub const POLLHUP: i16 = 0x10;
    pub const POLLNVAL: i16 = 0x20;

    pub const F_SETFD: i32 = 2;
    pub const F_GETFL: i32 = 3;
    pub const F_SETFL: i32 = 4;
    pub const FD_CLOEXEC: i32 = 1;
    #[cfg(target_os = "linux")]
    pub const O_NONBLOCK: i32 = 0o4000;
    #[cfg(not(target_os = "linux"))]
    pub const O_NONBLOCK: i32 = 0x4;

    extern "C" {
        pub fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: i32) -> i32;
        pub fn pipe(fds: *mut i32) -> i32;
        pub fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
        pub fn close(fd: i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }
}

#[cfg(target_os = "linux")]
mod epoll_ffi {
    //! epoll entry points from `<sys/epoll.h>`.

    /// `struct epoll_event`; the kernel uapi packs it on x86_64 only.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct epoll_event {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLOUT: u32 = 0x4;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut epoll_event) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut epoll_event, maxevents: i32, timeout: i32)
            -> i32;
    }
}

/// Cap a wait timeout to whole milliseconds for poll/epoll, rounding up so
/// a timer never fires early. `None` means block indefinitely (-1).
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => d.as_nanos().div_ceil(1_000_000).min(i32::MAX as u128) as i32,
    }
}

/// Readiness poller over raw fds; see the module docs for the backends.
pub struct Poller {
    imp: Imp,
}

enum Imp {
    #[cfg(target_os = "linux")]
    Epoll(Epoll),
    #[cfg(unix)]
    Poll(PollSet),
    #[cfg(not(unix))]
    Unsupported,
}

impl Poller {
    /// Create a poller with the given backend choice.
    ///
    /// # Errors
    ///
    /// Fails if the backend is unavailable on this platform (epoll off
    /// Linux, anything off unix) or the kernel refuses the epoll fd.
    pub fn new(backend: PollerBackend) -> io::Result<Poller> {
        match backend.resolve() {
            #[cfg(target_os = "linux")]
            PollerBackend::Epoll => Ok(Poller {
                imp: Imp::Epoll(Epoll::new()?),
            }),
            #[cfg(not(target_os = "linux"))]
            PollerBackend::Epoll => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "epoll backend requires Linux",
            )),
            #[cfg(unix)]
            PollerBackend::Poll => Ok(Poller {
                imp: Imp::Poll(PollSet::new()),
            }),
            PollerBackend::Auto => unreachable!("resolve() never returns Auto"),
            #[cfg(not(unix))]
            _ => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "no poller backend on this platform",
            )),
        }
    }

    /// Wire name of the active backend, surfaced in the `stats` reply.
    pub fn backend(&self) -> &'static str {
        match &self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(_) => "epoll",
            #[cfg(unix)]
            Imp::Poll(_) => "poll",
            #[cfg(not(unix))]
            Imp::Unsupported => "none",
        }
    }

    /// Add `fd` to the interest set under `token`.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(e) => e.ctl(epoll_ffi::EPOLL_CTL_ADD, fd, token, interest),
            #[cfg(unix)]
            Imp::Poll(p) => {
                p.set.insert(fd, (token, interest));
                Ok(())
            }
            #[cfg(not(unix))]
            Imp::Unsupported => unreachable!("Poller::new rejects non-unix"),
        }
    }

    /// Change the interest of an already-registered fd.
    pub fn update(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(e) => e.ctl(epoll_ffi::EPOLL_CTL_MOD, fd, token, interest),
            #[cfg(unix)]
            Imp::Poll(p) => {
                p.set.insert(fd, (token, interest));
                Ok(())
            }
            #[cfg(not(unix))]
            Imp::Unsupported => unreachable!("Poller::new rejects non-unix"),
        }
    }

    /// Drop an fd from the interest set. Must be called before the fd is
    /// closed (epoll auto-removes on close, the poll set does not).
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(e) => e.ctl(epoll_ffi::EPOLL_CTL_DEL, fd, 0, Interest::NONE),
            #[cfg(unix)]
            Imp::Poll(p) => {
                p.set.remove(&fd);
                Ok(())
            }
            #[cfg(not(unix))]
            Imp::Unsupported => unreachable!("Poller::new rejects non-unix"),
        }
    }

    /// Block for readiness, appending events to `out` (which is cleared
    /// first). A `None` timeout blocks indefinitely; EINTR returns an
    /// empty event set rather than an error.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(e) => e.wait(out, timeout),
            #[cfg(unix)]
            Imp::Poll(p) => p.wait(out, timeout),
            #[cfg(not(unix))]
            Imp::Unsupported => unreachable!("Poller::new rejects non-unix"),
        }
    }
}

#[cfg(target_os = "linux")]
struct Epoll {
    epfd: RawFd,
    scratch: Vec<epoll_ffi::epoll_event>,
}

#[cfg(target_os = "linux")]
impl Epoll {
    fn new() -> io::Result<Epoll> {
        let epfd = unsafe { epoll_ffi::epoll_create1(epoll_ffi::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll {
            epfd,
            scratch: vec![epoll_ffi::epoll_event { events: 0, data: 0 }; 256],
        })
    }

    fn ctl(&mut self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut events = 0u32;
        if interest.read {
            events |= epoll_ffi::EPOLLIN;
        }
        if interest.write {
            events |= epoll_ffi::EPOLLOUT;
        }
        let mut ev = epoll_ffi::epoll_event {
            events,
            data: token,
        };
        let rc = unsafe { epoll_ffi::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        let n = unsafe {
            epoll_ffi::epoll_wait(
                self.epfd,
                self.scratch.as_mut_ptr(),
                self.scratch.len() as i32,
                timeout_ms(timeout),
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for ev in &self.scratch[..n as usize] {
            // Copy out of the (x86_64: packed) struct before use.
            let bits = ev.events;
            let token = ev.data;
            out.push(Event {
                token,
                readable: bits & (epoll_ffi::EPOLLIN | epoll_ffi::EPOLLHUP) != 0,
                writable: bits & epoll_ffi::EPOLLOUT != 0,
                error: bits & epoll_ffi::EPOLLERR != 0,
            });
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe {
            ffi::close(self.epfd);
        }
    }
}

#[cfg(unix)]
struct PollSet {
    set: HashMap<RawFd, (u64, Interest)>,
    scratch: Vec<ffi::pollfd>,
}

#[cfg(unix)]
impl PollSet {
    fn new() -> PollSet {
        PollSet {
            set: HashMap::new(),
            scratch: Vec::new(),
        }
    }

    fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        self.scratch.clear();
        // fds with Interest::NONE are still polled (events == 0) so that
        // POLLERR/POLLHUP — always reported — keep flowing.
        for (&fd, &(_, interest)) in &self.set {
            let mut events = 0i16;
            if interest.read {
                events |= ffi::POLLIN;
            }
            if interest.write {
                events |= ffi::POLLOUT;
            }
            self.scratch.push(ffi::pollfd {
                fd,
                events,
                revents: 0,
            });
        }
        let n = unsafe {
            ffi::poll(
                self.scratch.as_mut_ptr(),
                self.scratch.len() as ffi::nfds_t,
                timeout_ms(timeout),
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for pfd in &self.scratch {
            if pfd.revents == 0 {
                continue;
            }
            let Some(&(token, _)) = self.set.get(&pfd.fd) else {
                continue;
            };
            out.push(Event {
                token,
                readable: pfd.revents & (ffi::POLLIN | ffi::POLLHUP) != 0,
                writable: pfd.revents & ffi::POLLOUT != 0,
                error: pfd.revents & (ffi::POLLERR | ffi::POLLNVAL) != 0,
            });
        }
        Ok(())
    }
}

/// Write half of the self-pipe; held in `ServerState` so workers and the
/// shutdown handle can interrupt a blocked [`Poller::wait`] from any
/// thread.
#[derive(Debug)]
pub struct WakeTx {
    fd: RawFd,
}

// The fd is written with a single-byte write(2), which is thread-safe.
unsafe impl Send for WakeTx {}
unsafe impl Sync for WakeTx {}

impl WakeTx {
    /// Nudge the event loop. Best-effort: a full pipe already guarantees a
    /// pending wakeup, so EAGAIN is ignored.
    pub fn wake(&self) {
        #[cfg(unix)]
        unsafe {
            let byte = 1u8;
            let _ = ffi::write(self.fd, &byte, 1);
        }
    }
}

#[cfg(unix)]
impl Drop for WakeTx {
    fn drop(&mut self) {
        unsafe {
            ffi::close(self.fd);
        }
    }
}

/// Read half of the self-pipe, owned by the event loop.
#[derive(Debug)]
pub struct WakeRx {
    fd: RawFd,
}

impl WakeRx {
    /// The raw fd to register with the poller.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Drain all pending wake bytes (the pipe is nonblocking).
    pub fn drain(&self) {
        #[cfg(unix)]
        loop {
            let mut buf = [0u8; 64];
            let n = unsafe { ffi::read(self.fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                break;
            }
        }
    }
}

#[cfg(unix)]
impl Drop for WakeRx {
    fn drop(&mut self) {
        unsafe {
            ffi::close(self.fd);
        }
    }
}

/// Create the nonblocking self-pipe pair.
///
/// # Errors
///
/// Fails if the kernel refuses a pipe or the fcntl flags.
pub fn wake_pipe() -> io::Result<(WakeTx, WakeRx)> {
    #[cfg(unix)]
    {
        let mut fds = [0i32; 2];
        if unsafe { ffi::pipe(fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        for &fd in &fds {
            let flags = unsafe { ffi::fcntl(fd, ffi::F_GETFL, 0) };
            if flags < 0
                || unsafe { ffi::fcntl(fd, ffi::F_SETFL, flags | ffi::O_NONBLOCK) } < 0
                || unsafe { ffi::fcntl(fd, ffi::F_SETFD, ffi::FD_CLOEXEC) } < 0
            {
                let err = io::Error::last_os_error();
                unsafe {
                    ffi::close(fds[0]);
                    ffi::close(fds[1]);
                }
                return Err(err);
            }
        }
        Ok((WakeTx { fd: fds[1] }, WakeRx { fd: fds[0] }))
    }
    #[cfg(not(unix))]
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "self-pipe requires unix",
    ))
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    fn backends() -> Vec<PollerBackend> {
        let mut v = vec![PollerBackend::Poll];
        if cfg!(target_os = "linux") {
            v.push(PollerBackend::Epoll);
        }
        v
    }

    #[test]
    fn wake_pipe_interrupts_and_drains() {
        for backend in backends() {
            let mut poller = Poller::new(backend).unwrap();
            let (tx, rx) = wake_pipe().unwrap();
            poller.register(rx.fd(), 7, Interest::READ).unwrap();
            let mut events = Vec::new();

            // Nothing pending: a short wait times out empty.
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{}: spurious event", poller.backend());

            tx.wake();
            poller
                .wait(&mut events, Some(Duration::from_millis(1000)))
                .unwrap();
            assert_eq!(events.len(), 1, "{}", poller.backend());
            assert_eq!(events[0].token, 7);
            assert!(events[0].readable);

            // Level-triggered: still readable until drained.
            rx.drain();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{}: not drained", poller.backend());
        }
    }

    #[test]
    fn socket_readability_and_interest_updates() {
        for backend in backends() {
            let mut poller = Poller::new(backend).unwrap();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let mut client = TcpStream::connect(addr).unwrap();
            let (server, _) = listener.accept().unwrap();
            server.set_nonblocking(true).unwrap();

            poller
                .register(server.as_raw_fd(), 42, Interest::READ)
                .unwrap();
            let mut events = Vec::new();
            client.write_all(b"x").unwrap();
            poller
                .wait(&mut events, Some(Duration::from_millis(1000)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.token == 42 && e.readable),
                "{}: no readable event",
                poller.backend()
            );

            // Masking read interest silences the (still-pending) byte.
            poller
                .update(server.as_raw_fd(), 42, Interest::NONE)
                .unwrap();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(
                !events.iter().any(|e| e.token == 42 && e.readable),
                "{}: masked fd still readable",
                poller.backend()
            );

            poller.deregister(server.as_raw_fd()).unwrap();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{}: deregister leaked", poller.backend());
        }
    }

    #[test]
    fn env_override_is_respected() {
        // Resolution logic only — the env var itself is exercised by CI.
        assert_eq!(PollerBackend::Poll.resolve(), PollerBackend::Poll);
        assert_eq!(PollerBackend::Epoll.resolve(), PollerBackend::Epoll);
    }
}
