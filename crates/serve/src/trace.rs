//! Per-request lifecycle tracing.
//!
//! Every request line gets a monotonically-assigned id and a
//! [`PendingTrace`] that collects phase timestamps as it moves through
//! the daemon: received → parsed → admission decision → (queue wait) →
//! dispatched on a worker → executed → reply flushed. Completed traces
//! land in a bounded ring buffer ([`TraceRing`], last 256) that the
//! control-plane `trace` op snapshots, and each completion also emits a
//! structured log event.
//!
//! Invariants the serialization guarantees (and the test suites assert):
//!
//! * phase timestamps are monotone — later phases never report an
//!   earlier microsecond than earlier ones (skipped phases inherit the
//!   previous phase's timestamp, so control-plane ops collapse cleanly);
//! * `queue_wait_us == dispatched_us - admitted_us`, exactly;
//! * *every* request produces a complete record — served, error, shed
//!   (`overloaded`), and truncated requests alike.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

use crate::json::Json;

/// How many completed traces the ring retains.
pub const TRACE_RING_CAPACITY: usize = 256;

/// A request's in-flight trace: raw `Instant`s, stamped as phases pass.
/// Later phases default to the previous phase's time when skipped, so a
/// finished trace is monotone by construction.
#[derive(Debug)]
pub struct PendingTrace {
    /// Monotonic request id (daemon-wide).
    pub id: u64,
    /// Accept ordinal of the owning connection.
    pub conn: u64,
    /// Wire op name (`"artefact"`, `"stats"`, …; `"unknown"` before parse).
    pub op: &'static str,
    /// Outcome label: `ok`, `error`, `overloaded`, `truncated`, `closed`.
    pub outcome: &'static str,
    /// Cache outcome: `hit`, `miss`, or `none` (uncached/control-plane).
    pub cache: &'static str,
    received: Instant,
    parsed: Option<Instant>,
    admitted: Option<Instant>,
    dispatched: Option<Instant>,
    executed: Option<Instant>,
}

impl PendingTrace {
    /// A new trace for a request line received at `received`.
    pub fn new(id: u64, conn: u64, received: Instant) -> PendingTrace {
        PendingTrace {
            id,
            conn,
            op: "unknown",
            outcome: "ok",
            cache: "none",
            received,
            parsed: None,
            admitted: None,
            dispatched: None,
            executed: None,
        }
    }

    pub fn mark_parsed(&mut self, at: Instant) {
        self.parsed = Some(at);
    }

    /// Admission decided (admitted from budget or claimed from the queue
    /// head). For shed requests this is the shed instant.
    pub fn mark_admitted(&mut self, at: Instant) {
        self.admitted = Some(at);
    }

    /// A worker picked the job up.
    pub fn mark_dispatched(&mut self, at: Instant) {
        self.dispatched = Some(at);
    }

    /// The handler finished (reply bytes exist).
    pub fn mark_executed(&mut self, at: Instant) {
        self.executed = Some(at);
    }

    /// Collapses the remaining phases to `at` — the inline control-plane
    /// path and the shed/error paths, where nothing queues or executes.
    pub fn collapse_remaining(&mut self, at: Instant) {
        self.parsed.get_or_insert(at);
        self.admitted.get_or_insert(at);
        self.dispatched.get_or_insert(at);
        self.executed.get_or_insert(at);
    }

    /// Finalizes at reply-flush time into microsecond offsets from the
    /// daemon `epoch`. Skipped phases inherit the previous phase.
    pub fn finish(self, flushed: Instant, epoch: Instant) -> RequestTrace {
        let us = |t: Instant| t.saturating_duration_since(epoch).as_micros() as u64;
        let received = us(self.received);
        let parsed = self.parsed.map(&us).unwrap_or(received).max(received);
        let admitted = self.admitted.map(&us).unwrap_or(parsed).max(parsed);
        let dispatched = self.dispatched.map(&us).unwrap_or(admitted).max(admitted);
        let executed = self.executed.map(&us).unwrap_or(dispatched).max(dispatched);
        let flushed = us(flushed).max(executed);
        RequestTrace {
            id: self.id,
            conn: self.conn,
            op: self.op,
            outcome: self.outcome,
            cache: self.cache,
            received_us: received,
            parsed_us: parsed,
            admitted_us: admitted,
            dispatched_us: dispatched,
            executed_us: executed,
            flushed_us: flushed,
        }
    }
}

/// One completed request trace: phase timestamps in µs since the daemon
/// started, monotone in field order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestTrace {
    pub id: u64,
    pub conn: u64,
    pub op: &'static str,
    pub outcome: &'static str,
    pub cache: &'static str,
    pub received_us: u64,
    pub parsed_us: u64,
    pub admitted_us: u64,
    pub dispatched_us: u64,
    pub executed_us: u64,
    pub flushed_us: u64,
}

impl RequestTrace {
    /// Queue wait (admission decision → worker pickup), the derived
    /// duration the invariant tests pin: always exactly
    /// `dispatched_us - admitted_us`.
    pub fn queue_wait_us(&self) -> u64 {
        self.dispatched_us - self.admitted_us
    }

    /// Serializes one trace record for the `trace` reply.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("id".to_owned(), Json::U64(self.id)),
            ("conn".to_owned(), Json::U64(self.conn)),
            ("op".to_owned(), Json::Str(self.op.to_owned())),
            ("outcome".to_owned(), Json::Str(self.outcome.to_owned())),
            ("cache".to_owned(), Json::Str(self.cache.to_owned())),
            ("received_us".to_owned(), Json::U64(self.received_us)),
            ("parsed_us".to_owned(), Json::U64(self.parsed_us)),
            ("admitted_us".to_owned(), Json::U64(self.admitted_us)),
            ("dispatched_us".to_owned(), Json::U64(self.dispatched_us)),
            ("executed_us".to_owned(), Json::U64(self.executed_us)),
            ("flushed_us".to_owned(), Json::U64(self.flushed_us)),
            ("queue_wait_us".to_owned(), Json::U64(self.queue_wait_us())),
            (
                "total_us".to_owned(),
                Json::U64(self.flushed_us - self.received_us),
            ),
        ])
    }
}

/// Bounded ring of completed traces, oldest evicted first.
#[derive(Debug)]
pub struct TraceRing {
    ring: Mutex<VecDeque<RequestTrace>>,
    capacity: usize,
    recorded: AtomicU64,
}

impl Default for TraceRing {
    fn default() -> Self {
        TraceRing::new(TRACE_RING_CAPACITY)
    }
}

impl TraceRing {
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing {
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity: capacity.max(1),
            recorded: AtomicU64::new(0),
        }
    }

    /// Appends one completed trace, evicting the oldest past capacity.
    pub fn push(&self, trace: RequestTrace) {
        let mut ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(trace);
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// Total traces ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Snapshot of the retained traces, oldest first.
    pub fn snapshot(&self) -> Vec<RequestTrace> {
        let ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        ring.iter().copied().collect()
    }

    /// The `trace` reply body: `[{...}, ...]`, oldest first.
    pub fn to_json(&self) -> Json {
        Json::Arr(self.snapshot().iter().map(RequestTrace::to_json).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn phases_are_monotone_and_queue_wait_is_exact() {
        let epoch = Instant::now();
        let t = |us: u64| epoch + Duration::from_micros(us);
        let mut p = PendingTrace::new(7, 2, t(10));
        p.op = "sim";
        p.mark_parsed(t(12));
        p.mark_admitted(t(15));
        p.mark_dispatched(t(40));
        p.mark_executed(t(90));
        p.cache = "miss";
        let r = p.finish(t(95), epoch);
        assert_eq!(
            (
                r.received_us,
                r.parsed_us,
                r.admitted_us,
                r.dispatched_us,
                r.executed_us,
                r.flushed_us
            ),
            (10, 12, 15, 40, 90, 95)
        );
        assert_eq!(r.queue_wait_us(), r.dispatched_us - r.admitted_us);
        assert_eq!(r.queue_wait_us(), 25);
        let json = r.to_json();
        assert_eq!(json.get("queue_wait_us").and_then(Json::as_u64), Some(25));
        assert_eq!(json.get("total_us").and_then(Json::as_u64), Some(85));
        assert_eq!(json.get("cache").and_then(Json::as_str), Some("miss"));
    }

    #[test]
    fn skipped_phases_inherit_and_stay_monotone() {
        let epoch = Instant::now();
        let t = |us: u64| epoch + Duration::from_micros(us);
        // A control-plane op: parse then straight to the reply.
        let mut p = PendingTrace::new(1, 0, t(100));
        p.op = "stats";
        p.collapse_remaining(t(103));
        let r = p.finish(t(104), epoch);
        let ts = [
            r.received_us,
            r.parsed_us,
            r.admitted_us,
            r.dispatched_us,
            r.executed_us,
            r.flushed_us,
        ];
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
        assert_eq!(r.queue_wait_us(), 0);
        // A never-parsed (truncated) request: everything collapses to the
        // finish instant and the record is still complete.
        let p = PendingTrace::new(2, 0, t(200));
        let r = p.finish(t(201), epoch);
        assert_eq!(r.parsed_us, 200);
        assert_eq!(r.flushed_us, 201);
        assert_eq!(r.queue_wait_us(), 0);
    }

    #[test]
    fn ring_is_bounded_and_counts_all_records() {
        let ring = TraceRing::new(4);
        let epoch = Instant::now();
        for id in 0..10 {
            let p = PendingTrace::new(id, 0, epoch);
            ring.push(p.finish(epoch, epoch));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(snap.first().map(|t| t.id), Some(6));
        assert_eq!(snap.last().map(|t| t.id), Some(9));
        assert_eq!(ring.recorded(), 10);
        if let Json::Arr(items) = ring.to_json() {
            assert_eq!(items.len(), 4);
        } else {
            panic!("trace reply must be an array");
        }
    }
}
