//! Content-addressed result cache with single-flight admission.
//!
//! Keys are stable 64-bit content digests (the service composes
//! [`mve_core::sim::fnv1a_64`] over a request-kind tag, the kernel or
//! artefact id, and [`mve_core::sim::SimConfig::canonical_bytes`]); values
//! are completed artefact/report bytes. The cache guarantees the service's
//! exactly-once property: for any key, at most one worker computes while
//! every concurrent requester of the same key blocks until the result is
//! published ("single flight"). Completed entries are bounded by an LRU
//! cap; in-flight reservations are never evicted.

use std::collections::HashMap;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Monotonic counters describing cache behaviour. `hits + waits + misses`
/// equals the number of [`ResultCache::fetch`] calls, and `misses` equals
/// the number of unique keys computed — the "simulated exactly once"
/// evidence the integration tests assert on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Fetches answered immediately from a completed entry.
    pub hits: u64,
    /// Fetches that blocked on another worker's in-flight computation and
    /// were answered when it published.
    pub waits: u64,
    /// Fetches that reserved the key for computation.
    pub misses: u64,
    /// Completed entries evicted by the LRU cap.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of fetches served without a fresh computation
    /// (`(hits + waits) / (hits + waits + misses)`).
    ///
    /// A fresh daemon has made no fetches yet; dividing there would yield
    /// NaN, which the JSON layer renders as `null` and breaks every
    /// numeric consumer of the metrics line. Clamped to `0.0` instead, so
    /// the field is always a finite number in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.waits + self.misses;
        if total == 0 {
            0.0
        } else {
            (self.hits + self.waits) as f64 / total as f64
        }
    }
}

#[derive(Debug)]
enum Slot {
    /// A worker holds the reservation and is computing.
    InFlight,
    /// Published bytes, with the LRU tick of the last touch.
    Ready {
        bytes: std::sync::Arc<Vec<u8>>,
        last_used: u64,
    },
}

#[derive(Debug, Default)]
struct Inner {
    slots: HashMap<u64, Slot>,
    ready_count: usize,
    tick: u64,
    stats: CacheStats,
}

/// The outcome of [`ResultCache::fetch`].
#[derive(Debug)]
pub enum Fetch {
    /// The key's published bytes (possibly after waiting on an in-flight
    /// computation).
    Hit(std::sync::Arc<Vec<u8>>),
    /// The caller now holds the key's reservation and MUST either
    /// [`ResultCache::fulfill`] or [`ResultCache::abandon`] it (directly or
    /// by delegating to a batch leader), or waiters hang forever.
    Miss,
}

/// The content-addressed, single-flight, LRU-bounded result cache.
#[derive(Debug)]
pub struct ResultCache {
    inner: Mutex<Inner>,
    published: Condvar,
    cap: usize,
}

impl ResultCache {
    /// A cache holding at most `cap` completed entries (clamped to ≥ 1).
    pub fn new(cap: usize) -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            published: Condvar::new(),
            cap: cap.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A worker panicking never leaves Inner inconsistent (all mutations
        // are single assignments), so poisoning is not propagated.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up `key`: a completed entry is a hit; an in-flight entry
    /// blocks until published (a "wait"); an absent entry reserves the key
    /// and returns [`Fetch::Miss`] — see its obligations.
    pub fn fetch(&self, key: u64) -> Fetch {
        let mut inner = self.lock();
        let mut waited = false;
        loop {
            match inner.slots.get_mut(&key) {
                Some(Slot::Ready { bytes, .. }) => {
                    let bytes = bytes.clone();
                    inner.tick += 1;
                    let tick = inner.tick;
                    if let Some(Slot::Ready { last_used, .. }) = inner.slots.get_mut(&key) {
                        *last_used = tick;
                    }
                    if !waited {
                        inner.stats.hits += 1;
                    }
                    return Fetch::Hit(bytes);
                }
                Some(Slot::InFlight) => {
                    if !waited {
                        inner.stats.waits += 1;
                        waited = true;
                    }
                    inner = self
                        .published
                        .wait(inner)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                None => {
                    // Either a plain miss, or the in-flight worker we were
                    // waiting on abandoned the key — this caller takes over.
                    inner.slots.insert(key, Slot::InFlight);
                    inner.stats.misses += 1;
                    return Fetch::Miss;
                }
            }
        }
    }

    /// Blocks until `key` is published by another worker. Returns `None` if
    /// the reservation was abandoned (caller should retry its fetch) —
    /// used by batch joiners whose reservation a leader fulfills.
    pub fn wait_ready(&self, key: u64) -> Option<std::sync::Arc<Vec<u8>>> {
        let mut inner = self.lock();
        loop {
            match inner.slots.get(&key) {
                Some(Slot::Ready { bytes, .. }) => return Some(bytes.clone()),
                Some(Slot::InFlight) => {
                    inner = self
                        .published
                        .wait(inner)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                None => return None,
            }
        }
    }

    /// Publishes `bytes` under `key`, waking every waiter, and applies the
    /// LRU bound. Valid on reserved keys (the normal path) and unreserved
    /// ones (pre-warming).
    pub fn fulfill(&self, key: u64, bytes: Vec<u8>) -> std::sync::Arc<Vec<u8>> {
        let bytes = std::sync::Arc::new(bytes);
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let prev = inner.slots.insert(
            key,
            Slot::Ready {
                bytes: bytes.clone(),
                last_used: tick,
            },
        );
        if !matches!(prev, Some(Slot::Ready { .. })) {
            inner.ready_count += 1;
        }
        while inner.ready_count > self.cap {
            let victim = inner
                .slots
                .iter()
                .filter_map(|(&k, slot)| match slot {
                    Slot::Ready { last_used, .. } if k != key => Some((*last_used, k)),
                    _ => None,
                })
                .min()
                .map(|(_, k)| k);
            // The just-inserted key is exempt, so a cap of 1 still serves.
            let Some(victim) = victim else { break };
            inner.slots.remove(&victim);
            inner.ready_count -= 1;
            inner.stats.evictions += 1;
        }
        drop(inner);
        self.published.notify_all();
        bytes
    }

    /// Drops an unfulfilled reservation (the computing worker failed).
    /// Waiters wake and retry; one of them becomes the next computer.
    pub fn abandon(&self, key: u64) {
        let mut inner = self.lock();
        if matches!(inner.slots.get(&key), Some(Slot::InFlight)) {
            inner.slots.remove(&key);
        }
        drop(inner);
        self.published.notify_all();
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        self.lock().stats
    }

    /// Completed entries currently resident.
    pub fn len(&self) -> usize {
        self.lock().ready_count
    }

    /// Whether no completed entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn fetch_fulfill_hit_cycle() {
        let cache = ResultCache::new(8);
        assert!(matches!(cache.fetch(1), Fetch::Miss));
        cache.fulfill(1, b"one".to_vec());
        match cache.fetch(1) {
            Fetch::Hit(b) => assert_eq!(&**b, b"one"),
            Fetch::Miss => panic!("expected hit"),
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.waits, s.misses), (1, 0, 1));
    }

    #[test]
    fn concurrent_fetches_compute_each_key_exactly_once() {
        let cache = Arc::new(ResultCache::new(64));
        let computed = Arc::new(AtomicU64::new(0));
        let keys: Vec<u64> = (0..4).collect();
        std::thread::scope(|s| {
            for t in 0..16 {
                let cache = Arc::clone(&cache);
                let computed = Arc::clone(&computed);
                let keys = keys.clone();
                s.spawn(move || {
                    for &key in &keys {
                        match cache.fetch(key) {
                            Fetch::Hit(b) => {
                                assert_eq!(*b, key.to_le_bytes().to_vec());
                            }
                            Fetch::Miss => {
                                computed.fetch_add(1, Ordering::SeqCst);
                                // Give other threads time to pile up on the
                                // in-flight slot.
                                std::thread::sleep(std::time::Duration::from_millis(2));
                                cache.fulfill(key, key.to_le_bytes().to_vec());
                            }
                        }
                    }
                    let _ = t;
                });
            }
        });
        assert_eq!(computed.load(Ordering::SeqCst), 4, "one compute per key");
        let s = cache.stats();
        assert_eq!(s.misses, 4);
        assert_eq!(s.hits + s.waits, 16 * 4 - 4);
    }

    #[test]
    fn abandoned_reservations_hand_over_to_a_waiter() {
        let cache = Arc::new(ResultCache::new(8));
        assert!(matches!(cache.fetch(9), Fetch::Miss));
        let waiter = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || match cache.fetch(9) {
                Fetch::Hit(_) => panic!("leader abandoned; waiter must take over"),
                Fetch::Miss => {
                    cache.fulfill(9, b"recovered".to_vec());
                }
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        cache.abandon(9);
        waiter.join().expect("waiter");
        match cache.fetch(9) {
            Fetch::Hit(b) => assert_eq!(&**b, b"recovered"),
            Fetch::Miss => panic!("must be published"),
        }
    }

    #[test]
    fn lru_cap_evicts_least_recently_used_ready_entries() {
        let cache = ResultCache::new(2);
        for key in [1, 2] {
            assert!(matches!(cache.fetch(key), Fetch::Miss));
            cache.fulfill(key, vec![key as u8]);
        }
        // Touch 1 so 2 is the LRU victim when 3 arrives.
        assert!(matches!(cache.fetch(1), Fetch::Hit(_)));
        assert!(matches!(cache.fetch(3), Fetch::Miss));
        cache.fulfill(3, vec![3]);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(matches!(cache.fetch(1), Fetch::Hit(_)), "1 was touched");
        assert!(matches!(cache.fetch(2), Fetch::Miss), "2 was evicted");
        cache.abandon(2);
    }

    #[test]
    fn in_flight_reservations_are_never_evicted() {
        let cache = ResultCache::new(1);
        assert!(matches!(cache.fetch(7), Fetch::Miss)); // in flight
        for key in [8, 9] {
            assert!(matches!(cache.fetch(key), Fetch::Miss));
            cache.fulfill(key, vec![key as u8]);
        }
        // The reservation survived both inserts; publishing it works.
        cache.fulfill(7, b"late".to_vec());
        match cache.fetch(7) {
            Fetch::Hit(b) => assert_eq!(&**b, b"late"),
            Fetch::Miss => panic!("reservation must have survived"),
        }
    }

    #[test]
    fn wait_ready_returns_delegated_results() {
        let cache = Arc::new(ResultCache::new(8));
        assert!(matches!(cache.fetch(5), Fetch::Miss));
        let joiner = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || cache.wait_ready(5))
        };
        std::thread::sleep(std::time::Duration::from_millis(5));
        cache.fulfill(5, b"from-leader".to_vec());
        let got = joiner.join().expect("joiner").expect("published");
        assert_eq!(&*got, b"from-leader");
        assert_eq!(cache.stats().waits, 0, "wait_ready is not a fetch");
    }
}
