//! The JSON-lines wire protocol and the content-addressed key scheme.
//!
//! One request per line, one response line per request, in order:
//!
//! ```text
//! -> {"op":"artefact","name":"fig10","scale":"test"}
//! <- {"ok":true,"artefact":"fig10","bytes":"Figure 10 — ..."}
//! -> {"op":"sim","kernel":"gemm","scale":"test","scheme":"BP","arrays":16}
//! <- {"ok":true,"kernel":"gemm","report":{"total_cycles":...,...}}
//! -> {"op":"compile","source":"kernel k(...) { ... }","scheme":"BS"}
//! <- {"ok":true,"compile":true,"bytes":"mvel kernel `k` — ..."}
//! -> {"op":"estimate","request":{"op":"sim","kernel":"gemm","scale":"paper"}}
//! <- {"ok":true,"estimate":{"class":"sim","cost":61500,"admit_now":true}}
//! -> {"op":"stats"}
//! <- {"ok":true,"stats":{...}}
//! -> {"op":"shutdown"}
//! <- {"ok":true,"shutdown":true}
//! ```
//!
//! Errors are typed replies, never closed connections:
//! `{"ok":false,"error":"unknown kernel `gemmm`; valid kernels: ..."}` —
//! and compile diagnostics carry their source position as machine-readable
//! members: `{"ok":false,"error":"...","line":3,"col":9}`. A request shed
//! by admission control gets the typed overload reply
//! `{"ok":false,"error":"overloaded: ...","overloaded":true,"retry_after_ms":N}`
//! so clients can distinguish "back off and retry" from a real failure.
//!
//! Cache keys are FNV-1a digests over a request-kind tag, the artefact or
//! kernel id, the scale, and — for simulations — the configuration's
//! canonical encoding ([`SimConfig::canonical_bytes`]), so two requests
//! collide exactly when they denote the same computation. The `compile`
//! key alone uses truncated SHA-256: its input is arbitrary
//! client-controlled source text, where an FNV collision is craftable
//! (see [`crate::digest`]).

use crate::json::Json;
use mve_core::sim::{fnv1a_64, SimConfig, SimReport};
use mve_insram::Scheme;
use mve_kernels::Scale;

/// One decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Render one named artefact (table/figure/ablation) at a scale.
    Artefact {
        /// Artefact name, e.g. `"fig10"`.
        name: String,
        /// Problem scale.
        scale: Scale,
    },
    /// Time one kernel under one configuration.
    Sim {
        /// Kernel registry name, e.g. `"gemm"`.
        kernel: String,
        /// Problem scale.
        scale: Scale,
        /// Configuration knobs.
        spec: SimSpec,
    },
    /// Compile and run a client-submitted `.mvel` kernel.
    Compile {
        /// The DSL source text.
        source: String,
        /// Timing-configuration knobs.
        spec: SimSpec,
    },
    /// Compile, run, and per-line-profile a client-submitted `.mvel`
    /// kernel: the reply carries the annotated-source text plus the
    /// per-line attribution array (events, scalar instrs, cycles, spill
    /// traffic per source line, conservation-checked server-side).
    Profile {
        /// The DSL source text.
        source: String,
        /// Timing-configuration knobs.
        spec: SimSpec,
    },
    /// Price a request against the cost model without executing it. The
    /// inner request is any chargeable op (artefact/sim/compile); nesting
    /// an `estimate` inside an `estimate` is a protocol error.
    Estimate(Box<Request>),
    /// Counter snapshot.
    Stats,
    /// Prometheus text exposition of the unified metrics registry.
    Metrics,
    /// Snapshot of the completed-request trace ring buffer.
    Trace,
    /// Graceful shutdown.
    Shutdown,
}

/// The configuration knobs a `sim` request can set; everything else is the
/// Table IV platform default. `to_config` applies them through the
/// `SimConfig` builder methods, so a request's cache key is guaranteed to
/// match the equivalent locally-built configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimSpec {
    /// In-SRAM computing scheme (default bit-serial).
    pub scheme: Scheme,
    /// SRAM-array count override (default: Table IV's 32).
    pub arrays: Option<usize>,
    /// PUMICE-style per-CB dispatch (default off).
    pub ooo_dispatch: bool,
    /// Charge the compute-mode switch flush (default on).
    pub mode_switch: bool,
    /// Steady-state cache warming (default on).
    pub cache_warming: bool,
}

impl Default for SimSpec {
    fn default() -> Self {
        Self {
            scheme: Scheme::BitSerial,
            arrays: None,
            ooo_dispatch: false,
            mode_switch: true,
            cache_warming: true,
        }
    }
}

impl SimSpec {
    /// Materializes the configuration via the builder methods.
    pub fn to_config(&self) -> SimConfig {
        let mut cfg = SimConfig::default().with_scheme(self.scheme);
        if let Some(arrays) = self.arrays {
            cfg = cfg.with_arrays(arrays);
        }
        if self.ooo_dispatch {
            cfg = cfg.with_ooo_dispatch();
        }
        if !self.mode_switch {
            cfg = cfg.without_mode_switch();
        }
        if !self.cache_warming {
            cfg = cfg.without_cache_warming();
        }
        cfg
    }

    /// The request-object members encoding this spec.
    fn json_members(&self) -> Vec<(String, Json)> {
        let mut m = vec![(
            "scheme".to_owned(),
            Json::Str(self.scheme.short_name().into()),
        )];
        if let Some(arrays) = self.arrays {
            m.push(("arrays".to_owned(), Json::U64(arrays as u64)));
        }
        m.push(("ooo_dispatch".to_owned(), Json::Bool(self.ooo_dispatch)));
        m.push(("mode_switch".to_owned(), Json::Bool(self.mode_switch)));
        m.push(("cache_warming".to_owned(), Json::Bool(self.cache_warming)));
        m
    }
}

/// Upper bound on the `compile` op's source text, so one huge request
/// line cannot balloon daemon memory (the lowering has its own op-count
/// bound for unrolled loops; this bounds the text itself).
pub const MAX_COMPILE_SOURCE_BYTES: usize = 1 << 20;

/// Upper bound on the `arrays` override a request may ask for. The
/// legitimate design space is the Figure 12(b) sweep (8–64); the bound is
/// generous beyond that but must exist: engine allocations scale with the
/// array count, so an unvalidated huge value would let one request abort
/// the whole daemon on allocation failure (an abort is not a panic — the
/// worker's `catch_unwind` cannot contain it).
pub const MAX_ARRAYS: usize = 256;

/// Wire name of a scale.
pub fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Test => "test",
        Scale::Paper => "paper",
    }
}

fn parse_scale(obj: &Json) -> Result<Scale, String> {
    match obj.get("scale") {
        None => Ok(Scale::Test),
        Some(v) => match v.as_str() {
            Some("test") => Ok(Scale::Test),
            Some("paper") => Ok(Scale::Paper),
            _ => Err("field `scale` must be \"test\" or \"paper\"".to_owned()),
        },
    }
}

fn parse_scheme(obj: &Json) -> Result<Scheme, String> {
    match obj.get("scheme") {
        None => Ok(Scheme::BitSerial),
        Some(v) => {
            let name = v.as_str().ok_or("field `scheme` must be a string")?;
            Scheme::ALL
                .iter()
                .copied()
                .find(|s| s.short_name() == name)
                .ok_or_else(|| {
                    let valid: Vec<&str> = Scheme::ALL.iter().map(Scheme::short_name).collect();
                    format!(
                        "unknown scheme `{name}`; valid schemes: {}",
                        valid.join(", ")
                    )
                })
        }
    }
}

fn parse_bool(obj: &Json, key: &str, default: bool) -> Result<bool, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| format!("field `{key}` must be a boolean")),
    }
}

fn required_str<'a>(obj: &'a Json, key: &str) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("field `{key}` (string) is required"))
}

/// Decodes one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = Json::parse(line).map_err(|e| e.to_string())?;
    parse_request_obj(&doc, true)
}

/// Decodes one request object. `allow_estimate` is cleared on the
/// recursive call for `estimate`'s inner request, bounding nesting to one
/// level.
fn parse_request_obj(doc: &Json, allow_estimate: bool) -> Result<Request, String> {
    let op = required_str(doc, "op")?;
    match op {
        "artefact" => Ok(Request::Artefact {
            name: required_str(doc, "name")?.to_owned(),
            scale: parse_scale(doc)?,
        }),
        "sim" => {
            let arrays = match doc.get("arrays") {
                None | Some(Json::Null) => None,
                Some(v) => Some(
                    v.as_u64()
                        .and_then(|n| usize::try_from(n).ok())
                        .filter(|&n| (1..=MAX_ARRAYS).contains(&n))
                        .ok_or_else(|| {
                            format!("field `arrays` must be an integer in 1..={MAX_ARRAYS}")
                        })?,
                ),
            };
            Ok(Request::Sim {
                kernel: required_str(doc, "kernel")?.to_owned(),
                scale: parse_scale(doc)?,
                spec: SimSpec {
                    scheme: parse_scheme(doc)?,
                    arrays,
                    ooo_dispatch: parse_bool(doc, "ooo_dispatch", false)?,
                    mode_switch: parse_bool(doc, "mode_switch", true)?,
                    cache_warming: parse_bool(doc, "cache_warming", true)?,
                },
            })
        }
        "compile" | "profile" => {
            if doc.get("arrays").is_some() {
                return Err(format!(
                    "`arrays` is not supported for `{op}`: DSL kernels execute on the \
                     default 32-array geometry"
                ));
            }
            let source = required_str(doc, "source")?;
            if source.len() > MAX_COMPILE_SOURCE_BYTES {
                return Err(format!(
                    "`source` is {} bytes; the {op} op accepts at most {}",
                    source.len(),
                    MAX_COMPILE_SOURCE_BYTES
                ));
            }
            let source = source.to_owned();
            let spec = SimSpec {
                scheme: parse_scheme(doc)?,
                arrays: None,
                ooo_dispatch: parse_bool(doc, "ooo_dispatch", false)?,
                mode_switch: parse_bool(doc, "mode_switch", true)?,
                cache_warming: parse_bool(doc, "cache_warming", true)?,
            };
            Ok(if op == "compile" {
                Request::Compile { source, spec }
            } else {
                Request::Profile { source, spec }
            })
        }
        "estimate" => {
            if !allow_estimate {
                return Err("`estimate` cannot nest another `estimate`".to_owned());
            }
            let inner = doc
                .get("request")
                .ok_or("field `request` (object) is required for `estimate`")?;
            match parse_request_obj(inner, false)? {
                req @ (Request::Artefact { .. }
                | Request::Sim { .. }
                | Request::Compile { .. }
                | Request::Profile { .. }) => Ok(Request::Estimate(Box::new(req))),
                other => Err(format!(
                    "`estimate` prices chargeable ops (artefact, compile, profile, sim); `{}` \
                     is control-plane and costs nothing",
                    op_name(&other)
                )),
            }
        }
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "trace" => Ok(Request::Trace),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!(
            "unknown op `{other}`; valid ops: artefact, compile, estimate, metrics, profile, \
             sim, stats, trace, shutdown"
        )),
    }
}

/// Wire name of a request's op.
pub fn op_name(req: &Request) -> &'static str {
    match req {
        Request::Artefact { .. } => "artefact",
        Request::Sim { .. } => "sim",
        Request::Compile { .. } => "compile",
        Request::Profile { .. } => "profile",
        Request::Estimate(_) => "estimate",
        Request::Stats => "stats",
        Request::Metrics => "metrics",
        Request::Trace => "trace",
        Request::Shutdown => "shutdown",
    }
}

/// Encodes a request line (client side; no trailing newline).
pub fn encode_request(req: &Request) -> String {
    request_to_json(req).encode()
}

/// Encodes a request as its wire object (the `estimate` op nests one).
pub fn request_to_json(req: &Request) -> Json {
    match req {
        Request::Artefact { name, scale } => Json::Obj(vec![
            ("op".to_owned(), Json::Str("artefact".into())),
            ("name".to_owned(), Json::Str(name.clone())),
            ("scale".to_owned(), Json::Str(scale_name(*scale).into())),
        ]),
        Request::Sim {
            kernel,
            scale,
            spec,
        } => {
            let mut members = vec![
                ("op".to_owned(), Json::Str("sim".into())),
                ("kernel".to_owned(), Json::Str(kernel.clone())),
                ("scale".to_owned(), Json::Str(scale_name(*scale).into())),
            ];
            members.extend(spec.json_members());
            Json::Obj(members)
        }
        Request::Compile { source, spec } | Request::Profile { source, spec } => {
            let mut members = vec![
                ("op".to_owned(), Json::Str(op_name(req).into())),
                ("source".to_owned(), Json::Str(source.clone())),
            ];
            members.extend(
                spec.json_members()
                    .into_iter()
                    .filter(|(k, _)| k != "arrays"),
            );
            Json::Obj(members)
        }
        Request::Estimate(inner) => Json::Obj(vec![
            ("op".to_owned(), Json::Str("estimate".into())),
            ("request".to_owned(), request_to_json(inner)),
        ]),
        Request::Stats => Json::Obj(vec![("op".to_owned(), Json::Str("stats".into()))]),
        Request::Metrics => Json::Obj(vec![("op".to_owned(), Json::Str("metrics".into()))]),
        Request::Trace => Json::Obj(vec![("op".to_owned(), Json::Str("trace".into()))]),
        Request::Shutdown => Json::Obj(vec![("op".to_owned(), Json::Str("shutdown".into()))]),
    }
}

/// Serializes a timing report as the `report` response member.
pub fn report_to_json(r: &SimReport) -> Json {
    Json::Obj(vec![
        ("total_cycles".to_owned(), Json::U64(r.total_cycles)),
        ("compute_cycles".to_owned(), Json::U64(r.compute_cycles)),
        ("data_cycles".to_owned(), Json::U64(r.data_cycles)),
        ("idle_cycles".to_owned(), Json::U64(r.idle_cycles)),
        ("cb_busy_cycles".to_owned(), Json::U64(r.cb_busy_cycles)),
        ("control_blocks".to_owned(), Json::U64(r.control_blocks)),
        ("vector_instrs".to_owned(), Json::U64(r.vector_instrs)),
        ("scalar_instrs".to_owned(), Json::U64(r.scalar_instrs)),
        ("utilization".to_owned(), Json::F64(r.utilization())),
    ])
}

/// `{"ok":true,"artefact":name,"bytes":text}`.
pub fn ok_artefact(name: &str, text: &str) -> String {
    Json::Obj(vec![
        ("ok".to_owned(), Json::Bool(true)),
        ("artefact".to_owned(), Json::Str(name.to_owned())),
        ("bytes".to_owned(), Json::Str(text.to_owned())),
    ])
    .encode()
}

/// `{"ok":true,"kernel":name,"report":<fragment>}` — the fragment is the
/// cached, already-serialized report object, spliced verbatim.
pub fn ok_sim(kernel: &str, report_fragment: &str) -> String {
    let mut out = String::with_capacity(report_fragment.len() + kernel.len() + 32);
    out.push_str("{\"ok\":true,\"kernel\":");
    out.push_str(&Json::Str(kernel.to_owned()).encode());
    out.push_str(",\"report\":");
    out.push_str(report_fragment);
    out.push('}');
    out
}

/// `{"ok":true,"stats":<stats>}`.
pub fn ok_stats(stats: Json) -> String {
    Json::Obj(vec![
        ("ok".to_owned(), Json::Bool(true)),
        ("stats".to_owned(), stats),
    ])
    .encode()
}

/// `{"ok":true,"shutdown":true}`.
pub fn ok_shutdown() -> String {
    Json::Obj(vec![
        ("ok".to_owned(), Json::Bool(true)),
        ("shutdown".to_owned(), Json::Bool(true)),
    ])
    .encode()
}

/// `{"ok":true,"compile":true,"bytes":text}` — the rendered compile
/// artefact (`mve_lang::compile_and_render` bytes, cached verbatim). A
/// cache-miss compile additionally carries `"phases"`: per-phase compiler
/// wall-clock in microseconds (`lex`/`parse`/`lower`/`schedule`/
/// `allocate`, pipeline order). The phases ride only in the reply
/// envelope — the cached `bytes` stay byte-identical to the goldens —
/// and a cache hit omits the member entirely (nothing was compiled).
pub fn ok_compile(text: &str, phases: Option<&mve_lang::CompilePhases>) -> String {
    let mut members = vec![
        ("ok".to_owned(), Json::Bool(true)),
        ("compile".to_owned(), Json::Bool(true)),
        ("bytes".to_owned(), Json::Str(text.to_owned())),
    ];
    if let Some(phases) = phases {
        members.push((
            "phases".to_owned(),
            Json::Obj(
                phases
                    .phases()
                    .iter()
                    .map(|(name, d)| {
                        (
                            format!("{name}_us"),
                            Json::F64(d.as_secs_f64() * 1_000_000.0),
                        )
                    })
                    .collect(),
            ),
        ));
    }
    Json::Obj(members).encode()
}

/// Serializes the cached payload of a `profile` reply: the annotated
/// source text plus the per-line attribution rows, as one JSON object
/// fragment. The fragment is what the single-flight cache stores, so a
/// hit splices the identical bytes a miss computed ([`ok_profile`]).
pub fn profile_payload(text: &str, report: &mve_lang::LineReport) -> String {
    let line_to_json = |l: &mve_lang::LineStat| {
        Json::Obj(vec![
            ("line".to_owned(), Json::U64(u64::from(l.line))),
            ("cycles".to_owned(), Json::U64(l.cycles)),
            ("events".to_owned(), Json::U64(l.events)),
            ("scalar_instrs".to_owned(), Json::U64(l.scalar_instrs)),
            ("active_lanes".to_owned(), Json::U64(l.active_lanes)),
            ("cache_lines".to_owned(), Json::U64(l.cache_lines)),
            ("spill_stores".to_owned(), Json::U64(l.spill_stores)),
            ("reloads".to_owned(), Json::U64(l.reloads)),
        ])
    };
    Json::Obj(vec![
        ("kernel".to_owned(), Json::Str(report.name.clone())),
        (
            "digest".to_owned(),
            Json::Str(format!("{:#018x}", report.source_digest)),
        ),
        ("total_cycles".to_owned(), Json::U64(report.total_cycles)),
        (
            "lines".to_owned(),
            Json::Arr(report.lines.iter().map(line_to_json).collect()),
        ),
        ("text".to_owned(), Json::Str(text.to_owned())),
    ])
    .encode()
}

/// `{"ok":true,"profile":<fragment>}` — the fragment is the cached,
/// already-serialized [`profile_payload`] object, spliced verbatim
/// (hit and miss replies are byte-identical).
pub fn ok_profile(payload_fragment: &str) -> String {
    let mut out = String::with_capacity(payload_fragment.len() + 24);
    out.push_str("{\"ok\":true,\"profile\":");
    out.push_str(payload_fragment);
    out.push('}');
    out
}

/// `{"ok":true,"estimate":{"class":C,"cost":N,"admit_now":B,"measured_cost_us":F}}`
/// — the priced-but-not-executed reply to the `estimate` op. `cost` is in
/// cost units (calibrated microseconds of worker compute); `admit_now`
/// reports whether the admission controller would take a request of this
/// cost right now without queueing; `measured_cost_us` is the daemon's
/// *observed* mean service time for the class (0 before any sample) —
/// reported next to the static model's charge so clients can see drift,
/// while admission itself still charges the static model.
pub fn ok_estimate(class: &str, cost: u64, admit_now: bool, measured_cost_us: f64) -> String {
    Json::Obj(vec![
        ("ok".to_owned(), Json::Bool(true)),
        (
            "estimate".to_owned(),
            Json::Obj(vec![
                ("class".to_owned(), Json::Str(class.to_owned())),
                ("cost".to_owned(), Json::U64(cost)),
                ("admit_now".to_owned(), Json::Bool(admit_now)),
                ("measured_cost_us".to_owned(), Json::F64(measured_cost_us)),
            ]),
        ),
    ])
    .encode()
}

/// `{"ok":true,"metrics":<exposition text>}` — the Prometheus text
/// exposition document rides inside the usual one-line JSON reply (the
/// transport stays JSON-lines; clients print the text verbatim).
pub fn ok_metrics(exposition: &str) -> String {
    Json::Obj(vec![
        ("ok".to_owned(), Json::Bool(true)),
        ("metrics".to_owned(), Json::Str(exposition.to_owned())),
    ])
    .encode()
}

/// `{"ok":true,"traces":[...]}` — the completed-request trace ring.
pub fn ok_traces(traces: Json) -> String {
    Json::Obj(vec![
        ("ok".to_owned(), Json::Bool(true)),
        ("traces".to_owned(), traces),
    ])
    .encode()
}

/// `{"ok":false,"error":...,"overloaded":true,"retry_after_ms":N}` — the
/// typed shed reply. The `overloaded` marker (not the prose) is the
/// machine-readable signal; `retry_after_ms` is the backoff hint the
/// client's retry loop honors.
pub fn overloaded_reply(reason: &str, retry_after_ms: u64) -> String {
    Json::Obj(vec![
        ("ok".to_owned(), Json::Bool(false)),
        (
            "error".to_owned(),
            Json::Str(format!(
                "overloaded: {reason}; retry after {retry_after_ms} ms"
            )),
        ),
        ("overloaded".to_owned(), Json::Bool(true)),
        ("retry_after_ms".to_owned(), Json::U64(retry_after_ms)),
    ])
    .encode()
}

/// Decodes the overload members of a response document, if present:
/// `Some(retry_after_ms)` exactly when the reply is a typed shed.
pub fn parse_overloaded(doc: &Json) -> Option<u64> {
    if doc.get("overloaded").and_then(Json::as_bool) == Some(true) {
        Some(
            doc.get("retry_after_ms")
                .and_then(Json::as_u64)
                .unwrap_or(1),
        )
    } else {
        None
    }
}

/// `{"ok":false,"error":message}`.
pub fn error_reply(message: &str) -> String {
    Json::Obj(vec![
        ("ok".to_owned(), Json::Bool(false)),
        ("error".to_owned(), Json::Str(message.to_owned())),
    ])
    .encode()
}

/// `{"ok":false,"error":message,"line":N,"col":N}` — a *typed* source
/// diagnostic: clients get the position as machine-readable members, not
/// just prose (omitted when the failure has no source position).
pub fn error_reply_at(message: &str, line: u32, col: u32) -> String {
    if line == 0 {
        return error_reply(message);
    }
    Json::Obj(vec![
        ("ok".to_owned(), Json::Bool(false)),
        ("error".to_owned(), Json::Str(message.to_owned())),
        ("line".to_owned(), Json::U64(u64::from(line))),
        ("col".to_owned(), Json::U64(u64::from(col))),
    ])
    .encode()
}

/// Decodes a response line: `Ok(doc)` on `"ok":true`, `Err(message)` on a
/// typed error reply (with any `line`/`col` diagnostic members rendered as
/// a `line:col:` prefix), `Err(..)` on malformed documents.
pub fn parse_response(line: &str) -> Result<Json, String> {
    let doc = Json::parse(line).map_err(|e| e.to_string())?;
    match doc.get("ok").and_then(Json::as_bool) {
        Some(true) => Ok(doc),
        Some(false) => {
            let msg = doc
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unspecified server error");
            let pos = doc
                .get("line")
                .and_then(Json::as_u64)
                .zip(doc.get("col").and_then(Json::as_u64));
            Err(match pos {
                Some((line, col)) => format!("{line}:{col}: {msg}"),
                None => msg.to_owned(),
            })
        }
        None => Err("response lacks an `ok` field".to_owned()),
    }
}

/// Content key of an artefact request.
pub fn artefact_key(name: &str, scale: Scale) -> u64 {
    let mut bytes = Vec::with_capacity(name.len() + 16);
    bytes.extend_from_slice(b"artefact\0");
    bytes.extend_from_slice(name.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(scale_name(scale).as_bytes());
    fnv1a_64(&bytes)
}

/// Content key of a compile request: truncated SHA-256 over the exact
/// source text plus the canonical configuration encoding — two requests
/// collide exactly when they ship the same program for the same timing
/// configuration. SHA-256 (not FNV like the server-vocabulary keys): the
/// source is arbitrary *client-controlled* bytes, and an FNV collision is
/// craftable, which would let one program silently serve another's cached
/// results (see `crate::digest`).
pub fn compile_key(source: &str, cfg: &SimConfig) -> u64 {
    let mut bytes = Vec::with_capacity(source.len() + 400);
    bytes.extend_from_slice(b"compile\0");
    bytes.extend_from_slice(source.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(&cfg.canonical_bytes());
    crate::digest::sha256_trunc64(&bytes)
}

/// Content key of a profile request — [`compile_key`]'s construction
/// with a distinct domain prefix, so a `profile` and a `compile` of the
/// same source under the same configuration can never alias each
/// other's cached bytes.
pub fn profile_key(source: &str, cfg: &SimConfig) -> u64 {
    let mut bytes = Vec::with_capacity(source.len() + 400);
    bytes.extend_from_slice(b"profile\0");
    bytes.extend_from_slice(source.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(&cfg.canonical_bytes());
    crate::digest::sha256_trunc64(&bytes)
}

/// Content key of a simulation request: kernel id + scale + the canonical
/// configuration encoding.
pub fn sim_key(kernel: &str, scale: Scale, cfg: &SimConfig) -> u64 {
    let mut bytes = Vec::with_capacity(kernel.len() + 400);
    bytes.extend_from_slice(b"sim\0");
    bytes.extend_from_slice(kernel.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(scale_name(scale).as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(&cfg.canonical_bytes());
    fnv1a_64(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_encode_and_parse() {
        let reqs = [
            Request::Artefact {
                name: "fig10".into(),
                scale: Scale::Test,
            },
            Request::Sim {
                kernel: "gemm".into(),
                scale: Scale::Paper,
                spec: SimSpec {
                    scheme: Scheme::BitParallel,
                    arrays: Some(16),
                    ooo_dispatch: true,
                    mode_switch: false,
                    cache_warming: true,
                },
            },
            Request::Stats,
            Request::Shutdown,
        ];
        for req in reqs {
            let line = encode_request(&req);
            assert_eq!(parse_request(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn sim_defaults_match_the_platform_default() {
        let req = parse_request(r#"{"op":"sim","kernel":"csum"}"#).unwrap();
        match req {
            Request::Sim {
                kernel,
                scale,
                spec,
            } => {
                assert_eq!(kernel, "csum");
                assert_eq!(scale, Scale::Test);
                assert_eq!(spec.to_config(), SimConfig::default());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn spec_builds_through_the_builder_methods() {
        let spec = SimSpec {
            scheme: Scheme::BitHybrid,
            arrays: Some(64),
            ooo_dispatch: true,
            mode_switch: false,
            cache_warming: false,
        };
        let expect = SimConfig::default()
            .with_scheme(Scheme::BitHybrid)
            .with_arrays(64)
            .with_ooo_dispatch()
            .without_mode_switch()
            .without_cache_warming();
        assert_eq!(spec.to_config(), expect);
        assert_eq!(spec.to_config().cache_key(), expect.cache_key());
    }

    #[test]
    fn malformed_requests_get_specific_messages() {
        for (line, needle) in [
            ("{", "invalid JSON"),
            (r#"{"kernel":"gemm"}"#, "`op`"),
            (r#"{"op":"simulate"}"#, "unknown op"),
            (r#"{"op":"sim"}"#, "`kernel`"),
            (r#"{"op":"sim","kernel":"gemm","scale":"huge"}"#, "`scale`"),
            (
                r#"{"op":"sim","kernel":"gemm","scheme":"XX"}"#,
                "unknown scheme",
            ),
            (r#"{"op":"sim","kernel":"gemm","arrays":0}"#, "`arrays`"),
            // An absurd array count must be rejected at the protocol layer:
            // the engine would otherwise attempt a matching allocation.
            (
                r#"{"op":"sim","kernel":"gemm","arrays":100000000}"#,
                "`arrays`",
            ),
            (r#"{"op":"artefact"}"#, "`name`"),
        ] {
            let err = parse_request(line).expect_err(line);
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn compile_requests_round_trip_and_are_bounded() {
        let req = Request::Compile {
            source: "kernel k(o: mut buf<i32>[4]) {\n  shape [4];\n  store 1 + 2 -> o [1];\n}"
                .into(),
            spec: SimSpec {
                scheme: Scheme::BitHybrid,
                arrays: None,
                ooo_dispatch: true,
                mode_switch: false,
                cache_warming: true,
            },
        };
        let line = encode_request(&req);
        assert_eq!(parse_request(&line).unwrap(), req, "{line}");
        // Oversized sources and arrays overrides are protocol errors.
        let huge = format!(
            r#"{{"op":"compile","source":"{}"}}"#,
            "x".repeat(MAX_COMPILE_SOURCE_BYTES + 1)
        );
        assert!(parse_request(&huge).unwrap_err().contains("at most"));
        let err = parse_request(r#"{"op":"compile","source":"k","arrays":16}"#).unwrap_err();
        assert!(err.contains("not supported"), "{err}");
        assert!(parse_request(r#"{"op":"compile"}"#)
            .unwrap_err()
            .contains("`source`"));
    }

    #[test]
    fn estimate_requests_round_trip_and_reject_control_plane() {
        let inner = Request::Sim {
            kernel: "gemm".into(),
            scale: Scale::Paper,
            spec: SimSpec {
                scheme: Scheme::BitHybrid,
                arrays: Some(16),
                ooo_dispatch: false,
                mode_switch: true,
                cache_warming: true,
            },
        };
        let req = Request::Estimate(Box::new(inner));
        let line = encode_request(&req);
        assert_eq!(parse_request(&line).unwrap(), req, "{line}");
        assert_eq!(op_name(&req), "estimate");
        // Estimating a control-plane op, nesting estimates, or omitting
        // the inner request are all protocol errors.
        let err = parse_request(r#"{"op":"estimate","request":{"op":"stats"}}"#).unwrap_err();
        assert!(err.contains("control-plane"), "{err}");
        let nested = r#"{"op":"estimate","request":{"op":"estimate","request":{"op":"stats"}}}"#;
        let err = parse_request(nested).unwrap_err();
        assert!(err.contains("nest"), "{err}");
        let err = parse_request(r#"{"op":"estimate"}"#).unwrap_err();
        assert!(err.contains("`request`"), "{err}");
        // Inner-request validation still applies through the wrapper.
        let err =
            parse_request(r#"{"op":"estimate","request":{"op":"sim","kernel":"g","arrays":0}}"#)
                .unwrap_err();
        assert!(err.contains("`arrays`"), "{err}");
    }

    #[test]
    fn estimate_replies_carry_class_cost_and_admit_now() {
        let reply = ok_estimate("sim", 1234, true, 987.5);
        let doc = parse_response(&reply).unwrap();
        let est = doc.get("estimate").expect("estimate member");
        assert_eq!(est.get("class").and_then(Json::as_str), Some("sim"));
        assert_eq!(est.get("cost").and_then(Json::as_u64), Some(1234));
        assert_eq!(est.get("admit_now").and_then(Json::as_bool), Some(true));
        assert_eq!(
            est.get("measured_cost_us").and_then(Json::as_f64),
            Some(987.5)
        );
    }

    #[test]
    fn metrics_and_trace_ops_round_trip() {
        for (req, wire) in [
            (Request::Metrics, r#"{"op":"metrics"}"#),
            (Request::Trace, r#"{"op":"trace"}"#),
        ] {
            assert_eq!(encode_request(&req), wire);
            assert_eq!(parse_request(wire).unwrap(), req);
        }
        // Control-plane: not estimable.
        let err = parse_request(r#"{"op":"estimate","request":{"op":"metrics"}}"#).unwrap_err();
        assert!(err.contains("control-plane"), "{err}");
        // The exposition text survives the JSON-lines transport.
        let reply = ok_metrics("# TYPE mve_serve_requests counter\nmve_serve_requests 3\n");
        let doc = parse_response(&reply).unwrap();
        assert!(doc
            .get("metrics")
            .and_then(Json::as_str)
            .unwrap()
            .contains("mve_serve_requests 3"));
    }

    #[test]
    fn overloaded_replies_are_typed_and_machine_decodable() {
        let reply = overloaded_reply("budget exhausted", 250);
        let doc = Json::parse(&reply).unwrap();
        assert_eq!(parse_overloaded(&doc), Some(250));
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
        // Through the generic decoder it is still a typed error reply.
        let err = parse_response(&reply).unwrap_err();
        assert!(err.contains("overloaded"), "{err}");
        assert!(err.contains("250"), "{err}");
        // Ordinary errors carry no overload members.
        let plain = Json::parse(&error_reply("boom")).unwrap();
        assert_eq!(parse_overloaded(&plain), None);
    }

    #[test]
    fn typed_diagnostics_round_trip_with_positions() {
        let reply = error_reply_at("unknown value `z`", 3, 9);
        let doc = Json::parse(&reply).unwrap();
        assert_eq!(doc.get("line").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("col").and_then(Json::as_u64), Some(9));
        let err = parse_response(&reply).unwrap_err();
        assert_eq!(err, "3:9: unknown value `z`");
        // Position-less diagnostics degrade to the plain error reply.
        let plain = error_reply_at("allocation failed", 0, 0);
        assert_eq!(plain, error_reply("allocation failed"));
        assert_eq!(parse_response(&plain).unwrap_err(), "allocation failed");
    }

    #[test]
    fn compile_keys_separate_sources_and_configs() {
        let cfg = SimConfig::default();
        let keys = [
            compile_key("kernel a() {}", &cfg),
            compile_key("kernel b() {}", &cfg),
            compile_key("kernel a() {}", &cfg.clone().with_ooo_dispatch()),
            sim_key("gemm", Scale::Test, &cfg),
        ];
        let unique: std::collections::HashSet<u64> = keys.iter().copied().collect();
        assert_eq!(unique.len(), keys.len());
    }

    #[test]
    fn keys_separate_kinds_scales_and_configs() {
        let cfg = SimConfig::default();
        let keys = [
            artefact_key("fig10", Scale::Test),
            artefact_key("fig10", Scale::Paper),
            artefact_key("fig11", Scale::Test),
            sim_key("fig10", Scale::Test, &cfg),
            sim_key("gemm", Scale::Test, &cfg),
            sim_key("gemm", Scale::Test, &cfg.clone().with_ooo_dispatch()),
        ];
        let unique: std::collections::HashSet<u64> = keys.iter().copied().collect();
        assert_eq!(unique.len(), keys.len());
    }

    #[test]
    fn responses_round_trip() {
        let ok = ok_artefact("fig10", "line1\nline2 ≥ \"quoted\"");
        let doc = parse_response(&ok).unwrap();
        assert_eq!(
            doc.get("bytes").and_then(Json::as_str),
            Some("line1\nline2 ≥ \"quoted\"")
        );
        let report = report_to_json(&SimReport {
            total_cycles: 123,
            ..SimReport::default()
        });
        let sim = ok_sim("gemm", &report.encode());
        let doc = parse_response(&sim).unwrap();
        assert_eq!(
            doc.get("report")
                .and_then(|r| r.get("total_cycles"))
                .and_then(Json::as_u64),
            Some(123)
        );
        let err = parse_response(&error_reply("boom")).expect_err("error reply");
        assert_eq!(err, "boom");
        assert!(parse_response(&ok_shutdown()).is_ok());
    }
}
